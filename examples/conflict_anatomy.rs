//! Conflict anatomy: step through the paper's Figure 3 scenarios on a
//! deterministic in-process cluster, narrating the protocol's moves.
//!
//!     cargo run --release --example conflict_anatomy
//!
//! Uses the protocol test harness directly (zero-latency, instant disk,
//! message holding) so the interesting interleavings can be forced
//! deterministically rather than hoped for.

use cx_protocol::testkit::{Envelope, Kit};
use cx_protocol::Endpoint;
use cx_types::{
    BatchTrigger, ClusterConfig, FileKind, FsOp, InodeNo, MsgKind, Name, ProcId, Protocol, ServerId,
};

const ROOT: InodeNo = InodeNo(1);

fn kit() -> Kit {
    let mut cfg = ClusterConfig::new(4, Protocol::Cx);
    cfg.cx.trigger = BatchTrigger::Never; // commitments only when forced
    Kit::new(cfg)
}

fn main() {
    ordered();
    disordered();
}

/// Figure 3(a): both servers see A before B.
fn ordered() {
    println!("=== ordered conflict (Figure 3a) ===");
    let mut kit = kit();
    for s in kit.servers.iter_mut() {
        s.store_mut().seed_inode(ROOT, FileKind::Directory, 1);
    }
    let name = Name(42);
    let ino = InodeNo(100);

    let a = kit.run_op(
        ProcId::new(0, 0),
        FsOp::Create {
            parent: ROOT,
            name,
            ino,
        },
    );
    println!(
        "ProA create(root/42): {:?} — both sub-ops executed concurrently,",
        kit.outcome(a).unwrap()
    );
    println!("  commitment deferred; the new dentry and inode are now *active objects*");

    let b = kit.run_op(ProcId::new(1, 0), FsOp::Lookup { parent: ROOT, name });
    println!(
        "ProB lookup(root/42): touches the active dentry → conflict → the\n\
         coordinator launches an immediate commitment for ProA's create,\n\
         then executes the lookup: {:?}",
        kit.outcome(b).unwrap()
    );
    let conflicts: u64 = kit.servers.iter().map(|s| s.stats().conflicts).sum();
    let immediate: u64 = kit
        .servers
        .iter()
        .map(|s| s.stats().immediate_commitments)
        .sum();
    println!("  conflicts detected: {conflicts}, immediate commitments: {immediate}");
    println!(
        "  commitment messages: VOTE {} / YES-NO {} / COMMIT-REQ {} / ACK {}\n",
        kit.msg_counts.get(&MsgKind::Vote).unwrap_or(&0),
        kit.msg_counts.get(&MsgKind::VoteResult).unwrap_or(&0),
        kit.msg_counts.get(&MsgKind::CommitReq).unwrap_or(&0),
        kit.msg_counts.get(&MsgKind::Ack).unwrap_or(&0),
    );
}

/// Figure 3(b): the participant sees B before A; B's execution is
/// invalidated and re-queued.
fn disordered() {
    println!("=== disordered conflict (Figure 3b) ===");
    let mut kit = kit();
    let placement = kit.placement;
    let n = Name(7_000);
    let coord = placement.dentry_server(ROOT, n);
    let t = (9_000..)
        .map(InodeNo)
        .find(|i| placement.inode_server(*i) != coord)
        .unwrap();
    let parti = placement.inode_server(t);

    // Seed t with two existing links so unlink works in any order.
    for (i, server) in kit.servers.iter_mut().enumerate() {
        let store = server.store_mut();
        store.seed_inode(ROOT, FileKind::Directory, 1);
        if placement.inode_server(t) == ServerId(i as u32) {
            store.seed_inode(t, FileKind::Regular, 2);
        }
        for pre in [Name(91_001), Name(91_002)] {
            if placement.dentry_server(ROOT, pre) == ServerId(i as u32) {
                store.seed_dentry(ROOT, pre, t);
            }
        }
    }

    // Force the disordered delivery.
    let (a_proc, b_proc) = (ProcId::new(0, 0), ProcId::new(1, 0));
    let (coord_ep, parti_ep) = (Endpoint::Server(coord), Endpoint::Server(parti));
    kit.hold_if(move |env: &Envelope| {
        if let cx_types::Payload::SubOpReq { op_id, .. } = &env.payload {
            return (op_id.proc == a_proc && env.to == parti_ep)
                || (op_id.proc == b_proc && env.to == coord_ep);
        }
        false
    });

    let a = kit.start_op(
        a_proc,
        FsOp::Link {
            parent: ROOT,
            name: n,
            target: t,
        },
    );
    let b = kit.start_op(
        b_proc,
        FsOp::Unlink {
            parent: ROOT,
            name: n,
            target: t,
        },
    );
    kit.run();
    println!(
        "held deliveries: coordinator saw only A, participant saw only B\n\
         (server {} coordinates, server {} participates)",
        coord.0, parti.0
    );

    kit.stop_holding();
    kit.release_held();
    kit.run();
    kit.fire_timers();
    kit.run();

    let invalidations: u64 = kit.servers.iter().map(|s| s.stats().invalidations).sum();
    println!(
        "released: the coordinator blocked B behind A and sent VOTE(A) with\n\
         its execution order; the participant invalidated B's execution,\n\
         ran A, voted, and re-queued B — invalidations: {invalidations}"
    );
    println!(
        "outcomes: A {:?} (hint [null]/[null]), B {:?} (superseding response\n\
         carried hint [A] on both servers)",
        kit.outcome(a).unwrap(),
        kit.outcome(b).unwrap()
    );
    kit.quiesce();
    assert!(kit.check_consistency(&[ROOT]).is_empty());
    println!("final state consistent: entry gone, nlink back to 2");
}
