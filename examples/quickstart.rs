//! Quickstart: replay a slice of the CTH checkpointing trace under the Cx
//! protocol and under the OrangeFS serial-execution baseline, and compare.
//!
//!     cargo run --release --example quickstart
//!
//! This is Figure 5 in miniature: same workload, same simulated hardware,
//! two protocols — who wins and by how much.

use cx_core::{Experiment, Protocol, Workload};

fn main() {
    let workload = || Workload::trace("CTH").scale(0.01);

    println!("replaying ~5,000 ops of the CTH profile on 8 metadata servers…\n");

    let mut results = Vec::new();
    for protocol in [Protocol::Se, Protocol::SeBatched, Protocol::Cx] {
        let result = Experiment::new(workload())
            .servers(8)
            .protocol(protocol)
            .run();
        assert!(
            result.is_consistent(),
            "{}: cross-server metadata diverged!",
            protocol.name()
        );
        let lat = result.stats.latency_summary();
        println!(
            "{:<12} replay {:>7.3} s   latency mean {:>6.2} ms  p50 {:>6.2} ms  p99 {:>6.2} ms   messages {:>7}   conflicts {}",
            protocol.name(),
            result.stats.replay_secs(),
            lat.mean_ns / 1e6,
            lat.p50_ns as f64 / 1e6,
            lat.p99_ns as f64 / 1e6,
            result.stats.total_msgs(),
            result.stats.server_stats.conflicts,
        );
        results.push((protocol, result));
    }

    let se = results[0].1.stats.replay_secs();
    let cx = results[2].1.stats.replay_secs();
    println!(
        "\nCx improves the replay time by {:.0}% over OrangeFS serial execution",
        (1.0 - cx / se) * 100.0
    );
    println!(
        "(the paper reports ≥38% on this trace; the shape, not the absolute\n\
         number, is what the simulator reproduces)"
    );
}
