//! Failure drill: kill a metadata server mid-workload and watch the Cx
//! recovery protocol resume its half-completed commitments (§III-D,
//! Table V).
//!
//!     cargo run --release --example failure_drill
//!
//! The victim accumulates valid records (executed-but-uncommitted
//! operations) until the target volume, then "loses power". After the
//! failure detector fires and the process restarts, the server scans its
//! log, re-reads the affected rows from the cold database, determines its
//! role for every half-completed operation, and resumes each commitment —
//! re-voting where it coordinated, querying the coordinator where it
//! participated.

use cx_core::RecoveryExperiment;

fn main() {
    println!("crash/recovery drill on 8 servers (home2-style workload)\n");
    println!(
        "{:>10} {:>12} {:>12} {:>14} {:>12}",
        "target", "at crash", "scan bytes", "recovery (s)", "protocol (s)"
    );

    for target_kb in [5u64, 25, 100, 400] {
        let exp = RecoveryExperiment {
            servers: 8,
            trace_scale: 0.04,
            detection_ms: 2_000,
            reboot_ms: 800,
            ..Default::default()
        }
        .with_target(target_kb << 10);
        match exp.run() {
            Some(row) => println!(
                "{:>8}KB {:>10}KB {:>12} {:>14.2} {:>12.2}",
                row.target_kb,
                row.valid_kb_at_crash,
                row.scanned_bytes,
                row.recovery_secs,
                row.protocol_secs
            ),
            None => println!("{target_kb:>8}KB    — workload too small to accumulate this volume"),
        }
    }

    println!(
        "\nThe paper's Table V observation holds: recovery time grows far\n\
         more slowly than the valid-record volume, because resumption is\n\
         batched — one VOTE round trip and one write-back batch cover\n\
         hundreds of half-completed operations."
    );
}
