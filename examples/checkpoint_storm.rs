//! Checkpoint storm: the paper's motivating scenario (§I).
//!
//! "In supercomputing's checkpointing process, each process in cluster
//! creates some files in a largely common directory that is normally
//! managed by multiple servers to improve concurrency; each creation
//! requires two sub-operations."
//!
//! This example drives the Metarates update-dominated workload — every
//! process creating and removing zero-byte files in one shared directory —
//! across cluster sizes, printing the aggregated throughput per protocol
//! (Figure 6 in miniature) and where the throughput comes from
//! (group-commit amortization, write-back merging).
//!
//!     cargo run --release --example checkpoint_storm

use cx_core::{Experiment, MetaratesMix, Protocol, Workload};

fn main() {
    println!("update-dominated Metarates (80% create/remove, 20% stat)\n");
    println!(
        "{:<8} {:>14} {:>14} {:>14}   Cx gain",
        "servers", "OFS", "OFS-batched", "OFS-Cx"
    );

    for servers in [2u32, 4, 8] {
        let mut row = Vec::new();
        for protocol in [Protocol::Se, Protocol::SeBatched, Protocol::Cx] {
            let result = Experiment::new(Workload::Metarates {
                mix: MetaratesMix::UpdateDominated,
                ops_per_proc: 60,
                files_per_server: 1_000,
            })
            .servers(servers)
            .protocol(protocol)
            .run();
            assert!(result.is_consistent());
            row.push(result);
        }
        let (se, _ba, cx) = (&row[0].stats, &row[1].stats, &row[2].stats);
        println!(
            "{:<8} {:>10.0} op/s {:>10.0} op/s {:>10.0} op/s   +{:.0}%",
            servers,
            row[0].stats.throughput(),
            row[1].stats.throughput(),
            row[2].stats.throughput(),
            (cx.throughput() / se.throughput() - 1.0) * 100.0
        );
    }

    // Where Cx's win comes from: one run, dissected.
    let cx = Experiment::new(Workload::Metarates {
        mix: MetaratesMix::UpdateDominated,
        ops_per_proc: 60,
        files_per_server: 1_000,
    })
    .servers(8)
    .protocol(Protocol::Cx)
    .run();
    let d = &cx.stats.disk;
    println!("\nanatomy of the Cx run at 8 servers:");
    println!(
        "  group commit amortization: {:.1} log appends per flush",
        d.appends_per_flush()
    );
    println!(
        "  write-back merging: {:.1} pages per disk run (sequential inode layout)",
        d.pages_per_run()
    );
    println!(
        "  commitment traffic: {} server-to-server vs {} client messages ({:.1}%)",
        cx.stats.server_msgs,
        cx.stats.client_msgs,
        100.0 * cx.stats.server_msgs as f64 / cx.stats.total_msgs() as f64
    );
    println!(
        "  conflicts: {} in {} ops ({:.3}%) — the exclusive per-rank file\n\
         pattern keeps the inconsistency window invisible, exactly the\n\
         observation Cx is built on (§II-C)",
        cx.stats.server_stats.conflicts,
        cx.stats.ops_total,
        cx.stats.conflict_ratio() * 100.0
    );
}
