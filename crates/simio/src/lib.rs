//! Storage substrate models.
//!
//! Each metadata server in the paper's testbed stores its database on one
//! 7200 rpm SATA disk (ext3); Cx additionally keeps its operation log as a
//! log-structured file on the same disk (§IV-A, "Log organization"). This
//! crate models that device:
//!
//! * [`Disk`] — a single-spindle disk with a FIFO queue, **group commit**
//!   for sequential log appends (every append queued while a flush is in
//!   flight completes with the next single flush), and **elevator merging**
//!   for batched database write-back (adjacent pages coalesce into runs,
//!   the "merging disk requests in kernel's IO scheduler" of §IV-C1).
//! * [`layout`] — maps metadata objects to on-disk pages. Inodes are laid
//!   out sequentially by inode number (OrangeFS places the metadata objects
//!   of one directory's files sequentially, §IV-C2); a directory's entries
//!   cluster inside a per-directory window, so write-back batches dominated
//!   by one directory merge into few runs.
//!
//! The disk is *sans-event*: it computes completion times but schedules
//! nothing. The cluster's disk actor submits requests, gets back batches
//! with finish times, and turns them into DES events.

pub mod disk;
pub mod layout;

pub use disk::{Batch, Disk, DiskReq, DiskStats};
pub use layout::object_page;
