//! On-disk layout of metadata objects.
//!
//! The database stores one row per metadata object; rows live on 4 KB
//! pages. What matters for performance is *which pages* a write-back batch
//! touches, because adjacent pages merge into a single sequential run.

use cx_types::{InodeNo, Name, ObjectId};

/// Inodes per 4 KB page (128-byte rows).
pub const INODES_PER_PAGE: u64 = 32;
/// Width of the per-directory entry window, in pages. A directory's
/// entries hash into this window, so a batch updating many entries of one
/// directory densely covers it and merges well, while entries of unrelated
/// directories never merge.
pub const DENTRY_DIR_WINDOW_PAGES: u64 = 256;

const INODE_REGION: u64 = 1 << 40;
const DENTRY_REGION: u64 = 1 << 50;

/// The page holding `obj`'s database row.
///
/// * Inode rows are sequential by inode number: files created together in
///   one directory (sequential inode allocation) occupy adjacent pages —
///   this is what lets the update-dominated Metarates workload "push the
///   performance of BDB write-back close to its peak point" (§IV-C2).
/// * Directory-entry rows are B-tree-ordered by (directory, name hash):
///   entries of one directory cluster in a window of
///   [`DENTRY_DIR_WINDOW_PAGES`] pages.
pub fn object_page(obj: &ObjectId) -> u64 {
    match *obj {
        ObjectId::Inode(InodeNo(ino)) => INODE_REGION + ino / INODES_PER_PAGE,
        ObjectId::Dentry(InodeNo(dir), Name(name)) => {
            DENTRY_REGION
                + dir.wrapping_mul(DENTRY_DIR_WINDOW_PAGES)
                + (name % (DENTRY_DIR_WINDOW_PAGES * 16)) / 16
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_inodes_share_pages() {
        let p0 = object_page(&ObjectId::Inode(InodeNo(0)));
        let p31 = object_page(&ObjectId::Inode(InodeNo(31)));
        let p32 = object_page(&ObjectId::Inode(InodeNo(32)));
        assert_eq!(p0, p31);
        assert_eq!(p32, p0 + 1);
    }

    #[test]
    fn same_directory_entries_stay_in_window() {
        let dir = InodeNo(7);
        let base = object_page(&ObjectId::Dentry(dir, Name(0)));
        for n in 0..10_000u64 {
            let p = object_page(&ObjectId::Dentry(
                dir,
                Name(n.wrapping_mul(0x9E3779B97F4A7C15)),
            ));
            assert!(
                p >= base && p < base + DENTRY_DIR_WINDOW_PAGES,
                "entry page {p} escaped window [{base}, {})",
                base + DENTRY_DIR_WINDOW_PAGES
            );
        }
    }

    #[test]
    fn different_directories_do_not_overlap() {
        let a = object_page(&ObjectId::Dentry(InodeNo(1), Name(u64::MAX)));
        let b = object_page(&ObjectId::Dentry(InodeNo(2), Name(0)));
        assert!(a < b, "directory windows must be disjoint and ordered");
    }

    #[test]
    fn inode_and_dentry_regions_are_disjoint() {
        let i = object_page(&ObjectId::Inode(InodeNo(u32::MAX as u64)));
        let d = object_page(&ObjectId::Dentry(InodeNo(0), Name(0)));
        assert!(i < d, "inode region sits below the dentry region");
    }
}
