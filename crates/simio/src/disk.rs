//! Single-spindle disk model with group commit and elevator merging.

use cx_types::{DiskConfig, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Bytes per database page.
pub const PAGE_BYTES: u64 = 4096;

/// A request submitted to the disk. `token` identifies the request to the
/// caller; completion hands the tokens back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiskReq {
    /// Synchronous append to the log-structured operation log. Subject to
    /// group commit: all appends queued when a flush starts ride in it.
    LogAppend { bytes: u64, token: u64 },
    /// Batched database write-back of dirty pages (lazy commitment /
    /// OFS-batched flush). Pages are sorted and adjacent ones merge.
    DbWriteback { pages: Vec<u64>, token: u64 },
    /// Per-sub-op synchronous database write (the SE baseline's
    /// "synchronously writing the updated objects into BDB for every
    /// sub-op", §IV-C).
    DbSyncWrite { page: u64, token: u64 },
    /// Sequential read (recovery log scan).
    SeqRead { bytes: u64, token: u64 },
    /// Cold-cache random page reads (recovery re-reads the database rows
    /// of half-completed operations). Adjacent pages merge into runs.
    RandomRead { pages: Vec<u64>, token: u64 },
}

impl DiskReq {
    fn token(&self) -> u64 {
        match *self {
            DiskReq::LogAppend { token, .. }
            | DiskReq::DbWriteback { token, .. }
            | DiskReq::DbSyncWrite { token, .. }
            | DiskReq::SeqRead { token, .. }
            | DiskReq::RandomRead { token, .. } => token,
        }
    }
}

/// An in-flight batch: the caller schedules a completion event at `finish`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Batch {
    pub finish: SimTime,
    pub tokens: Vec<u64>,
}

/// Cumulative disk statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DiskStats {
    pub log_flushes: u64,
    pub log_appends: u64,
    pub log_bytes: u64,
    pub sync_writes: u64,
    pub wb_batches: u64,
    pub wb_pages: u64,
    pub wb_runs: u64,
    pub seq_reads: u64,
    pub cold_reads: u64,
    pub busy_ns: u64,
}

impl DiskStats {
    /// Appends absorbed per flush — the group-commit amortization factor.
    pub fn appends_per_flush(&self) -> f64 {
        if self.log_flushes == 0 {
            0.0
        } else {
            self.log_appends as f64 / self.log_flushes as f64
        }
    }

    /// Pages coalesced per run — the elevator merging factor.
    pub fn pages_per_run(&self) -> f64 {
        if self.wb_runs == 0 {
            0.0
        } else {
            self.wb_pages as f64 / self.wb_runs as f64
        }
    }

    pub fn merge(&mut self, other: &DiskStats) {
        self.log_flushes += other.log_flushes;
        self.log_appends += other.log_appends;
        self.log_bytes += other.log_bytes;
        self.sync_writes += other.sync_writes;
        self.wb_batches += other.wb_batches;
        self.wb_pages += other.wb_pages;
        self.wb_runs += other.wb_runs;
        self.seq_reads += other.seq_reads;
        self.cold_reads += other.cold_reads;
        self.busy_ns += other.busy_ns;
    }
}

/// The disk. Sans-event: `submit`/`complete` return batches whose `finish`
/// times the caller turns into DES events.
#[derive(Debug, Clone)]
pub struct Disk {
    cfg: DiskConfig,
    queue: VecDeque<DiskReq>,
    inflight: bool,
    stats: DiskStats,
    /// Incremented on crash so runtimes can discard completion events
    /// scheduled for a previous incarnation.
    generation: u64,
}

impl Disk {
    pub fn new(cfg: DiskConfig) -> Self {
        Self {
            cfg,
            queue: VecDeque::new(),
            inflight: false,
            stats: DiskStats::default(),
            generation: 0,
        }
    }

    /// Current incarnation; bumped by [`Disk::crash`].
    pub fn generation(&self) -> u64 {
        self.generation
    }

    pub fn stats(&self) -> &DiskStats {
        &self.stats
    }

    pub fn is_idle(&self) -> bool {
        !self.inflight && self.queue.is_empty()
    }

    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Submit a request at `now`. If the disk was idle, a batch starts
    /// immediately and is returned; otherwise the request waits for the
    /// in-flight batch and `complete` will pick it up.
    pub fn submit(&mut self, now: SimTime, req: DiskReq) -> Option<Batch> {
        self.queue.push_back(req);
        if self.inflight {
            None
        } else {
            self.start_next(now)
        }
    }

    /// The in-flight batch finished at `now`; start the next one if work is
    /// queued. Returns the next batch (the completed tokens were already
    /// handed out by the `Batch` that just finished).
    pub fn complete(&mut self, now: SimTime) -> Option<Batch> {
        debug_assert!(self.inflight, "complete() without an in-flight batch");
        self.inflight = false;
        self.start_next(now)
    }

    /// Crash: queued and in-flight work is lost with the volatile state.
    /// (Durability bookkeeping lives in the WAL layer, which only treats a
    /// record as durable once its completion event fired.)
    pub fn crash(&mut self) {
        self.queue.clear();
        self.inflight = false;
        self.generation += 1;
    }

    /// Pick the next batch. Synchronous work (log flushes, database sync
    /// writes) has priority over background work (write-back, recovery
    /// scans) — the kernel IO scheduler services blocking writes first.
    fn start_next(&mut self, now: SimTime) -> Option<Batch> {
        if self.queue.is_empty() {
            return None;
        }
        let batch = if self
            .queue
            .iter()
            .any(|r| matches!(r, DiskReq::LogAppend { .. }))
        {
            self.start_log_flush(now)
        } else if self
            .queue
            .iter()
            .any(|r| matches!(r, DiskReq::DbSyncWrite { .. }))
        {
            self.start_sync_flush(now)
        } else {
            let req = self.queue.pop_front().expect("non-empty");
            self.start_single(now, req)
        };
        self.inflight = true;
        Some(batch)
    }

    /// ext3-style group commit for synchronous database writes: every
    /// queued sync write rides one journal flush, and the forced in-place
    /// page writes of one flush merge by adjacency (writes into one
    /// directory's sequential metadata region coalesce, §IV-C2).
    fn start_sync_flush(&mut self, now: SimTime) -> Batch {
        let mut tokens = Vec::new();
        let mut pages = Vec::new();
        let mut i = 0;
        while i < self.queue.len() {
            if let DiskReq::DbSyncWrite { token, page } = self.queue[i] {
                tokens.push(token);
                pages.push(page);
                self.queue.remove(i);
            } else {
                i += 1;
            }
        }
        pages.sort_unstable();
        pages.dedup();
        let runs = if self.cfg.group_commit {
            count_runs(&pages, self.cfg.merge_gap)
        } else {
            pages.len() as u64
        };
        let service = self.cfg.db_sync_write_ns + runs * self.cfg.db_sync_per_write_ns;
        self.stats.sync_writes += tokens.len() as u64;
        self.stats.busy_ns += service;
        Batch {
            finish: now + service,
            tokens,
        }
    }

    /// Group commit: absorb every queued log append into one flush (or,
    /// with group commit disabled — the ablation — only the first).
    fn start_log_flush(&mut self, now: SimTime) -> Batch {
        let mut tokens = Vec::new();
        let mut bytes = 0u64;
        let mut i = 0;
        while i < self.queue.len() {
            if let DiskReq::LogAppend { bytes: b, token } = self.queue[i] {
                tokens.push(token);
                bytes += b;
                self.queue.remove(i);
                if !self.cfg.group_commit {
                    break;
                }
            } else {
                i += 1;
            }
        }
        let service = self.cfg.log_flush_ns + transfer_ns(bytes, self.cfg.seq_bw_bps);
        self.stats.log_flushes += 1;
        self.stats.log_appends += tokens.len() as u64;
        self.stats.log_bytes += bytes;
        self.stats.busy_ns += service;
        Batch {
            finish: now + service,
            tokens,
        }
    }

    fn start_single(&mut self, now: SimTime, req: DiskReq) -> Batch {
        let token = req.token();
        let service = match req {
            DiskReq::LogAppend { .. } => unreachable!("appends go through start_log_flush"),
            DiskReq::DbSyncWrite { .. } => {
                unreachable!("sync writes go through start_sync_flush")
            }
            DiskReq::DbWriteback { mut pages, .. } => {
                pages.sort_unstable();
                pages.dedup();
                let runs = count_runs(&pages, self.cfg.merge_gap);
                self.stats.wb_batches += 1;
                self.stats.wb_pages += pages.len() as u64;
                self.stats.wb_runs += runs;
                self.cfg.wb_batch_seek_ns
                    + runs.saturating_sub(1) * self.cfg.wb_run_seek_ns
                    + transfer_ns(pages.len() as u64 * PAGE_BYTES, self.cfg.seq_bw_bps)
            }
            DiskReq::SeqRead { bytes, .. } => {
                self.stats.seq_reads += 1;
                self.cfg.wb_batch_seek_ns + transfer_ns(bytes, self.cfg.seq_bw_bps)
            }
            DiskReq::RandomRead { pages, .. } => {
                // Dependent point lookups (B-tree walks): each row read
                // must finish before the next begins, so the elevator
                // cannot merge them the way write-back batches merge.
                self.stats.cold_reads += pages.len() as u64;
                pages.len() as u64 * self.cfg.cold_read_run_ns
                    + transfer_ns(pages.len() as u64 * PAGE_BYTES, self.cfg.seq_bw_bps)
            }
        };
        self.stats.busy_ns += service;
        Batch {
            finish: now + service,
            tokens: vec![token],
        }
    }
}

fn transfer_ns(bytes: u64, bw_bps: u64) -> u64 {
    ((bytes as u128 * 1_000_000_000) / bw_bps.max(1) as u128) as u64
}

/// Number of merged runs in a sorted, deduplicated page list: pages whose
/// gap is at most `merge_gap` coalesce (the elevator fills small holes).
fn count_runs(sorted_pages: &[u64], merge_gap: u64) -> u64 {
    if sorted_pages.is_empty() {
        return 0;
    }
    let mut runs = 1;
    for w in sorted_pages.windows(2) {
        if w[1] - w[0] > merge_gap {
            runs += 1;
        }
    }
    runs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn disk() -> Disk {
        Disk::new(DiskConfig::default())
    }

    #[test]
    fn single_append_starts_immediately() {
        let mut d = disk();
        let b = d.submit(
            SimTime(0),
            DiskReq::LogAppend {
                bytes: 128,
                token: 1,
            },
        );
        let b = b.expect("idle disk starts immediately");
        assert_eq!(b.tokens, vec![1]);
        assert!(b.finish.0 >= DiskConfig::default().log_flush_ns);
    }

    #[test]
    fn group_commit_absorbs_queued_appends() {
        let mut d = disk();
        let first = d
            .submit(
                SimTime(0),
                DiskReq::LogAppend {
                    bytes: 100,
                    token: 1,
                },
            )
            .unwrap();
        // These queue behind the in-flight flush...
        for t in 2..=10 {
            assert!(d
                .submit(
                    SimTime(10),
                    DiskReq::LogAppend {
                        bytes: 100,
                        token: t
                    }
                )
                .is_none());
        }
        // ...and all complete in the *next single* flush.
        let next = d.complete(first.finish).expect("second flush starts");
        assert_eq!(next.tokens, (2..=10).collect::<Vec<_>>());
        assert_eq!(d.stats().log_flushes, 2);
        assert_eq!(d.stats().log_appends, 10);
        assert!(d.stats().appends_per_flush() > 4.9);
        assert!(d.complete(next.finish).is_none());
        assert!(d.is_idle());
    }

    #[test]
    fn sync_writes_group_commit_but_pay_per_write() {
        let cfg = DiskConfig::default();
        let mut d = disk();
        let b1 = d
            .submit(SimTime(0), DiskReq::DbSyncWrite { page: 1, token: 1 })
            .unwrap();
        assert_eq!(
            b1.finish.0,
            cfg.db_sync_write_ns + cfg.db_sync_per_write_ns,
            "a lone sync write pays flush + one page write"
        );
        // Four more (scattered pages) queue behind the in-flight flush…
        for t in 2..=5 {
            assert!(d
                .submit(
                    SimTime(0),
                    DiskReq::DbSyncWrite {
                        page: t * 100_000,
                        token: t
                    }
                )
                .is_none());
        }
        // …and share the next flush, each scattered page paying its own
        // in-place run.
        let b2 = d.complete(b1.finish).unwrap();
        assert_eq!(b2.tokens, vec![2, 3, 4, 5]);
        assert_eq!(
            b2.finish.0 - b1.finish.0,
            cfg.db_sync_write_ns + 4 * cfg.db_sync_per_write_ns
        );
        assert_eq!(d.stats().sync_writes, 5);
    }

    #[test]
    fn adjacent_sync_writes_merge_into_one_run() {
        let cfg = DiskConfig::default();
        let mut d = disk();
        let b1 = d
            .submit(SimTime(0), DiskReq::DbSyncWrite { page: 1, token: 1 })
            .unwrap();
        for t in 2..=9 {
            d.submit(SimTime(0), DiskReq::DbSyncWrite { page: t, token: t });
        }
        let b2 = d.complete(b1.finish).unwrap();
        assert_eq!(b2.tokens.len(), 8);
        assert_eq!(
            b2.finish.0 - b1.finish.0,
            cfg.db_sync_write_ns + cfg.db_sync_per_write_ns,
            "adjacent pages coalesce into one in-place run"
        );
    }

    #[test]
    fn writeback_merges_adjacent_pages() {
        let cfg = DiskConfig::default();
        let mut d = Disk::new(cfg);
        // 100 adjacent pages: one run.
        let adj: Vec<u64> = (0..100).collect();
        let b = d
            .submit(
                SimTime(0),
                DiskReq::DbWriteback {
                    pages: adj,
                    token: 1,
                },
            )
            .unwrap();
        let adjacent_time = b.finish.0;
        assert_eq!(d.stats().wb_runs, 1);
        d.complete(b.finish);

        // 100 scattered pages: 100 runs, much slower.
        let scat: Vec<u64> = (0..100).map(|i| i * 10_000).collect();
        let t0 = b.finish;
        let b2 = d
            .submit(
                t0,
                DiskReq::DbWriteback {
                    pages: scat,
                    token: 2,
                },
            )
            .unwrap();
        let scattered_time = b2.finish.0 - t0.0;
        assert_eq!(d.stats().wb_runs, 1 + 100);
        assert!(
            scattered_time > 10 * adjacent_time,
            "scattered {scattered_time} vs adjacent {adjacent_time}"
        );
    }

    #[test]
    fn writeback_dedups_pages() {
        let mut d = disk();
        let b = d
            .submit(
                SimTime(0),
                DiskReq::DbWriteback {
                    pages: vec![5, 5, 5, 6],
                    token: 1,
                },
            )
            .unwrap();
        assert_eq!(d.stats().wb_pages, 2);
        assert_eq!(b.tokens, vec![1]);
    }

    #[test]
    fn synchronous_work_has_priority_over_writeback() {
        let mut d = disk();
        let b1 = d
            .submit(SimTime(0), DiskReq::DbSyncWrite { page: 1, token: 1 })
            .unwrap();
        d.submit(
            SimTime(0),
            DiskReq::DbWriteback {
                pages: vec![9],
                token: 2,
            },
        );
        d.submit(
            SimTime(0),
            DiskReq::LogAppend {
                bytes: 64,
                token: 3,
            },
        );
        d.submit(
            SimTime(0),
            DiskReq::LogAppend {
                bytes: 64,
                token: 4,
            },
        );
        // The write-back arrived first, but both (blocking) log appends
        // ride the next flush ahead of it.
        let b2 = d.complete(b1.finish).unwrap();
        assert_eq!(b2.tokens, vec![3, 4]);
        let b3 = d.complete(b2.finish).unwrap();
        assert_eq!(b3.tokens, vec![2], "background write-back runs last");
        assert!(d.complete(b3.finish).is_none());
    }

    #[test]
    fn crash_drops_queued_work() {
        let mut d = disk();
        d.submit(SimTime(0), DiskReq::DbSyncWrite { page: 1, token: 1 });
        d.submit(SimTime(0), DiskReq::DbSyncWrite { page: 2, token: 2 });
        d.crash();
        assert!(d.is_idle());
        // A fresh request starts immediately after reboot.
        assert!(d
            .submit(SimTime(100), DiskReq::LogAppend { bytes: 1, token: 3 })
            .is_some());
    }

    #[test]
    fn count_runs_respects_gap() {
        assert_eq!(count_runs(&[], 16), 0);
        assert_eq!(count_runs(&[1], 16), 1);
        assert_eq!(count_runs(&[1, 2, 3], 16), 1);
        assert_eq!(count_runs(&[1, 18, 100], 16), 3); // gaps 17 and 82 both exceed 16
    }

    #[test]
    fn count_runs_boundary() {
        // gap exactly merge_gap merges; one more splits
        assert_eq!(count_runs(&[0, 16], 16), 1);
        assert_eq!(count_runs(&[0, 17], 16), 2);
    }

    #[test]
    fn seq_read_time_scales_with_bytes() {
        let mut d = disk();
        let b1 = d
            .submit(
                SimTime(0),
                DiskReq::SeqRead {
                    bytes: 1 << 20,
                    token: 1,
                },
            )
            .unwrap();
        let t1 = b1.finish.0;
        d.complete(b1.finish);
        let b2 = d
            .submit(
                b1.finish,
                DiskReq::SeqRead {
                    bytes: 10 << 20,
                    token: 2,
                },
            )
            .unwrap();
        let t2 = b2.finish.0 - b1.finish.0;
        assert!(t2 > t1, "10 MB read must take longer than 1 MB read");
    }
}
