//! Property-based tests of the disk model.

use cx_simio::{Disk, DiskReq};
use cx_types::{DiskConfig, SimTime};
use proptest::prelude::*;

fn req_strategy() -> impl Strategy<Value = DiskReq> {
    prop_oneof![
        (1u64..4096).prop_map(|bytes| DiskReq::LogAppend { bytes, token: 0 }),
        (0u64..1 << 20).prop_map(|page| DiskReq::DbSyncWrite { page, token: 0 }),
        prop::collection::vec(0u64..1 << 20, 1..40)
            .prop_map(|pages| DiskReq::DbWriteback { pages, token: 0 }),
        (1u64..1 << 20).prop_map(|bytes| DiskReq::SeqRead { bytes, token: 0 }),
        prop::collection::vec(0u64..1 << 20, 1..40)
            .prop_map(|pages| DiskReq::RandomRead { pages, token: 0 }),
    ]
}

fn with_token(req: DiskReq, token: u64) -> DiskReq {
    match req {
        DiskReq::LogAppend { bytes, .. } => DiskReq::LogAppend { bytes, token },
        DiskReq::DbSyncWrite { page, .. } => DiskReq::DbSyncWrite { page, token },
        DiskReq::DbWriteback { pages, .. } => DiskReq::DbWriteback { pages, token },
        DiskReq::SeqRead { bytes, .. } => DiskReq::SeqRead { bytes, token },
        DiskReq::RandomRead { pages, .. } => DiskReq::RandomRead { pages, token },
    }
}

proptest! {
    /// Conservation: every submitted token completes exactly once, batch
    /// finish times are monotone, and the accumulated busy time equals
    /// the span the device actually worked.
    #[test]
    fn every_token_completes_once(
        reqs in prop::collection::vec(req_strategy(), 1..60),
        submit_gap_us in 0u64..500,
    ) {
        let mut disk = Disk::new(DiskConfig::default());
        let n = reqs.len() as u64;
        let mut inflight = None;
        let mut done = Vec::new();
        let mut now = SimTime(0);

        for (i, req) in reqs.into_iter().enumerate() {
            // drain any batches that finish before this submission
            let submit_at = SimTime(i as u64 * submit_gap_us * 1_000);
            while inflight
                .as_ref()
                .is_some_and(|b: &cx_simio::Batch| b.finish <= submit_at)
            {
                let b = inflight.take().expect("checked");
                done.extend(b.tokens);
                now = b.finish;
                inflight = disk.complete(now);
            }
            now = now.max(submit_at);
            if let Some(b) = disk.submit(submit_at, with_token(req, i as u64)) {
                prop_assert!(inflight.is_none(), "disk started while busy");
                inflight = Some(b);
            }
        }
        // drain the rest
        while let Some(b) = inflight {
            prop_assert!(b.finish >= now, "finish time went backwards");
            now = b.finish;
            done.extend(b.tokens.clone());
            inflight = disk.complete(now);
        }
        done.sort_unstable();
        prop_assert_eq!(done, (0..n).collect::<Vec<_>>());
        prop_assert!(disk.is_idle());
        prop_assert!(disk.stats().busy_ns <= now.0, "busy exceeds wall time");
    }

    /// Merging monotonicity: a write-back of clustered pages never takes
    /// longer than the same number of scattered pages.
    #[test]
    fn clustering_never_hurts(count in 2usize..200) {
        let cfg = DiskConfig::default();
        let clustered: Vec<u64> = (0..count as u64).collect();
        let scattered: Vec<u64> = (0..count as u64).map(|i| i * 1_000_000).collect();
        let time = |pages: Vec<u64>| {
            let mut d = Disk::new(cfg);
            d.submit(SimTime(0), DiskReq::DbWriteback { pages, token: 1 })
                .expect("idle start")
                .finish
                .0
        };
        prop_assert!(time(clustered) <= time(scattered));
    }

    /// Group commit monotonicity: appending k records in one queue burst
    /// takes at most k times the single-append flush.
    #[test]
    fn group_commit_amortizes(k in 2u64..128) {
        let cfg = DiskConfig::default();
        let mut d = Disk::new(cfg);
        let first = d
            .submit(SimTime(0), DiskReq::LogAppend { bytes: 200, token: 0 })
            .expect("idle start");
        for t in 1..k {
            d.submit(SimTime(0), DiskReq::LogAppend { bytes: 200, token: t });
        }
        let second = d.complete(first.finish).expect("queued work");
        prop_assert_eq!(second.tokens.len() as u64, k - 1);
        let per_append_alone = first.finish.0;
        let amortized = (second.finish.0 - first.finish.0) / (k - 1);
        // k = 2 leaves a single follower (one flush for one append, no
        // sharing); from 3 appends up, sharing must win strictly.
        prop_assert!(
            amortized <= per_append_alone,
            "{amortized} vs {per_append_alone}"
        );
        if k > 2 {
            prop_assert!(amortized < per_append_alone);
        }
    }
}
