//! 2PC: the classic two-phase-commit baseline (§II-B, Figure 1a).
//!
//! "Upon receiving a request from a client, the coordinator first initiates
//! the first phase by sending a VOTE message to the participant, telling
//! what sub-op the participant should perform. The participant executes its
//! assigned sub-ops and sends the coordinator … YES or NO … The coordinator
//! collects the vote message and executes its sub-op, and then starts the
//! second phase." Every message is preceded by a synchronous log write
//! ("the servers record an operation log before sending a message out").
//!
//! Objects touched by an in-flight transaction are locked (the `active`
//! map); conflicting requests queue until the transaction finishes —
//! that is 2PC's serial, blocking nature, in contrast to Cx's optimistic
//! concurrency.

use crate::action::{Action, Endpoint, ServerEngine};
use crate::stats::ServerStats;
use crate::trigger::{TriggerState, TriggerVerdict};
use cx_mdstore::{MetaStore, Undo};
use cx_sim::det_rng;
use cx_types::FxHashMap;
use cx_types::{
    ClusterConfig, Hint, ObjectId, OpId, OpOutcome, OpPlan, Payload, Role, ServerId, SimTime,
    SubOp, Verdict,
};
use cx_wal::{Record, SeqNo, Wal};
use rand::rngs::SmallRng;
use rand::Rng;
use std::collections::VecDeque;

/// Coordinator-side transaction state.
struct Txn {
    plan: OpPlan,
    /// Participant's vote, once received.
    participant_vote: Option<Verdict>,
    /// Coordinator's own execution result and undo.
    local_verdict: Option<Verdict>,
    undo: Option<Undo>,
}

/// Participant-side executed sub-op awaiting the decision.
struct ParticipantExec {
    coordinator: ServerId,
    verdict: Verdict,
    undo: Option<Undo>,
    subop: SubOp,
}

enum Io {
    /// Begin record durable → send VOTE to the participant.
    BeginDurable {
        op_id: OpId,
    },
    /// Participant result durable → send the vote.
    ExecDurable {
        op_id: OpId,
    },
    /// Decision durable → send COMMIT/ABORT to participant.
    DecisionDurable {
        op_id: OpId,
        commit: bool,
    },
    /// Participant outcome durable → ACK.
    OutcomeDurable {
        op_id: OpId,
        coordinator: ServerId,
    },
    /// Complete durable → respond to the client.
    CompleteDurable {
        op_id: OpId,
        outcome: OpOutcome,
    },
    /// Local (single-server) mutation durable → respond.
    LocalDurable {
        op_id: OpId,
        verdict: Verdict,
    },
    WritebackDone,
}

enum Waiting {
    /// A whole-operation request waiting for locks (coordinator side).
    OpReq { op_id: OpId, plan: OpPlan },
    /// A VOTE-carried sub-op waiting for locks (participant side).
    VoteExec {
        op_id: OpId,
        subop: SubOp,
        coordinator: ServerId,
    },
}

/// The 2PC metadata server.
pub struct TwoPcServer {
    id: ServerId,
    store: MetaStore,
    wal: Wal,
    fail_prob: f64,
    rng: SmallRng,
    txns: FxHashMap<OpId, Txn>,
    execs: FxHashMap<OpId, ParticipantExec>,
    /// Locked objects → holding transaction.
    active: FxHashMap<ObjectId, OpId>,
    blocked: FxHashMap<OpId, VecDeque<Waiting>>,
    trigger: TriggerState,
    io: FxHashMap<u64, Io>,
    next_token: u64,
    stats: ServerStats,
}

impl TwoPcServer {
    pub fn new(id: ServerId, cfg: &ClusterConfig) -> Self {
        Self {
            id,
            store: MetaStore::new(),
            wal: Wal::new(None), // 2PC logs are pruned per transaction
            fail_prob: cfg.failure.subop_fail_prob,
            rng: det_rng(cfg.seed, 0x2bc0_0000 ^ id.0 as u64),
            txns: FxHashMap::default(),
            execs: FxHashMap::default(),
            active: FxHashMap::default(),
            blocked: FxHashMap::default(),
            trigger: TriggerState::new(cfg.cx.trigger),
            io: FxHashMap::default(),
            next_token: 0,
            stats: ServerStats::default(),
        }
    }

    fn token(&mut self) -> u64 {
        let t = self.next_token;
        self.next_token += 1;
        t
    }

    fn log(&mut self, recs: Vec<Record>, cont: Io, out: &mut Vec<Action>) -> SeqNo {
        let mut seq = SeqNo(0);
        let mut bytes = 0;
        for rec in recs {
            let (s, b) = self.wal.append(rec).expect("2PC log is unlimited");
            seq = seq.max(s);
            bytes += b;
        }
        let token = self.token();
        self.io.insert(token, cont);
        out.push(Action::LogAppend { token, bytes });
        seq
    }

    fn lock_conflict(&self, objs: &[ObjectId], me: OpId) -> Option<OpId> {
        objs.iter().find_map(|o| {
            self.active
                .get(o)
                .copied()
                .filter(|holder| *holder != me && holder.proc != me.proc)
        })
    }

    fn apply_with_injection(&mut self, subop: &SubOp) -> Result<Undo, cx_types::CxError> {
        if self.fail_prob > 0.0 && subop.is_write() && self.rng.gen::<f64>() < self.fail_prob {
            return Err(cx_types::CxError::Injected);
        }
        self.store.apply(subop)
    }

    // ---- coordinator ----

    fn on_op_req(&mut self, now: SimTime, op_id: OpId, plan: OpPlan, out: &mut Vec<Action>) {
        let objs: Vec<ObjectId> = plan.coord_subop.conflict_objects().iter().collect();
        if let Some(holder) = self.lock_conflict(&objs, op_id) {
            self.stats.conflicts += 1;
            self.stats.blocked_requests += 1;
            self.blocked
                .entry(holder)
                .or_default()
                .push_back(Waiting::OpReq { op_id, plan });
            return;
        }
        for o in objs {
            self.active.insert(o, op_id);
        }
        self.txns.insert(
            op_id,
            Txn {
                plan,
                participant_vote: None,
                local_verdict: None,
                undo: None,
            },
        );
        // Log the begin record, then VOTE.
        self.log(
            vec![Record::Result {
                op_id,
                role: Role::Coordinator,
                peer: plan.participant.map(|(s, _)| s),
                subop: plan.coord_subop,
                verdict: Verdict::Yes, // intent record
                invalidated: false,
            }],
            Io::BeginDurable { op_id },
            out,
        );
        let _ = now;
    }

    fn advance_txn(&mut self, op_id: OpId, out: &mut Vec<Action>) {
        let Some(txn) = self.txns.get(&op_id) else {
            return;
        };
        let (Some(pv), Some(lv)) = (txn.participant_vote, txn.local_verdict) else {
            return;
        };
        let commit = pv.is_yes() && lv.is_yes();
        if !commit {
            if let Some(undo) = self.txns.get_mut(&op_id).and_then(|t| t.undo.take()) {
                self.store.undo(undo);
            }
        }
        let rec = if commit {
            Record::Commit { op_id }
        } else {
            Record::Abort { op_id }
        };
        self.log(vec![rec], Io::DecisionDurable { op_id, commit }, out);
    }

    // ---- participant ----

    fn on_vote_exec(
        &mut self,
        op_id: OpId,
        subop: SubOp,
        coordinator: ServerId,
        out: &mut Vec<Action>,
    ) {
        let objs: Vec<ObjectId> = subop.conflict_objects().iter().collect();
        if let Some(holder) = self.lock_conflict(&objs, op_id) {
            self.stats.conflicts += 1;
            self.stats.blocked_requests += 1;
            self.blocked
                .entry(holder)
                .or_default()
                .push_back(Waiting::VoteExec {
                    op_id,
                    subop,
                    coordinator,
                });
            return;
        }
        for o in objs {
            self.active.insert(o, op_id);
        }
        let (verdict, undo) = match self.apply_with_injection(&subop) {
            Ok(u) => (Verdict::Yes, Some(u)),
            Err(_) => (Verdict::No, None),
        };
        self.stats.subops_executed += 1;
        self.execs.insert(
            op_id,
            ParticipantExec {
                coordinator,
                verdict,
                undo,
                subop,
            },
        );
        self.log(
            vec![Record::Result {
                op_id,
                role: Role::Participant,
                peer: Some(coordinator),
                subop,
                verdict,
                invalidated: false,
            }],
            Io::ExecDurable { op_id },
            out,
        );
    }

    fn release(&mut self, op_id: OpId, out: &mut Vec<Action>) {
        self.active.retain(|_, h| *h != op_id);
        if let Some(waiters) = self.blocked.remove(&op_id) {
            for w in waiters {
                match w {
                    Waiting::OpReq { op_id, plan } => {
                        self.on_op_req(SimTime::ZERO, op_id, plan, out)
                    }
                    Waiting::VoteExec {
                        op_id,
                        subop,
                        coordinator,
                    } => self.on_vote_exec(op_id, subop, coordinator, out),
                }
            }
        }
    }

    fn flush_batched(&mut self, out: &mut Vec<Action>) {
        self.wal.prune_all();
        let pages = self.store.take_dirty_pages();
        if !pages.is_empty() {
            self.stats.writebacks += 1;
            for chunk in pages.chunks(32) {
                let token = self.token();
                self.io.insert(token, Io::WritebackDone);
                out.push(Action::DbWriteback {
                    token,
                    pages: chunk.to_vec(),
                });
            }
        }
    }

    fn apply_trigger(&mut self, v: TriggerVerdict, out: &mut Vec<Action>) {
        match v {
            TriggerVerdict::Fire => self.flush_batched(out),
            TriggerVerdict::Arm(delay_ns) => out.push(Action::SetTimer {
                token: self.trigger.generation(),
                delay_ns,
            }),
            TriggerVerdict::Wait => {}
        }
    }

    /// Single-server requests (reads, colocated mutations) bypass 2PC.
    fn on_local(
        &mut self,
        now: SimTime,
        op_id: OpId,
        subop: SubOp,
        colocated: Option<SubOp>,
        out: &mut Vec<Action>,
    ) {
        if !subop.is_write() && colocated.is_none() {
            let verdict = Verdict::from_ok(self.store.apply(&subop).is_ok());
            self.stats.reads_served += 1;
            out.push(Action::Send {
                to: Endpoint::Proc(op_id.proc),
                payload: Payload::SubOpResp {
                    op_id,
                    verdict,
                    hint: Hint::null(),
                },
            });
            return;
        }
        let mut verdict = Verdict::Yes;
        let mut undos = Vec::new();
        for s in std::iter::once(&subop).chain(colocated.iter()) {
            match self.apply_with_injection(s) {
                Ok(u) => undos.push(u),
                Err(_) => {
                    verdict = Verdict::No;
                    break;
                }
            }
        }
        if verdict == Verdict::No {
            for u in undos.into_iter().rev() {
                self.store.undo(u);
            }
        }
        self.stats.local_mutations += 1;
        self.log(
            vec![
                Record::Result {
                    op_id,
                    role: Role::Participant,
                    peer: None,
                    subop,
                    verdict,
                    invalidated: false,
                },
                Record::Commit { op_id },
            ],
            Io::LocalDurable { op_id, verdict },
            out,
        );
        let v = self.trigger.on_pending(now);
        self.apply_trigger(v, out);
    }
}

impl ServerEngine for TwoPcServer {
    fn on_start(&mut self, _now: SimTime, _out: &mut Vec<Action>) {}

    fn on_msg(&mut self, now: SimTime, from: Endpoint, payload: Payload, out: &mut Vec<Action>) {
        let _ = self.id;
        match payload {
            Payload::OpReq { op_id, plan } => self.on_op_req(now, op_id, plan, out),
            Payload::SubOpReq {
                op_id,
                subop,
                colocated,
                ..
            } => self.on_local(now, op_id, subop, colocated, out),
            Payload::VoteExec { op_id, subop } => {
                let Endpoint::Server(coord) = from else {
                    return;
                };
                self.on_vote_exec(op_id, subop, coord, out);
            }
            Payload::VoteResult { results } => {
                for (op_id, v) in results {
                    if let Some(txn) = self.txns.get_mut(&op_id) {
                        txn.participant_vote = Some(v);
                        // "The coordinator collects the vote message and
                        // executes its sub-op."
                        if txn.local_verdict.is_none() {
                            let subop = txn.plan.coord_subop;
                            let (lv, undo) = match self.apply_with_injection(&subop) {
                                Ok(u) => (Verdict::Yes, Some(u)),
                                Err(_) => (Verdict::No, None),
                            };
                            self.stats.subops_executed += 1;
                            let txn = self.txns.get_mut(&op_id).expect("still present");
                            txn.local_verdict = Some(lv);
                            txn.undo = undo;
                        }
                        self.advance_txn(op_id, out);
                    }
                }
            }
            Payload::CommitDecision { commits, aborts } => {
                let Endpoint::Server(coord) = from else {
                    return;
                };
                for op_id in commits {
                    self.execs.remove(&op_id);
                    self.log(
                        vec![Record::Commit { op_id }],
                        Io::OutcomeDurable {
                            op_id,
                            coordinator: coord,
                        },
                        out,
                    );
                }
                for op_id in aborts {
                    if let Some(mut e) = self.execs.remove(&op_id) {
                        if let Some(undo) = e.undo.take() {
                            self.store.undo(undo);
                        }
                        let _ = e.subop;
                    }
                    self.log(
                        vec![Record::Abort { op_id }],
                        Io::OutcomeDurable {
                            op_id,
                            coordinator: coord,
                        },
                        out,
                    );
                }
            }
            Payload::Ack { ops } => {
                for op_id in ops {
                    if let Some(txn) = self.txns.get(&op_id) {
                        let commit = matches!(
                            (txn.participant_vote, txn.local_verdict),
                            (Some(Verdict::Yes), Some(Verdict::Yes))
                        );
                        let outcome = if commit {
                            OpOutcome::Applied
                        } else {
                            OpOutcome::Failed
                        };
                        self.log(
                            vec![Record::Complete { op_id }],
                            Io::CompleteDurable { op_id, outcome },
                            out,
                        );
                    }
                }
            }
            _ => {}
        }
    }

    fn on_disk_done(&mut self, now: SimTime, token: u64, out: &mut Vec<Action>) {
        let Some(cont) = self.io.remove(&token) else {
            return;
        };
        match cont {
            Io::BeginDurable { op_id } => {
                let Some(txn) = self.txns.get(&op_id) else {
                    return;
                };
                match txn.plan.participant {
                    Some((parti, subop)) => out.push(Action::Send {
                        to: Endpoint::Server(parti),
                        payload: Payload::VoteExec { op_id, subop },
                    }),
                    None => unreachable!("single-server ops use the local path"),
                }
            }
            Io::ExecDurable { op_id } => {
                if let Some(e) = self.execs.get(&op_id) {
                    out.push(Action::Send {
                        to: Endpoint::Server(e.coordinator),
                        payload: Payload::VoteResult {
                            results: vec![(op_id, e.verdict)],
                        },
                    });
                }
            }
            Io::DecisionDurable { op_id, commit } => {
                let Some(txn) = self.txns.get(&op_id) else {
                    return;
                };
                let Some((parti, _)) = txn.plan.participant else {
                    return;
                };
                let (commits, aborts) = if commit {
                    (vec![op_id], vec![])
                } else {
                    (vec![], vec![op_id])
                };
                out.push(Action::Send {
                    to: Endpoint::Server(parti),
                    payload: Payload::CommitDecision { commits, aborts },
                });
            }
            Io::OutcomeDurable { op_id, coordinator } => {
                out.push(Action::Send {
                    to: Endpoint::Server(coordinator),
                    payload: Payload::Ack { ops: vec![op_id] },
                });
                self.wal.prune_op(&op_id);
                self.release(op_id, out);
                let v = self.trigger.on_pending(now);
                self.apply_trigger(v, out);
            }
            Io::CompleteDurable { op_id, outcome } => {
                if let Some(_txn) = self.txns.remove(&op_id) {
                    match outcome {
                        OpOutcome::Applied => self.stats.ops_committed += 1,
                        OpOutcome::Failed => self.stats.ops_aborted += 1,
                    }
                    out.push(Action::Send {
                        to: Endpoint::Proc(op_id.proc),
                        payload: Payload::OpResp { op_id, outcome },
                    });
                }
                self.wal.prune_op(&op_id);
                self.release(op_id, out);
                let v = self.trigger.on_pending(now);
                self.apply_trigger(v, out);
            }
            Io::LocalDurable { op_id, verdict } => {
                self.wal.prune_op(&op_id);
                out.push(Action::Send {
                    to: Endpoint::Proc(op_id.proc),
                    payload: Payload::SubOpResp {
                        op_id,
                        verdict,
                        hint: Hint::null(),
                    },
                });
            }
            Io::WritebackDone => {}
        }
    }

    fn on_timer(&mut self, now: SimTime, token: u64, out: &mut Vec<Action>) {
        let v = self.trigger.on_timer(now, token);
        self.apply_trigger(v, out);
    }

    fn quiesce(&mut self, now: SimTime, out: &mut Vec<Action>) {
        self.flush_batched(out);
        self.trigger.on_batch_launched(now);
    }

    fn is_quiesced(&self) -> bool {
        self.io.is_empty() && self.txns.is_empty() && self.blocked.values().all(|q| q.is_empty())
    }

    fn store(&self) -> &MetaStore {
        &self.store
    }

    fn store_mut(&mut self) -> &mut MetaStore {
        &mut self.store
    }

    fn wal(&self) -> Option<&Wal> {
        Some(&self.wal)
    }

    fn stats(&self) -> &ServerStats {
        &self.stats
    }

    fn proto_metrics(&self) -> crate::stats::ProtoMetrics {
        // 2PC commits every cross-server op in its own immediate round and
        // never batches, so the mix is derived straight from the stats.
        crate::stats::ProtoMetrics {
            conflicts_ordered: self.stats.conflicts,
            immediate_commitments: self.stats.immediate_commitments,
            aborts: self.stats.ops_aborted,
            wal_truncations: self.wal.truncations(),
            ..Default::default()
        }
    }

    fn obs_gauges(&self) -> cx_obs::EngineGauges {
        cx_obs::EngineGauges {
            active_objects: self.active.len() as u64,
            pending_batch_ops: self.txns.len() as u64,
        }
    }
}
