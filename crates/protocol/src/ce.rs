//! CE: central execution by object migration (Ursa Minor style, §II-B,
//! Figure 1c).
//!
//! "When a cross-server operation is performed, all of the objects involved
//! in the operation are migrated to the same server. The operation is then
//! performed locally on that single server by reusing the server-side
//! transaction techniques, such as journaling. The modified metadata
//! objects are migrated back to the original server after completing the
//! execution."
//!
//! The simulator keeps every object in its home store and models the
//! migration as messages carrying object images plus a local journal write
//! at the coordinator; the participant re-installs its half on MIGRATE-BACK.
//! This preserves both the timing (two migration round-trips with object
//! payloads + one journal write) and the final state.

use crate::action::{Action, Endpoint, ServerEngine};
use crate::stats::ServerStats;
use crate::trigger::{TriggerState, TriggerVerdict};
use cx_mdstore::{MetaStore, Undo};
use cx_sim::det_rng;
use cx_types::FxHashMap;
use cx_types::{
    ClusterConfig, Hint, ObjectId, OpId, OpOutcome, OpPlan, Payload, Role, ServerId, SimTime,
    SubOp, Verdict,
};
use cx_wal::{Record, Wal};
use rand::rngs::SmallRng;
use rand::Rng;
use std::collections::VecDeque;

struct Migration {
    plan: OpPlan,
    /// Coordinator's half applied locally.
    undo: Option<Undo>,
    verdict: Option<Verdict>,
}

enum Io {
    /// Journal write done → migrate the objects back.
    JournalDurable {
        op_id: OpId,
    },
    /// Participant re-installation journaled → MIGRATE-BACK-ACK.
    ReinstallDurable {
        op_id: OpId,
        coordinator: ServerId,
        verdict: Verdict,
    },
    LocalDurable {
        op_id: OpId,
        verdict: Verdict,
    },
    WritebackDone,
}

enum Waiting {
    OpReq {
        op_id: OpId,
        plan: OpPlan,
    },
    Migrate {
        op_id: OpId,
        objs: Vec<ObjectId>,
        coordinator: ServerId,
    },
}

/// The CE metadata server.
pub struct CeServer {
    id: ServerId,
    store: MetaStore,
    wal: Wal,
    fail_prob: f64,
    rng: SmallRng,
    migrations: FxHashMap<OpId, Migration>,
    active: FxHashMap<ObjectId, OpId>,
    blocked: FxHashMap<OpId, VecDeque<Waiting>>,
    trigger: TriggerState,
    io: FxHashMap<u64, Io>,
    next_token: u64,
    stats: ServerStats,
}

impl CeServer {
    pub fn new(id: ServerId, cfg: &ClusterConfig) -> Self {
        Self {
            id,
            store: MetaStore::new(),
            wal: Wal::new(None),
            fail_prob: cfg.failure.subop_fail_prob,
            rng: det_rng(cfg.seed, 0xce00_0000 ^ id.0 as u64),
            migrations: FxHashMap::default(),
            active: FxHashMap::default(),
            blocked: FxHashMap::default(),
            trigger: TriggerState::new(cfg.cx.trigger),
            io: FxHashMap::default(),
            next_token: 0,
            stats: ServerStats::default(),
        }
    }

    fn token(&mut self) -> u64 {
        let t = self.next_token;
        self.next_token += 1;
        t
    }

    fn log(&mut self, recs: Vec<Record>, cont: Io, out: &mut Vec<Action>) {
        let mut bytes = 0;
        for rec in recs {
            let (_, b) = self.wal.append(rec).expect("CE log is unlimited");
            bytes += b;
        }
        let token = self.token();
        self.io.insert(token, cont);
        out.push(Action::LogAppend { token, bytes });
    }

    fn lock_conflict(&self, objs: &[ObjectId], me: OpId) -> Option<OpId> {
        objs.iter().find_map(|o| {
            self.active
                .get(o)
                .copied()
                .filter(|h| *h != me && h.proc != me.proc)
        })
    }

    fn apply_with_injection(&mut self, subop: &SubOp) -> Result<Undo, cx_types::CxError> {
        if self.fail_prob > 0.0 && subop.is_write() && self.rng.gen::<f64>() < self.fail_prob {
            return Err(cx_types::CxError::Injected);
        }
        self.store.apply(subop)
    }

    // ---- coordinator ----

    fn on_op_req(&mut self, op_id: OpId, plan: OpPlan, out: &mut Vec<Action>) {
        let objs: Vec<ObjectId> = plan.coord_subop.conflict_objects().iter().collect();
        if let Some(holder) = self.lock_conflict(&objs, op_id) {
            self.stats.conflicts += 1;
            self.stats.blocked_requests += 1;
            self.blocked
                .entry(holder)
                .or_default()
                .push_back(Waiting::OpReq { op_id, plan });
            return;
        }
        for o in objs {
            self.active.insert(o, op_id);
        }
        self.migrations.insert(
            op_id,
            Migration {
                plan,
                undo: None,
                verdict: None,
            },
        );
        let (parti, parti_subop) = plan.participant.expect("cross-server op");
        let migrate_objs: Vec<ObjectId> = parti_subop.conflict_objects().iter().collect();
        out.push(Action::Send {
            to: Endpoint::Server(parti),
            payload: Payload::Migrate {
                op_id,
                objs: migrate_objs,
            },
        });
    }

    // ---- participant ----

    fn on_migrate(
        &mut self,
        op_id: OpId,
        objs: Vec<ObjectId>,
        coordinator: ServerId,
        out: &mut Vec<Action>,
    ) {
        if let Some(holder) = self.lock_conflict(&objs, op_id) {
            self.stats.conflicts += 1;
            self.stats.blocked_requests += 1;
            self.blocked
                .entry(holder)
                .or_default()
                .push_back(Waiting::Migrate {
                    op_id,
                    objs,
                    coordinator,
                });
            return;
        }
        // Objects leave this server until MIGRATE-BACK.
        for o in &objs {
            self.active.insert(*o, op_id);
        }
        out.push(Action::Send {
            to: Endpoint::Server(coordinator),
            payload: Payload::MigrateResp { op_id, objs },
        });
    }

    fn release(&mut self, op_id: OpId, out: &mut Vec<Action>) {
        self.active.retain(|_, h| *h != op_id);
        if let Some(waiters) = self.blocked.remove(&op_id) {
            for w in waiters {
                match w {
                    Waiting::OpReq { op_id, plan } => self.on_op_req(op_id, plan, out),
                    Waiting::Migrate {
                        op_id,
                        objs,
                        coordinator,
                    } => self.on_migrate(op_id, objs, coordinator, out),
                }
            }
        }
    }

    fn flush_batched(&mut self, out: &mut Vec<Action>) {
        self.wal.prune_all();
        let pages = self.store.take_dirty_pages();
        if !pages.is_empty() {
            self.stats.writebacks += 1;
            for chunk in pages.chunks(32) {
                let token = self.token();
                self.io.insert(token, Io::WritebackDone);
                out.push(Action::DbWriteback {
                    token,
                    pages: chunk.to_vec(),
                });
            }
        }
    }

    fn apply_trigger(&mut self, v: TriggerVerdict, out: &mut Vec<Action>) {
        match v {
            TriggerVerdict::Fire => self.flush_batched(out),
            TriggerVerdict::Arm(delay_ns) => out.push(Action::SetTimer {
                token: self.trigger.generation(),
                delay_ns,
            }),
            TriggerVerdict::Wait => {}
        }
    }

    fn on_local(
        &mut self,
        now: SimTime,
        op_id: OpId,
        subop: SubOp,
        colocated: Option<SubOp>,
        out: &mut Vec<Action>,
    ) {
        if !subop.is_write() && colocated.is_none() {
            let verdict = Verdict::from_ok(self.store.apply(&subop).is_ok());
            self.stats.reads_served += 1;
            out.push(Action::Send {
                to: Endpoint::Proc(op_id.proc),
                payload: Payload::SubOpResp {
                    op_id,
                    verdict,
                    hint: Hint::null(),
                },
            });
            return;
        }
        let mut verdict = Verdict::Yes;
        let mut undos = Vec::new();
        for s in std::iter::once(&subop).chain(colocated.iter()) {
            match self.apply_with_injection(s) {
                Ok(u) => undos.push(u),
                Err(_) => {
                    verdict = Verdict::No;
                    break;
                }
            }
        }
        if verdict == Verdict::No {
            for u in undos.into_iter().rev() {
                self.store.undo(u);
            }
        }
        self.stats.local_mutations += 1;
        self.log(
            vec![
                Record::Result {
                    op_id,
                    role: Role::Participant,
                    peer: None,
                    subop,
                    verdict,
                    invalidated: false,
                },
                Record::Commit { op_id },
            ],
            Io::LocalDurable { op_id, verdict },
            out,
        );
        let v = self.trigger.on_pending(now);
        self.apply_trigger(v, out);
    }
}

impl ServerEngine for CeServer {
    fn on_start(&mut self, _now: SimTime, _out: &mut Vec<Action>) {}

    fn on_msg(&mut self, now: SimTime, from: Endpoint, payload: Payload, out: &mut Vec<Action>) {
        let _ = self.id;
        match payload {
            Payload::OpReq { op_id, plan } => self.on_op_req(op_id, plan, out),
            Payload::SubOpReq {
                op_id,
                subop,
                colocated,
                ..
            } => self.on_local(now, op_id, subop, colocated, out),
            Payload::Migrate { op_id, objs } => {
                let Endpoint::Server(coord) = from else {
                    return;
                };
                self.on_migrate(op_id, objs, coord, out);
            }
            Payload::MigrateResp { op_id, .. } => {
                // Objects arrived: execute both halves "locally", journal
                // the transaction, then migrate back.
                let Some(m) = self.migrations.get(&op_id) else {
                    return;
                };
                let coord_subop = m.plan.coord_subop;
                let (lv, undo) = match self.apply_with_injection(&coord_subop) {
                    Ok(u) => (Verdict::Yes, Some(u)),
                    Err(_) => (Verdict::No, None),
                };
                self.stats.subops_executed += 1;
                let peer = {
                    let m = self.migrations.get_mut(&op_id).expect("present");
                    m.undo = undo;
                    m.verdict = Some(lv);
                    m.plan.participant.map(|(s, _)| s)
                };
                self.log(
                    vec![Record::Result {
                        op_id,
                        role: Role::Coordinator,
                        peer,
                        subop: coord_subop,
                        verdict: lv,
                        invalidated: false,
                    }],
                    Io::JournalDurable { op_id },
                    out,
                );
            }
            Payload::MigrateBack { op_id, install, .. } => {
                let Endpoint::Server(coord) = from else {
                    return;
                };
                // Re-install the shipped images: apply the sub-op whose
                // effect they carry. A `None` install means the central
                // execution failed and the objects return unchanged.
                let verdict = match install {
                    Some(subop) => match self.apply_with_injection(&subop) {
                        Ok(_) => Verdict::Yes,
                        Err(_) => Verdict::No,
                    },
                    None => Verdict::No,
                };
                self.stats.subops_executed += 1;
                self.log(
                    vec![Record::Commit { op_id }],
                    Io::ReinstallDurable {
                        op_id,
                        coordinator: coord,
                        verdict,
                    },
                    out,
                );
            }
            Payload::MigrateBackAck { op_id, verdict } => {
                let Some(mut m) = self.migrations.remove(&op_id) else {
                    return;
                };
                let ok = m.verdict == Some(Verdict::Yes) && verdict.is_yes();
                if !ok {
                    if let Some(undo) = m.undo.take() {
                        self.store.undo(undo);
                    }
                    self.stats.ops_aborted += 1;
                } else {
                    self.stats.ops_committed += 1;
                }
                self.wal.prune_op(&op_id);
                out.push(Action::Send {
                    to: Endpoint::Proc(op_id.proc),
                    payload: Payload::OpResp {
                        op_id,
                        outcome: if ok {
                            OpOutcome::Applied
                        } else {
                            OpOutcome::Failed
                        },
                    },
                });
                self.release(op_id, out);
                let v = self.trigger.on_pending(now);
                self.apply_trigger(v, out);
            }
            _ => {}
        }
    }

    fn on_disk_done(&mut self, now: SimTime, token: u64, out: &mut Vec<Action>) {
        let Some(cont) = self.io.remove(&token) else {
            return;
        };
        match cont {
            Io::JournalDurable { op_id } => {
                let Some(m) = self.migrations.get(&op_id) else {
                    return;
                };
                let Some((parti, parti_subop)) = m.plan.participant else {
                    return;
                };
                // If the local execution failed, the migrate-back carries
                // nothing to install; the participant still acks so the
                // coordinator can answer the client.
                let objs: Vec<ObjectId> = parti_subop.objects().iter().collect();
                let install = (m.verdict == Some(Verdict::Yes)).then_some(parti_subop);
                out.push(Action::Send {
                    to: Endpoint::Server(parti),
                    payload: Payload::MigrateBack {
                        op_id,
                        objs: if install.is_some() { objs } else { Vec::new() },
                        install,
                    },
                });
            }
            Io::ReinstallDurable {
                op_id,
                coordinator,
                verdict,
            } => {
                self.release(op_id, out);
                self.wal.prune_op(&op_id);
                out.push(Action::Send {
                    to: Endpoint::Server(coordinator),
                    payload: Payload::MigrateBackAck { op_id, verdict },
                });
                let v = self.trigger.on_pending(now);
                self.apply_trigger(v, out);
            }
            Io::LocalDurable { op_id, verdict } => {
                self.wal.prune_op(&op_id);
                out.push(Action::Send {
                    to: Endpoint::Proc(op_id.proc),
                    payload: Payload::SubOpResp {
                        op_id,
                        verdict,
                        hint: Hint::null(),
                    },
                });
            }
            Io::WritebackDone => {}
        }
    }

    fn on_timer(&mut self, now: SimTime, token: u64, out: &mut Vec<Action>) {
        let v = self.trigger.on_timer(now, token);
        self.apply_trigger(v, out);
    }

    fn quiesce(&mut self, now: SimTime, out: &mut Vec<Action>) {
        self.flush_batched(out);
        self.trigger.on_batch_launched(now);
    }

    fn is_quiesced(&self) -> bool {
        self.io.is_empty()
            && self.migrations.is_empty()
            && self.blocked.values().all(|q| q.is_empty())
    }

    fn store(&self) -> &MetaStore {
        &self.store
    }

    fn store_mut(&mut self) -> &mut MetaStore {
        &mut self.store
    }

    fn wal(&self) -> Option<&Wal> {
        Some(&self.wal)
    }

    fn stats(&self) -> &ServerStats {
        &self.stats
    }

    fn proto_metrics(&self) -> crate::stats::ProtoMetrics {
        // CE migrates ops to one server instead of committing across two;
        // every completed migration behaves like an immediate round.
        crate::stats::ProtoMetrics {
            conflicts_ordered: self.stats.conflicts,
            immediate_commitments: self.stats.immediate_commitments,
            aborts: self.stats.ops_aborted,
            wal_truncations: self.wal.truncations(),
            ..Default::default()
        }
    }

    fn obs_gauges(&self) -> cx_obs::EngineGauges {
        cx_obs::EngineGauges {
            active_objects: self.active.len() as u64,
            pending_batch_ops: self.migrations.len() as u64,
        }
    }
}
