//! Protocol engines: Cx and its baselines.
//!
//! Everything in this crate is **sans-IO**: an engine consumes one input
//! (message arrival, disk completion, timer) and emits a list of
//! [`Action`]s — messages to send, disk operations to start, timers to arm.
//! It never blocks, sleeps or talks to a device. Two runtimes interpret the
//! actions:
//!
//! * the deterministic discrete-event simulator in `cx-cluster::des`
//!   (reproduces the paper's figures), and
//! * the multi-threaded runtime in `cx-cluster::threaded` (exercises the
//!   same engines under real concurrency).
//!
//! # Engines
//!
//! | module | protocol | paper |
//! |---|---|---|
//! | [`cx`] | **Cx** — concurrent execution, lazy batched commitment, conflict hints, immediate commitment, recovery hooks | §III |
//! | [`se`] | **SE** — serial execution, per-sub-op synchronous DB writes ("OFS"); `batched: true` gives "OFS-batched" | §II-B, §IV-C |
//! | [`twopc`] | **2PC** — coordinator-driven two-phase commit | §II-B |
//! | [`ce`] | **CE** — central execution by object migration | §II-B |
//!
//! The client side of each protocol lives in [`client`]: a per-operation
//! state machine that splits the operation by placement (Table I), collects
//! responses and conflict hints, and drives L-COM / CLEAR / OpReq flows.
//!
//! [`testkit`] is a miniature zero-latency runtime used by this crate's own
//! tests; it supports *held* messages so tests can create the paper's
//! ordered and disordered conflict interleavings deterministically.

pub mod action;
pub mod ce;
pub mod client;
pub mod cx;
pub mod se;
pub mod stats;
pub mod testkit;
pub mod trigger;
pub mod twopc;

pub use action::{Action, Endpoint, ServerEngine};
pub use client::{ClientDecision, ClientOp};
pub use cx::CxServer;
pub use se::SeServer;
pub use stats::{ProtoMetrics, ServerStats};
pub use trigger::TriggerState;

use cx_types::{ClusterConfig, Protocol, ServerId};

/// Build the server engine for `cfg.protocol`.
pub fn make_server(id: ServerId, cfg: &ClusterConfig) -> Box<dyn ServerEngine> {
    match cfg.protocol {
        Protocol::Cx => Box::new(cx::CxServer::new(id, cfg)),
        Protocol::Se => Box::new(se::SeServer::new(id, cfg, false)),
        Protocol::SeBatched => Box::new(se::SeServer::new(id, cfg, true)),
        Protocol::TwoPc => Box::new(twopc::TwoPcServer::new(id, cfg)),
        Protocol::Ce => Box::new(ce::CeServer::new(id, cfg)),
    }
}
