//! The sans-IO contract between engines and runtimes.

use crate::stats::{ProtoMetrics, ServerStats};
use cx_mdstore::MetaStore;
use cx_obs::{EngineGauges, ObsSink};
use cx_types::{Payload, ProcId, ServerId, SimTime};
use cx_wal::Wal;

/// A message source or destination.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Endpoint {
    /// A client process.
    Proc(ProcId),
    /// A metadata server.
    Server(ServerId),
}

/// What an engine asks its runtime to do.
#[derive(Debug, Clone, PartialEq)]
pub enum Action {
    /// Send `payload` to `to`. The runtime models latency and counts the
    /// message for Table IV.
    Send { to: Endpoint, payload: Payload },
    /// Start a synchronous log append of `bytes`; the runtime calls
    /// `on_disk_done(token)` when the flush covering it completes.
    LogAppend { token: u64, bytes: u64 },
    /// Per-sub-op synchronous database write (SE baseline).
    DbSyncWrite { token: u64, page: u64 },
    /// Batched database write-back of dirty pages.
    DbWriteback { token: u64, pages: Vec<u64> },
    /// Sequential log read of `bytes` (recovery scan).
    LogRead { token: u64, bytes: u64 },
    /// Cold-cache random page reads (recovery re-reads the affected
    /// database rows).
    DbRandomRead { token: u64, pages: Vec<u64> },
    /// Call `on_timer(token)` after `delay_ns`.
    SetTimer { token: u64, delay_ns: u64 },
}

/// A protocol server as seen by a runtime.
///
/// All entry points take `now` (virtual or wall-clock nanoseconds) and push
/// actions into `out`; they must not assume anything about how or when the
/// actions execute.
pub trait ServerEngine: Send {
    /// Runtime start-up: arm the initial batch-trigger timers.
    fn on_start(&mut self, now: SimTime, out: &mut Vec<Action>);

    /// A message arrived.
    fn on_msg(&mut self, now: SimTime, from: Endpoint, payload: Payload, out: &mut Vec<Action>);

    /// A previously requested disk operation completed.
    fn on_disk_done(&mut self, now: SimTime, token: u64, out: &mut Vec<Action>);

    /// A previously armed timer fired.
    fn on_timer(&mut self, now: SimTime, token: u64, out: &mut Vec<Action>);

    /// Force every postponed commitment / write-back to start now (used to
    /// drain the cluster at the end of a run).
    fn quiesce(&mut self, now: SimTime, out: &mut Vec<Action>);

    /// True when the engine holds no pending protocol state (all
    /// commitments finished, nothing blocked) — together with an empty
    /// event queue this defines the end of a run.
    fn is_quiesced(&self) -> bool;

    /// The server's metadata rows (used for workload seeding and the
    /// cross-server consistency checks).
    fn store(&self) -> &MetaStore;
    fn store_mut(&mut self) -> &mut MetaStore;

    /// The operation log, if this protocol keeps one.
    fn wal(&self) -> Option<&Wal>;

    /// Unpruned log bytes — the Figure 7(b) "valid-records' size".
    fn valid_log_bytes(&self) -> u64 {
        self.wal().map(|w| w.valid_bytes()).unwrap_or(0)
    }

    fn stats(&self) -> &ServerStats;

    /// The introspection plane's protocol-internal series (conflict
    /// split, commitment mix, batch occupancy, …). Engines without the
    /// richer accounting derive what they can from their [`ServerStats`];
    /// the default is empty.
    fn proto_metrics(&self) -> ProtoMetrics {
        ProtoMetrics::default()
    }

    /// True when the engine implements [`ServerEngine::crash`] and
    /// [`ServerEngine::recover`]. Fault plans only aim crash points at
    /// crash-capable engines; network faults apply to every protocol.
    fn supports_crash(&self) -> bool {
        false
    }

    /// Crash the server: volatile state (store image, pending protocol
    /// state, queued IO continuations) is lost; the durable log prefix
    /// survives. Only meaningful for engines with a log.
    fn crash(&mut self, _now: SimTime) {
        unimplemented!("crash/recovery is implemented for the Cx engine");
    }

    /// Crash with a torn log tail: beyond the durable prefix, up to
    /// `extra_bytes` of whole in-flight records also made it to the
    /// platter before power was lost (see `Wal::crash_torn`). Engines
    /// without torn-tail modeling fall back to a plain crash.
    fn crash_torn(&mut self, now: SimTime, _extra_bytes: u64) {
        self.crash(now);
    }

    /// Rebooted after a crash: scan the log and resume half-completed
    /// commitments (§III-D). Returns the number of log bytes scanned so the
    /// runtime can charge the sequential read.
    fn recover(&mut self, _now: SimTime, _out: &mut Vec<Action>) -> u64 {
        unimplemented!("crash/recovery is implemented for the Cx engine");
    }

    /// True while the recovery protocol is resolving half-completed
    /// commitments (the cluster measures Table V's recovery time with it).
    fn is_recovering(&self) -> bool {
        false
    }

    /// One-line description of unfinished protocol state, for hang
    /// diagnostics. Empty when quiesced.
    fn debug_summary(&self) -> String {
        String::new()
    }

    /// Hand the engine an observability sink. Engines that emit lifecycle
    /// milestones the runtime cannot see (Cx stamps `Completed` when the
    /// Complete-Record lands) keep the sink; the default discards it, and
    /// with `ObsSink::Off` every emission is a no-op either way.
    fn install_obs(&mut self, _sink: ObsSink) {}

    /// Instantaneous engine state for the virtual-time gauges. Engines
    /// report what they have; the default is all-zero.
    fn obs_gauges(&self) -> EngineGauges {
        EngineGauges::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cx_types::OpId;

    #[test]
    fn endpoint_equality() {
        assert_eq!(Endpoint::Server(ServerId(1)), Endpoint::Server(ServerId(1)));
        assert_ne!(
            Endpoint::Server(ServerId(1)),
            Endpoint::Proc(ProcId::new(1, 0))
        );
    }

    #[test]
    fn actions_compare_structurally() {
        let a = Action::SetTimer {
            token: 1,
            delay_ns: 5,
        };
        assert_eq!(
            a,
            Action::SetTimer {
                token: 1,
                delay_ns: 5
            }
        );
        let op = OpId::new(ProcId::new(0, 0), 1);
        let send = Action::Send {
            to: Endpoint::Proc(op.proc),
            payload: Payload::AllNo { op_id: op },
        };
        assert!(matches!(send, Action::Send { .. }));
    }
}
