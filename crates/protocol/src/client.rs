//! Client-side per-operation state machines.
//!
//! A client process runs one metadata operation at a time ("the metadata
//! operations of a process are performed synchronously", §III-B). For each
//! operation the process builds a [`ClientOp`] from the placement plan and
//! feeds it responses until it reports [`ClientDecision::Done`].
//!
//! * **Cx** (§III-B step 1–2): both sub-ops are sent concurrently; the
//!   operation completes when both servers answered with the *same
//!   conflict hint* and agreeing verdicts. Disagreement sends L-COM and
//!   waits for ALL-NO; stably mismatched hints (possible when an op
//!   conflicts with different operations on the two servers) time out into
//!   an L-COM as well (DESIGN.md §5.8).
//! * **SE** (§II-B): participant first, then coordinator, with CLEAR to
//!   withdraw the participant's half if the coordinator fails.
//! * **2PC / CE**: the whole operation ships to the coordinator, which
//!   drives the protocol among servers.

use crate::action::{Action, Endpoint};
use cx_types::{
    CxConfig, Hint, OpId, OpOutcome, OpPlan, Payload, Protocol, Role, ServerId, SimTime, SubOp,
    Verdict,
};

/// Progress report after feeding an event to a [`ClientOp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClientDecision {
    Pending,
    Done(OpOutcome),
}

/// The (verdict, hint) responses collected so far, keyed by server.
///
/// An operation touches at most two servers, so two inline slots replace
/// the per-op `HashMap` the state machine used to allocate. A repeated
/// server supersedes its earlier entry (invalidated executions, §III-C).
#[derive(Debug, Default)]
struct Responses {
    slots: [Option<(ServerId, Verdict, Hint)>; 2],
}

/// One server's answer as handed back by [`Responses::pair`].
type VerdictHint<'a> = (Verdict, &'a Hint);

impl Responses {
    fn insert(&mut self, server: ServerId, verdict: Verdict, hint: Hint) {
        for slot in &mut self.slots {
            match slot {
                Some((s, v, h)) if *s == server => {
                    *v = verdict;
                    *h = hint;
                    return;
                }
                None => {
                    *slot = Some((server, verdict, hint));
                    return;
                }
                Some(_) => {}
            }
        }
        debug_assert!(false, "an operation involves at most two servers");
    }

    fn len(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    fn first(&self) -> Option<Verdict> {
        self.slots[0].as_ref().map(|(_, v, _)| *v)
    }

    fn pair(&self) -> Option<(VerdictHint<'_>, VerdictHint<'_>)> {
        match (&self.slots[0], &self.slots[1]) {
            (Some((_, v1, h1)), Some((_, v2, h2))) => Some(((*v1, h1), (*v2, h2))),
            _ => None,
        }
    }
}

#[derive(Debug)]
enum State {
    /// Cx: waiting for (verdict, hint) pairs from the affected servers.
    CxWait {
        responses: Responses,
        expected: usize,
        lcom_sent: bool,
        timer_armed: bool,
    },
    /// SE: waiting for the participant's sub-op response.
    SeParticipant,
    /// SE: waiting for the coordinator's sub-op response.
    SeCoordinator,
    /// SE: coordinator failed; waiting for the participant's CLEAR ack.
    SeClearing,
    /// 2PC/CE: waiting for the coordinator's OpResp.
    WholeOp,
    Done,
}

/// One in-flight client operation.
#[derive(Debug)]
pub struct ClientOp {
    pub op_id: OpId,
    pub plan: OpPlan,
    protocol: Protocol,
    state: State,
    mismatch_timeout_ns: u64,
}

impl ClientOp {
    /// Begin the operation, emitting its first messages.
    pub fn start(
        protocol: Protocol,
        op_id: OpId,
        plan: OpPlan,
        cx_cfg: &CxConfig,
        out: &mut Vec<Action>,
    ) -> ClientOp {
        let mut op = ClientOp {
            op_id,
            plan,
            protocol,
            state: State::Done,
            mismatch_timeout_ns: cx_cfg.hint_mismatch_timeout_ns,
        };
        op.state = match protocol {
            Protocol::Cx => op.start_cx(out),
            Protocol::Se | Protocol::SeBatched => op.start_se(out),
            Protocol::TwoPc | Protocol::Ce => op.start_whole(out),
        };
        op
    }

    fn subop_req(
        &self,
        subop: SubOp,
        role: Role,
        peer: Option<ServerId>,
        colocated: Option<SubOp>,
    ) -> Payload {
        Payload::SubOpReq {
            op_id: self.op_id,
            subop,
            role,
            peer,
            colocated,
        }
    }

    fn start_cx(&mut self, out: &mut Vec<Action>) -> State {
        match self.plan.participant {
            Some((parti_server, parti_subop)) => {
                // Step 1: assign both sub-ops concurrently.
                out.push(Action::Send {
                    to: Endpoint::Server(self.plan.coordinator),
                    payload: self.subop_req(
                        self.plan.coord_subop,
                        Role::Coordinator,
                        Some(parti_server),
                        None,
                    ),
                });
                out.push(Action::Send {
                    to: Endpoint::Server(parti_server),
                    payload: self.subop_req(
                        parti_subop,
                        Role::Participant,
                        Some(self.plan.coordinator),
                        None,
                    ),
                });
                State::CxWait {
                    responses: Responses::default(),
                    expected: 2,
                    lcom_sent: false,
                    timer_armed: false,
                }
            }
            None => {
                out.push(Action::Send {
                    to: Endpoint::Server(self.plan.coordinator),
                    payload: self.subop_req(
                        self.plan.coord_subop,
                        Role::Coordinator,
                        None,
                        self.plan.colocated,
                    ),
                });
                State::CxWait {
                    responses: Responses::default(),
                    expected: 1,
                    lcom_sent: false,
                    timer_armed: false,
                }
            }
        }
    }

    fn start_se(&mut self, out: &mut Vec<Action>) -> State {
        match self.plan.participant {
            Some((parti_server, parti_subop)) => {
                // "the client first instructs the participant to execute
                // its sub-ops" (§II-B).
                out.push(Action::Send {
                    to: Endpoint::Server(parti_server),
                    payload: self.subop_req(
                        parti_subop,
                        Role::Participant,
                        Some(self.plan.coordinator),
                        None,
                    ),
                });
                State::SeParticipant
            }
            None => {
                out.push(Action::Send {
                    to: Endpoint::Server(self.plan.coordinator),
                    payload: self.subop_req(
                        self.plan.coord_subop,
                        Role::Coordinator,
                        None,
                        self.plan.colocated,
                    ),
                });
                State::SeCoordinator
            }
        }
    }

    fn start_whole(&mut self, out: &mut Vec<Action>) -> State {
        if self.plan.participant.is_some() {
            out.push(Action::Send {
                to: Endpoint::Server(self.plan.coordinator),
                payload: Payload::OpReq {
                    op_id: self.op_id,
                    plan: self.plan,
                },
            });
            State::WholeOp
        } else {
            // Single-server operations bypass the heavyweight protocol in
            // every system.
            out.push(Action::Send {
                to: Endpoint::Server(self.plan.coordinator),
                payload: self.subop_req(
                    self.plan.coord_subop,
                    Role::Coordinator,
                    None,
                    self.plan.colocated,
                ),
            });
            State::SeCoordinator
        }
    }

    /// Feed a message addressed to this operation.
    pub fn on_msg(
        &mut self,
        _now: SimTime,
        from: Endpoint,
        payload: Payload,
        out: &mut Vec<Action>,
    ) -> ClientDecision {
        let state = std::mem::replace(&mut self.state, State::Done);
        let (next, decision) = self.step(state, from, payload, out);
        self.state = next;
        decision
    }

    fn step(
        &mut self,
        state: State,
        from: Endpoint,
        payload: Payload,
        out: &mut Vec<Action>,
    ) -> (State, ClientDecision) {
        match (state, payload) {
            (
                State::CxWait {
                    mut responses,
                    expected,
                    mut lcom_sent,
                    mut timer_armed,
                },
                Payload::SubOpResp {
                    op_id,
                    verdict,
                    hint,
                },
            ) if op_id == self.op_id => {
                let Endpoint::Server(server) = from else {
                    return (
                        State::CxWait {
                            responses,
                            expected,
                            lcom_sent,
                            timer_armed,
                        },
                        ClientDecision::Pending,
                    );
                };
                // Later responses supersede invalidated executions
                // (§III-C: the process "must be able to distinguish the
                // response of the invalidated execution").
                responses.insert(server, verdict, hint);
                if responses.len() == expected {
                    if expected == 1 {
                        let v = responses.first().expect("one response");
                        return (State::Done, ClientDecision::Done(outcome_of(v)));
                    }
                    let ((v1, h1), (v2, h2)) = responses.pair().expect("two responses");
                    if h1 == h2 {
                        if v1 == v2 {
                            // Agreement: complete now; the commitment is
                            // the servers' lazy business (§III-B step 2a).
                            let outcome = outcome_of(v1);
                            return (State::Done, ClientDecision::Done(outcome));
                        }
                        // Disagreement: immediate commitment (step 2b).
                        if !lcom_sent {
                            lcom_sent = true;
                            out.push(Action::Send {
                                to: Endpoint::Server(self.plan.coordinator),
                                payload: Payload::LCom { op_id: self.op_id },
                            });
                        }
                    } else if !timer_armed && !lcom_sent {
                        // Mismatched hints: one side may still be
                        // superseded by a re-execution; give it time, then
                        // force a commitment (DESIGN.md §5.8).
                        timer_armed = true;
                        out.push(Action::SetTimer {
                            token: self.op_id.seq,
                            delay_ns: self.mismatch_timeout_ns,
                        });
                    }
                }
                (
                    State::CxWait {
                        responses,
                        expected,
                        lcom_sent,
                        timer_armed,
                    },
                    ClientDecision::Pending,
                )
            }
            (State::CxWait { .. }, Payload::AllNo { op_id }) if op_id == self.op_id => {
                (State::Done, ClientDecision::Done(OpOutcome::Failed))
            }
            (State::CxWait { .. }, Payload::Committed { op_id }) if op_id == self.op_id => {
                (State::Done, ClientDecision::Done(OpOutcome::Applied))
            }
            (State::SeParticipant, Payload::SubOpResp { op_id, verdict, .. })
                if op_id == self.op_id =>
            {
                if !verdict.is_yes() {
                    return (State::Done, ClientDecision::Done(OpOutcome::Failed));
                }
                // Participant succeeded: now the coordinator.
                out.push(Action::Send {
                    to: Endpoint::Server(self.plan.coordinator),
                    payload: self.subop_req(
                        self.plan.coord_subop,
                        Role::Coordinator,
                        self.plan.participant.map(|(s, _)| s),
                        None,
                    ),
                });
                (State::SeCoordinator, ClientDecision::Pending)
            }
            (State::SeCoordinator, Payload::SubOpResp { op_id, verdict, .. })
                if op_id == self.op_id =>
            {
                if verdict.is_yes() {
                    return (State::Done, ClientDecision::Done(OpOutcome::Applied));
                }
                match self.plan.participant {
                    Some((parti_server, parti_subop)) => {
                        // "the process withdraws the former sub-ops by
                        // sending a CLEAR message" (§II-B).
                        out.push(Action::Send {
                            to: Endpoint::Server(parti_server),
                            payload: Payload::Clear {
                                op_id: self.op_id,
                                subop: parti_subop,
                            },
                        });
                        (State::SeClearing, ClientDecision::Pending)
                    }
                    None => (State::Done, ClientDecision::Done(OpOutcome::Failed)),
                }
            }
            (State::SeClearing, Payload::ClearResp { op_id }) if op_id == self.op_id => {
                (State::Done, ClientDecision::Done(OpOutcome::Failed))
            }
            (State::WholeOp, Payload::OpResp { op_id, outcome }) if op_id == self.op_id => {
                (State::Done, ClientDecision::Done(outcome))
            }
            (state, _) => (state, ClientDecision::Pending), // stale or irrelevant
        }
    }

    /// A timer armed by this operation fired.
    pub fn on_timer(&mut self, _now: SimTime, token: u64, out: &mut Vec<Action>) -> ClientDecision {
        if token != self.op_id.seq {
            return ClientDecision::Pending; // stale timer from an older op
        }
        if let State::CxWait {
            responses,
            expected,
            lcom_sent,
            ..
        } = &mut self.state
        {
            let mismatched = responses.len() == *expected
                && matches!(responses.pair(), Some(((_, h1), (_, h2))) if h1 != h2);
            if mismatched && !*lcom_sent {
                *lcom_sent = true;
                out.push(Action::Send {
                    to: Endpoint::Server(self.plan.coordinator),
                    payload: Payload::LCom { op_id: self.op_id },
                });
            }
        }
        ClientDecision::Pending
    }

    pub fn is_done(&self) -> bool {
        matches!(self.state, State::Done)
    }

    pub fn protocol(&self) -> Protocol {
        self.protocol
    }
}

fn outcome_of(v: Verdict) -> OpOutcome {
    if v.is_yes() {
        OpOutcome::Applied
    } else {
        OpOutcome::Failed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cx_types::{ClusterConfig, FsOp, InodeNo, Name, Placement};

    fn cross_plan() -> (OpId, OpPlan) {
        let placement = Placement::new(4);
        // find a guaranteed cross-server create
        for n in 0..10_000u64 {
            let op = FsOp::Create {
                parent: InodeNo(1),
                name: Name(n),
                ino: InodeNo(1000 + n),
            };
            let plan = placement.plan(op);
            if plan.is_cross_server() {
                return (OpId::new(cx_types::ProcId::new(0, 0), 1), plan);
            }
        }
        unreachable!("placement always produces cross-server creates");
    }

    fn resp(op_id: OpId, verdict: Verdict, hint: Hint) -> Payload {
        Payload::SubOpResp {
            op_id,
            verdict,
            hint,
        }
    }

    #[test]
    fn cx_client_sends_both_halves_concurrently() {
        let (op_id, plan) = cross_plan();
        let cfg = ClusterConfig::default().cx;
        let mut out = Vec::new();
        let _client = ClientOp::start(Protocol::Cx, op_id, plan, &cfg, &mut out);
        let sends: Vec<_> = out
            .iter()
            .filter(|a| matches!(a, Action::Send { .. }))
            .collect();
        assert_eq!(sends.len(), 2, "step 1: both sub-ops assigned at once");
    }

    #[test]
    fn cx_client_completes_on_matching_hints() {
        let (op_id, plan) = cross_plan();
        let cfg = ClusterConfig::default().cx;
        let mut out = Vec::new();
        let mut client = ClientOp::start(Protocol::Cx, op_id, plan, &cfg, &mut out);
        let (coord, parti) = (plan.coordinator, plan.participant.unwrap().0);

        let d = client.on_msg(
            SimTime::ZERO,
            Endpoint::Server(coord),
            resp(op_id, Verdict::Yes, Hint::null()),
            &mut out,
        );
        assert_eq!(d, ClientDecision::Pending);
        let d = client.on_msg(
            SimTime::ZERO,
            Endpoint::Server(parti),
            resp(op_id, Verdict::Yes, Hint::null()),
            &mut out,
        );
        assert_eq!(d, ClientDecision::Done(OpOutcome::Applied));
        assert!(client.is_done());
    }

    #[test]
    fn cx_client_lcoms_on_disagreement() {
        let (op_id, plan) = cross_plan();
        let cfg = ClusterConfig::default().cx;
        let mut out = Vec::new();
        let mut client = ClientOp::start(Protocol::Cx, op_id, plan, &cfg, &mut out);
        let (coord, parti) = (plan.coordinator, plan.participant.unwrap().0);
        out.clear();

        client.on_msg(
            SimTime::ZERO,
            Endpoint::Server(coord),
            resp(op_id, Verdict::Yes, Hint::null()),
            &mut out,
        );
        let d = client.on_msg(
            SimTime::ZERO,
            Endpoint::Server(parti),
            resp(op_id, Verdict::No, Hint::null()),
            &mut out,
        );
        assert_eq!(d, ClientDecision::Pending, "must wait for ALL-NO");
        assert!(
            out.iter().any(|a| matches!(
                a,
                Action::Send {
                    payload: Payload::LCom { .. },
                    ..
                }
            )),
            "disagreement sends L-COM"
        );
        let d = client.on_msg(
            SimTime::ZERO,
            Endpoint::Server(coord),
            Payload::AllNo { op_id },
            &mut out,
        );
        assert_eq!(d, ClientDecision::Done(OpOutcome::Failed));
    }

    #[test]
    fn cx_client_arms_timer_on_hint_mismatch_then_lcoms() {
        let (op_id, plan) = cross_plan();
        let cfg = ClusterConfig::default().cx;
        let mut out = Vec::new();
        let mut client = ClientOp::start(Protocol::Cx, op_id, plan, &cfg, &mut out);
        let (coord, parti) = (plan.coordinator, plan.participant.unwrap().0);
        out.clear();

        let other = OpId::new(cx_types::ProcId::new(9, 0), 7);
        client.on_msg(
            SimTime::ZERO,
            Endpoint::Server(coord),
            resp(op_id, Verdict::Yes, Hint::null()),
            &mut out,
        );
        client.on_msg(
            SimTime::ZERO,
            Endpoint::Server(parti),
            resp(op_id, Verdict::Yes, Hint::of(other)),
            &mut out,
        );
        let timer_token = out
            .iter()
            .find_map(|a| match a {
                Action::SetTimer { token, .. } => Some(*token),
                _ => None,
            })
            .expect("mismatch arms a timer");
        out.clear();
        let d = client.on_timer(SimTime::ZERO, timer_token, &mut out);
        assert_eq!(d, ClientDecision::Pending);
        assert!(out.iter().any(|a| matches!(
            a,
            Action::Send {
                payload: Payload::LCom { .. },
                ..
            }
        )));
        let d = client.on_msg(
            SimTime::ZERO,
            Endpoint::Server(coord),
            Payload::Committed { op_id },
            &mut out,
        );
        assert_eq!(d, ClientDecision::Done(OpOutcome::Applied));
    }

    #[test]
    fn cx_client_superseding_response_replaces_invalidated_one() {
        let (op_id, plan) = cross_plan();
        let cfg = ClusterConfig::default().cx;
        let mut out = Vec::new();
        let mut client = ClientOp::start(Protocol::Cx, op_id, plan, &cfg, &mut out);
        let (coord, parti) = (plan.coordinator, plan.participant.unwrap().0);
        let other = OpId::new(cx_types::ProcId::new(9, 0), 7);

        // invalidated first response [null], then coordinator [A], then
        // the superseding participant response [A] — Figure 3(b)'s ProB.
        client.on_msg(
            SimTime::ZERO,
            Endpoint::Server(parti),
            resp(op_id, Verdict::Yes, Hint::null()),
            &mut out,
        );
        let d = client.on_msg(
            SimTime::ZERO,
            Endpoint::Server(coord),
            resp(op_id, Verdict::Yes, Hint::of(other)),
            &mut out,
        );
        assert_eq!(d, ClientDecision::Pending, "hints mismatch: wait");
        let d = client.on_msg(
            SimTime::ZERO,
            Endpoint::Server(parti),
            resp(op_id, Verdict::Yes, Hint::of(other)),
            &mut out,
        );
        assert_eq!(d, ClientDecision::Done(OpOutcome::Applied));
    }

    #[test]
    fn se_client_is_strictly_serial() {
        let (op_id, plan) = cross_plan();
        let cfg = ClusterConfig::default().cx;
        let mut out = Vec::new();
        let mut client = ClientOp::start(Protocol::Se, op_id, plan, &cfg, &mut out);
        let (coord, parti) = (plan.coordinator, plan.participant.unwrap().0);
        // only the participant is contacted first
        let first_targets: Vec<_> = out
            .iter()
            .filter_map(|a| match a {
                Action::Send { to, .. } => Some(*to),
                _ => None,
            })
            .collect();
        assert_eq!(first_targets, vec![Endpoint::Server(parti)]);
        out.clear();
        // participant YES → now the coordinator
        client.on_msg(
            SimTime::ZERO,
            Endpoint::Server(parti),
            resp(op_id, Verdict::Yes, Hint::null()),
            &mut out,
        );
        assert!(out.iter().any(|a| matches!(
            a,
            Action::Send {
                to: Endpoint::Server(s),
                ..
            } if *s == coord
        )));
        out.clear();
        // coordinator NO → CLEAR to the participant, then Failed
        let d = client.on_msg(
            SimTime::ZERO,
            Endpoint::Server(coord),
            resp(op_id, Verdict::No, Hint::null()),
            &mut out,
        );
        assert_eq!(d, ClientDecision::Pending);
        assert!(out.iter().any(|a| matches!(
            a,
            Action::Send {
                payload: Payload::Clear { .. },
                ..
            }
        )));
        let d = client.on_msg(
            SimTime::ZERO,
            Endpoint::Server(parti),
            Payload::ClearResp { op_id },
            &mut out,
        );
        assert_eq!(d, ClientDecision::Done(OpOutcome::Failed));
    }

    #[test]
    fn stale_messages_are_ignored() {
        let (op_id, plan) = cross_plan();
        let cfg = ClusterConfig::default().cx;
        let mut out = Vec::new();
        let mut client = ClientOp::start(Protocol::Cx, op_id, plan, &cfg, &mut out);
        let stale = OpId::new(op_id.proc, op_id.seq + 99);
        let d = client.on_msg(
            SimTime::ZERO,
            Endpoint::Server(plan.coordinator),
            resp(stale, Verdict::Yes, Hint::null()),
            &mut out,
        );
        assert_eq!(d, ClientDecision::Pending);
        // stale timer tokens are ignored too
        let d = client.on_timer(SimTime::ZERO, stale.seq, &mut out);
        assert_eq!(d, ClientDecision::Pending);
        assert!(!client.is_done());
    }
}
