//! Crash and recovery (§III-D).
//!
//! "The main idea of our recovery protocol is to resume all half-completed
//! commitments of cross-server operations left in the log file on a server
//! before it crashed. … From the Result-Record of an operation, the
//! rebooted server can determine whether it is the coordinator of that
//! operation. Depending on its role, the resumption of an operation varies."
//!
//! * **Coordinator role**: re-launch the commitment — jump straight to the
//!   decision if a Commit/Abort-Record survived, otherwise start a fresh
//!   VOTE round.
//! * **Participant role**: ask the coordinator for the outcome
//!   (QueryOutcome); the coordinator answers with an idempotent
//!   COMMIT-REQ/ABORT-REQ.
//!
//! While a server recovers, it queues new sub-op requests ("the whole file
//! system stops responding new requests") but keeps exchanging commitment
//! traffic, which is what resolves the half-completed operations.

use super::{BatchPhase, CommitBatch, CxServer, IoCont, PendingOp};
use crate::action::{Action, Endpoint, ServerEngine};
use cx_mdstore::MetaStore;
use cx_types::{Hint, OpId, Role, ServerId, SimTime, SubOp, Verdict};
use cx_wal::Outcome;
use std::collections::BTreeMap;

impl CxServer {
    /// Crash: all volatile state is lost. Effects of executions whose
    /// Result-Record does not survive on disk are rolled back immediately —
    /// this models the fact that they exist nowhere once power is cut
    /// (the in-memory store object survives in the simulator, so undo
    /// stands in for "was never in the database").
    ///
    /// With a torn tail (`extra_bytes > 0`) some in-flight Result-Records
    /// also made it to the platter; their executions survive exactly like
    /// flushed ones and are resolved by the recovery scan, so the undo
    /// criterion is "no Result-Record on disk", not "flush incomplete".
    pub(crate) fn crash_impl(&mut self, _now: SimTime, extra_bytes: u64) {
        // Crash the log first: what physically survived — durable prefix
        // plus any whole torn-tail records — defines which executions
        // still exist.
        self.wal.crash_torn(extra_bytes);
        for (op, p) in self.pending.drain() {
            let survived = p.durable || self.wal.op_state(&op).is_some_and(|st| st.subop.is_some());
            if !survived {
                if let Some(undo) = p.undo {
                    self.store.undo(undo);
                }
            }
        }
        self.active.clear();
        self.blocked.clear();
        self.log_wait.clear();
        self.lazy_queue.clear();
        self.lazy_local.clear();
        self.batches.clear();
        self.deferred_votes.clear();
        self.recent_outcomes.clear();
        self.io.clear();
        self.orphan_timers.clear();
        self.vote_timers.clear();
        self.recovery_wait.clear();
        self.recovery_remaining.clear();
        self.recovery_reads_pending = false;
        self.crashed = true;
        self.recovering = false;
    }

    /// Reboot: start the recovery log scan. Returns the number of bytes
    /// the scan reads (the surviving valid records).
    pub(crate) fn recover_impl(&mut self, _now: SimTime, out: &mut Vec<Action>) -> u64 {
        self.crashed = false;
        self.recovering = true;
        let bytes = self.wal.valid_bytes();
        let token = self.token();
        self.io.insert(token, IoCont::RecoveryScanDone);
        out.push(Action::LogRead {
            token,
            bytes: bytes.max(1),
        });
        bytes
    }

    /// The log scan finished: rebuild pending state and resume
    /// half-completed commitments.
    pub(crate) fn on_recovery_scan_done(&mut self, now: SimTime, out: &mut Vec<Action>) {
        self.wal.prune_all();
        let (coord_ops, parti_ops) = self.wal.half_completed();

        if self.cfg.unsafe_skip_recovery_resume {
            // Deliberately BROKEN (chaos-oracle self-test): forget the
            // §III-D resumption step. Surviving executions keep their
            // store effects but nobody is left to commit or abort them;
            // peers eventually presume-abort their halves, leaving the
            // namespace split — exactly what the oracle must catch.
            self.maybe_finish_recovery(now, out);
            return;
        }

        // Rebuild pending entries (role, peer, sub-op, verdict) from the
        // index the scan reconstructed.
        let mut decided: BTreeMap<ServerId, (Vec<OpId>, Vec<OpId>)> = BTreeMap::new();
        let mut to_vote: Vec<OpId> = Vec::new();
        for &op in coord_ops.iter().chain(parti_ops.iter()) {
            let Some(st) = self.wal.op_state(&op) else {
                continue;
            };
            let (role, peer, subop, verdict) = (
                st.role.expect("half_completed implies a Result-Record"),
                st.peer,
                st.subop.expect("Result-Record carries the sub-op"),
                st.verdict.unwrap_or(Verdict::No),
            );
            let outcome = st.outcome;
            let invalidated = st.invalidated;
            self.pending.insert(
                op,
                PendingOp {
                    role,
                    peer,
                    proc: op.proc,
                    subop,
                    verdict: if invalidated { Verdict::No } else { verdict },
                    undo: None,
                    hint: Hint::null(),
                    durable: true,
                    in_commitment: true,
                    batch: None,
                    reply_to_client: false,
                    recovered: true,
                    logged_at: now,
                },
            );
            self.recovery_remaining.insert(op);
            self.metrics.resumed_commitments += 1;
            if role == Role::Coordinator {
                if verdict.is_yes() && !invalidated {
                    for obj in subop.conflict_objects().iter() {
                        self.active.insert(obj, op);
                    }
                }
                match outcome {
                    Some(o) => {
                        // Decision already durable: resume at COMMIT-REQ.
                        let peer = peer.expect("coordinator of a cross-server op has a peer");
                        let entry = decided.entry(peer).or_default();
                        match o {
                            Outcome::Committed => entry.0.push(op),
                            Outcome::Aborted => entry.1.push(op),
                        }
                    }
                    None => to_vote.push(op),
                }
            } else if verdict.is_yes() && !invalidated {
                for obj in subop.conflict_objects().iter() {
                    self.active.insert(obj, op);
                }
            }
        }

        // Coordinator resumptions with a surviving decision: re-send the
        // idempotent COMMIT-REQ/ABORT-REQ and wait for the ACK.
        for (peer, (commits, aborts)) in decided {
            let batch_id = self.next_batch;
            self.next_batch += 1;
            for op in commits.iter().chain(aborts.iter()) {
                if let Some(p) = self.pending.get_mut(op) {
                    p.batch = Some(batch_id);
                }
            }
            self.batches.insert(
                batch_id,
                CommitBatch {
                    participant: peer,
                    ops: commits.iter().chain(aborts.iter()).copied().collect(),
                    votes: BTreeMap::new(),
                    phase: BatchPhase::AwaitingAck,
                    commits: commits.clone(),
                    aborts: aborts.clone(),
                },
            );
            self.send(
                Endpoint::Server(peer),
                cx_types::Payload::CommitDecision { commits, aborts },
                out,
            );
            self.arm_batch_retry(batch_id, out);
        }

        // Coordinator resumptions without a decision: fresh VOTE round.
        if !to_vote.is_empty() {
            for op in &to_vote {
                if let Some(p) = self.pending.get_mut(op) {
                    p.in_commitment = false; // launch_commitment re-marks
                }
            }
            self.launch_commitment(now, to_vote, true, out);
        }

        // Participant resumptions: ask each coordinator for the outcome.
        let mut queries: BTreeMap<ServerId, Vec<OpId>> = BTreeMap::new();
        for &op in &parti_ops {
            if let Some(peer) = self.pending.get(&op).and_then(|p| p.peer) {
                queries.entry(peer).or_default().push(op);
            } else {
                // A local mutation's records are never half-completed
                // (Result+Commit are appended together), so a participant
                // record without a peer means a torn local append: the
                // operation never happened; drop it.
                self.recovery_remaining.remove(&op);
                self.wal.prune_op(&op);
                self.pending.remove(&op);
            }
        }
        for (coord, ops) in queries {
            self.send(
                Endpoint::Server(coord),
                cx_types::Payload::QueryOutcome { ops },
                out,
            );
        }

        // Re-read the affected rows from the cold database: resumption
        // works against on-disk state, the cache died with the server.
        let mut pages: Vec<u64> = Vec::new();
        for op in self.recovery_remaining.iter() {
            if let Some(p) = self.pending.get(op) {
                pages.extend(p.subop.objects().iter().map(|o| cx_simio::object_page(&o)));
            }
        }
        if !pages.is_empty() {
            self.recovery_reads_pending = true;
            let token = self.token();
            self.io.insert(token, super::IoCont::RecoveryReadsDone);
            out.push(Action::DbRandomRead { token, pages });
        }

        // A single query round is not enough when the coordinator is
        // *also* down (double-crash schedules): the QueryOutcome just sent
        // is lost with its dead incarnation. Retry until everything
        // half-completed is resolved.
        if !self.recovery_remaining.is_empty() {
            self.arm_query_retry(out);
        }

        self.maybe_finish_recovery(now, out);
    }

    fn arm_query_retry(&mut self, out: &mut Vec<Action>) {
        let token = super::QUERY_TIMER_BIT | self.token();
        out.push(Action::SetTimer {
            token,
            delay_ns: self.cfg.presumed_abort_timeout_ns,
        });
    }

    /// The recovery retry timer fired: re-send outcome queries and
    /// re-drive coordinator-side resumption batches for whatever is still
    /// unresolved, then re-arm. Both messages are idempotent, so a retry
    /// racing a late answer is harmless.
    pub(crate) fn on_query_retry_timer(&mut self, now: SimTime, out: &mut Vec<Action>) {
        let _ = now;
        if !self.recovering || self.crashed {
            return; // recovery finished (or died again); retries stop
        }
        let mut queries: BTreeMap<ServerId, Vec<OpId>> = BTreeMap::new();
        let mut batches: Vec<u64> = Vec::new();
        for op in self.recovery_remaining.iter() {
            let Some(p) = self.pending.get(op) else {
                continue;
            };
            match p.role {
                Role::Participant => {
                    if let Some(peer) = p.peer {
                        queries.entry(peer).or_default().push(*op);
                    }
                }
                Role::Coordinator => {
                    if let Some(b) = p.batch {
                        if !batches.contains(&b) {
                            batches.push(b);
                        }
                    }
                }
            }
        }
        for (coord, ops) in queries {
            self.send(
                Endpoint::Server(coord),
                cx_types::Payload::QueryOutcome { ops },
                out,
            );
        }
        for batch in batches {
            self.redrive_batch(batch, out);
        }
        self.arm_query_retry(out);
    }

    /// One half-completed operation was resolved.
    pub(crate) fn note_recovery_progress(&mut self, now: SimTime, op: OpId, out: &mut Vec<Action>) {
        if self.recovery_remaining.remove(&op) {
            self.maybe_finish_recovery(now, out);
        }
    }

    pub(crate) fn maybe_finish_recovery(&mut self, now: SimTime, out: &mut Vec<Action>) {
        if !self.recovering || !self.recovery_remaining.is_empty() || self.recovery_reads_pending {
            return;
        }
        self.recovering = false;
        self.flush_dirty(out);
        // Serve everything that queued while we were recovering.
        let waiting: Vec<_> = self.recovery_wait.drain(..).collect();
        for (from, payload) in waiting {
            self.on_msg(now, from, payload, out);
        }
    }

    /// True while the recovery protocol is running (used by the cluster to
    /// measure the Table V recovery time).
    pub fn is_recovering(&self) -> bool {
        self.recovering
    }

    /// Roll back a pending operation's local effects, whether it was
    /// executed in this incarnation (volatile undo token) or rebuilt from
    /// the log after a crash (semantic inversion of the sub-op).
    pub(crate) fn rollback_pending(&mut self, op: &OpId) {
        let Some(p) = self.pending.get_mut(op) else {
            return;
        };
        if let Some(undo) = p.undo.take() {
            self.store.undo(undo);
        } else if p.recovered && p.verdict.is_yes() {
            let subop = p.subop;
            revert_subop(&mut self.store, &subop);
        }
    }
}

/// Semantically invert a sub-op against the current store. Used only on
/// the recovery path, where the volatile undo token is gone. Correct under
/// the active-object exclusivity guarantee: between execution and
/// commitment no other process modified these objects.
pub(crate) fn revert_subop(store: &mut MetaStore, subop: &SubOp) {
    use cx_types::FileKind;
    match *subop {
        SubOp::InsertEntry {
            parent,
            name,
            child,
            ..
        } => {
            if store.lookup(parent, name) == Some(child) {
                let _ = store.apply(&SubOp::RemoveEntry {
                    parent,
                    name,
                    child,
                });
            }
        }
        SubOp::RemoveEntry {
            parent,
            name,
            child,
        } => {
            if store.lookup(parent, name).is_none() {
                let _ = store.apply(&SubOp::InsertEntry {
                    parent,
                    name,
                    child,
                    kind: FileKind::Regular,
                });
            }
        }
        SubOp::CreateInode { ino, .. } => {
            if store.inode(ino).is_some() {
                let _ = store.apply(&SubOp::ReleaseInode { ino });
            }
        }
        SubOp::ReleaseInode { ino } | SubOp::DecNlink { ino } => {
            if store.inode(ino).is_some() {
                let _ = store.apply(&SubOp::IncNlink { ino });
            } else {
                // the decrement freed it: it had nlink 1
                store.seed_inode(ino, FileKind::Regular, 1);
            }
        }
        SubOp::IncNlink { ino } => {
            let _ = store.apply(&SubOp::DecNlink { ino });
        }
        SubOp::TouchInode { .. }
        | SubOp::ReadInode { .. }
        | SubOp::ReadEntry { .. }
        | SubOp::ReadDir { .. } => {}
    }
}
