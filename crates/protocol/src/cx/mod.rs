//! The Cx server engine (§III of the paper).
//!
//! A Cx metadata server plays two roles at once:
//!
//! * **Execution phase** (`exec`): sub-op requests arrive from client
//!   processes, are checked against the *active objects* of pending
//!   operations (conflict detection), executed against the in-memory
//!   store, logged as Result-Records, and answered with YES/NO plus a
//!   conflict hint.
//! * **Commitment phase** (`commit`): the coordinator lazily batches
//!   commitments (VOTE → YES/NO → COMMIT-REQ/ABORT-REQ → ACK →
//!   Complete-Record), launching immediately on conflicts, L-COM requests,
//!   disagreements, or log pressure.
//!
//! Crash/recovery (`recovery`) rebuilds the volatile state from the durable
//! log prefix and resumes half-completed commitments (§III-D).

mod commit;
mod exec;
mod recovery;

use crate::action::{Action, Endpoint, ServerEngine};
use crate::stats::{ProtoMetrics, ServerStats};
use crate::trigger::TriggerState;
use cx_mdstore::{MetaStore, Undo};
use cx_obs::{EngineGauges, ObsSink};
use cx_sim::det_rng;
use cx_types::FxHashMap;
use cx_types::{
    ClusterConfig, CxConfig, Hint, ObjectId, OpId, Payload, ProcId, Role, ServerId, SimTime, SubOp,
    VecPool, Verdict,
};
use cx_wal::{Outcome, Record, SeqNo, Wal};
use rand::rngs::SmallRng;
use std::collections::{BTreeMap, VecDeque};

/// One executed-but-uncommitted operation on this server.
#[derive(Debug, Clone)]
pub(crate) struct PendingOp {
    pub role: Role,
    pub peer: Option<ServerId>,
    pub proc: ProcId,
    pub subop: SubOp,
    pub verdict: Verdict,
    /// Undo token if the execution succeeded and modified state.
    pub undo: Option<Undo>,
    /// Conflict hint attached to this operation's response (§III-C).
    pub hint: Hint,
    /// Result-Record flushed to disk.
    pub durable: bool,
    /// A commitment involving this op is in flight.
    pub in_commitment: bool,
    /// Coordinator-side batch id, once committing.
    pub batch: Option<u64>,
    /// The client asked for an immediate commitment (L-COM): report the
    /// outcome when the commitment completes.
    pub reply_to_client: bool,
    /// Rebuilt from the log after a crash; rollback uses semantic
    /// inversion of the sub-op instead of a volatile undo token.
    pub recovered: bool,
    /// When the execution was logged — the batch-age histogram measures
    /// how long the oldest member waited for its commitment round.
    pub logged_at: SimTime,
}

/// A sub-op request that could not run yet (conflict or full log).
#[derive(Debug, Clone)]
pub(crate) struct QueuedReq {
    pub op_id: OpId,
    pub subop: SubOp,
    pub role: Role,
    pub peer: Option<ServerId>,
    pub colocated: Option<SubOp>,
    /// Pending operations whose commitment preceded this request's
    /// execution — becomes the response's conflict hint (§III-C).
    pub hint_ops: Vec<OpId>,
    /// Conflict already counted for this request (re-blocking after an
    /// unblock or invalidation must not double-count).
    pub counted: bool,
}

/// Phases of one coordinator-side commitment batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum BatchPhase {
    /// VOTE sent, waiting for the participant's verdicts.
    Voting,
    /// Commit/Abort records flushing.
    LoggingDecision,
    /// COMMIT-REQ/ABORT-REQ sent, waiting for ACK.
    AwaitingAck,
    /// Complete-Records flushing.
    Completing,
}

/// A batched commitment this server coordinates.
#[derive(Debug, Clone)]
pub(crate) struct CommitBatch {
    pub participant: ServerId,
    pub ops: Vec<OpId>,
    pub votes: BTreeMap<OpId, Verdict>,
    pub phase: BatchPhase,
    pub commits: Vec<OpId>,
    pub aborts: Vec<OpId>,
}

/// Disk-completion continuations.
#[derive(Debug, Clone)]
pub(crate) enum IoCont {
    /// A Result-Record became durable: answer the client, enqueue the lazy
    /// commitment (coordinator), release deferred votes (participant).
    ResultDurable { op_id: OpId, seq: SeqNo },
    /// A local (single-server) mutation's records became durable.
    LocalDurable {
        op_id: OpId,
        proc: ProcId,
        verdict: Verdict,
        hint: Hint,
        seq: SeqNo,
    },
    /// Coordinator: commit/abort records durable → send the decision.
    DecisionDurable { batch: u64, seq: SeqNo },
    /// Participant: outcome records durable → apply, prune, ACK.
    OutcomeDurable {
        coordinator: ServerId,
        commits: Vec<OpId>,
        aborts: Vec<OpId>,
        seq: SeqNo,
    },
    /// Coordinator: Complete-Records durable → finish the batch.
    CompleteDurable { batch: u64, seq: SeqNo },
    /// Database write-back finished.
    WritebackDone,
    /// Recovery log scan finished.
    RecoveryScanDone,
    /// Recovery cold-cache row reads finished.
    RecoveryReadsDone,
}

/// The Cx metadata server engine.
pub struct CxServer {
    pub(crate) id: ServerId,
    pub(crate) store: MetaStore,
    pub(crate) wal: Wal,
    pub(crate) cfg: CxConfig,
    pub(crate) fail_prob: f64,
    pub(crate) rng: SmallRng,

    /// Executed, uncommitted operations.
    pub(crate) pending: FxHashMap<OpId, PendingOp>,
    /// Active objects: modified by a pending operation, conflict-checked
    /// on every access (§III-B). Maps to the *latest* pending op touching
    /// the object; re-dispatch re-checks, so chains resolve correctly.
    pub(crate) active: FxHashMap<ObjectId, OpId>,
    /// Requests blocked behind a pending operation's commitment.
    pub(crate) blocked: FxHashMap<OpId, Vec<QueuedReq>>,
    /// Requests blocked on log space (Figure 7a).
    pub(crate) log_wait: VecDeque<QueuedReq>,
    /// Coordinator-role ops awaiting a lazy commitment batch.
    pub(crate) lazy_queue: Vec<OpId>,
    /// Local mutations awaiting batched write-back and pruning.
    pub(crate) lazy_local: Vec<OpId>,
    /// In-flight commitment batches this server coordinates.
    pub(crate) batches: FxHashMap<u64, CommitBatch>,
    pub(crate) next_batch: u64,
    /// Participant-side votes that could not be answered yet
    /// (op → requesting coordinator).
    pub(crate) deferred_votes: BTreeMap<OpId, ServerId>,
    /// Last finished operation outcome per process, for L-COM requests
    /// that race with a completing lazy commitment.
    pub(crate) recent_outcomes: FxHashMap<ProcId, (OpId, Outcome)>,
    pub(crate) trigger: TriggerState,
    pub(crate) io: FxHashMap<u64, IoCont>,
    pub(crate) next_token: u64,
    pub(crate) stats: ServerStats,
    /// Introspection-plane counters (kept out of `stats`: the golden
    /// digests hash `ServerStats`, these must stay invisible to them).
    pub(crate) metrics: ProtoMetrics,
    /// Crashed servers drop everything until `recover` runs.
    pub(crate) crashed: bool,
    /// Recovery in progress: new requests wait (§III-D: "the whole file
    /// system stops responding new requests").
    pub(crate) recovering: bool,
    pub(crate) recovery_wait: VecDeque<(Endpoint, Payload)>,
    /// Half-completed operations still to resolve before recovery ends.
    pub(crate) recovery_remaining: std::collections::BTreeSet<OpId>,
    /// Pending presumed-abort grace timers (token → (participant, op)).
    pub(crate) orphan_timers: FxHashMap<u64, (ServerId, OpId)>,
    /// Deferred-vote grace timers (token → (coordinator, op)): a VOTE
    /// arrived for an operation whose sub-op request has not reached this
    /// server yet.
    pub(crate) vote_timers: FxHashMap<u64, (ServerId, OpId)>,
    /// Cold-cache reads of affected rows still in flight during recovery.
    pub(crate) recovery_reads_pending: bool,
    /// Recycled `Vec<OpId>` buffers for batched commitment messages:
    /// drawn when building VOTE/COMMIT-REQ/ACK payloads, returned when a
    /// received batch is drained.
    pub(crate) op_pool: VecPool<OpId>,
    /// Recycled record buffers for multi-record log appends.
    pub(crate) rec_pool: VecPool<Record>,
    /// Observability sink: stamps `Completed` when the Complete-Record
    /// lands (a milestone only the engine sees). `Off` unless installed.
    pub(crate) obs: ObsSink,
}

/// Database region holding the log table in the `log_in_database` mode.
pub(crate) const LOG_TABLE_REGION: u64 = 1 << 55;

/// High bit distinguishing orphan-timer tokens from trigger generations.
pub(crate) const ORPHAN_TIMER_BIT: u64 = 1 << 63;
/// Bit marking deferred-vote presumed-abort timers.
pub(crate) const VOTE_TIMER_BIT: u64 = 1 << 62;
/// Bit marking the recovery outcome-query retry timer: a recovering
/// participant re-sends QueryOutcome until every half-completed op is
/// resolved, so recovery converges even when the coordinator was down for
/// the first query (double-crash schedules).
pub(crate) const QUERY_TIMER_BIT: u64 = 1 << 61;
/// Bit marking commitment re-drive timers (low bits carry the batch id).
/// Armed only when `CxConfig::commit_retry_timeout_ns` is set.
pub(crate) const BATCH_TIMER_BIT: u64 = 1 << 60;

impl CxServer {
    pub fn new(id: ServerId, cfg: &ClusterConfig) -> Self {
        Self {
            id,
            store: MetaStore::new(),
            wal: Wal::new(cfg.cx.log_limit_bytes),
            cfg: cfg.cx,
            fail_prob: cfg.failure.subop_fail_prob,
            rng: det_rng(cfg.seed, 0x5e57_0000 ^ id.0 as u64),
            pending: FxHashMap::default(),
            active: FxHashMap::default(),
            blocked: FxHashMap::default(),
            log_wait: VecDeque::new(),
            lazy_queue: Vec::new(),
            lazy_local: Vec::new(),
            batches: FxHashMap::default(),
            next_batch: 0,
            deferred_votes: BTreeMap::new(),
            recent_outcomes: FxHashMap::default(),
            trigger: TriggerState::new(cfg.cx.trigger),
            io: FxHashMap::default(),
            next_token: 0,
            stats: ServerStats::default(),
            metrics: ProtoMetrics::default(),
            crashed: false,
            recovering: false,
            recovery_wait: VecDeque::new(),
            recovery_remaining: std::collections::BTreeSet::new(),
            orphan_timers: FxHashMap::default(),
            vote_timers: FxHashMap::default(),
            recovery_reads_pending: false,
            op_pool: VecPool::default(),
            rec_pool: VecPool::default(),
            obs: ObsSink::Off,
        }
    }

    /// This server's id.
    pub fn id(&self) -> ServerId {
        self.id
    }

    pub(crate) fn token(&mut self) -> u64 {
        let t = self.next_token;
        self.next_token += 1;
        t
    }

    /// A pooled single-element `Vec<OpId>` (immediate commitments and
    /// single-op decisions reuse batch buffers like everything else).
    pub(crate) fn op_vec1(&mut self, op: OpId) -> Vec<OpId> {
        let mut v = self.op_pool.get();
        v.push(op);
        v
    }

    /// Append records as one logical disk write; returns (max seq, bytes).
    pub(crate) fn append_records(
        &mut self,
        recs: impl IntoIterator<Item = Record>,
    ) -> Result<(SeqNo, u64), cx_types::CxError> {
        let mut max_seq = SeqNo(0);
        let mut total = 0;
        for rec in recs {
            let (seq, bytes) = self.wal.append(rec)?;
            max_seq = max_seq.max(seq);
            total += bytes;
        }
        Ok((max_seq, total))
    }

    /// Emit the disk write for already-appended records: a sequential
    /// append to the log-structured file or, with the `log_in_database`
    /// ablation, a synchronous write of log-table rows into the database
    /// (the alternative §IV-A rejects).
    pub(crate) fn flush_records(
        &mut self,
        seq: SeqNo,
        bytes: u64,
        cont: IoCont,
        out: &mut Vec<Action>,
    ) {
        let _ = seq;
        let token = self.token();
        self.io.insert(token, cont);
        if self.cfg.log_in_database {
            // log-table rows are appended in key order: sequential pages
            // within the database's log region
            let page = LOG_TABLE_REGION + self.wal.total_appended_bytes() / 4096;
            out.push(Action::DbSyncWrite { token, page });
        } else {
            out.push(Action::LogAppend { token, bytes });
        }
    }

    pub(crate) fn send(&mut self, to: Endpoint, payload: Payload, out: &mut Vec<Action>) {
        out.push(Action::Send { to, payload });
    }
}

impl ServerEngine for CxServer {
    fn on_start(&mut self, _now: SimTime, _out: &mut Vec<Action>) {}

    fn on_msg(&mut self, now: SimTime, from: Endpoint, payload: Payload, out: &mut Vec<Action>) {
        if self.crashed {
            return; // messages to a dead server are lost
        }
        if self.recovering
            && !matches!(
                payload,
                Payload::QueryOutcome { .. }
                    | Payload::VoteResult { .. }
                    | Payload::Ack { .. }
                    | Payload::CommitDecision { .. }
                    | Payload::Vote { .. }
            )
        {
            // §III-D: during recovery the file system stops accepting new
            // requests; commitment traffic still flows.
            self.recovery_wait.push_back((from, payload));
            return;
        }
        self.trigger.on_activity(now);
        match payload {
            Payload::SubOpReq {
                op_id,
                subop,
                role,
                peer,
                colocated,
            } => {
                let req = QueuedReq {
                    op_id,
                    subop,
                    role,
                    peer,
                    colocated,
                    hint_ops: Vec::new(),
                    counted: false,
                };
                self.handle_request(now, req, out);
            }
            Payload::LCom { op_id } => self.on_lcom(now, op_id, out),
            Payload::Vote { ops, order_after } => {
                let Endpoint::Server(coord) = from else {
                    return;
                };
                self.on_vote(now, coord, ops, order_after, out);
            }
            Payload::VoteResult { results } => self.on_vote_result(now, results, out),
            Payload::CommitDecision { commits, aborts } => {
                let Endpoint::Server(coord) = from else {
                    return;
                };
                self.on_commit_decision(now, coord, commits, aborts, out);
            }
            Payload::Ack { ops } => self.on_ack(now, ops, out),
            Payload::CommitmentReq { pending, sweep } => {
                let Endpoint::Server(parti) = from else {
                    return;
                };
                self.on_commitment_req(now, parti, pending, sweep, out);
            }
            Payload::QueryOutcome { ops } => {
                let Endpoint::Server(parti) = from else {
                    return;
                };
                self.on_query_outcome(now, parti, ops, out);
            }
            _ => {}
        }
    }

    fn on_disk_done(&mut self, now: SimTime, token: u64, out: &mut Vec<Action>) {
        if self.crashed {
            return;
        }
        let Some(cont) = self.io.remove(&token) else {
            return; // IO issued before a crash; stale
        };
        self.trigger.on_activity(now);
        self.dispatch_io(now, cont, out);
    }

    fn on_timer(&mut self, now: SimTime, token: u64, out: &mut Vec<Action>) {
        if self.crashed {
            return;
        }
        // Commitment-protocol timers must keep firing *during* recovery:
        // the query retry exists exactly for that window, deferred-vote
        // grace periods answer re-driven VOTEs for operations lost in a
        // torn tail, and batch re-drives unwedge peers whose participant
        // crashed with the VOTE in flight. Only the batch trigger waits
        // for recovery to finish.
        if token & QUERY_TIMER_BIT != 0 {
            self.on_query_retry_timer(now, out);
        } else if token & ORPHAN_TIMER_BIT != 0 {
            self.on_orphan_timer(now, token, out);
        } else if token & VOTE_TIMER_BIT != 0 {
            self.on_vote_timer(now, token, out);
        } else if token & BATCH_TIMER_BIT != 0 {
            self.on_batch_retry_timer(now, token & !BATCH_TIMER_BIT, out);
        } else if !self.recovering {
            self.on_trigger_timer(now, token, out);
        }
    }

    fn quiesce(&mut self, now: SimTime, out: &mut Vec<Action>) {
        if self.crashed {
            return;
        }
        self.launch_lazy_batch(now, true, out);
    }

    fn is_quiesced(&self) -> bool {
        self.pending.is_empty()
            && self.batches.is_empty()
            && self.blocked.values().all(|v| v.is_empty())
            && self.log_wait.is_empty()
            && self.lazy_queue.is_empty()
            && self.deferred_votes.is_empty()
            && self.io.is_empty()
    }

    fn store(&self) -> &MetaStore {
        &self.store
    }

    fn store_mut(&mut self) -> &mut MetaStore {
        &mut self.store
    }

    fn wal(&self) -> Option<&Wal> {
        Some(&self.wal)
    }

    fn stats(&self) -> &ServerStats {
        &self.stats
    }

    fn proto_metrics(&self) -> ProtoMetrics {
        let mut m = self.metrics.clone();
        m.wal_truncations = self.wal.truncations();
        m
    }

    fn supports_crash(&self) -> bool {
        true
    }

    fn crash(&mut self, now: SimTime) {
        self.crash_impl(now, 0);
    }

    fn crash_torn(&mut self, now: SimTime, extra_bytes: u64) {
        self.crash_impl(now, extra_bytes);
    }

    fn recover(&mut self, now: SimTime, out: &mut Vec<Action>) -> u64 {
        self.recover_impl(now, out)
    }

    fn is_recovering(&self) -> bool {
        self.recovering
    }

    fn install_obs(&mut self, sink: ObsSink) {
        self.obs = sink;
    }

    fn obs_gauges(&self) -> EngineGauges {
        EngineGauges {
            active_objects: self.active.len() as u64,
            pending_batch_ops: (self.lazy_queue.len()
                + self.lazy_local.len()
                + self.batches.values().map(|b| b.ops.len()).sum::<usize>())
                as u64,
        }
    }

    fn debug_summary(&self) -> String {
        if self.is_quiesced() {
            return String::new();
        }
        let blocked: Vec<String> = self
            .blocked
            .iter()
            .map(|(holder, q)| {
                let holder_state = self
                    .pending
                    .get(holder)
                    .map(|p| format!("role={:?} in_commitment={}", p.role, p.in_commitment))
                    .unwrap_or_else(|| "NO-PENDING".into());
                format!(
                    "{holder}[{holder_state}]<-{:?}",
                    q.iter().map(|r| r.op_id.to_string()).collect::<Vec<_>>()
                )
            })
            .collect();
        format!(
            "pending={} in_commitment={} lazy={} local={} batches={:?} blocked={:?} log_wait={} deferred={:?} io={}",
            self.pending.len(),
            self.pending.values().filter(|p| p.in_commitment).count(),
            self.lazy_queue.len(),
            self.lazy_local.len(),
            self.batches
                .iter()
                .map(|(id, b)| format!("{id}:{:?}({} ops,{} votes)", b.phase, b.ops.len(), b.votes.len()))
                .collect::<Vec<_>>(),
            blocked,
            self.log_wait.len(),
            self.deferred_votes.keys().map(|k| k.to_string()).collect::<Vec<_>>(),
            self.io.len(),
        )
    }
}
