//! Commitment phase: lazy batches, immediate commitments, votes,
//! decisions, acknowledgements, and the L-COM/ALL-NO client exchange
//! (§III-B steps 3–7, §III-C).

use super::{
    BatchPhase, CommitBatch, CxServer, IoCont, PendingOp, QueuedReq, ORPHAN_TIMER_BIT,
    VOTE_TIMER_BIT,
};
use crate::action::{Action, Endpoint};
use crate::trigger::TriggerVerdict;
use cx_types::{Hint, OpId, Payload, Role, ServerId, SimTime, Verdict};
use cx_wal::{Outcome, Record};
use std::collections::BTreeMap;

impl CxServer {
    // ------------------------------------------------------------------
    // disk completions
    // ------------------------------------------------------------------

    pub(crate) fn dispatch_io(&mut self, now: SimTime, cont: IoCont, out: &mut Vec<Action>) {
        match cont {
            IoCont::ResultDurable { op_id, seq } => {
                self.wal.mark_durable(seq);
                let Some(p) = self.pending.get_mut(&op_id) else {
                    return;
                };
                p.durable = true;
                let (verdict, hint, role, proc) = (p.verdict, p.hint.clone(), p.role, p.proc);
                self.send(
                    Endpoint::Proc(proc),
                    Payload::SubOpResp {
                        op_id,
                        verdict,
                        hint,
                    },
                    out,
                );
                if role == Role::Coordinator {
                    self.lazy_queue.push(op_id);
                    let v = self.trigger.on_pending(now);
                    self.apply_trigger(now, v, out);
                }
                if let Some(coord) = self.deferred_votes.remove(&op_id) {
                    self.send_vote_result(coord, vec![(op_id, verdict)], out);
                }
            }
            IoCont::LocalDurable {
                op_id,
                proc,
                verdict,
                hint,
                seq,
            } => {
                self.wal.mark_durable(seq);
                self.send(
                    Endpoint::Proc(proc),
                    Payload::SubOpResp {
                        op_id,
                        verdict,
                        hint,
                    },
                    out,
                );
            }
            IoCont::DecisionDurable { batch, seq } => {
                self.wal.mark_durable(seq);
                let Some(b) = self.batches.get_mut(&batch) else {
                    return;
                };
                b.phase = BatchPhase::AwaitingAck;
                let to = b.participant;
                let commits = self.op_pool.get_copied(&b.commits);
                let aborts = self.op_pool.get_copied(&b.aborts);
                self.send(
                    Endpoint::Server(to),
                    Payload::CommitDecision { commits, aborts },
                    out,
                );
            }
            IoCont::OutcomeDurable {
                coordinator,
                commits,
                aborts,
                seq,
            } => {
                self.wal.mark_durable(seq);
                let mut acked = self.op_pool.get();
                let mut objs = Vec::new();
                for (op, _outcome) in commits
                    .iter()
                    .map(|o| (*o, Outcome::Committed))
                    .chain(aborts.iter().map(|o| (*o, Outcome::Aborted)))
                {
                    acked.push(op);
                    if let Some(p) = self.pending.get(&op) {
                        objs.extend(p.subop.objects().iter());
                    }
                    self.wal.prune_op(&op);
                    self.release_op(now, op, out);
                    self.pending.remove(&op);
                    self.note_recovery_progress(now, op, out);
                }
                self.send(
                    Endpoint::Server(coordinator),
                    Payload::Ack { ops: acked },
                    out,
                );
                // The decision's buffers drain here; recycle them.
                self.op_pool.put(commits);
                self.op_pool.put(aborts);
                self.flush_dirty_of(objs, out);
            }
            IoCont::CompleteDurable { batch, seq } => {
                self.wal.mark_durable(seq);
                let Some(b) = self.batches.remove(&batch) else {
                    return;
                };
                let mut objs = Vec::new();
                for op in b.commits.iter().chain(b.aborts.iter()) {
                    if let Some(p) = self.pending.get(op) {
                        objs.extend(p.subop.objects().iter());
                    }
                }
                for &op in &b.commits {
                    self.finish_op(now, op, Outcome::Committed, out);
                }
                for &op in &b.aborts {
                    self.finish_op(now, op, Outcome::Aborted, out);
                }
                let CommitBatch {
                    ops,
                    commits,
                    aborts,
                    ..
                } = b;
                self.op_pool.put(ops);
                self.op_pool.put(commits);
                self.op_pool.put(aborts);
                self.flush_dirty_of(objs, out);
                self.drain_log_wait(now, out);
            }
            IoCont::WritebackDone => {}
            IoCont::RecoveryScanDone => self.on_recovery_scan_done(now, out),
            IoCont::RecoveryReadsDone => {
                self.recovery_reads_pending = false;
                self.maybe_finish_recovery(now, out);
            }
        }
    }

    /// Coordinator-side completion of one operation.
    fn finish_op(&mut self, now: SimTime, op: OpId, outcome: Outcome, out: &mut Vec<Action>) {
        match outcome {
            Outcome::Committed => self.stats.ops_committed += 1,
            Outcome::Aborted => {
                self.stats.ops_aborted += 1;
                self.metrics.aborts += 1;
            }
        }
        self.obs
            .op_phase(op, cx_obs::Phase::Completed, now, Some(self.id));
        self.release_op(now, op, out);
        if let Some(p) = self.pending.remove(&op) {
            self.recent_outcomes.insert(p.proc, (op, outcome));
            if p.reply_to_client {
                let payload = match outcome {
                    Outcome::Committed => Payload::Committed { op_id: op },
                    // "ALL-NO … implies that all successful execution on
                    // affected servers have been aborted" (step 7b).
                    Outcome::Aborted => Payload::AllNo { op_id: op },
                };
                self.send(Endpoint::Proc(p.proc), payload, out);
            }
        }
        self.wal.prune_op(&op);
        self.note_recovery_progress(now, op, out);
    }

    /// Issue a batched database write-back of every dirty object. The
    /// batch is split into elevator-sized chunks so synchronous log
    /// flushes can interleave (background write-back must not block the
    /// latency-critical log for tens of milliseconds).
    pub(crate) fn flush_dirty(&mut self, out: &mut Vec<Action>) {
        let pages = self.store.take_dirty_pages();
        if pages.is_empty() {
            return;
        }
        self.stats.writebacks += 1;
        for chunk in pages.chunks(32) {
            let token = self.token();
            self.io.insert(token, IoCont::WritebackDone);
            out.push(Action::DbWriteback {
                token,
                pages: chunk.to_vec(),
            });
        }
    }

    /// Write back only the given objects (immediate commitments touch a
    /// handful of operations; flushing the whole dirty set would turn
    /// every conflict into a full cache flush).
    pub(crate) fn flush_dirty_of(&mut self, objs: Vec<cx_types::ObjectId>, out: &mut Vec<Action>) {
        let pages = self.store.take_dirty_pages_of(objs);
        if pages.is_empty() {
            return;
        }
        self.stats.writebacks += 1;
        for chunk in pages.chunks(32) {
            let token = self.token();
            self.io.insert(token, IoCont::WritebackDone);
            out.push(Action::DbWriteback {
                token,
                pages: chunk.to_vec(),
            });
        }
    }

    // ------------------------------------------------------------------
    // lazy batching and triggers
    // ------------------------------------------------------------------

    pub(crate) fn apply_trigger(
        &mut self,
        now: SimTime,
        verdict: TriggerVerdict,
        out: &mut Vec<Action>,
    ) {
        match verdict {
            TriggerVerdict::Fire => self.launch_lazy_batch(now, false, out),
            TriggerVerdict::Arm(delay_ns) => out.push(Action::SetTimer {
                token: self.trigger.generation(),
                delay_ns,
            }),
            TriggerVerdict::Wait => {}
        }
    }

    pub(crate) fn on_trigger_timer(&mut self, now: SimTime, token: u64, out: &mut Vec<Action>) {
        let v = self.trigger.on_timer(now, token);
        self.apply_trigger(now, v, out);
    }

    /// A local mutation joined the batch queue (its write-back and pruning
    /// ride the next lazy batch).
    pub(crate) fn note_local_pending(&mut self, now: SimTime, op: OpId, out: &mut Vec<Action>) {
        self.lazy_local.push(op);
        let v = self.trigger.on_pending(now);
        self.apply_trigger(now, v, out);
    }

    /// Launch commitments for everything queued: cross-server operations
    /// grouped per participant ("a large number of postponed commitments
    /// can be batched", §I), local mutations flushed and pruned.
    pub(crate) fn launch_lazy_batch(&mut self, now: SimTime, _force: bool, out: &mut Vec<Action>) {
        let ops = std::mem::replace(&mut self.lazy_queue, self.op_pool.get());
        if !ops.is_empty() {
            self.launch_commitment(now, ops, false, out);
        }
        let locals = std::mem::replace(&mut self.lazy_local, self.op_pool.get());
        if !locals.is_empty() {
            for op in &locals {
                self.wal.prune_op(op);
            }
            self.flush_dirty(out);
            self.drain_log_wait(now, out);
        }
        self.op_pool.put(locals);
        self.trigger.on_batch_launched(now);
    }

    /// Start a commitment for coordinator-role pending operations.
    pub(crate) fn launch_commitment(
        &mut self,
        now: SimTime,
        ops: Vec<OpId>,
        immediate: bool,
        out: &mut Vec<Action>,
    ) {
        // Group by participant; skip ops already being committed. Marking
        // `in_commitment` as we group also deduplicates: the same op can
        // legitimately appear twice in `ops` (explicitly plus swept from
        // the lazy queue), and a duplicate in a batch would wait for a
        // vote count the participant can never reach.
        let mut groups: BTreeMap<ServerId, Vec<OpId>> = BTreeMap::new();
        for &op in &ops {
            let Some(p) = self.pending.get_mut(&op) else {
                continue;
            };
            if p.in_commitment || p.role != Role::Coordinator {
                continue;
            }
            let Some(peer) = p.peer else { continue };
            p.in_commitment = true;
            let slot = groups.entry(peer).or_insert_with(|| self.op_pool.get());
            slot.push(op);
        }
        self.op_pool.put(ops);
        for (participant, group) in groups {
            self.lazy_queue.retain(|op| !group.contains(op));
            for chunk in group.chunks(self.cfg.commit_batch_max.max(1)) {
                let batch_id = self.next_batch;
                self.next_batch += 1;
                for op in chunk {
                    let p = self.pending.get_mut(op).expect("grouped from pending");
                    p.batch = Some(batch_id);
                }
                let batch_ops = self.op_pool.get_copied(chunk);
                self.batches.insert(
                    batch_id,
                    CommitBatch {
                        participant,
                        ops: batch_ops,
                        votes: BTreeMap::new(),
                        phase: BatchPhase::Voting,
                        commits: self.op_pool.get(),
                        aborts: self.op_pool.get(),
                    },
                );
                if immediate {
                    self.stats.immediate_commitments += 1;
                } else {
                    self.stats.lazy_batches += 1;
                }
                let oldest = chunk
                    .iter()
                    .filter_map(|op| self.pending.get(op).map(|p| p.logged_at.0))
                    .min()
                    .unwrap_or(now.0);
                self.metrics.commitment_round(
                    chunk.len() as u64,
                    immediate,
                    now.0.saturating_sub(oldest),
                );
                // The coordinator's execution order: operations queued here
                // behind the voted ones have demonstrably not executed at
                // this coordinator, so the participant may invalidate them
                // to match our order (§III-C step 3).
                let mut order_after = self.op_pool.get();
                order_after.extend(
                    chunk
                        .iter()
                        .flat_map(|op| self.blocked.get(op).into_iter().flatten())
                        .map(|req| req.op_id),
                );
                let vote_ops = self.op_pool.get_copied(chunk);
                self.send(
                    Endpoint::Server(participant),
                    Payload::Vote {
                        ops: vote_ops,
                        order_after,
                    },
                    out,
                );
                self.arm_batch_retry(batch_id, out);
            }
            self.op_pool.put(group);
        }
    }

    /// Arm the commitment re-drive timer for a batch, when enabled. The
    /// paper's protocol never retransmits (servers are assumed not to
    /// fail); under injected crashes the timer re-sends the idempotent
    /// VOTE / COMMIT-REQ so a batch whose message died with a crashed
    /// participant incarnation eventually completes.
    pub(crate) fn arm_batch_retry(&mut self, batch_id: u64, out: &mut Vec<Action>) {
        let Some(delay_ns) = self.cfg.commit_retry_timeout_ns else {
            return;
        };
        out.push(Action::SetTimer {
            token: super::BATCH_TIMER_BIT | batch_id,
            delay_ns,
        });
    }

    /// The commitment re-drive timer fired: if the batch is still alive,
    /// re-send its in-flight message and re-arm.
    pub(crate) fn on_batch_retry_timer(
        &mut self,
        now: SimTime,
        batch_id: u64,
        out: &mut Vec<Action>,
    ) {
        let _ = now;
        if !self.batches.contains_key(&batch_id) {
            return; // completed; retries stop
        }
        self.redrive_batch(batch_id, out);
        self.arm_batch_retry(batch_id, out);
    }

    // ------------------------------------------------------------------
    // participant side: votes and decisions
    // ------------------------------------------------------------------

    /// VOTE received: answer from the Result-Record (§III-B step 4), or —
    /// disordered conflict — enforce the coordinator's execution order by
    /// invalidating the conflicting later execution (§III-C step 4).
    pub(crate) fn on_vote(
        &mut self,
        now: SimTime,
        coord: ServerId,
        ops: Vec<OpId>,
        order_after: Vec<OpId>,
        out: &mut Vec<Action>,
    ) {
        let mut ready = Vec::new();
        for &op in &ops {
            if let Some(p) = self.pending.get_mut(&op) {
                if p.durable {
                    p.in_commitment = true;
                    ready.push((op, p.verdict));
                } else {
                    // Result-Record still flushing; vote when durable.
                    self.deferred_votes.insert(op, coord);
                }
                continue;
            }
            if let Some(holder) = self.blocked_behind(op) {
                self.resolve_blocked_vote(now, coord, op, holder, &order_after, out);
                continue;
            }
            // Never saw this sub-op. Most likely its request is still in
            // flight from the client (both halves are sent concurrently):
            // defer the vote; if the request never shows up within the
            // grace period, presume the client died and vote NO.
            self.deferred_votes.insert(op, coord);
            let token = VOTE_TIMER_BIT | self.token();
            self.vote_timers.insert(token, (coord, op));
            out.push(Action::SetTimer {
                token,
                delay_ns: self.cfg.presumed_abort_timeout_ns,
            });
        }
        if !ready.is_empty() {
            self.send_vote_result(coord, ready, out);
        }
        // Both batch buffers came from the coordinator's pool; they refill
        // this server's own sends from here on.
        self.op_pool.put(ops);
        self.op_pool.put(order_after);
    }

    /// The op being voted on is blocked here behind `holder`.
    fn resolve_blocked_vote(
        &mut self,
        now: SimTime,
        coord: ServerId,
        op: OpId,
        holder: OpId,
        order_after: &[OpId],
        out: &mut Vec<Action>,
    ) {
        let holder_committing = self
            .pending
            .get(&holder)
            .map(|p| p.in_commitment)
            .unwrap_or(false);
        self.deferred_votes.insert(op, coord);
        if holder_committing || !order_after.contains(&holder) {
            // Either the holder's commitment is already in flight, or the
            // coordinator did not certify that the holder is queued behind
            // the voted op (so the holder may already be complete at its
            // client and must not be invalidated). Resolve by committing
            // the holder: once it finishes, `release_op` re-dispatches the
            // blocked request and the deferred vote fires after its
            // Result-Record flush. Vote-wait cycles across batches are
            // possible (x's vote waits on y's commitment whose vote waits
            // on x's batch), so the deferral carries a grace timer that
            // breaks the cycle with a NO vote.
            self.request_immediate(now, holder, out);
            let token = VOTE_TIMER_BIT | self.token();
            self.vote_timers.insert(token, (coord, op));
            out.push(Action::SetTimer {
                token,
                delay_ns: self.cfg.presumed_abort_timeout_ns,
            });
            return;
        }
        // Disordered conflict: invalidate the holder's execution, re-queue
        // it as a new arrival, and execute the voted-on op first (Fig 3b).
        let Some(mut holder_pending) = self.pending.remove(&holder) else {
            return;
        };
        self.stats.invalidations += 1;
        self.metrics.conflicts_disordered += 1;
        let _ = self.wal.invalidate_result(&holder);
        if let Some(undo) = holder_pending.undo.take() {
            self.store.undo(undo);
        }
        self.active.retain(|_, h| *h != holder);
        self.lazy_queue.retain(|o| *o != holder);

        // Everything blocked behind the holder runs now, the voted-on op
        // first; the invalidation did not *commit* the holder, so no hint
        // entry is added (the paper's Ep-A responds with [null]).
        let waiters = self.blocked.remove(&holder).unwrap_or_default();
        let (mut voted, rest): (Vec<QueuedReq>, Vec<QueuedReq>) =
            waiters.into_iter().partition(|r| r.op_id == op);
        for req in voted.drain(..) {
            self.handle_request(now, req, out);
        }
        for req in rest {
            self.handle_request(now, req, out);
        }
        // Re-queue the invalidated execution as a fresh arrival; it will
        // block behind the voted-on op's now-active objects and re-execute
        // with hint [op] after the commitment (Fig 3b's Ep-B → Rp[A]).
        let requeued = QueuedReq {
            op_id: holder,
            subop: holder_pending.subop,
            role: holder_pending.role,
            peer: holder_pending.peer,
            colocated: None,
            hint_ops: Vec::new(),
            counted: true,
        };
        self.handle_request(now, requeued, out);
    }

    /// The deferred-vote grace period expired: if the sub-op still has not
    /// executed here — it never arrived, or it is still blocked behind a
    /// commitment that may be cyclically waiting on this very vote — vote
    /// NO. A dropped blocked request is answered with a NO response so its
    /// client resolves through the disagreement path (L-COM → ALL-NO).
    pub(crate) fn on_vote_timer(&mut self, now: SimTime, token: u64, out: &mut Vec<Action>) {
        let Some((coord, op)) = self.vote_timers.remove(&token) else {
            return;
        };
        if self.pending.contains_key(&op) || self.deferred_votes.get(&op) != Some(&coord) {
            return; // executed meanwhile (or answered another way)
        }
        if self.blocked_behind(op).is_some() {
            if let Some(req) = self.drop_blocked_request(op) {
                self.send(
                    Endpoint::Proc(req.op_id.proc),
                    Payload::SubOpResp {
                        op_id: op,
                        verdict: Verdict::No,
                        hint: Hint::null(),
                    },
                    out,
                );
            }
        }
        self.vote_no_for_unknown(now, op, coord, out);
    }

    fn vote_no_for_unknown(
        &mut self,
        now: SimTime,
        op: OpId,
        coord: ServerId,
        out: &mut Vec<Action>,
    ) {
        let rec = Record::Result {
            op_id: op,
            role: Role::Participant,
            peer: Some(coord),
            subop: cx_types::SubOp::ReadInode {
                ino: cx_types::InodeNo(0),
            },
            verdict: Verdict::No,
            invalidated: false,
        };
        self.pending.insert(
            op,
            PendingOp {
                role: Role::Participant,
                peer: Some(coord),
                proc: op.proc,
                subop: cx_types::SubOp::ReadInode {
                    ino: cx_types::InodeNo(0),
                },
                verdict: Verdict::No,
                undo: None,
                hint: Hint::null(),
                durable: false,
                in_commitment: true,
                batch: None,
                reply_to_client: false,
                recovered: false,
                logged_at: now,
            },
        );
        self.deferred_votes.insert(op, coord);
        if let Ok((seq, bytes)) = self.append_records([rec]) {
            self.flush_records(seq, bytes, IoCont::ResultDurable { op_id: op, seq }, out);
        }
    }

    fn send_vote_result(
        &mut self,
        coord: ServerId,
        results: Vec<(OpId, Verdict)>,
        out: &mut Vec<Action>,
    ) {
        for (op, _) in &results {
            if let Some(p) = self.pending.get_mut(op) {
                p.in_commitment = true;
            }
        }
        self.send(
            Endpoint::Server(coord),
            Payload::VoteResult { results },
            out,
        );
    }

    // ------------------------------------------------------------------
    // coordinator side: vote results, acks
    // ------------------------------------------------------------------

    /// Vote results arrived; when a batch has every vote, decide and log
    /// the decision (§III-B step 5).
    pub(crate) fn on_vote_result(
        &mut self,
        _now: SimTime,
        results: Vec<(OpId, Verdict)>,
        out: &mut Vec<Action>,
    ) {
        let mut touched = Vec::new();
        for (op, v) in results {
            let Some(batch_id) = self.pending.get(&op).and_then(|p| p.batch) else {
                // look the batch up by membership (the pending entry can
                // be gone if the op was invalidated or already resolved)
                if let Some((id, _)) = self
                    .batches
                    .iter()
                    .find(|(_, b)| b.ops.contains(&op) && !b.votes.contains_key(&op))
                {
                    let id = *id;
                    if let Some(b) = self.batches.get_mut(&id) {
                        b.votes.insert(op, v);
                        if !touched.contains(&id) {
                            touched.push(id);
                        }
                    }
                }
                continue;
            };
            if let Some(b) = self.batches.get_mut(&batch_id) {
                b.votes.insert(op, v);
                if !touched.contains(&batch_id) {
                    touched.push(batch_id);
                }
            }
        }
        for batch_id in touched {
            let ready = {
                let b = &self.batches[&batch_id];
                b.phase == BatchPhase::Voting && b.votes.len() == b.ops.len()
            };
            if !ready {
                continue;
            }
            let (ops, votes) = {
                let b = self.batches.get_mut(&batch_id).expect("checked");
                // The vote tally is complete and never read again; the op
                // list is still needed for ACK routing, so copy it through
                // the pool.
                (
                    self.op_pool.get_copied(&b.ops),
                    std::mem::take(&mut b.votes),
                )
            };
            let mut commits = self.op_pool.get();
            let mut aborts = self.op_pool.get();
            let mut recs = self.rec_pool.get();
            for &op in &ops {
                let local_yes = self
                    .pending
                    .get(&op)
                    .map(|p| p.verdict.is_yes())
                    .unwrap_or(false);
                let participant_yes = votes.get(&op).map(|v| v.is_yes()).unwrap_or(false);
                if local_yes && participant_yes {
                    commits.push(op);
                    recs.push(Record::Commit { op_id: op });
                } else {
                    // Roll back our own successful execution, if any.
                    self.rollback_pending(&op);
                    aborts.push(op);
                    recs.push(Record::Abort { op_id: op });
                }
            }
            self.op_pool.put(ops);
            let (seq, bytes) = self
                .append_records(recs.drain(..))
                .expect("control records are never limited");
            self.rec_pool.put(recs);
            {
                let b = self.batches.get_mut(&batch_id).expect("checked");
                b.phase = BatchPhase::LoggingDecision;
                self.op_pool.put(std::mem::replace(&mut b.commits, commits));
                self.op_pool.put(std::mem::replace(&mut b.aborts, aborts));
            }
            self.flush_records(
                seq,
                bytes,
                IoCont::DecisionDurable {
                    batch: batch_id,
                    seq,
                },
                out,
            );
        }
    }

    /// COMMIT-REQ/ABORT-REQ at the participant (§III-B step 6).
    pub(crate) fn on_commit_decision(
        &mut self,
        _now: SimTime,
        coord: ServerId,
        commits: Vec<OpId>,
        aborts: Vec<OpId>,
        out: &mut Vec<Action>,
    ) {
        let mut recs = self.rec_pool.get();
        for &op in &commits {
            recs.push(Record::Commit { op_id: op });
        }
        for &op in &aborts {
            self.rollback_pending(&op);
            // An aborted operation whose sub-op request is still parked
            // here must not run after its abort; its client learns of the
            // abort through a NO response (→ disagreement → ALL-NO).
            if !self.pending.contains_key(&op) {
                if let Some(req) = self.drop_blocked_request(op) {
                    self.send(
                        Endpoint::Proc(req.op_id.proc),
                        Payload::SubOpResp {
                            op_id: op,
                            verdict: Verdict::No,
                            hint: Hint::null(),
                        },
                        out,
                    );
                }
            }
            recs.push(Record::Abort { op_id: op });
        }
        let (seq, bytes) = self
            .append_records(recs.drain(..))
            .expect("control records are never limited");
        self.rec_pool.put(recs);
        self.flush_records(
            seq,
            bytes,
            IoCont::OutcomeDurable {
                coordinator: coord,
                commits,
                aborts,
                seq,
            },
            out,
        );
    }

    /// ACK at the coordinator: write Complete-Records (§III-B step 7).
    pub(crate) fn on_ack(&mut self, _now: SimTime, ops: Vec<OpId>, out: &mut Vec<Action>) {
        let batch_id = ops
            .iter()
            .find_map(|op| self.pending.get(op).and_then(|p| p.batch))
            .or_else(|| {
                // Presumed-abort batches have no pending entry; find the
                // batch by membership.
                self.batches
                    .iter()
                    .find(|(_, b)| ops.iter().any(|op| b.ops.contains(op)))
                    .map(|(id, _)| *id)
            });
        let Some(batch_id) = batch_id else {
            return;
        };
        let Some(b) = self.batches.get_mut(&batch_id) else {
            return;
        };
        if b.phase != BatchPhase::AwaitingAck {
            return;
        }
        b.phase = BatchPhase::Completing;
        let mut recs = self.rec_pool.get();
        recs.extend(
            b.commits
                .iter()
                .chain(b.aborts.iter())
                .map(|op| Record::Complete { op_id: *op }),
        );
        let (seq, bytes) = self
            .append_records(recs.drain(..))
            .expect("control records are never limited");
        self.rec_pool.put(recs);
        self.op_pool.put(ops);
        self.flush_records(
            seq,
            bytes,
            IoCont::CompleteDurable {
                batch: batch_id,
                seq,
            },
            out,
        );
    }

    // ------------------------------------------------------------------
    // client-driven immediate commitments
    // ------------------------------------------------------------------

    /// L-COM: the client saw disagreeing verdicts (or stably mismatched
    /// hints) and asks for an immediate commitment (§III-B step 2b).
    pub(crate) fn on_lcom(&mut self, now: SimTime, op: OpId, out: &mut Vec<Action>) {
        if let Some(p) = self.pending.get_mut(&op) {
            p.reply_to_client = true;
            if !p.in_commitment {
                let ops = self.op_vec1(op);
                self.launch_commitment(now, ops, true, out);
            }
            return;
        }
        // The commitment raced ahead of the L-COM. Look the outcome up.
        let outcome = match self.recent_outcomes.get(&op.proc) {
            Some((o, outcome)) if *o == op => *outcome,
            // A lazily committed operation only reaches completion with
            // matching YES votes, so commit is the sound default.
            _ => Outcome::Committed,
        };
        let payload = match outcome {
            Outcome::Committed => Payload::Committed { op_id: op },
            Outcome::Aborted => Payload::AllNo { op_id: op },
        };
        self.send(Endpoint::Proc(op.proc), payload, out);
    }

    /// C-REQ from the participant: it detected a conflict on an operation
    /// we coordinate (DESIGN.md §5.6).
    pub(crate) fn on_commitment_req(
        &mut self,
        now: SimTime,
        parti: ServerId,
        op: OpId,
        sweep: bool,
        out: &mut Vec<Action>,
    ) {
        if let Some(p) = self.pending.get(&op) {
            if p.role == Role::Coordinator && !p.in_commitment {
                let mut ops = self.op_vec1(op);
                if sweep {
                    // Log pressure at the participant: flush everything we
                    // have — the VOTE round costs the same for one op or
                    // many, and pruning needs outcomes for all of them.
                    ops.extend(std::mem::take(&mut self.lazy_queue));
                }
                self.launch_commitment(now, ops, true, out);
            }
            return;
        }
        // No record of this operation here. Most likely its sub-op request
        // is still in flight (the disordered scenario resolves it via
        // VOTE-driven invalidation); only if it never shows up within the
        // grace period do we presume the client died mid-operation and
        // abort the participant's orphaned half.
        if self.batches.values().any(|b| b.ops.contains(&op)) {
            return; // already resolving
        }
        match self.wal.op_state(&op).and_then(|st| st.outcome) {
            Some(Outcome::Committed) => {
                let commits = self.op_vec1(op);
                let aborts = self.op_pool.get();
                self.send(
                    Endpoint::Server(parti),
                    Payload::CommitDecision { commits, aborts },
                    out,
                );
            }
            _ => {
                let token = ORPHAN_TIMER_BIT | self.token();
                self.orphan_timers.insert(token, (parti, op));
                out.push(Action::SetTimer {
                    token,
                    delay_ns: self.cfg.presumed_abort_timeout_ns,
                });
            }
        }
    }

    /// The presumed-abort grace period for an unknown operation expired.
    pub(crate) fn on_orphan_timer(&mut self, now: SimTime, token: u64, out: &mut Vec<Action>) {
        let Some((parti, op)) = self.orphan_timers.remove(&token) else {
            return;
        };
        if let Some(p) = self.pending.get(&op) {
            // The operation showed up after all — but the participant is
            // still waiting for the commitment it asked for.
            if p.role == Role::Coordinator && !p.in_commitment {
                let ops = self.op_vec1(op);
                self.launch_commitment(now, ops, true, out);
            }
            return;
        }
        if self.batches.values().any(|b| b.ops.contains(&op)) || self.wal.op_state(&op).is_some() {
            return; // already resolving / already decided
        }
        self.stats.immediate_commitments += 1;
        self.metrics.commitment_round(1, true, 0);
        let batch_id = self.next_batch;
        self.next_batch += 1;
        let ops = self.op_vec1(op);
        let commits = self.op_pool.get();
        let aborts = self.op_vec1(op);
        self.batches.insert(
            batch_id,
            CommitBatch {
                participant: parti,
                ops,
                votes: BTreeMap::new(),
                phase: BatchPhase::LoggingDecision,
                commits,
                aborts,
            },
        );
        let (seq, bytes) = self
            .append_records([Record::Abort { op_id: op }])
            .expect("control records are never limited");
        self.flush_records(
            seq,
            bytes,
            IoCont::DecisionDurable {
                batch: batch_id,
                seq,
            },
            out,
        );
    }

    /// Re-send the in-flight message of a batch whose participant may have
    /// lost it in a crash. Safe because votes and decisions are idempotent.
    pub(crate) fn redrive_batch(&mut self, batch_id: u64, out: &mut Vec<Action>) {
        let Some(b) = self.batches.get(&batch_id) else {
            return;
        };
        match b.phase {
            BatchPhase::Voting => {
                let unvoted: Vec<OpId> = b
                    .ops
                    .iter()
                    .filter(|op| !b.votes.contains_key(op))
                    .copied()
                    .collect();
                if unvoted.is_empty() {
                    return;
                }
                let to = b.participant;
                let order_after: Vec<OpId> = unvoted
                    .iter()
                    .flat_map(|op| self.blocked.get(op).into_iter().flatten())
                    .map(|req| req.op_id)
                    .collect();
                self.send(
                    Endpoint::Server(to),
                    Payload::Vote {
                        ops: unvoted,
                        order_after,
                    },
                    out,
                );
            }
            BatchPhase::AwaitingAck => {
                let (to, commits, aborts) = (b.participant, b.commits.clone(), b.aborts.clone());
                self.send(
                    Endpoint::Server(to),
                    Payload::CommitDecision { commits, aborts },
                    out,
                );
            }
            // A local disk flush is in flight; it will progress on its own.
            BatchPhase::LoggingDecision | BatchPhase::Completing => {}
        }
    }

    /// Recovery: a rebooted participant asks for operation outcomes.
    pub(crate) fn on_query_outcome(
        &mut self,
        now: SimTime,
        parti: ServerId,
        ops: Vec<OpId>,
        out: &mut Vec<Action>,
    ) {
        let mut commits = Vec::new();
        let mut aborts = Vec::new();
        for op in ops {
            if let Some(p) = self.pending.get(&op) {
                if p.role == Role::Coordinator && !p.in_commitment {
                    let ops = self.op_vec1(op);
                    self.launch_commitment(now, ops, true, out);
                    continue;
                }
                // The op is already in a commitment batch — but the
                // querying participant just rebooted, so whatever message
                // that batch was waiting on (its vote) or had sent (its
                // decision) may have died with it. Re-drive the batch's
                // current phase idempotently.
                if let Some(batch_id) = p.batch {
                    self.redrive_batch(batch_id, out);
                }
                continue;
            }
            match self.wal.op_state(&op).and_then(|st| st.outcome) {
                Some(Outcome::Committed) => commits.push(op),
                Some(Outcome::Aborted) => aborts.push(op),
                None => match self.recent_outcomes.get(&op.proc) {
                    Some((o, Outcome::Committed)) if *o == op => commits.push(op),
                    Some((o, Outcome::Aborted)) if *o == op => aborts.push(op),
                    // Unknown everywhere: the operation never reached this
                    // coordinator — presumed abort.
                    _ => aborts.push(op),
                },
            }
        }
        if !commits.is_empty() || !aborts.is_empty() {
            self.send(
                Endpoint::Server(parti),
                Payload::CommitDecision { commits, aborts },
                out,
            );
        }
    }
}
