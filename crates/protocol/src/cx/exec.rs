//! Execution phase: sub-op requests, conflict detection, blocking and
//! unblocking (§III-B and §III-C).

use super::{CxServer, IoCont, PendingOp, QueuedReq};
use crate::action::{Action, Endpoint};
use cx_types::{CxError, Hint, OpId, Payload, Role, SimTime, SubOp, Verdict};
use cx_wal::Record;
use rand::Rng;

impl CxServer {
    /// Entry point for a sub-op request (fresh arrival, unblock
    /// re-dispatch, or invalidation re-queue — all go through the same
    /// conflict check, which is what makes chained conflicts correct).
    pub(crate) fn handle_request(&mut self, now: SimTime, req: QueuedReq, out: &mut Vec<Action>) {
        // Conflict check: does the request access an active object of
        // another process's pending operation? (A process never conflicts
        // with itself: its metadata operations are synchronous, §III-B.)
        if let Some(holder) = self.find_conflict(&req) {
            self.block_on(now, holder, req, out);
            return;
        }
        self.execute(now, req, out);
    }

    /// First pending operation whose active objects this request touches.
    fn find_conflict(&self, req: &QueuedReq) -> Option<OpId> {
        let check = |subop: &SubOp| -> Option<OpId> {
            for obj in subop.conflict_objects().iter() {
                if let Some(&holder) = self.active.get(&obj) {
                    if holder != req.op_id
                        && self.pending.get(&holder).map(|p| p.proc) != Some(req.op_id.proc)
                    {
                        return Some(holder);
                    }
                }
            }
            None
        };
        check(&req.subop).or_else(|| req.colocated.as_ref().and_then(check))
    }

    /// Block `req` behind `holder` and ask for an immediate commitment of
    /// the pending operation ("the servers should immediately launch a
    /// commitment for the cross-server operation", §I).
    fn block_on(&mut self, now: SimTime, holder: OpId, mut req: QueuedReq, out: &mut Vec<Action>) {
        if !req.counted {
            self.stats.conflicts += 1;
            self.stats.blocked_requests += 1;
            self.metrics.conflicts_ordered += 1;
            req.counted = true;
        }
        self.blocked.entry(holder).or_default().push(req);
        self.request_immediate(now, holder, out);
    }

    /// Launch (or ask the coordinator to launch) an immediate commitment
    /// for `op` — just this operation, as in Figure 3's conflict handling.
    /// (Log-pressure commitments sweep the whole lazy queue instead; see
    /// `on_log_full`.)
    pub(crate) fn request_immediate(&mut self, now: SimTime, op: OpId, out: &mut Vec<Action>) {
        let Some(p) = self.pending.get(&op) else {
            return;
        };
        if p.in_commitment {
            return; // already being resolved
        }
        match p.role {
            Role::Coordinator => {
                let ops = self.op_vec1(op);
                self.launch_commitment(now, ops, true, out);
            }
            Role::Participant => {
                // DESIGN.md §5.6: the participant detected the conflict
                // first; notify the coordinator with a C-REQ.
                if let Some(coord) = p.peer {
                    self.send(
                        Endpoint::Server(coord),
                        Payload::CommitmentReq {
                            pending: op,
                            sweep: false,
                        },
                        out,
                    );
                }
            }
        }
    }

    /// Execute a request whose objects are free.
    fn execute(&mut self, now: SimTime, req: QueuedReq, out: &mut Vec<Action>) {
        let cross_server = req.peer.is_some();
        if !req.subop.is_write() && !cross_server {
            // Cached read: served from the in-memory store, no logging.
            let verdict = Verdict::from_ok(self.store.apply(&req.subop).is_ok());
            self.stats.reads_served += 1;
            self.send(
                Endpoint::Proc(req.op_id.proc),
                Payload::SubOpResp {
                    op_id: req.op_id,
                    verdict,
                    hint: Hint(req.hint_ops),
                },
                out,
            );
            return;
        }
        if cross_server {
            self.execute_cross_server(now, req, out);
        } else {
            self.execute_local(now, req, out);
        }
    }

    /// A mutation whose two halves both live here (or a single-server
    /// setattr): atomic locally, no commitment needed. Result- and
    /// Commit-Records are logged together; the write-back rides the next
    /// batch.
    fn execute_local(&mut self, now: SimTime, req: QueuedReq, out: &mut Vec<Action>) {
        let mut verdict = Verdict::Yes;
        let mut undos = Vec::new();
        for subop in std::iter::once(&req.subop).chain(req.colocated.iter()) {
            match self.apply_with_injection(subop) {
                Ok(u) => undos.push(u),
                Err(_) => {
                    verdict = Verdict::No;
                    break;
                }
            }
        }
        if verdict == Verdict::No {
            // roll back the half that succeeded
            for u in undos.drain(..).rev() {
                self.store.undo(u);
            }
        }
        self.stats.local_mutations += 1;
        // Log Result + Commit together; prunable immediately, pruned at the
        // next write-back.
        let recs = [
            Record::Result {
                op_id: req.op_id,
                role: Role::Participant,
                peer: None,
                subop: req.subop,
                verdict,
                invalidated: false,
            },
            if verdict.is_yes() {
                Record::Commit { op_id: req.op_id }
            } else {
                Record::Abort { op_id: req.op_id }
            },
        ];
        match self.append_records(recs) {
            Ok((seq, bytes)) => {
                let cont = IoCont::LocalDurable {
                    op_id: req.op_id,
                    proc: req.op_id.proc,
                    verdict,
                    hint: Hint(req.hint_ops),
                    seq,
                };
                self.flush_records(seq, bytes, cont, out);
                self.note_local_pending(now, req.op_id, out);
            }
            Err(CxError::LogFull { .. }) => self.on_log_full(now, req, out),
            Err(_) => unreachable!("append only fails with LogFull"),
        }
    }

    /// One half of a cross-server operation.
    fn execute_cross_server(&mut self, now: SimTime, req: QueuedReq, out: &mut Vec<Action>) {
        // Reserve log space before touching the store so a full log leaves
        // no side effects.
        let probe = Record::Result {
            op_id: req.op_id,
            role: req.role,
            peer: req.peer,
            subop: req.subop,
            verdict: Verdict::Yes,
            invalidated: false,
        };
        if !self.wal.has_room(probe.encoded_len()) {
            self.on_log_full(now, req, out);
            return;
        }

        let (verdict, undo) = match self.apply_with_injection(&req.subop) {
            Ok(u) => (Verdict::Yes, Some(u)),
            Err(_) => (Verdict::No, None),
        };
        self.stats.subops_executed += 1;

        if verdict.is_yes() {
            // The modified objects become active until the commitment
            // (§III-B: "the lazy commitment may leave some active objects
            // that are not achieved agreement among the affected servers").
            for obj in req.subop.conflict_objects().iter() {
                self.active.insert(obj, req.op_id);
            }
        }

        self.pending.insert(
            req.op_id,
            PendingOp {
                role: req.role,
                peer: req.peer,
                proc: req.op_id.proc,
                subop: req.subop,
                verdict,
                undo: undo.filter(|u| !matches!(u, cx_mdstore::Undo::Nothing)),
                hint: Hint(req.hint_ops),
                durable: false,
                in_commitment: false,
                batch: None,
                reply_to_client: false,
                recovered: false,
                logged_at: now,
            },
        );

        let rec = Record::Result {
            op_id: req.op_id,
            role: req.role,
            peer: req.peer,
            subop: req.subop,
            verdict,
            invalidated: false,
        };
        let (seq, bytes) = self.append_records([rec]).expect("room checked above");
        // Response waits for durability; the hint rides along in pending.
        self.flush_records(
            seq,
            bytes,
            IoCont::ResultDurable {
                op_id: req.op_id,
                seq,
            },
            out,
        );
    }

    fn apply_with_injection(&mut self, subop: &SubOp) -> Result<cx_mdstore::Undo, CxError> {
        if self.fail_prob > 0.0 && subop.is_write() && self.rng.gen::<f64>() < self.fail_prob {
            return Err(CxError::Injected);
        }
        self.store.apply(subop)
    }

    /// The log hit its upper limit: park the request and force commitments
    /// so pruning can free space (§III-D: "when the log becomes full, a
    /// server must block the new-arrival sub-op requests and perform
    /// pruning"). Figure 7(a) measures exactly this effect.
    fn on_log_full(&mut self, now: SimTime, req: QueuedReq, out: &mut Vec<Action>) {
        self.stats.log_full_blocks += 1;
        self.log_wait.push_back(req);
        // Commit everything we coordinate…
        self.launch_lazy_batch(now, true, out);
        // …and nudge the coordinators of everything we participate in —
        // one C-REQ per coordinator suffices, since a nudged coordinator
        // sweeps its whole lazy queue into the commitment.
        let mut per_coordinator: std::collections::BTreeMap<cx_types::ServerId, OpId> =
            std::collections::BTreeMap::new();
        for (op, p) in &self.pending {
            if p.role == Role::Participant && !p.in_commitment {
                if let Some(coord) = p.peer {
                    let entry = per_coordinator.entry(coord).or_insert(*op);
                    *entry = (*entry).min(*op); // deterministic representative
                }
            }
        }
        for (coord, op) in per_coordinator {
            self.send(
                Endpoint::Server(coord),
                Payload::CommitmentReq {
                    pending: op,
                    sweep: true,
                },
                out,
            );
        }
        // Also reclaim anything already prunable.
        self.wal.prune_all();
    }

    /// Retry requests parked on log space.
    pub(crate) fn drain_log_wait(&mut self, now: SimTime, out: &mut Vec<Action>) {
        while let Some(front) = self.log_wait.front() {
            let probe = Record::Result {
                op_id: front.op_id,
                role: front.role,
                peer: front.peer,
                subop: front.subop,
                verdict: Verdict::Yes,
                invalidated: false,
            };
            if !self.wal.has_room(probe.encoded_len()) {
                break;
            }
            let req = self.log_wait.pop_front().expect("non-empty");
            self.handle_request(now, req, out);
        }
    }

    /// A pending operation finished its commitment: release its active
    /// objects and re-dispatch everything blocked behind it, extending
    /// their conflict hints with the completed operation (§III-C step 7a:
    /// each later response "contains a conflict hint of [A]").
    pub(crate) fn release_op(&mut self, now: SimTime, op: OpId, out: &mut Vec<Action>) {
        // Remove exactly this op's active entries (the pending entry knows
        // its objects); fall back to a scan only when the entry is already
        // gone (rare recovery paths).
        match self.pending.get(&op) {
            Some(p) => {
                let objs: Vec<cx_types::ObjectId> = p.subop.conflict_objects().iter().collect();
                for obj in objs {
                    if self.active.get(&obj) == Some(&op) {
                        self.active.remove(&obj);
                    }
                }
            }
            None => self.active.retain(|_, holder| *holder != op),
        }
        if let Some(waiters) = self.blocked.remove(&op) {
            for mut req in waiters {
                req.hint_ops.push(op);
                self.metrics.hint_resolved += 1;
                self.handle_request(now, req, out);
            }
        }
        self.drain_log_wait(now, out);
    }

    /// Remove a blocked request for `op` (the operation was aborted by a
    /// commitment while its other half never executed here).
    pub(crate) fn drop_blocked_request(&mut self, op: OpId) -> Option<QueuedReq> {
        for queue in self.blocked.values_mut() {
            if let Some(pos) = queue.iter().position(|r| r.op_id == op) {
                return Some(queue.remove(pos));
            }
        }
        None
    }

    /// Find which pending operation a blocked request for `op` waits on.
    pub(crate) fn blocked_behind(&self, op: OpId) -> Option<OpId> {
        for (holder, queue) in &self.blocked {
            if queue.iter().any(|r| r.op_id == op) {
                return Some(*holder);
            }
        }
        None
    }
}
