//! Per-server protocol statistics.

use cx_obs::registry::{Counter, MetricRegistry, Series};
use cx_obs::LogHistogram;
use serde::{Deserialize, Serialize};

/// Counters every engine maintains. The message counts of Table IV are
/// gathered by the runtime (which sees every `Action::Send`); these are the
/// protocol-internal events the paper's sensitivity studies report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServerStats {
    /// Sub-op executions (writes) performed.
    pub subops_executed: u64,
    /// Cached reads served.
    pub reads_served: u64,
    /// Conflicts detected: a sub-op arrived that accesses the active
    /// objects of another process's pending operation (§III-B).
    pub conflicts: u64,
    /// Immediate commitments launched (conflict, L-COM, disagreement, or
    /// log pressure).
    pub immediate_commitments: u64,
    /// Lazy (trigger-driven) commitment batches launched.
    pub lazy_batches: u64,
    /// Operations committed in commitment batches this server coordinated.
    pub ops_committed: u64,
    /// Operations aborted likewise.
    pub ops_aborted: u64,
    /// Executions invalidated during disordered-conflict handling.
    pub invalidations: u64,
    /// Requests that had to wait because the log hit its upper limit.
    pub log_full_blocks: u64,
    /// Requests blocked behind active objects at least once.
    pub blocked_requests: u64,
    /// Write-back batches issued to the database.
    pub writebacks: u64,
    /// Local (single-server) mutations executed.
    pub local_mutations: u64,
}

impl ServerStats {
    pub fn merge(&mut self, o: &ServerStats) {
        self.subops_executed += o.subops_executed;
        self.reads_served += o.reads_served;
        self.conflicts += o.conflicts;
        self.immediate_commitments += o.immediate_commitments;
        self.lazy_batches += o.lazy_batches;
        self.ops_committed += o.ops_committed;
        self.ops_aborted += o.ops_aborted;
        self.invalidations += o.invalidations;
        self.log_full_blocks += o.log_full_blocks;
        self.blocked_requests += o.blocked_requests;
        self.writebacks += o.writebacks;
        self.local_mutations += o.local_mutations;
    }
}

/// The introspection plane's protocol-internal series — the quantities
/// the paper's argument rests on, which [`ServerStats`] aggregates away.
///
/// Kept *outside* `ServerStats` on purpose: the golden digests hash the
/// `ServerStats` debug representation, so these metrics ride in their own
/// struct that the digest never sees. Engines bump plain counters (no
/// atomics on the hot path, fully deterministic); runtimes merge per
/// server and publish once into the shared [`MetricRegistry`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ProtoMetrics {
    /// Conflicts where both servers observed the same execution order
    /// (resolved by blocking the later arrival, §III-B).
    pub conflicts_ordered: u64,
    /// Conflicts where the servers disagreed on the order and an
    /// execution had to be invalidated (the disordered case).
    pub conflicts_disordered: u64,
    /// Blocked executions released by a conflict hint riding the vote.
    pub hint_resolved: u64,
    /// Commitment rounds launched immediately (conflict, L-COM,
    /// disagreement, log pressure, or presumed abort).
    pub immediate_commitments: u64,
    /// Lazy (trigger-driven, batched) commitment rounds.
    pub batched_commitments: u64,
    /// Operations carried by those lazy rounds.
    pub batched_ops: u64,
    /// Cross-server operations aborted.
    pub aborts: u64,
    /// Half-completed commitments resumed by crash recovery (§III-D).
    pub resumed_commitments: u64,
    /// Torn log tails truncated on crash.
    pub wal_truncations: u64,
    /// Operations per commitment round (occupancy).
    pub batch_size: LogHistogram,
    /// Age of the oldest op in a batch when the round launched.
    pub batch_age_ns: LogHistogram,
}

impl ProtoMetrics {
    pub fn merge(&mut self, o: &ProtoMetrics) {
        self.conflicts_ordered += o.conflicts_ordered;
        self.conflicts_disordered += o.conflicts_disordered;
        self.hint_resolved += o.hint_resolved;
        self.immediate_commitments += o.immediate_commitments;
        self.batched_commitments += o.batched_commitments;
        self.batched_ops += o.batched_ops;
        self.aborts += o.aborts;
        self.resumed_commitments += o.resumed_commitments;
        self.wal_truncations += o.wal_truncations;
        self.batch_size.merge(&o.batch_size);
        self.batch_age_ns.merge(&o.batch_age_ns);
    }

    /// Record one commitment round: `ops` in the batch, launched
    /// `immediate`ly or by a lazy trigger, with the oldest member
    /// `oldest_age_ns` old.
    pub fn commitment_round(&mut self, ops: u64, immediate: bool, oldest_age_ns: u64) {
        if immediate {
            self.immediate_commitments += 1;
        } else {
            self.batched_commitments += 1;
            self.batched_ops += ops;
        }
        self.batch_size.record(ops);
        self.batch_age_ns.record(oldest_age_ns);
    }

    /// Publish into the shared registry (counter adds are atomic, so the
    /// threaded runtime's servers publish concurrently).
    pub fn publish(&self, reg: &MetricRegistry) {
        reg.add(Counter::ConflictsOrdered, self.conflicts_ordered);
        reg.add(Counter::ConflictsDisordered, self.conflicts_disordered);
        reg.add(Counter::HintResolved, self.hint_resolved);
        reg.add(Counter::ImmediateCommitments, self.immediate_commitments);
        reg.add(Counter::BatchedCommitments, self.batched_commitments);
        reg.add(Counter::BatchedOps, self.batched_ops);
        reg.add(Counter::Aborts, self.aborts);
        reg.add(Counter::ResumedCommitments, self.resumed_commitments);
        reg.add(Counter::WalTruncations, self.wal_truncations);
        reg.observe_hist(Series::BatchSize, &self.batch_size);
        reg.observe_hist(Series::BatchAgeNs, &self.batch_age_ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proto_metrics_merge_and_publish() {
        let mut a = ProtoMetrics::default();
        a.commitment_round(5, false, 1_000);
        a.commitment_round(1, true, 10);
        a.conflicts_ordered = 3;
        let mut b = ProtoMetrics::default();
        b.commitment_round(7, false, 2_000);
        b.conflicts_disordered = 1;
        b.hint_resolved = 1;
        a.merge(&b);
        assert_eq!(a.batched_commitments, 2);
        assert_eq!(a.immediate_commitments, 1);
        assert_eq!(a.batched_ops, 12);
        assert_eq!(a.batch_size.count, 3);

        let reg = MetricRegistry::new();
        a.publish(&reg);
        assert_eq!(reg.get(Counter::ConflictsOrdered), 3);
        assert_eq!(reg.get(Counter::ConflictsDisordered), 1);
        assert_eq!(reg.get(Counter::BatchedOps), 12);
        let snap = reg.snapshot();
        assert_eq!(
            snap.series
                .iter()
                .find(|s| s.name == "cx_commitment_batch_size")
                .unwrap()
                .summary
                .count,
            3
        );
    }

    #[test]
    fn merge_sums_fields() {
        let mut a = ServerStats {
            conflicts: 2,
            lazy_batches: 1,
            ..Default::default()
        };
        let b = ServerStats {
            conflicts: 3,
            ops_committed: 7,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.conflicts, 5);
        assert_eq!(a.ops_committed, 7);
        assert_eq!(a.lazy_batches, 1);
    }
}
