//! Per-server protocol statistics.

use serde::{Deserialize, Serialize};

/// Counters every engine maintains. The message counts of Table IV are
/// gathered by the runtime (which sees every `Action::Send`); these are the
/// protocol-internal events the paper's sensitivity studies report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServerStats {
    /// Sub-op executions (writes) performed.
    pub subops_executed: u64,
    /// Cached reads served.
    pub reads_served: u64,
    /// Conflicts detected: a sub-op arrived that accesses the active
    /// objects of another process's pending operation (§III-B).
    pub conflicts: u64,
    /// Immediate commitments launched (conflict, L-COM, disagreement, or
    /// log pressure).
    pub immediate_commitments: u64,
    /// Lazy (trigger-driven) commitment batches launched.
    pub lazy_batches: u64,
    /// Operations committed in commitment batches this server coordinated.
    pub ops_committed: u64,
    /// Operations aborted likewise.
    pub ops_aborted: u64,
    /// Executions invalidated during disordered-conflict handling.
    pub invalidations: u64,
    /// Requests that had to wait because the log hit its upper limit.
    pub log_full_blocks: u64,
    /// Requests blocked behind active objects at least once.
    pub blocked_requests: u64,
    /// Write-back batches issued to the database.
    pub writebacks: u64,
    /// Local (single-server) mutations executed.
    pub local_mutations: u64,
}

impl ServerStats {
    pub fn merge(&mut self, o: &ServerStats) {
        self.subops_executed += o.subops_executed;
        self.reads_served += o.reads_served;
        self.conflicts += o.conflicts;
        self.immediate_commitments += o.immediate_commitments;
        self.lazy_batches += o.lazy_batches;
        self.ops_committed += o.ops_committed;
        self.ops_aborted += o.ops_aborted;
        self.invalidations += o.invalidations;
        self.log_full_blocks += o.log_full_blocks;
        self.blocked_requests += o.blocked_requests;
        self.writebacks += o.writebacks;
        self.local_mutations += o.local_mutations;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_fields() {
        let mut a = ServerStats {
            conflicts: 2,
            lazy_batches: 1,
            ..Default::default()
        };
        let b = ServerStats {
            conflicts: 3,
            ops_committed: 7,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.conflicts, 5);
        assert_eq!(a.ops_committed, 7);
        assert_eq!(a.lazy_batches, 1);
    }
}
