//! SE: the OrangeFS/PVFS2 serial-execution baseline (§II-B).
//!
//! "All sub-ops are serially and synchronously executed on the affected
//! servers: the client first instructs the participant to execute its
//! sub-ops; if the participant executes its sub-ops successfully, the
//! client then asks the coordinator … If the coordinator fails to perform
//! the assigned sub-op, the process withdraws the former sub-ops by
//! sending a CLEAR message."
//!
//! Two flavours, matching the paper's baselines:
//!
//! * `batched = false` → **OFS**: every sub-op synchronously writes the
//!   updated objects into the database before the response.
//! * `batched = true` → **OFS-batched**: "the updated objects are logged
//!   and the batched modifications are lazily flushed into BDB" (§IV-C).
//!
//! SE keeps no cross-server commitment state: the well-known consequence
//! (modelled faithfully) is that a client that dies between the
//! participant's execution and the CLEAR leaves orphan objects.

use crate::action::{Action, Endpoint, ServerEngine};
use crate::stats::ServerStats;
use crate::trigger::{TriggerState, TriggerVerdict};
use cx_mdstore::{MetaStore, Undo};
use cx_sim::det_rng;
use cx_simio::object_page;
use cx_types::FxHashMap;
use cx_types::{ClusterConfig, Hint, OpId, Payload, ProcId, Role, SimTime, SubOp, Verdict};
use cx_wal::{Record, SeqNo, Wal};
use rand::rngs::SmallRng;
use rand::Rng;

enum SeIo {
    /// Sync DB write (or batched log flush) done: answer the client.
    Respond {
        op_id: OpId,
        proc: ProcId,
        verdict: Verdict,
        seq: Option<SeqNo>,
    },
    /// CLEAR rollback persisted: acknowledge it.
    ClearDone {
        op_id: OpId,
        proc: ProcId,
    },
    WritebackDone,
}

/// The SE metadata server.
pub struct SeServer {
    id: cx_types::ServerId,
    store: MetaStore,
    /// OFS-batched keeps a log for the batched write-back.
    wal: Option<Wal>,
    batched: bool,
    fail_prob: f64,
    rng: SmallRng,
    trigger: TriggerState,
    io: FxHashMap<u64, SeIo>,
    next_token: u64,
    /// Undo state for the most recent operation of each process (the only
    /// one a CLEAR can target, since processes issue ops sequentially).
    last_undo: FxHashMap<ProcId, (OpId, Vec<Undo>)>,
    stats: ServerStats,
}

impl SeServer {
    pub fn new(id: cx_types::ServerId, cfg: &ClusterConfig, batched: bool) -> Self {
        Self {
            id,
            store: MetaStore::new(),
            wal: batched.then(|| Wal::new(cfg.cx.log_limit_bytes)),
            batched,
            fail_prob: cfg.failure.subop_fail_prob,
            rng: det_rng(cfg.seed, 0x5e00_0000 ^ id.0 as u64),
            trigger: TriggerState::new(cfg.cx.trigger),
            io: FxHashMap::default(),
            next_token: 0,
            last_undo: FxHashMap::default(),
            stats: ServerStats::default(),
        }
    }

    fn token(&mut self) -> u64 {
        let t = self.next_token;
        self.next_token += 1;
        t
    }

    fn apply_with_injection(&mut self, subop: &SubOp) -> Result<Undo, cx_types::CxError> {
        if self.fail_prob > 0.0 && subop.is_write() && self.rng.gen::<f64>() < self.fail_prob {
            return Err(cx_types::CxError::Injected);
        }
        self.store.apply(subop)
    }

    fn on_subop(
        &mut self,
        now: SimTime,
        req_op: OpId,
        subop: SubOp,
        colocated: Option<SubOp>,
        out: &mut Vec<Action>,
    ) {
        // Reads are served from the cache immediately.
        if !subop.is_write() && colocated.is_none() {
            let verdict = Verdict::from_ok(self.store.apply(&subop).is_ok());
            self.stats.reads_served += 1;
            out.push(Action::Send {
                to: Endpoint::Proc(req_op.proc),
                payload: Payload::SubOpResp {
                    op_id: req_op,
                    verdict,
                    hint: Hint::null(),
                },
            });
            return;
        }

        let mut verdict = Verdict::Yes;
        let mut undos = Vec::new();
        for s in std::iter::once(&subop).chain(colocated.iter()) {
            match self.apply_with_injection(s) {
                Ok(u) => undos.push(u),
                Err(_) => {
                    verdict = Verdict::No;
                    break;
                }
            }
        }
        if verdict == Verdict::No {
            for u in undos.drain(..).rev() {
                self.store.undo(u);
            }
        }
        self.stats.subops_executed += 1;
        self.last_undo.insert(req_op.proc, (req_op, undos.clone()));

        if self.batched {
            // OFS-batched: log the update, respond when the group-committed
            // flush lands, write back in batches.
            let wal = self.wal.as_mut().expect("batched keeps a wal");
            let rec = Record::Result {
                op_id: req_op,
                role: Role::Participant,
                peer: None,
                subop,
                verdict,
                invalidated: false,
            };
            let mut total = rec.encoded_len();
            let (mut seq, _) = match wal.append(rec) {
                Ok(x) => x,
                Err(_) => {
                    // Log full: flush and prune synchronously, then retry
                    // (pruning is possible because every record is
                    // immediately prunable in SE).
                    self.stats.log_full_blocks += 1;
                    self.flush_batched(out);
                    let wal = self.wal.as_mut().expect("batched keeps a wal");
                    wal.append(Record::Result {
                        op_id: req_op,
                        role: Role::Participant,
                        peer: None,
                        subop,
                        verdict,
                        invalidated: false,
                    })
                    .expect("log just pruned")
                }
            };
            let wal = self.wal.as_mut().expect("batched keeps a wal");
            let commit = if verdict.is_yes() {
                Record::Commit { op_id: req_op }
            } else {
                Record::Abort { op_id: req_op }
            };
            total += commit.encoded_len();
            if let Ok((s2, _)) = wal.append(commit) {
                seq = seq.max(s2);
            }
            let token = self.token();
            self.io.insert(
                token,
                SeIo::Respond {
                    op_id: req_op,
                    proc: req_op.proc,
                    verdict,
                    seq: Some(seq),
                },
            );
            out.push(Action::LogAppend {
                token,
                bytes: total,
            });
            let v = self.trigger.on_pending(now);
            self.apply_trigger(v, out);
        } else {
            // OFS: synchronous database write per sub-op.
            let page = subop
                .objects()
                .iter()
                .next()
                .map(|o| object_page(&o))
                .unwrap_or(0);
            // The objects are written through, not left dirty.
            let mut objs: Vec<cx_types::ObjectId> = subop.objects().iter().collect();
            if let Some(c) = colocated {
                objs.extend(c.objects().iter());
            }
            let _ = self.store.take_dirty_pages_of(objs);
            let token = self.token();
            self.io.insert(
                token,
                SeIo::Respond {
                    op_id: req_op,
                    proc: req_op.proc,
                    verdict,
                    seq: None,
                },
            );
            out.push(Action::DbSyncWrite { token, page });
        }
    }

    fn on_clear(&mut self, op_id: OpId, subop: SubOp, out: &mut Vec<Action>) {
        let undone: Vec<Undo> = match self.last_undo.remove(&op_id.proc) {
            Some((op, undos)) if op == op_id => undos,
            other => {
                // Not the op we remember (already superseded): nothing to
                // withdraw. Restore whatever we removed.
                if let Some(v) = other {
                    self.last_undo.insert(op_id.proc, v);
                }
                Vec::new()
            }
        };
        for u in undone.into_iter().rev() {
            self.store.undo(u);
        }
        if self.batched {
            // the rollback rides the next batched flush
            out.push(Action::Send {
                to: Endpoint::Proc(op_id.proc),
                payload: Payload::ClearResp { op_id },
            });
        } else {
            let page = subop
                .objects()
                .iter()
                .next()
                .map(|o| object_page(&o))
                .unwrap_or(0);
            let _ = self.store.take_dirty_pages();
            let token = self.token();
            self.io.insert(
                token,
                SeIo::ClearDone {
                    op_id,
                    proc: op_id.proc,
                },
            );
            out.push(Action::DbSyncWrite { token, page });
        }
    }

    fn apply_trigger(&mut self, v: TriggerVerdict, out: &mut Vec<Action>) {
        match v {
            TriggerVerdict::Fire => self.flush_batched(out),
            TriggerVerdict::Arm(delay_ns) => out.push(Action::SetTimer {
                token: self.trigger.generation(),
                delay_ns,
            }),
            TriggerVerdict::Wait => {}
        }
    }

    /// Batched write-back: flush every dirty object and prune the log.
    fn flush_batched(&mut self, out: &mut Vec<Action>) {
        if let Some(wal) = self.wal.as_mut() {
            wal.prune_all();
        }
        let pages = self.store.take_dirty_pages();
        if !pages.is_empty() {
            self.stats.writebacks += 1;
            for chunk in pages.chunks(32) {
                let token = self.token();
                self.io.insert(token, SeIo::WritebackDone);
                out.push(Action::DbWriteback {
                    token,
                    pages: chunk.to_vec(),
                });
            }
        }
    }
}

impl ServerEngine for SeServer {
    fn on_start(&mut self, _now: SimTime, _out: &mut Vec<Action>) {}

    fn on_msg(&mut self, now: SimTime, _from: Endpoint, payload: Payload, out: &mut Vec<Action>) {
        let _ = self.id;
        match payload {
            Payload::SubOpReq {
                op_id,
                subop,
                colocated,
                ..
            } => self.on_subop(now, op_id, subop, colocated, out),
            Payload::Clear { op_id, subop } => self.on_clear(op_id, subop, out),
            _ => {}
        }
    }

    fn on_disk_done(&mut self, _now: SimTime, token: u64, out: &mut Vec<Action>) {
        match self.io.remove(&token) {
            Some(SeIo::Respond {
                op_id,
                proc,
                verdict,
                seq,
            }) => {
                if let (Some(wal), Some(seq)) = (self.wal.as_mut(), seq) {
                    wal.mark_durable(seq);
                }
                out.push(Action::Send {
                    to: Endpoint::Proc(proc),
                    payload: Payload::SubOpResp {
                        op_id,
                        verdict,
                        hint: Hint::null(),
                    },
                });
            }
            Some(SeIo::ClearDone { op_id, proc }) => {
                out.push(Action::Send {
                    to: Endpoint::Proc(proc),
                    payload: Payload::ClearResp { op_id },
                });
            }
            Some(SeIo::WritebackDone) | None => {}
        }
    }

    fn on_timer(&mut self, now: SimTime, token: u64, out: &mut Vec<Action>) {
        let v = self.trigger.on_timer(now, token);
        self.apply_trigger(v, out);
    }

    fn quiesce(&mut self, now: SimTime, out: &mut Vec<Action>) {
        self.flush_batched(out);
        self.trigger.on_batch_launched(now);
    }

    fn is_quiesced(&self) -> bool {
        self.io.is_empty()
    }

    fn store(&self) -> &MetaStore {
        &self.store
    }

    fn store_mut(&mut self) -> &mut MetaStore {
        &mut self.store
    }

    fn wal(&self) -> Option<&Wal> {
        self.wal.as_ref()
    }

    fn stats(&self) -> &ServerStats {
        &self.stats
    }

    fn proto_metrics(&self) -> crate::stats::ProtoMetrics {
        // SE serialises cross-server work through synchronous DB writes:
        // no commitments, no batches — only the conflict count carries over.
        crate::stats::ProtoMetrics {
            conflicts_ordered: self.stats.conflicts,
            aborts: self.stats.ops_aborted,
            wal_truncations: self.wal.as_ref().map(|w| w.truncations()).unwrap_or(0),
            ..Default::default()
        }
    }

    fn obs_gauges(&self) -> cx_obs::EngineGauges {
        cx_obs::EngineGauges {
            // SE has no pending-op concept; in-flight IO continuations are
            // the closest analogue of uncommitted work.
            active_objects: 0,
            pending_batch_ops: self.io.len() as u64,
        }
    }
}
