//! A miniature deterministic runtime for protocol-level tests.
//!
//! Interprets engine [`Action`]s with zero network latency and instant
//! disk, entirely synchronously. Its one special power is **holding**
//! messages: a test can intercept messages matching a predicate and
//! release them later, which is how the paper's ordered and disordered
//! conflict interleavings (Figure 3) are constructed deterministically.
//!
//! Timers are collected into a queue and fired manually via
//! [`Kit::fire_timers`], so tests control the passage of time.

use crate::action::{Action, Endpoint, ServerEngine};
use crate::client::{ClientDecision, ClientOp};
use cx_mdstore::GlobalView;
use cx_types::{
    ClusterConfig, FsOp, MsgKind, OpId, OpOutcome, Payload, Placement, ProcId, ServerId, SimTime,
};
use std::collections::{HashMap, VecDeque};

/// An in-flight message.
#[derive(Debug, Clone)]
pub struct Envelope {
    pub from: Endpoint,
    pub to: Endpoint,
    pub payload: Payload,
}

/// A pending timer.
#[derive(Debug, Clone, Copy)]
pub struct PendingTimer {
    pub node: Endpoint,
    pub token: u64,
    pub delay_ns: u64,
}

/// Predicate deciding which in-flight messages to hold back.
type HoldFilter = Box<dyn Fn(&Envelope) -> bool>;

/// The test harness.
pub struct Kit {
    pub cfg: ClusterConfig,
    pub placement: Placement,
    pub servers: Vec<Box<dyn ServerEngine>>,
    pub clients: HashMap<ProcId, ClientOp>,
    pub outcomes: HashMap<OpId, OpOutcome>,
    queue: VecDeque<Envelope>,
    held: Vec<Envelope>,
    hold_filter: Option<HoldFilter>,
    pub timers: Vec<PendingTimer>,
    pub msg_counts: HashMap<MsgKind, u64>,
    now: SimTime,
    next_seq: u64,
}

impl Kit {
    pub fn new(cfg: ClusterConfig) -> Self {
        let placement = Placement::new(cfg.servers);
        let mut servers: Vec<Box<dyn ServerEngine>> = (0..cfg.servers)
            .map(|i| crate::make_server(ServerId(i), &cfg))
            .collect();
        let mut boot = Vec::new();
        for s in servers.iter_mut() {
            s.on_start(SimTime::ZERO, &mut boot);
        }
        let mut kit = Self {
            cfg,
            placement,
            servers,
            clients: HashMap::new(),
            outcomes: HashMap::new(),
            queue: VecDeque::new(),
            held: Vec::new(),
            hold_filter: None,
            timers: Vec::new(),
            msg_counts: HashMap::new(),
            now: SimTime::ZERO,
            next_seq: 0,
        };
        // interpret any boot actions (timers etc.)
        for a in boot {
            kit.interpret(Endpoint::Server(ServerId(0)), a);
        }
        kit
    }

    /// Hold back every message matching `pred` until [`Kit::release_held`].
    pub fn hold_if(&mut self, pred: impl Fn(&Envelope) -> bool + 'static) {
        self.hold_filter = Some(Box::new(pred));
    }

    pub fn stop_holding(&mut self) {
        self.hold_filter = None;
    }

    pub fn held_count(&self) -> usize {
        self.held.len()
    }

    /// Release all held messages into the queue.
    pub fn release_held(&mut self) {
        for env in std::mem::take(&mut self.held) {
            self.queue.push_back(env);
        }
    }

    /// Drop all held messages (e.g. in-flight traffic lost with a crash).
    pub fn discard_held(&mut self) {
        self.held.clear();
    }

    /// Start an operation from `proc` and run the system to quiescence.
    pub fn run_op(&mut self, proc: ProcId, op: FsOp) -> OpId {
        let id = self.start_op(proc, op);
        self.run();
        id
    }

    /// Start an operation without draining the queue.
    pub fn start_op(&mut self, proc: ProcId, op: FsOp) -> OpId {
        let seq = self.next_seq;
        self.next_seq += 1;
        let op_id = OpId::new(proc, seq);
        let plan = self.placement.plan(op);
        let mut out = Vec::new();
        let client = ClientOp::start(self.cfg.protocol, op_id, plan, &self.cfg.cx, &mut out);
        self.clients.insert(proc, client);
        for a in out {
            self.interpret(Endpoint::Proc(proc), a);
        }
        op_id
    }

    /// Deliver queued messages until nothing moves.
    pub fn run(&mut self) {
        while let Some(env) = self.queue.pop_front() {
            self.deliver(env);
        }
    }

    /// Deliver at most one message; returns false when the queue is empty.
    pub fn step(&mut self) -> bool {
        match self.queue.pop_front() {
            Some(env) => {
                self.deliver(env);
                true
            }
            None => false,
        }
    }

    /// Fire every pending timer (in arming order) and drain the fallout.
    pub fn fire_timers(&mut self) {
        let timers = std::mem::take(&mut self.timers);
        for t in timers {
            self.now = SimTime(self.now.0 + t.delay_ns);
            let mut out = Vec::new();
            match t.node {
                Endpoint::Server(s) => {
                    self.servers[s.0 as usize].on_timer(self.now, t.token, &mut out)
                }
                Endpoint::Proc(p) => {
                    if let Some(c) = self.clients.get_mut(&p) {
                        let decision = c.on_timer(self.now, t.token, &mut out);
                        self.note_decision(p, decision);
                    }
                }
            }
            for a in out {
                self.interpret(t.node, a);
            }
            self.run();
        }
    }

    /// Ask every server to quiesce (launch lazy commitments) and drain.
    pub fn quiesce(&mut self) {
        for i in 0..self.servers.len() {
            let mut out = Vec::new();
            self.servers[i].quiesce(self.now, &mut out);
            for a in out {
                self.interpret(Endpoint::Server(ServerId(i as u32)), a);
            }
        }
        self.run();
        // Quiescing can cascade (votes → decisions → acks); iterate.
        for _ in 0..8 {
            if self.servers.iter().all(|s| s.is_quiesced()) {
                break;
            }
            for i in 0..self.servers.len() {
                let mut out = Vec::new();
                self.servers[i].quiesce(self.now, &mut out);
                for a in out {
                    self.interpret(Endpoint::Server(ServerId(i as u32)), a);
                }
            }
            self.run();
        }
    }

    fn deliver(&mut self, env: Envelope) {
        let mut out = Vec::new();
        match env.to {
            Endpoint::Server(s) => {
                self.servers[s.0 as usize].on_msg(self.now, env.from, env.payload, &mut out);
            }
            Endpoint::Proc(p) => {
                if let Some(c) = self.clients.get_mut(&p) {
                    let decision = c.on_msg(self.now, env.from, env.payload, &mut out);
                    self.note_decision(p, decision);
                }
            }
        }
        for a in out {
            self.interpret(env.to, a);
        }
    }

    fn note_decision(&mut self, proc: ProcId, decision: ClientDecision) {
        if let ClientDecision::Done(outcome) = decision {
            if let Some(c) = self.clients.get(&proc) {
                self.outcomes.insert(c.op_id, outcome);
            }
        }
    }

    fn interpret(&mut self, from: Endpoint, action: Action) {
        match action {
            Action::Send { to, payload } => {
                *self.msg_counts.entry(payload.kind()).or_insert(0) += 1;
                let env = Envelope { from, to, payload };
                if let Some(f) = &self.hold_filter {
                    if f(&env) {
                        self.held.push(env);
                        return;
                    }
                }
                self.queue.push_back(env);
            }
            // Instant disk: complete immediately, synchronously.
            Action::LogAppend { token, .. }
            | Action::DbSyncWrite { token, .. }
            | Action::DbWriteback { token, .. }
            | Action::LogRead { token, .. }
            | Action::DbRandomRead { token, .. } => {
                let Endpoint::Server(s) = from else {
                    return;
                };
                let mut out = Vec::new();
                self.servers[s.0 as usize].on_disk_done(self.now, token, &mut out);
                for a in out {
                    self.interpret(from, a);
                }
            }
            Action::SetTimer { token, delay_ns } => self.timers.push(PendingTimer {
                node: from,
                token,
                delay_ns,
            }),
        }
    }

    /// Feed externally produced actions (e.g. from a manual
    /// `crash`/`recover` call on an engine) into the harness.
    pub fn inject_actions(&mut self, from: Endpoint, actions: Vec<Action>) {
        for a in actions {
            self.interpret(from, a);
        }
    }

    /// Outcome of a finished operation.
    pub fn outcome(&self, op: OpId) -> Option<OpOutcome> {
        self.outcomes.get(&op).copied()
    }

    /// Merge all stores and check cross-server invariants.
    pub fn check_consistency(&self, roots: &[cx_types::InodeNo]) -> Vec<cx_mdstore::Violation> {
        GlobalView::merge(self.servers.iter().map(|s| s.store())).check(roots)
    }

    pub fn total_msgs(&self) -> u64 {
        self.msg_counts.values().sum()
    }
}
