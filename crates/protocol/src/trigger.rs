//! Batched-commitment triggers (§IV-A, "Batched commitments").
//!
//! "Our implementation currently supports two types of triggers: (1)
//! Timeout trigger, (2) Threshold trigger. The timeout trigger fires if a
//! certain period of time has elapsed since the last commitment, and the
//! threshold trigger fires when the number of pending operations goes
//! beyond a threshold since the last commitment."
//!
//! The paper lists *system idle time* as future work; [`BatchTrigger::Idle`]
//! implements it as an extension (benchmarked as an extra series in the
//! Figure 9 harness).

use cx_types::{BatchTrigger, SimTime};

/// Decision produced by feeding an event to the trigger.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TriggerVerdict {
    /// Launch a commitment batch now.
    Fire,
    /// Arm (or re-arm) a timer for this many ns; call
    /// [`TriggerState::on_timer`] when it fires.
    Arm(u64),
    /// Nothing to do.
    Wait,
}

/// Trigger state machine. The owning engine reports pending-operation
/// arrivals, commitment launches and timer firings; the trigger answers
/// with fire/arm decisions. Timer staleness is handled with generation
/// numbers so superseded timers are ignored rather than cancelled (DES
/// kernels cannot cancel events).
#[derive(Debug, Clone)]
pub struct TriggerState {
    cfg: BatchTrigger,
    generation: u64,
    armed: bool,
    pending: u64,
    last_activity: SimTime,
}

impl TriggerState {
    pub fn new(cfg: BatchTrigger) -> Self {
        Self {
            cfg,
            generation: 0,
            armed: false,
            pending: 0,
            last_activity: SimTime::ZERO,
        }
    }

    /// Current timer generation; the engine embeds it in the timer token
    /// and passes it back to [`TriggerState::on_timer`].
    pub fn generation(&self) -> u64 {
        self.generation
    }

    pub fn pending(&self) -> u64 {
        self.pending
    }

    /// A new operation became eligible for lazy commitment.
    pub fn on_pending(&mut self, now: SimTime) -> TriggerVerdict {
        self.pending += 1;
        self.last_activity = now;
        match self.cfg {
            BatchTrigger::Threshold { pending_ops } => {
                if self.pending >= pending_ops {
                    TriggerVerdict::Fire
                } else {
                    TriggerVerdict::Wait
                }
            }
            BatchTrigger::Timeout { period_ns } => {
                if self.armed {
                    TriggerVerdict::Wait
                } else {
                    self.armed = true;
                    self.generation += 1;
                    TriggerVerdict::Arm(period_ns)
                }
            }
            BatchTrigger::Idle { idle_ns, .. } => {
                // (re-)arm a short probe each time work arrives; the probe
                // fires when the server has been quiet for idle_ns.
                self.armed = true;
                self.generation += 1;
                TriggerVerdict::Arm(idle_ns)
            }
            BatchTrigger::Never => TriggerVerdict::Wait,
        }
    }

    /// Any server activity (for the idle trigger's quietness detection).
    pub fn on_activity(&mut self, now: SimTime) {
        self.last_activity = now;
    }

    /// A timer armed with `generation` fired.
    pub fn on_timer(&mut self, now: SimTime, generation: u64) -> TriggerVerdict {
        if generation != self.generation {
            return TriggerVerdict::Wait; // superseded
        }
        self.armed = false;
        match self.cfg {
            BatchTrigger::Timeout { .. } => {
                if self.pending > 0 {
                    TriggerVerdict::Fire
                } else {
                    TriggerVerdict::Wait
                }
            }
            BatchTrigger::Idle {
                idle_ns,
                fallback_ns,
            } => {
                if self.pending == 0 {
                    return TriggerVerdict::Wait;
                }
                let quiet = now.since(self.last_activity);
                if quiet >= idle_ns || now.since(self.last_activity) >= fallback_ns {
                    TriggerVerdict::Fire
                } else {
                    // still busy: probe again after the remaining quiet time
                    self.armed = true;
                    self.generation += 1;
                    TriggerVerdict::Arm(idle_ns.saturating_sub(quiet).max(1))
                }
            }
            _ => TriggerVerdict::Wait,
        }
    }

    /// A commitment batch was launched; pending count resets.
    pub fn on_batch_launched(&mut self, now: SimTime) -> TriggerVerdict {
        self.pending = 0;
        self.last_activity = now;
        self.armed = false;
        self.generation += 1;
        TriggerVerdict::Wait
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cx_types::DUR_SEC;

    #[test]
    fn timeout_arms_once_then_fires() {
        let mut t = TriggerState::new(BatchTrigger::Timeout {
            period_ns: 10 * DUR_SEC,
        });
        let v = t.on_pending(SimTime(0));
        assert_eq!(v, TriggerVerdict::Arm(10 * DUR_SEC));
        let g = t.generation();
        // more pendings do not re-arm
        assert_eq!(t.on_pending(SimTime(1)), TriggerVerdict::Wait);
        assert_eq!(t.on_pending(SimTime(2)), TriggerVerdict::Wait);
        assert_eq!(t.pending(), 3);
        // the timer fires and there is work
        assert_eq!(t.on_timer(SimTime(10 * DUR_SEC), g), TriggerVerdict::Fire);
    }

    #[test]
    fn timeout_timer_with_no_pending_waits() {
        let mut t = TriggerState::new(BatchTrigger::Timeout { period_ns: 100 });
        let TriggerVerdict::Arm(_) = t.on_pending(SimTime(0)) else {
            panic!()
        };
        let g = t.generation();
        t.on_batch_launched(SimTime(50)); // batch launched early (e.g. conflict)
        assert_eq!(
            t.on_timer(SimTime(100), g),
            TriggerVerdict::Wait,
            "stale generation is ignored"
        );
    }

    #[test]
    fn threshold_fires_at_n() {
        let mut t = TriggerState::new(BatchTrigger::Threshold { pending_ops: 3 });
        assert_eq!(t.on_pending(SimTime(0)), TriggerVerdict::Wait);
        assert_eq!(t.on_pending(SimTime(1)), TriggerVerdict::Wait);
        assert_eq!(t.on_pending(SimTime(2)), TriggerVerdict::Fire);
        t.on_batch_launched(SimTime(3));
        assert_eq!(t.on_pending(SimTime(4)), TriggerVerdict::Wait);
    }

    #[test]
    fn never_never_fires() {
        let mut t = TriggerState::new(BatchTrigger::Never);
        for i in 0..1000 {
            assert_eq!(t.on_pending(SimTime(i)), TriggerVerdict::Wait);
        }
    }

    #[test]
    fn idle_fires_after_quiet_period() {
        let mut t = TriggerState::new(BatchTrigger::Idle {
            idle_ns: 100,
            fallback_ns: 10_000,
        });
        let TriggerVerdict::Arm(d) = t.on_pending(SimTime(0)) else {
            panic!()
        };
        assert_eq!(d, 100);
        let g = t.generation();
        // quiet for the whole window → fire
        assert_eq!(t.on_timer(SimTime(100), g), TriggerVerdict::Fire);
    }

    #[test]
    fn idle_reprobes_while_busy() {
        let mut t = TriggerState::new(BatchTrigger::Idle {
            idle_ns: 100,
            fallback_ns: 10_000,
        });
        t.on_pending(SimTime(0));
        let g = t.generation();
        t.on_activity(SimTime(90)); // still busy
        match t.on_timer(SimTime(100), g) {
            TriggerVerdict::Arm(d) => assert!(d <= 100 && d > 0),
            other => panic!("expected re-arm, got {other:?}"),
        }
    }

    #[test]
    fn batch_launch_resets_pending() {
        let mut t = TriggerState::new(BatchTrigger::Threshold { pending_ops: 2 });
        t.on_pending(SimTime(0));
        t.on_batch_launched(SimTime(1));
        assert_eq!(t.pending(), 0);
    }
}
