#![allow(dead_code)]
//! Shared fixtures for protocol tests.

use cx_protocol::testkit::Kit;
use cx_types::{
    BatchTrigger, ClusterConfig, FileKind, InodeNo, Name, Placement, Protocol, ServerId,
};

/// A cluster whose lazy commitments never fire on their own, so tests
/// control exactly when commitment happens.
pub fn kit_never(servers: u32, protocol: Protocol) -> Kit {
    let mut cfg = ClusterConfig::new(servers, protocol);
    cfg.cx.trigger = BatchTrigger::Never;
    cfg.cx.log_limit_bytes = None;
    Kit::new(cfg)
}

/// Root directory inode used by the fixtures.
pub const ROOT: InodeNo = InodeNo(1);

/// Seed the root directory on every server (as a partition) plus the given
/// regular files with entries in the root.
pub fn seed_namespace(kit: &mut Kit, files: &[(Name, InodeNo)]) {
    let placement = kit.placement;
    for (i, server) in kit.servers.iter_mut().enumerate() {
        let store = server.store_mut();
        store.seed_inode(ROOT, FileKind::Directory, 1);
        for &(name, ino) in files {
            if placement.inode_server(ino) == ServerId(i as u32) {
                store.seed_inode(ino, FileKind::Regular, 1);
            }
            if placement.dentry_server(ROOT, name) == ServerId(i as u32) {
                store.seed_dentry(ROOT, name, ino);
            }
        }
    }
}

/// Roots that are exempt from the orphan check: the root directory exists
/// as a partition object on every server.
pub fn roots() -> Vec<InodeNo> {
    vec![ROOT]
}

/// Find a name whose root dentry lands on `server`.
pub fn name_on(placement: &Placement, server: ServerId, from: u64) -> Name {
    (from..)
        .map(Name)
        .find(|n| placement.dentry_server(ROOT, *n) == server)
        .expect("names are plentiful")
}

/// Find an inode (≥ from) that lands on `server`.
pub fn inode_on(placement: &Placement, server: ServerId, from: u64) -> InodeNo {
    (from..)
        .map(InodeNo)
        .find(|i| placement.inode_server(*i) == server)
        .expect("inodes are plentiful")
}

/// Find (name, inode) for a guaranteed cross-server create: the dentry and
/// the inode land on different servers.
pub fn cross_server_pair(placement: &Placement, name_from: u64, ino_from: u64) -> (Name, InodeNo) {
    for n in name_from..name_from + 10_000 {
        let name = Name(n);
        let coord = placement.dentry_server(ROOT, name);
        for i in ino_from..ino_from + 10_000 {
            let ino = InodeNo(i);
            if placement.inode_server(ino) != coord {
                return (name, ino);
            }
        }
    }
    panic!("no cross-server pair found");
}
