//! Crash and recovery (§III-D): resuming half-completed commitments from
//! the durable log, in both the coordinator and the participant role, and
//! rollback of executions whose Result-Record never reached the disk.

mod common;

use common::*;
use cx_protocol::testkit::{Envelope, Kit};
use cx_protocol::{Action, CxServer, Endpoint, ServerEngine};
use cx_types::{
    ClusterConfig, FsOp, MsgKind, OpOutcome, Payload, ProcId, Protocol, ServerId, SimTime,
};

fn proc(n: u32) -> ProcId {
    ProcId::new(n, 0)
}

/// Crash `server` in the kit and run recovery to completion.
fn crash_and_recover(kit: &mut Kit, server: ServerId) {
    let idx = server.0 as usize;
    kit.servers[idx].crash(SimTime::ZERO);
    let mut out = Vec::new();
    kit.servers[idx].recover(SimTime::ZERO, &mut out);
    // Interpret recovery actions through the kit's queue: disk reads are
    // instant, messages flow to the peers.
    for a in out {
        kit.inject_actions(Endpoint::Server(server), vec![a]);
    }
    kit.run();
    // Grace timers (deferred votes / presumed aborts) resolve operations
    // whose requests died with a client; fire them and drain.
    kit.fire_timers();
    kit.run();
}

#[test]
fn coordinator_crash_before_commitment_resumes_and_commits() {
    let mut kit = kit_never(4, Protocol::Cx);
    seed_namespace(&mut kit, &[]);
    let (name, ino) = cross_server_pair(&kit.placement, 100, 1000);
    let op = kit.run_op(
        proc(0),
        FsOp::Create {
            parent: ROOT,
            name,
            ino,
        },
    );
    assert_eq!(kit.outcome(op), Some(OpOutcome::Applied));
    let coord = kit.placement.dentry_server(ROOT, name);

    // Crash the coordinator while the commitment is still lazy-pending.
    crash_and_recover(&mut kit, coord);

    // Recovery re-launched the commitment (fresh VOTE round) and the
    // operation committed; the system is consistent.
    assert!(kit.servers.iter().all(|s| s.is_quiesced()));
    assert_eq!(kit.check_consistency(&roots()), vec![]);
    assert!(kit
        .servers
        .iter()
        .any(|s| s.store().lookup(ROOT, name) == Some(ino)));
    assert!(kit.msg_counts.get(&MsgKind::Vote).copied().unwrap_or(0) >= 1);
}

#[test]
fn participant_crash_queries_coordinator_for_outcome() {
    let mut kit = kit_never(4, Protocol::Cx);
    seed_namespace(&mut kit, &[]);
    let (name, ino) = cross_server_pair(&kit.placement, 100, 1000);
    let op = kit.run_op(
        proc(0),
        FsOp::Create {
            parent: ROOT,
            name,
            ino,
        },
    );
    assert_eq!(kit.outcome(op), Some(OpOutcome::Applied));
    let parti = kit.placement.inode_server(ino);

    crash_and_recover(&mut kit, parti);

    assert_eq!(
        kit.msg_counts.get(&MsgKind::QueryOutcome),
        Some(&1),
        "the rebooted participant must query the coordinator"
    );
    assert!(kit.servers.iter().all(|s| s.is_quiesced()));
    assert_eq!(kit.check_consistency(&roots()), vec![]);
    assert!(kit.servers.iter().any(|s| s.store().inode(ino).is_some()));
}

#[test]
fn participant_crash_after_losing_own_result_aborts_cleanly() {
    // The participant crashes so early that its Result-Record is gone; the
    // coordinator's recovery vote then gets a NO and the op aborts.
    let mut kit = kit_never(4, Protocol::Cx);
    seed_namespace(&mut kit, &[]);
    let (name, ino) = cross_server_pair(&kit.placement, 100, 1000);
    let parti = kit.placement.inode_server(ino);
    let coord = kit.placement.dentry_server(ROOT, name);

    // Hold the participant-bound request: only the coordinator executes.
    let parti_ep = Endpoint::Server(parti);
    kit.hold_if(move |env: &Envelope| {
        matches!(env.payload, Payload::SubOpReq { .. }) && env.to == parti_ep
    });
    let op = kit.start_op(
        proc(0),
        FsOp::Create {
            parent: ROOT,
            name,
            ino,
        },
    );
    kit.run();
    assert_eq!(kit.outcome(op), None, "client still waits for one half");

    // The participant never saw the request (client node died, message
    // lost). The coordinator crashes and recovers: its half-completed op
    // is resumed, the participant votes NO (presumed abort), and the
    // coordinator rolls its insertion back.
    crash_and_recover(&mut kit, coord);
    kit.quiesce();
    assert_eq!(kit.check_consistency(&roots()), vec![]);
    assert!(
        kit.servers
            .iter()
            .all(|s| s.store().lookup(ROOT, name).is_none()),
        "the half-executed create must be rolled back"
    );
    let aborted: u64 = kit.servers.iter().map(|s| s.stats().ops_aborted).sum();
    assert_eq!(aborted, 1);
}

#[test]
fn unflushed_execution_is_rolled_back_on_crash() {
    // Drive a CxServer directly: execute a sub-op but never complete the
    // disk flush, then crash. The volatile execution must vanish.
    let cfg = ClusterConfig::new(2, Protocol::Cx);
    let mut server = CxServer::new(ServerId(0), &cfg);
    let (name, ino) = cross_server_pair(&cx_types::Placement::new(2), 100, 1000);

    let mut out = Vec::new();
    server.on_msg(
        SimTime::ZERO,
        Endpoint::Proc(proc(0)),
        Payload::SubOpReq {
            op_id: cx_types::OpId::new(proc(0), 0),
            subop: cx_types::SubOp::InsertEntry {
                parent: ROOT,
                name,
                child: ino,
                kind: cx_types::FileKind::Regular,
            },
            role: cx_types::Role::Coordinator,
            peer: Some(ServerId(1)),
            colocated: None,
        },
        &mut out,
    );
    // The engine asked for a log append…
    assert!(out.iter().any(|a| matches!(a, Action::LogAppend { .. })));
    // …and applied the execution in memory.
    assert_eq!(server.store().lookup(ROOT, name), Some(ino));

    // Power cut before the flush completes.
    server.crash(SimTime::ZERO);
    assert_eq!(
        server.store().lookup(ROOT, name),
        None,
        "un-flushed execution must be rolled back on crash"
    );
    let mut out = Vec::new();
    let scanned = server.recover(SimTime::ZERO, &mut out);
    assert_eq!(scanned, 0, "nothing durable to scan");
}

#[test]
fn recovery_defers_new_requests_until_done() {
    let mut kit = kit_never(4, Protocol::Cx);
    seed_namespace(&mut kit, &[]);
    let (name, ino) = cross_server_pair(&kit.placement, 100, 1000);
    let op = kit.run_op(
        proc(0),
        FsOp::Create {
            parent: ROOT,
            name,
            ino,
        },
    );
    assert_eq!(kit.outcome(op), Some(OpOutcome::Applied));
    let coord = kit.placement.dentry_server(ROOT, name);

    // Crash the coordinator, start recovery, but hold its recovery VOTE so
    // recovery stays in progress.
    let idx = coord.0 as usize;
    kit.servers[idx].crash(SimTime::ZERO);
    kit.hold_if(move |env: &Envelope| matches!(env.payload, Payload::Vote { .. }));
    let mut out = Vec::new();
    kit.servers[idx].recover(SimTime::ZERO, &mut out);
    kit.inject_actions(Endpoint::Server(coord), out);
    kit.run();
    assert_eq!(kit.held_count(), 1, "recovery vote is held");

    // A new lookup at the recovering server must not be served yet.
    let b = kit.start_op(proc(1), FsOp::Lookup { parent: ROOT, name });
    kit.run();
    assert_eq!(kit.outcome(b), None, "requests wait during recovery");

    kit.stop_holding();
    kit.release_held();
    kit.run();
    assert_eq!(kit.outcome(b), Some(OpOutcome::Applied));
    assert_eq!(kit.check_consistency(&roots()), vec![]);
}

#[test]
fn crash_loses_nothing_after_full_quiesce() {
    let mut kit = kit_never(4, Protocol::Cx);
    seed_namespace(&mut kit, &[]);
    let mut created = Vec::new();
    for k in 0..10u64 {
        let (name, ino) = cross_server_pair(&kit.placement, 60_000 + 31 * k, 70_000 + 11 * k);
        if kit
            .servers
            .iter()
            .any(|s| s.store().lookup(ROOT, name).is_some())
        {
            continue;
        }
        kit.run_op(
            proc(0),
            FsOp::Create {
                parent: ROOT,
                name,
                ino,
            },
        );
        created.push((name, ino));
    }
    kit.quiesce();

    // After full commitment, a crash + recovery changes nothing: the log
    // is pruned and the database image is authoritative.
    crash_and_recover(&mut kit, ServerId(0));
    assert_eq!(kit.check_consistency(&roots()), vec![]);
    for (name, ino) in created {
        assert!(kit
            .servers
            .iter()
            .any(|s| s.store().lookup(ROOT, name) == Some(ino)));
    }
}
