//! Basic Cx protocol behaviour: gracious execution (Figure 2a),
//! disagreement and ALL-NO (Figure 2b), lazy batching, message counts.

mod common;

use common::*;
use cx_protocol::testkit::Kit;
use cx_types::{BatchTrigger, ClusterConfig, FsOp, MsgKind, Name, OpOutcome, ProcId, Protocol};

fn proc(n: u32) -> ProcId {
    ProcId::new(n, 0)
}

#[test]
fn gracious_cross_server_create_applies() {
    let mut kit = kit_never(4, Protocol::Cx);
    seed_namespace(&mut kit, &[]);
    let (name, ino) = cross_server_pair(&kit.placement, 100, 1000);
    let op = kit.run_op(
        proc(0),
        FsOp::Create {
            parent: ROOT,
            name,
            ino,
        },
    );
    // Figure 2(a): the process completes before any commitment happened.
    assert_eq!(kit.outcome(op), Some(OpOutcome::Applied));
    assert!(
        kit.servers.iter().any(|s| !s.is_quiesced()),
        "the operation must still be pending on the servers"
    );
    // No conflicts, no immediate commitments, nothing aborted.
    let conflicts: u64 = kit.servers.iter().map(|s| s.stats().conflicts).sum();
    assert_eq!(conflicts, 0);

    // The lazy commitment settles everything.
    kit.quiesce();
    assert!(kit.servers.iter().all(|s| s.is_quiesced()));
    assert_eq!(kit.check_consistency(&roots()), vec![]);
    let committed: u64 = kit.servers.iter().map(|s| s.stats().ops_committed).sum();
    assert_eq!(committed, 1);
}

#[test]
fn gracious_execution_message_pattern() {
    let mut kit = kit_never(4, Protocol::Cx);
    seed_namespace(&mut kit, &[]);
    let (name, ino) = cross_server_pair(&kit.placement, 100, 1000);
    kit.run_op(
        proc(0),
        FsOp::Create {
            parent: ROOT,
            name,
            ino,
        },
    );
    // Execution phase: two requests, two responses (steps 1-2).
    assert_eq!(kit.msg_counts.get(&MsgKind::SubOpReq), Some(&2));
    assert_eq!(kit.msg_counts.get(&MsgKind::SubOpResp), Some(&2));
    assert_eq!(kit.msg_counts.get(&MsgKind::Vote), None);

    // Commitment phase: VOTE, YES/NO, COMMIT-REQ, ACK (steps 3-7a).
    kit.quiesce();
    assert_eq!(kit.msg_counts.get(&MsgKind::Vote), Some(&1));
    assert_eq!(kit.msg_counts.get(&MsgKind::VoteResult), Some(&1));
    assert_eq!(kit.msg_counts.get(&MsgKind::CommitReq), Some(&1));
    assert_eq!(kit.msg_counts.get(&MsgKind::Ack), Some(&1));
    // Never any client-visible commitment traffic.
    assert_eq!(kit.msg_counts.get(&MsgKind::LCom), None);
    assert_eq!(kit.msg_counts.get(&MsgKind::AllNo), None);
}

#[test]
fn all_no_create_fails_without_side_effects() {
    // The file already exists on BOTH sides: both sub-ops vote NO; the
    // process completes (Failed) and the lazy commitment aborts.
    let mut kit = kit_never(4, Protocol::Cx);
    let (name, ino) = cross_server_pair(&kit.placement, 100, 1000);
    seed_namespace(&mut kit, &[(name, ino)]);
    let op = kit.run_op(
        proc(0),
        FsOp::Create {
            parent: ROOT,
            name,
            ino,
        },
    );
    assert_eq!(kit.outcome(op), Some(OpOutcome::Failed));
    kit.quiesce();
    assert_eq!(kit.check_consistency(&roots()), vec![]);
    let aborted: u64 = kit.servers.iter().map(|s| s.stats().ops_aborted).sum();
    assert_eq!(aborted, 1);
}

#[test]
fn disagreement_triggers_lcom_and_all_no() {
    // The inode already exists (participant votes NO) but the entry does
    // not (coordinator votes YES): Figure 2(b).
    let mut kit = kit_never(4, Protocol::Cx);
    let (existing_name, ino) = cross_server_pair(&kit.placement, 100, 1000);
    seed_namespace(&mut kit, &[(existing_name, ino)]);
    let fresh_name = {
        // a fresh name whose dentry lands on a different server than the
        // inode, so the create is genuinely cross-server
        let parti = kit.placement.inode_server(ino);
        (existing_name.0 + 123_456..)
            .map(Name)
            .find(|n| kit.placement.dentry_server(ROOT, *n) != parti)
            .unwrap()
    };
    let op = kit.run_op(
        proc(0),
        FsOp::Create {
            parent: ROOT,
            name: fresh_name,
            ino, // duplicate inode → participant NO
        },
    );
    assert_eq!(kit.outcome(op), Some(OpOutcome::Failed));
    assert_eq!(kit.msg_counts.get(&MsgKind::LCom), Some(&1));
    assert_eq!(kit.msg_counts.get(&MsgKind::AllNo), Some(&1));
    // The immediate commitment aborted the coordinator's successful half.
    kit.quiesce();
    assert_eq!(kit.check_consistency(&roots()), vec![]);
    let view_has_entry = kit
        .servers
        .iter()
        .any(|s| s.store().lookup(ROOT, fresh_name).is_some());
    assert!(!view_has_entry, "aborted entry must be rolled back");
}

#[test]
fn lazy_commitments_batch_many_ops_into_few_messages() {
    let mut kit = kit_never(2, Protocol::Cx);
    seed_namespace(&mut kit, &[]);
    // Many creates from one process, all coordinated by one server pair.
    let mut ops = Vec::new();
    for i in 0..50u64 {
        let (name, ino) = cross_server_pair(&kit.placement, 10_000 + i * 17, 20_000 + i * 13);
        if kit
            .servers
            .iter()
            .any(|s| s.store().lookup(ROOT, name).is_some())
        {
            continue;
        }
        ops.push(kit.run_op(
            proc(0),
            FsOp::Create {
                parent: ROOT,
                name,
                ino,
            },
        ));
    }
    let n = ops.len() as u64;
    assert!(n >= 40, "fixture should produce many distinct creates");
    for op in &ops {
        assert_eq!(kit.outcome(*op), Some(OpOutcome::Applied));
    }
    let votes_before = kit.msg_counts.get(&MsgKind::Vote).copied().unwrap_or(0);
    assert_eq!(votes_before, 0, "Never trigger: no commitments yet");
    kit.quiesce();
    let votes = kit.msg_counts.get(&MsgKind::Vote).copied().unwrap_or(0);
    assert!(
        votes <= 4,
        "batched commitment should need a handful of VOTE messages for {n} ops, used {votes}"
    );
    assert_eq!(kit.check_consistency(&roots()), vec![]);
}

#[test]
fn timeout_trigger_commits_without_quiesce() {
    let mut cfg = ClusterConfig::new(4, Protocol::Cx);
    cfg.cx.trigger = BatchTrigger::Timeout {
        period_ns: 10_000_000,
    };
    let mut kit = Kit::new(cfg);
    seed_namespace(&mut kit, &[]);
    let (name, ino) = cross_server_pair(&kit.placement, 100, 1000);
    let op = kit.run_op(
        proc(0),
        FsOp::Create {
            parent: ROOT,
            name,
            ino,
        },
    );
    assert_eq!(kit.outcome(op), Some(OpOutcome::Applied));
    assert!(!kit.timers.is_empty(), "timeout trigger must be armed");
    kit.fire_timers();
    assert!(
        kit.servers.iter().all(|s| s.is_quiesced()),
        "timer-driven lazy commitment must settle the op"
    );
    assert_eq!(kit.check_consistency(&roots()), vec![]);
}

#[test]
fn single_server_ops_complete_without_commitment_traffic() {
    let mut kit = kit_never(4, Protocol::Cx);
    let files: Vec<_> = (0..8u64)
        .map(|i| (Name(500 + i), cx_types::InodeNo(900 + i)))
        .collect();
    seed_namespace(&mut kit, &files);
    for (name, ino) in &files {
        let op = kit.run_op(proc(0), FsOp::Stat { ino: *ino });
        assert_eq!(kit.outcome(op), Some(OpOutcome::Applied));
        let op = kit.run_op(
            proc(0),
            FsOp::Lookup {
                parent: ROOT,
                name: *name,
            },
        );
        assert_eq!(kit.outcome(op), Some(OpOutcome::Applied));
    }
    assert_eq!(kit.msg_counts.get(&MsgKind::Vote), None);
    // one request and one response per operation
    assert_eq!(
        kit.msg_counts.get(&MsgKind::SubOpReq),
        Some(&(files.len() as u64 * 2))
    );
}

#[test]
fn full_lifecycle_create_stat_remove() {
    let mut kit = kit_never(4, Protocol::Cx);
    seed_namespace(&mut kit, &[]);
    let (name, ino) = cross_server_pair(&kit.placement, 100, 1000);
    let create = kit.run_op(
        proc(0),
        FsOp::Create {
            parent: ROOT,
            name,
            ino,
        },
    );
    // Same process may access its own pending objects immediately.
    let stat = kit.run_op(proc(0), FsOp::Stat { ino });
    let remove = kit.run_op(
        proc(0),
        FsOp::Remove {
            parent: ROOT,
            name,
            ino,
        },
    );
    assert_eq!(kit.outcome(create), Some(OpOutcome::Applied));
    assert_eq!(kit.outcome(stat), Some(OpOutcome::Applied));
    assert_eq!(kit.outcome(remove), Some(OpOutcome::Applied));
    let conflicts: u64 = kit.servers.iter().map(|s| s.stats().conflicts).sum();
    assert_eq!(conflicts, 0, "a process never conflicts with itself");
    kit.quiesce();
    assert_eq!(kit.check_consistency(&roots()), vec![]);
    assert!(kit
        .servers
        .iter()
        .all(|s| s.store().lookup(ROOT, name).is_none()));
}

#[test]
fn failed_read_reports_failure() {
    let mut kit = kit_never(4, Protocol::Cx);
    seed_namespace(&mut kit, &[]);
    let op = kit.run_op(
        proc(0),
        FsOp::Stat {
            ino: cx_types::InodeNo(4242),
        },
    );
    assert_eq!(kit.outcome(op), Some(OpOutcome::Failed));
}

#[test]
fn colocated_mutation_is_local_and_atomic() {
    // On a single-server cluster every mutation is colocated.
    let mut kit = kit_never(1, Protocol::Cx);
    seed_namespace(&mut kit, &[]);
    let op = kit.run_op(
        proc(0),
        FsOp::Create {
            parent: ROOT,
            name: Name(5),
            ino: cx_types::InodeNo(50),
        },
    );
    assert_eq!(kit.outcome(op), Some(OpOutcome::Applied));
    assert_eq!(kit.msg_counts.get(&MsgKind::Vote), None);
    assert_eq!(
        kit.servers[0].stats().local_mutations,
        1,
        "colocated halves run as one local mutation"
    );
    kit.quiesce();
    assert_eq!(kit.check_consistency(&roots()), vec![]);
}
