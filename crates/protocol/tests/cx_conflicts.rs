//! Conflict handling: ordered conflicts (Figure 3a), disordered conflicts
//! with invalidation and re-queuing (Figure 3b), conflict hints, the
//! hint-mismatch fallback, and log-pressure blocking (Figure 7a).

mod common;

use common::*;
use cx_protocol::testkit::{Envelope, Kit};
use cx_protocol::Endpoint;
use cx_types::{
    ClusterConfig, FsOp, InodeNo, MsgKind, Name, OpOutcome, Payload, ProcId, Protocol, ServerId,
};

fn proc(n: u32) -> ProcId {
    ProcId::new(n, 0)
}

/// Figure 3(a): the coordinator sees B's sub-op while A is still pending;
/// B blocks, A is committed immediately, then B executes with hint [A].
#[test]
fn ordered_conflict_commits_pending_op_then_executes() {
    let mut kit = kit_never(4, Protocol::Cx);
    seed_namespace(&mut kit, &[]);
    let (name, ino) = cross_server_pair(&kit.placement, 100, 1000);

    // Process A creates the file; commitment stays pending (Never trigger).
    let a = kit.run_op(
        proc(0),
        FsOp::Create {
            parent: ROOT,
            name,
            ino,
        },
    );
    assert_eq!(kit.outcome(a), Some(OpOutcome::Applied));

    // Process B looks the new entry up: it touches A's active dentry.
    let b = kit.run_op(proc(1), FsOp::Lookup { parent: ROOT, name });
    // The conflict forced an immediate commitment; afterwards B's lookup
    // executed against the committed entry.
    assert_eq!(kit.outcome(b), Some(OpOutcome::Applied));
    let conflicts: u64 = kit.servers.iter().map(|s| s.stats().conflicts).sum();
    assert_eq!(conflicts, 1);
    let immediate: u64 = kit
        .servers
        .iter()
        .map(|s| s.stats().immediate_commitments)
        .sum();
    assert_eq!(immediate, 1);
    assert!(kit.servers.iter().all(|s| s.is_quiesced()));
    assert_eq!(kit.check_consistency(&roots()), vec![]);
}

/// A conflict detected at the participant first: the participant sends
/// C-REQ to the coordinator, which launches the immediate commitment.
#[test]
fn participant_detected_conflict_routes_commitment_request() {
    let mut kit = kit_never(8, Protocol::Cx);
    seed_namespace(&mut kit, &[]);
    let (name, ino) = cross_server_pair(&kit.placement, 100, 1000);

    let a = kit.run_op(
        proc(0),
        FsOp::Create {
            parent: ROOT,
            name,
            ino,
        },
    );
    assert_eq!(kit.outcome(a), Some(OpOutcome::Applied));

    // B stats the new inode: single-server read at the participant, which
    // holds A's active inode object.
    let b = kit.run_op(proc(1), FsOp::Stat { ino });
    assert_eq!(kit.outcome(b), Some(OpOutcome::Applied));
    assert_eq!(
        kit.msg_counts.get(&MsgKind::CommitmentReq),
        Some(&1),
        "the participant must ask the coordinator via C-REQ"
    );
    assert!(kit.servers.iter().all(|s| s.is_quiesced()));
    assert_eq!(kit.check_consistency(&roots()), vec![]);
}

/// Build the Figure 3(b) fixture: two operations that share objects on
/// both servers — the *same* directory entry at the coordinator and the
/// *same* target inode at the participant.
///
/// A = link(root/n -> t) and B = unlink(root/n -> t): A inserts the entry
/// that B removes, and both adjust t's nlink. `t` is seeded with two other
/// entries (nlink 2) so B's DecNlink succeeds even when the participant
/// executes it first.
fn fig3b_fixture(kit: &Kit) -> (Name, InodeNo, ServerId, ServerId) {
    let placement = kit.placement;
    let n = Name(7_000);
    let coord = placement.dentry_server(ROOT, n);
    let t = (9_000..)
        .map(InodeNo)
        .find(|i| placement.inode_server(*i) != coord)
        .unwrap();
    let parti = placement.inode_server(t);
    (n, t, coord, parti)
}

/// Figure 3(b): the participant sees B before A while the coordinator saw
/// A before B. The participant invalidates B's execution, runs A, and B
/// re-executes after A's commitment with hint [A].
#[test]
fn disordered_conflict_invalidates_and_requeues() {
    let mut kit = kit_never(4, Protocol::Cx);
    let (n, t, coord, parti) = fig3b_fixture(&kit);
    // Seed t with nlink 2 via two pre-existing entries.
    let placement = kit.placement;
    for (i, server) in kit.servers.iter_mut().enumerate() {
        let store = server.store_mut();
        store.seed_inode(ROOT, cx_types::FileKind::Directory, 1);
        if placement.inode_server(t) == ServerId(i as u32) {
            store.seed_inode(t, cx_types::FileKind::Regular, 2);
        }
        for pre in [Name(91_001), Name(91_002)] {
            if placement.dentry_server(ROOT, pre) == ServerId(i as u32) {
                store.seed_dentry(ROOT, pre, t);
            }
        }
    }

    // Orchestrate the disordered delivery: hold A's participant-bound
    // request and B's coordinator-bound request.
    let coord_ep = Endpoint::Server(coord);
    let parti_ep = Endpoint::Server(parti);
    let a_proc = proc(0);
    let b_proc = proc(1);
    kit.hold_if(move |env: &Envelope| {
        if let Payload::SubOpReq { op_id, .. } = &env.payload {
            // A's sub-op to the participant, B's sub-op to the coordinator
            return (op_id.proc == a_proc && env.to == parti_ep)
                || (op_id.proc == b_proc && env.to == coord_ep);
        }
        false
    });

    // A: link(root/n -> t). B: unlink(root/n -> t).
    let a = kit.start_op(
        a_proc,
        FsOp::Link {
            parent: ROOT,
            name: n,
            target: t,
        },
    );
    let b = kit.start_op(
        b_proc,
        FsOp::Unlink {
            parent: ROOT,
            name: n,
            target: t,
        },
    );
    kit.run();
    // Coordinator has executed A; participant has executed B.
    assert_eq!(kit.held_count(), 2);
    kit.stop_holding();
    kit.release_held();
    kit.run();
    kit.fire_timers(); // client hint-mismatch timers, if armed
    kit.run();

    assert_eq!(kit.outcome(a), Some(OpOutcome::Applied), "A must commit");
    assert_eq!(kit.outcome(b), Some(OpOutcome::Applied), "B re-executes");
    let invalidations: u64 = kit.servers.iter().map(|s| s.stats().invalidations).sum();
    assert_eq!(invalidations, 1, "B's first execution was invalidated");

    kit.quiesce();
    assert_eq!(kit.check_consistency(&roots()), vec![]);
    // Net effect: the entry n is gone again and t is back to nlink 2.
    assert!(kit
        .servers
        .iter()
        .all(|s| s.store().lookup(ROOT, n).is_none()));
    let nlink = kit
        .servers
        .iter()
        .find_map(|s| s.store().inode(t))
        .map(|i| i.nlink);
    assert_eq!(nlink, Some(2));
}

/// An operation that conflicts on only one server ends up with mismatched
/// hints ([null] vs [A]); the client times out and forces an immediate
/// commitment, which completes the operation.
#[test]
fn hint_mismatch_falls_back_to_lcom() {
    let mut kit = kit_never(8, Protocol::Cx);
    seed_namespace(&mut kit, &[]);
    let placement = kit.placement;
    // A: create root/n1 with inode i — pending after completion.
    let (n1, i) = cross_server_pair(&placement, 100, 1000);
    let a = kit.run_op(
        proc(0),
        FsOp::Create {
            parent: ROOT,
            name: n1,
            ino: i,
        },
    );
    assert_eq!(kit.outcome(a), Some(OpOutcome::Applied));

    // B: link root/n2 -> i from another process, with a different
    // coordinator. It conflicts with A only at i's server.
    let parti = placement.inode_server(i);
    let a_coord = placement.dentry_server(ROOT, n1);
    let n2 = (50_000..)
        .map(Name)
        .find(|n| {
            let c = placement.dentry_server(ROOT, *n);
            c != parti && c != a_coord
        })
        .unwrap();
    let b = kit.run_op(
        proc(1),
        FsOp::Link {
            parent: ROOT,
            name: n2,
            target: i,
        },
    );
    // Not yet complete: B's hints mismatch ([null] at its coordinator,
    // [A] at the participant), so a timer is armed.
    assert_eq!(kit.outcome(b), None);
    kit.fire_timers();
    kit.run();
    assert_eq!(kit.outcome(b), Some(OpOutcome::Applied));
    assert_eq!(kit.msg_counts.get(&MsgKind::LCom), Some(&1));
    assert_eq!(
        kit.msg_counts.get(&MsgKind::Committed),
        Some(&1),
        "the forced commitment committed B"
    );
    kit.quiesce();
    assert_eq!(kit.check_consistency(&roots()), vec![]);
    let nlink = kit
        .servers
        .iter()
        .find_map(|s| s.store().inode(i))
        .map(|n| n.nlink);
    assert_eq!(nlink, Some(2), "create + link");
}

/// Figure 7(a)'s mechanism: a full log blocks new arrivals until pruning,
/// which requires commitments to be forced.
#[test]
fn log_pressure_forces_commitments_and_recovers() {
    let mut cfg = ClusterConfig::new(2, Protocol::Cx);
    cfg.cx.trigger = cx_types::BatchTrigger::Never;
    cfg.cx.log_limit_bytes = Some(1200); // fits ~5 result records
    let mut kit = Kit::new(cfg);
    seed_namespace(&mut kit, &[]);

    let mut applied = 0;
    for k in 0..40u64 {
        let (name, ino) = cross_server_pair(&kit.placement, 30_000 + k * 101, 40_000 + k * 7);
        if kit
            .servers
            .iter()
            .any(|s| s.store().lookup(ROOT, name).is_some())
        {
            continue;
        }
        let op = kit.run_op(
            proc(0),
            FsOp::Create {
                parent: ROOT,
                name,
                ino,
            },
        );
        if kit.outcome(op) == Some(OpOutcome::Applied) {
            applied += 1;
        }
    }
    assert!(applied >= 30, "ops must keep completing under log pressure");
    let log_blocks: u64 = kit.servers.iter().map(|s| s.stats().log_full_blocks).sum();
    assert!(log_blocks > 0, "the tiny log must have filled up");
    kit.quiesce();
    assert_eq!(kit.check_consistency(&roots()), vec![]);
    for s in &kit.servers {
        assert!(s.valid_log_bytes() <= 1200, "pruning must respect the cap");
    }
}

/// Two processes hammering the same directory entry name: the second
/// create must fail cleanly (EntryExists) whichever order commits.
#[test]
fn duplicate_name_race_resolves_cleanly() {
    let mut kit = kit_never(4, Protocol::Cx);
    seed_namespace(&mut kit, &[]);
    let (name, i1) = cross_server_pair(&kit.placement, 100, 1000);
    let i2 = InodeNo(i1.0 + 1);

    let a = kit.run_op(
        proc(0),
        FsOp::Create {
            parent: ROOT,
            name,
            ino: i1,
        },
    );
    let b = kit.run_op(
        proc(1),
        FsOp::Create {
            parent: ROOT,
            name,
            ino: i2,
        },
    );
    kit.fire_timers();
    kit.run();
    assert_eq!(kit.outcome(a), Some(OpOutcome::Applied));
    assert_eq!(kit.outcome(b), Some(OpOutcome::Failed), "duplicate name");
    kit.quiesce();
    assert_eq!(kit.check_consistency(&roots()), vec![]);
    // Only the first create's inode exists.
    assert!(kit.servers.iter().any(|s| s.store().inode(i1).is_some()));
    assert!(kit.servers.iter().all(|s| s.store().inode(i2).is_none()));
}

/// Conflicting read arrives while the pending op's commitment is already
/// in flight: the read waits for the existing commitment (no duplicate).
#[test]
fn conflict_during_inflight_commitment_waits() {
    let mut kit = kit_never(4, Protocol::Cx);
    seed_namespace(&mut kit, &[]);
    let (name, ino) = cross_server_pair(&kit.placement, 100, 1000);
    let coord = kit.placement.dentry_server(ROOT, name);

    let a = kit.run_op(
        proc(0),
        FsOp::Create {
            parent: ROOT,
            name,
            ino,
        },
    );
    assert_eq!(kit.outcome(a), Some(OpOutcome::Applied));

    // Hold the participant's VoteResult so A's commitment stays in flight.
    kit.hold_if(move |env: &Envelope| {
        matches!(env.payload, Payload::VoteResult { .. }) && env.to == Endpoint::Server(coord)
    });
    // Kick off the lazy commitment: the VOTE goes out, its result is held,
    // so the batch stays open.
    kit.quiesce();
    assert_eq!(kit.held_count(), 1, "vote result is held");

    // B's lookup now conflicts with A, whose commitment is in flight;
    // the request blocks without launching a second commitment.
    let b = kit.start_op(proc(1), FsOp::Lookup { parent: ROOT, name });
    kit.run();
    assert_eq!(kit.outcome(b), None, "B waits for the commitment");

    kit.stop_holding();
    kit.release_held();
    kit.run();
    assert_eq!(kit.outcome(b), Some(OpOutcome::Applied));
    kit.quiesce();
    assert_eq!(kit.check_consistency(&roots()), vec![]);
}
