//! The baseline protocols (SE, SE-batched, 2PC, CE): functional
//! correctness, protocol-specific message patterns, the SE orphan flaw,
//! and cross-protocol equivalence on conflict-free workloads.

mod common;

use common::*;
use cx_protocol::testkit::{Envelope, Kit};
use cx_protocol::Endpoint;
use cx_types::{FsOp, InodeNo, MsgKind, Name, OpOutcome, Payload, ProcId, Protocol};

fn proc(n: u32) -> ProcId {
    ProcId::new(n, 0)
}

fn run_standard_workload(protocol: Protocol) -> Kit {
    let mut kit = kit_never(4, protocol);
    seed_namespace(&mut kit, &[]);
    let placement = kit.placement;

    // A deterministic mixed workload: mkdir, creates, links, stats,
    // unlinks, removes — across several processes (sequentially issued,
    // so no conflicts arise and every protocol agrees).
    let dir = InodeNo(2);
    assert_eq!(
        kit.run_op(
            proc(0),
            FsOp::Mkdir {
                parent: ROOT,
                name: Name(1),
                ino: dir
            }
        ),
        kit.clients[&proc(0)].op_id
    );
    let mut files = Vec::new();
    for k in 0..6u64 {
        let (name, ino) = cross_server_pair(&placement, 1_000 + k * 37, 2_000 + k * 13);
        if files.iter().any(|(n, _)| *n == name) {
            continue;
        }
        kit.run_op(
            proc((k % 3) as u32),
            FsOp::Create {
                parent: ROOT,
                name,
                ino,
            },
        );
        files.push((name, ino));
    }
    // stats and lookups
    for (name, ino) in &files {
        kit.run_op(proc(0), FsOp::Stat { ino: *ino });
        kit.run_op(
            proc(1),
            FsOp::Lookup {
                parent: ROOT,
                name: *name,
            },
        );
    }
    // link + unlink the first file
    if let Some(&(_, target)) = files.first() {
        let link_name = Name(90_001);
        kit.run_op(
            proc(2),
            FsOp::Link {
                parent: ROOT,
                name: link_name,
                target,
            },
        );
        kit.run_op(
            proc(2),
            FsOp::Unlink {
                parent: ROOT,
                name: link_name,
                target,
            },
        );
    }
    // remove the last file
    if let Some(&(name, ino)) = files.last() {
        kit.run_op(
            proc(0),
            FsOp::Remove {
                parent: ROOT,
                name,
                ino,
            },
        );
    }
    kit.fire_timers();
    kit.run();
    kit.quiesce();
    kit
}

#[test]
fn all_protocols_agree_on_conflict_free_workloads() {
    let reference = run_standard_workload(Protocol::Cx);
    let ref_violations = reference.check_consistency(&roots());
    assert_eq!(ref_violations, vec![]);
    let ref_inodes: usize = reference
        .servers
        .iter()
        .map(|s| s.store().inode_count())
        .sum();
    let ref_dentries: usize = reference
        .servers
        .iter()
        .map(|s| s.store().dentry_count())
        .sum();

    for protocol in [
        Protocol::Se,
        Protocol::SeBatched,
        Protocol::TwoPc,
        Protocol::Ce,
    ] {
        let kit = run_standard_workload(protocol);
        assert_eq!(
            kit.check_consistency(&roots()),
            vec![],
            "{protocol:?} must end consistent"
        );
        let inodes: usize = kit.servers.iter().map(|s| s.store().inode_count()).sum();
        let dentries: usize = kit.servers.iter().map(|s| s.store().dentry_count()).sum();
        assert_eq!(
            (inodes, dentries),
            (ref_inodes, ref_dentries),
            "{protocol:?}"
        );
        // every outcome matches the Cx run
        for (op, outcome) in &reference.outcomes {
            assert_eq!(kit.outcomes.get(op), Some(outcome), "{protocol:?} {op}");
        }
    }
}

#[test]
fn se_executes_serially_participant_first() {
    let mut kit = kit_never(4, Protocol::Se);
    seed_namespace(&mut kit, &[]);
    let (name, ino) = cross_server_pair(&kit.placement, 100, 1000);
    let op = kit.run_op(
        proc(0),
        FsOp::Create {
            parent: ROOT,
            name,
            ino,
        },
    );
    assert_eq!(kit.outcome(op), Some(OpOutcome::Applied));
    // Serial execution: 2 requests, 2 responses, zero commitment traffic.
    assert_eq!(kit.msg_counts.get(&MsgKind::SubOpReq), Some(&2));
    assert_eq!(kit.msg_counts.get(&MsgKind::SubOpResp), Some(&2));
    assert_eq!(kit.msg_counts.get(&MsgKind::Vote), None);
    assert_eq!(kit.msg_counts.get(&MsgKind::Ack), None);
    assert_eq!(kit.check_consistency(&roots()), vec![]);
}

#[test]
fn se_clear_withdraws_participant_half() {
    // Coordinator fails (duplicate entry) after the participant succeeded:
    // the client sends CLEAR, which undoes the inode creation (§II-B).
    let mut kit = kit_never(4, Protocol::Se);
    let (name, seeded_ino) = cross_server_pair(&kit.placement, 100, 1000);
    seed_namespace(&mut kit, &[(name, seeded_ino)]);
    // fresh inode on a different server than the coordinator
    let coord = kit.placement.dentry_server(ROOT, name);
    let ino = (5_000..)
        .map(InodeNo)
        .find(|i| kit.placement.inode_server(*i) != coord && *i != seeded_ino)
        .unwrap();
    let op = kit.run_op(
        proc(0),
        FsOp::Create {
            parent: ROOT,
            name,
            ino,
        },
    );
    assert_eq!(kit.outcome(op), Some(OpOutcome::Failed));
    assert_eq!(kit.msg_counts.get(&MsgKind::Clear), Some(&1));
    assert_eq!(kit.msg_counts.get(&MsgKind::ClearResp), Some(&1));
    kit.quiesce();
    assert_eq!(kit.check_consistency(&roots()), vec![]);
    assert!(
        kit.servers.iter().all(|s| s.store().inode(ino).is_none()),
        "CLEAR must remove the participant's inode"
    );
}

#[test]
fn se_client_failure_leaves_orphan_objects() {
    // The documented SE flaw: "if the client itself fails before sending
    // the CLEAR message out, metadata across servers may be inconsistent,
    // leaving orphan objects" (§II-B). We model the client dying between
    // the participant's execution and the coordinator request by holding
    // the coordinator-bound message forever.
    let mut kit = kit_never(4, Protocol::Se);
    seed_namespace(&mut kit, &[]);
    let (name, ino) = cross_server_pair(&kit.placement, 100, 1000);
    let coord = kit.placement.dentry_server(ROOT, name);
    let coord_ep = Endpoint::Server(coord);
    kit.hold_if(move |env: &Envelope| {
        matches!(env.payload, Payload::SubOpReq { .. }) && env.to == coord_ep
    });
    let op = kit.start_op(
        proc(0),
        FsOp::Create {
            parent: ROOT,
            name,
            ino,
        },
    );
    kit.run();
    assert_eq!(kit.outcome(op), None, "client died mid-operation");
    kit.quiesce();
    let violations = kit.check_consistency(&roots());
    assert!(
        violations
            .iter()
            .any(|v| matches!(v, cx_mdstore::Violation::OrphanInode { .. })),
        "SE leaves an orphan inode: {violations:?}"
    );
}

#[test]
fn cx_does_not_leave_orphans_in_the_same_scenario() {
    // The same client failure under Cx: the participant's half is pending,
    // and any later access (or the coordinator-side recovery machinery)
    // resolves it. Here another process touches the object, forcing the
    // immediate commitment, which aborts the half-executed op.
    let mut kit = kit_never(4, Protocol::Cx);
    seed_namespace(&mut kit, &[]);
    let (name, ino) = cross_server_pair(&kit.placement, 100, 1000);
    let coord = kit.placement.dentry_server(ROOT, name);
    let coord_ep = Endpoint::Server(coord);
    kit.hold_if(move |env: &Envelope| {
        matches!(env.payload, Payload::SubOpReq { .. }) && env.to == coord_ep
    });
    let op = kit.start_op(
        proc(0),
        FsOp::Create {
            parent: ROOT,
            name,
            ino,
        },
    );
    kit.run();
    assert_eq!(kit.outcome(op), None);
    kit.stop_holding();

    // Another process stats the orphan-to-be: conflict → C-REQ → the
    // coordinator (which never executed its half) is asked for the
    // outcome; the commitment votes NO on the coordinator side and the
    // participant half aborts.
    let b = kit.run_op(proc(1), FsOp::Stat { ino });
    kit.fire_timers();
    kit.run();
    kit.quiesce();
    let violations = kit.check_consistency(&roots());
    assert_eq!(violations, vec![], "Cx must not leave orphans");
    assert_eq!(
        kit.outcome(b),
        Some(OpOutcome::Failed),
        "the stat observes no file: the create never committed"
    );
}

#[test]
fn twopc_message_pattern_matches_figure_1a() {
    let mut kit = kit_never(4, Protocol::TwoPc);
    seed_namespace(&mut kit, &[]);
    let (name, ino) = cross_server_pair(&kit.placement, 100, 1000);
    let op = kit.run_op(
        proc(0),
        FsOp::Create {
            parent: ROOT,
            name,
            ino,
        },
    );
    assert_eq!(kit.outcome(op), Some(OpOutcome::Applied));
    // REQ → VOTE → YES → COMMIT → ACK → RESP
    assert_eq!(kit.msg_counts.get(&MsgKind::OpReq), Some(&1));
    assert_eq!(kit.msg_counts.get(&MsgKind::Vote), Some(&1)); // VoteExec
    assert_eq!(kit.msg_counts.get(&MsgKind::VoteResult), Some(&1));
    assert_eq!(kit.msg_counts.get(&MsgKind::CommitReq), Some(&1));
    assert_eq!(kit.msg_counts.get(&MsgKind::Ack), Some(&1));
    assert_eq!(kit.msg_counts.get(&MsgKind::OpResp), Some(&1));
    kit.quiesce();
    assert_eq!(kit.check_consistency(&roots()), vec![]);
}

#[test]
fn twopc_aborts_atomically_on_participant_failure() {
    let mut kit = kit_never(4, Protocol::TwoPc);
    let (existing, ino) = cross_server_pair(&kit.placement, 100, 1000);
    seed_namespace(&mut kit, &[(existing, ino)]);
    // create with a duplicate inode: participant votes NO
    let parti = kit.placement.inode_server(ino);
    let fresh = (200_000..)
        .map(Name)
        .find(|n| kit.placement.dentry_server(ROOT, *n) != parti)
        .unwrap();
    let op = kit.run_op(
        proc(0),
        FsOp::Create {
            parent: ROOT,
            name: fresh,
            ino,
        },
    );
    assert_eq!(kit.outcome(op), Some(OpOutcome::Failed));
    assert_eq!(kit.msg_counts.get(&MsgKind::AbortReq), Some(&1));
    kit.quiesce();
    assert_eq!(kit.check_consistency(&roots()), vec![]);
    assert!(kit
        .servers
        .iter()
        .all(|s| s.store().lookup(ROOT, fresh).is_none()));
}

#[test]
fn ce_migrates_objects_and_executes_centrally() {
    let mut kit = kit_never(4, Protocol::Ce);
    seed_namespace(&mut kit, &[]);
    let (name, ino) = cross_server_pair(&kit.placement, 100, 1000);
    let op = kit.run_op(
        proc(0),
        FsOp::Create {
            parent: ROOT,
            name,
            ino,
        },
    );
    assert_eq!(kit.outcome(op), Some(OpOutcome::Applied));
    // REQ → MIGRATION round trip → local txn → migrate back → RESP
    assert_eq!(kit.msg_counts.get(&MsgKind::Migrate), Some(&1));
    assert_eq!(kit.msg_counts.get(&MsgKind::MigrateResp), Some(&1));
    assert_eq!(kit.msg_counts.get(&MsgKind::MigrateBack), Some(&1));
    assert_eq!(kit.msg_counts.get(&MsgKind::MigrateBackAck), Some(&1));
    kit.quiesce();
    assert_eq!(kit.check_consistency(&roots()), vec![]);
    // the inode lives on its placement-assigned home server
    let home = kit.placement.inode_server(ino);
    assert!(kit.servers[home.0 as usize].store().inode(ino).is_some());
}

#[test]
fn ce_aborts_cleanly_when_central_execution_fails() {
    let mut kit = kit_never(4, Protocol::Ce);
    let (name, ino) = cross_server_pair(&kit.placement, 100, 1000);
    seed_namespace(&mut kit, &[(name, ino)]); // duplicate entry
    let fresh_ino = InodeNo(ino.0 + 777);
    let op = kit.run_op(
        proc(0),
        FsOp::Create {
            parent: ROOT,
            name, // already exists → coordinator-side failure
            ino: fresh_ino,
        },
    );
    assert_eq!(kit.outcome(op), Some(OpOutcome::Failed));
    kit.quiesce();
    assert_eq!(kit.check_consistency(&roots()), vec![]);
    assert!(kit
        .servers
        .iter()
        .all(|s| s.store().inode(fresh_ino).is_none()));
}

#[test]
fn twopc_blocks_conflicting_transactions() {
    let mut kit = kit_never(4, Protocol::TwoPc);
    seed_namespace(&mut kit, &[]);
    let (name, i1) = cross_server_pair(&kit.placement, 100, 1000);
    let a = kit.run_op(
        proc(0),
        FsOp::Create {
            parent: ROOT,
            name,
            ino: i1,
        },
    );
    // Same name from another proc: must fail (entry exists), not deadlock.
    let b = kit.run_op(
        proc(1),
        FsOp::Create {
            parent: ROOT,
            name,
            ino: InodeNo(i1.0 + 1),
        },
    );
    assert_eq!(kit.outcome(a), Some(OpOutcome::Applied));
    assert_eq!(kit.outcome(b), Some(OpOutcome::Failed));
    kit.quiesce();
    assert_eq!(kit.check_consistency(&roots()), vec![]);
}
