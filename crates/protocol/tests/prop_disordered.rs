//! Focused property test of the disordered-conflict machinery: random
//! pairs of operations that genuinely share objects on both servers, with
//! randomized delivery orders, must always terminate consistently —
//! through invalidation, immediate commitments, or the hint-mismatch
//! fallback.

mod common;

use common::*;
use cx_protocol::testkit::Envelope;
use cx_types::{FileKind, FsOp, InodeNo, Name, OpOutcome, Payload, ProcId, Protocol, ServerId};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Two operations on the same (dentry, inode) pair, with every
    /// combination of held/released first deliveries.
    #[test]
    fn shared_pair_races_terminate(
        hold_a_parti in any::<bool>(),
        hold_b_coord in any::<bool>(),
        hold_a_coord in any::<bool>(),
        hold_b_parti in any::<bool>(),
        b_is_unlink in any::<bool>(),
        fire_rounds in 1usize..4,
    ) {
        let mut kit = kit_never(4, Protocol::Cx);
        let placement = kit.placement;
        let n = Name(7_000);
        let coord = placement.dentry_server(ROOT, n);
        let t = (9_000..)
            .map(InodeNo)
            .find(|i| placement.inode_server(*i) != coord)
            .expect("cross-server inode exists");
        let parti = placement.inode_server(t);
        // seed t with two pre-existing links so unlinks always apply
        for (i, server) in kit.servers.iter_mut().enumerate() {
            let store = server.store_mut();
            store.seed_inode(ROOT, FileKind::Directory, 1);
            if placement.inode_server(t) == ServerId(i as u32) {
                store.seed_inode(t, FileKind::Regular, 2);
            }
            for pre in [Name(91_001), Name(91_002)] {
                if placement.dentry_server(ROOT, pre) == ServerId(i as u32) {
                    store.seed_dentry(ROOT, pre, t);
                }
            }
        }

        let (a_proc, b_proc) = (ProcId::new(0, 0), ProcId::new(1, 0));
        let (coord_ep, parti_ep) = (
            cx_protocol::Endpoint::Server(coord),
            cx_protocol::Endpoint::Server(parti),
        );
        kit.hold_if(move |env: &Envelope| {
            if let Payload::SubOpReq { op_id, .. } = &env.payload {
                let a = op_id.proc == a_proc;
                return (a && env.to == parti_ep && hold_a_parti)
                    || (a && env.to == coord_ep && hold_a_coord)
                    || (!a && env.to == coord_ep && hold_b_coord)
                    || (!a && env.to == parti_ep && hold_b_parti);
            }
            false
        });

        let a = kit.start_op(a_proc, FsOp::Link { parent: ROOT, name: n, target: t });
        let b = if b_is_unlink {
            kit.start_op(b_proc, FsOp::Unlink { parent: ROOT, name: n, target: t })
        } else {
            // second link to the same name: must fail on whatever side
            // loses the race, atomically
            kit.start_op(b_proc, FsOp::Link { parent: ROOT, name: n, target: t })
        };
        kit.run();
        kit.stop_holding();
        kit.release_held();
        kit.run();
        for _ in 0..fire_rounds {
            kit.fire_timers();
            kit.run();
        }
        // a resolution can arm further timers (mismatch → L-COM chains);
        // keep firing until both operations settle, as real time would
        for _ in 0..8 {
            if kit.outcome(a).is_some() && kit.outcome(b).is_some() {
                break;
            }
            kit.fire_timers();
            kit.run();
        }

        prop_assert!(kit.outcome(a).is_some(), "A must terminate");
        prop_assert!(kit.outcome(b).is_some(), "B must terminate");
        kit.quiesce();
        prop_assert_eq!(kit.check_consistency(&roots()), Vec::new());
        prop_assert!(kit.servers.iter().all(|s| s.is_quiesced()));

        // Semantic checks for the double-link case: at most one succeeds.
        if !b_is_unlink {
            let successes = [a, b]
                .iter()
                .filter(|op| kit.outcome(**op) == Some(OpOutcome::Applied))
                .count();
            prop_assert!(successes <= 1, "the same name cannot be linked twice");
            let entry_exists = kit
                .servers
                .iter()
                .any(|s| s.store().lookup(ROOT, n).is_some());
            prop_assert_eq!(entry_exists, successes == 1);
        }
    }
}
