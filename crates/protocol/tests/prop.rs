//! Property-based protocol tests.
//!
//! * `sequential_oracle`: random operation sequences, executed one at a
//!   time, must produce exactly the outcomes and final namespace of a
//!   simple sequential reference model — for **every** protocol and
//!   cluster size. This is the cross-protocol equivalence property of
//!   DESIGN.md §6.
//! * `concurrent_chaos`: random operations from several processes with
//!   randomly held-and-released messages (Cx only). Every operation must
//!   eventually complete and the cluster must quiesce into a consistent
//!   state — conflicts, invalidations and forced commitments included.

mod common;

use common::*;
use cx_protocol::testkit::Envelope;
use cx_types::{FileKind, FsOp, InodeNo, Name, OpOutcome, ProcId, Protocol};
use proptest::prelude::*;
use std::collections::HashMap;

/// Sequential reference model of the namespace.
#[derive(Default, Clone)]
struct Model {
    inodes: HashMap<InodeNo, (FileKind, u32)>,
    dentries: HashMap<(InodeNo, Name), InodeNo>,
}

impl Model {
    fn seed_root(&mut self) {
        self.inodes.insert(ROOT, (FileKind::Directory, 1));
    }

    /// Apply `op` with all-or-nothing semantics; returns the outcome.
    fn apply(&mut self, op: FsOp) -> OpOutcome {
        let ok = match op {
            FsOp::Create { parent, name, ino } | FsOp::Mkdir { parent, name, ino } => {
                let kind = if matches!(op, FsOp::Mkdir { .. }) {
                    FileKind::Directory
                } else {
                    FileKind::Regular
                };
                if self.dentries.contains_key(&(parent, name)) || self.inodes.contains_key(&ino) {
                    false
                } else {
                    self.dentries.insert((parent, name), ino);
                    self.inodes.insert(ino, (kind, 1));
                    true
                }
            }
            FsOp::Remove { parent, name, ino } | FsOp::Rmdir { parent, name, ino } => {
                if self.dentries.get(&(parent, name)) == Some(&ino)
                    && self.inodes.contains_key(&ino)
                {
                    self.dentries.remove(&(parent, name));
                    let e = self.inodes.get_mut(&ino).expect("checked");
                    if e.1 <= 1 {
                        self.inodes.remove(&ino);
                    } else {
                        e.1 -= 1;
                    }
                    true
                } else {
                    false
                }
            }
            FsOp::Link {
                parent,
                name,
                target,
            } => {
                if !self.dentries.contains_key(&(parent, name)) && self.inodes.contains_key(&target)
                {
                    self.dentries.insert((parent, name), target);
                    self.inodes.get_mut(&target).expect("checked").1 += 1;
                    true
                } else {
                    false
                }
            }
            FsOp::Unlink {
                parent,
                name,
                target,
            } => {
                if self.dentries.get(&(parent, name)) == Some(&target)
                    && self.inodes.contains_key(&target)
                {
                    self.dentries.remove(&(parent, name));
                    let e = self.inodes.get_mut(&target).expect("checked");
                    if e.1 <= 1 {
                        self.inodes.remove(&target);
                    } else {
                        e.1 -= 1;
                    }
                    true
                } else {
                    false
                }
            }
            FsOp::Stat { ino }
            | FsOp::Getattr { ino }
            | FsOp::Access { ino }
            | FsOp::Setattr { ino } => self.inodes.contains_key(&ino),
            FsOp::Lookup { parent, name } => self.dentries.contains_key(&(parent, name)),
            FsOp::Readdir { .. } => true,
        };
        if ok {
            OpOutcome::Applied
        } else {
            OpOutcome::Failed
        }
    }
}

/// Operation generator over a compact namespace so collisions (and thus
/// failures and reuse) are common.
fn op_strategy() -> impl Strategy<Value = FsOp> {
    let name = (1u64..24).prop_map(Name);
    let ino = (100u64..124).prop_map(InodeNo);
    prop_oneof![
        (name.clone(), ino.clone()).prop_map(|(name, ino)| FsOp::Create {
            parent: ROOT,
            name,
            ino
        }),
        (name.clone(), ino.clone()).prop_map(|(name, ino)| FsOp::Remove {
            parent: ROOT,
            name,
            ino
        }),
        (name.clone(), ino.clone()).prop_map(|(name, ino)| FsOp::Mkdir {
            parent: ROOT,
            name,
            ino
        }),
        (name.clone(), ino.clone()).prop_map(|(name, target)| FsOp::Link {
            parent: ROOT,
            name,
            target
        }),
        (name.clone(), ino.clone()).prop_map(|(name, target)| FsOp::Unlink {
            parent: ROOT,
            name,
            target
        }),
        ino.clone().prop_map(|ino| FsOp::Stat { ino }),
        name.prop_map(|name| FsOp::Lookup { parent: ROOT, name }),
        ino.prop_map(|ino| FsOp::Setattr { ino }),
    ]
}

fn protocol_strategy() -> impl Strategy<Value = Protocol> {
    prop_oneof![
        Just(Protocol::Cx),
        Just(Protocol::Se),
        Just(Protocol::SeBatched),
        Just(Protocol::TwoPc),
        Just(Protocol::Ce),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sequential_oracle(
        protocol in protocol_strategy(),
        servers in prop_oneof![Just(1u32), Just(2), Just(4), Just(8)],
        ops in prop::collection::vec(op_strategy(), 1..60),
    ) {
        let mut kit = kit_never(servers, protocol);
        seed_namespace(&mut kit, &[]);
        let mut model = Model::default();
        model.seed_root();

        for (i, op) in ops.iter().enumerate() {
            let expected = model.apply(*op);
            let id = kit.run_op(ProcId::new((i % 3) as u32, 0), *op);
            kit.fire_timers();
            kit.run();
            prop_assert_eq!(
                kit.outcome(id),
                Some(expected),
                "op {} = {:?} under {:?}/{} servers",
                i, op, protocol, servers
            );
        }
        kit.quiesce();
        prop_assert_eq!(kit.check_consistency(&roots()), vec![]);

        // The final namespace must match the model exactly.
        let view = cx_mdstore::GlobalView::merge(kit.servers.iter().map(|s| s.store()));
        prop_assert_eq!(view.dentry_count(), model.dentries.len());
        for (&(parent, name), &child) in &model.dentries {
            prop_assert!(view.contains_dentry(parent, name), "missing {:?}", (parent, name, child));
        }
        for &ino in model.inodes.keys() {
            if ino != ROOT {
                prop_assert!(view.contains_inode(ino), "missing inode {:?}", ino);
            }
        }
    }

    #[test]
    fn concurrent_chaos(
        ops in prop::collection::vec(op_strategy(), 4..40),
        servers in prop_oneof![Just(2u32), Just(4), Just(8)],
        hold_mask in any::<u64>(),
        release_every in 1usize..5,
    ) {
        let mut kit = kit_never(servers, Protocol::Cx);
        seed_namespace(&mut kit, &[]);

        // Randomly hold a fraction of server-bound messages to create
        // unusual interleavings, releasing them periodically.
        let mask = hold_mask;
        let counter = std::cell::Cell::new(0u64);
        kit.hold_if(move |_env: &Envelope| {
            let c = counter.get();
            counter.set(c.wrapping_add(1));
            (mask >> (c % 61)) & 1 == 1
        });

        let mut ids = Vec::new();
        for (i, op) in ops.iter().enumerate() {
            // 4 processes issue operations round-robin; a process only
            // issues when its previous op finished (sequential semantics),
            // otherwise the op is skipped.
            let proc = ProcId::new((i % 4) as u32, 0);
            let busy = kit
                .clients
                .get(&proc)
                .map(|c| !c.is_done())
                .unwrap_or(false);
            if busy {
                continue;
            }
            ids.push(kit.start_op(proc, *op));
            if i % release_every == 0 {
                kit.run();
                kit.release_held();
                kit.run();
                kit.fire_timers();
            }
        }
        // Drain everything.
        kit.stop_holding();
        for _ in 0..20 {
            kit.release_held();
            kit.run();
            kit.fire_timers();
            kit.run();
            if ids.iter().all(|id| kit.outcome(*id).is_some()) {
                break;
            }
        }
        for id in &ids {
            prop_assert!(
                kit.outcome(*id).is_some(),
                "operation {} must eventually complete",
                id
            );
        }
        kit.quiesce();
        prop_assert_eq!(kit.check_consistency(&roots()), vec![]);
        prop_assert!(kit.servers.iter().all(|s| s.is_quiesced()));
    }
}
