//! Edge cases of the Cx protocol: L-COM races, presumed-abort timers,
//! decided-batch recovery resumption, threshold triggers, and vote
//! re-driving.

mod common;

use common::*;
use cx_protocol::testkit::{Envelope, Kit};
use cx_protocol::Endpoint;
use cx_types::{
    BatchTrigger, ClusterConfig, FsOp, MsgKind, OpOutcome, Payload, ProcId, Protocol, SimTime,
};

fn proc(n: u32) -> ProcId {
    ProcId::new(n, 0)
}

/// An L-COM that arrives after the lazy commitment already finished is
/// answered from the recent-outcome memory.
#[test]
fn lcom_race_with_finished_commitment() {
    let mut kit = kit_never(4, Protocol::Cx);
    seed_namespace(&mut kit, &[]);
    let (name, ino) = cross_server_pair(&kit.placement, 100, 1000);
    let coord = kit.placement.dentry_server(ROOT, name);
    let op = kit.run_op(
        proc(0),
        FsOp::Create {
            parent: ROOT,
            name,
            ino,
        },
    );
    assert_eq!(kit.outcome(op), Some(OpOutcome::Applied));
    kit.quiesce(); // the commitment finishes and prunes

    // A straggler L-COM (e.g. from a retransmitting client) arrives now.
    kit.inject_actions(
        Endpoint::Proc(proc(0)),
        vec![cx_protocol::Action::Send {
            to: Endpoint::Server(coord),
            payload: Payload::LCom { op_id: op },
        }],
    );
    kit.run();
    assert_eq!(
        kit.msg_counts.get(&MsgKind::Committed),
        Some(&1),
        "the coordinator answers from its outcome memory"
    );
    assert_eq!(kit.check_consistency(&roots()), vec![]);
}

/// A client that dies after sending only the *participant* half leaves an
/// orphaned execution; the participant's log-pressure/conflict machinery
/// is never involved, but a later commitment request's grace timer
/// presumes abort and rolls it back.
#[test]
fn orphaned_participant_half_is_presumed_aborted() {
    let mut kit = kit_never(4, Protocol::Cx);
    seed_namespace(&mut kit, &[]);
    let (name, ino) = cross_server_pair(&kit.placement, 100, 1000);
    let coord = kit.placement.dentry_server(ROOT, name);
    let coord_ep = Endpoint::Server(coord);
    kit.hold_if(move |env: &Envelope| {
        matches!(env.payload, Payload::SubOpReq { .. }) && env.to == coord_ep
    });
    let op = kit.start_op(
        proc(0),
        FsOp::Create {
            parent: ROOT,
            name,
            ino,
        },
    );
    kit.run();
    assert_eq!(kit.outcome(op), None, "client died mid-operation");
    kit.stop_holding();

    // Another process touching the orphaned inode raises a conflict; the
    // C-REQ reaches a coordinator that never saw the op, which arms the
    // presumed-abort timer; firing it aborts the orphan.
    let b = kit.start_op(proc(1), FsOp::Stat { ino });
    kit.run();
    assert_eq!(kit.outcome(b), None, "blocked behind the orphan");
    kit.fire_timers();
    kit.run();
    kit.fire_timers(); // the re-dispatched read may need a second round
    kit.run();
    assert_eq!(
        kit.outcome(b),
        Some(OpOutcome::Failed),
        "the stat finds no file: the orphan was aborted"
    );
    kit.quiesce();
    assert_eq!(kit.check_consistency(&roots()), vec![]);
    assert!(kit.servers.iter().all(|s| s.store().inode(ino).is_none()));
}

/// Crash the coordinator after its decision is durable but before the
/// ACK: recovery must resume at COMMIT-REQ, idempotently.
#[test]
fn recovery_resumes_a_decided_batch() {
    let mut kit = kit_never(4, Protocol::Cx);
    seed_namespace(&mut kit, &[]);
    let (name, ino) = cross_server_pair(&kit.placement, 100, 1000);
    let coord = kit.placement.dentry_server(ROOT, name);
    let op = kit.run_op(
        proc(0),
        FsOp::Create {
            parent: ROOT,
            name,
            ino,
        },
    );
    assert_eq!(kit.outcome(op), Some(OpOutcome::Applied));

    // Let the commitment run, but hold the participant's ACK.
    kit.hold_if(|env: &Envelope| matches!(env.payload, Payload::Ack { .. }));
    kit.quiesce();
    assert_eq!(kit.held_count(), 1, "ack held; decision is durable");
    kit.stop_holding();

    // The coordinator dies before ever seeing the ACK.
    let idx = coord.0 as usize;
    kit.servers[idx].crash(SimTime::ZERO);
    // (the held ack would now be delivered to a dead server; drop it)
    kit.release_held();
    kit.run();
    let mut out = Vec::new();
    kit.servers[idx].recover(SimTime::ZERO, &mut out);
    kit.inject_actions(Endpoint::Server(coord), out);
    kit.run();
    kit.fire_timers();
    kit.run();

    assert!(kit.servers.iter().all(|s| s.is_quiesced()));
    assert_eq!(kit.check_consistency(&roots()), vec![]);
    assert!(kit
        .servers
        .iter()
        .any(|s| s.store().lookup(ROOT, name) == Some(ino)));
    // the decision was re-sent at least once
    assert!(
        kit.msg_counts
            .get(&MsgKind::CommitReq)
            .copied()
            .unwrap_or(0)
            >= 2
    );
}

/// The threshold trigger fires mid-stream once enough operations are
/// pending, without any quiesce call.
#[test]
fn threshold_trigger_fires_inline() {
    let mut cfg = ClusterConfig::new(2, Protocol::Cx);
    cfg.cx.trigger = BatchTrigger::Threshold { pending_ops: 5 };
    cfg.cx.log_limit_bytes = None;
    let mut kit = Kit::new(cfg);
    seed_namespace(&mut kit, &[]);
    let mut launched = 0;
    for k in 0..24u64 {
        let (name, ino) = cross_server_pair(&kit.placement, 40_000 + k * 31, 50_000 + k * 7);
        if kit
            .servers
            .iter()
            .any(|s| s.store().lookup(ROOT, name).is_some())
        {
            continue;
        }
        kit.run_op(
            proc(0),
            FsOp::Create {
                parent: ROOT,
                name,
                ino,
            },
        );
        launched += 1;
    }
    assert!(launched >= 20);
    let lazy: u64 = kit.servers.iter().map(|s| s.stats().lazy_batches).sum();
    assert!(
        lazy >= 2,
        "threshold of 5 must have fired several times for {launched} ops (got {lazy})"
    );
    kit.quiesce();
    assert_eq!(kit.check_consistency(&roots()), vec![]);
}

/// A participant's re-queued (invalidated) execution that fails on retry
/// still resolves the client through the disagreement path.
#[test]
fn invalidated_reexecution_failure_resolves() {
    // Figure 3(b) fixture, but t has nlink 1 so the unlink's re-execution
    // (after the link commits) changes the outcome vs its first run.
    let mut kit = kit_never(4, Protocol::Cx);
    let placement = kit.placement;
    let n = cx_types::Name(7_000);
    let coord = placement.dentry_server(ROOT, n);
    let t = (9_000..)
        .map(cx_types::InodeNo)
        .find(|i| placement.inode_server(*i) != coord)
        .unwrap();
    let parti = placement.inode_server(t);
    for (i, server) in kit.servers.iter_mut().enumerate() {
        let store = server.store_mut();
        store.seed_inode(ROOT, cx_types::FileKind::Directory, 1);
        if placement.inode_server(t) == cx_types::ServerId(i as u32) {
            store.seed_inode(t, cx_types::FileKind::Regular, 2);
        }
        for pre in [cx_types::Name(91_001), cx_types::Name(91_002)] {
            if placement.dentry_server(ROOT, pre) == cx_types::ServerId(i as u32) {
                store.seed_dentry(ROOT, pre, t);
            }
        }
    }
    let (a_proc, b_proc) = (proc(0), proc(1));
    let (coord_ep, parti_ep) = (Endpoint::Server(coord), Endpoint::Server(parti));
    kit.hold_if(move |env: &Envelope| {
        if let Payload::SubOpReq { op_id, .. } = &env.payload {
            return (op_id.proc == a_proc && env.to == parti_ep)
                || (op_id.proc == b_proc && env.to == coord_ep);
        }
        false
    });
    let a = kit.start_op(
        a_proc,
        FsOp::Link {
            parent: ROOT,
            name: n,
            target: t,
        },
    );
    let b = kit.start_op(
        b_proc,
        FsOp::Unlink {
            parent: ROOT,
            name: n,
            target: t,
        },
    );
    kit.run();
    kit.stop_holding();
    kit.release_held();
    kit.run();
    kit.fire_timers();
    kit.run();
    kit.fire_timers();
    kit.run();
    // Both must terminate one way or the other, consistently.
    assert!(kit.outcome(a).is_some(), "A must resolve");
    assert!(kit.outcome(b).is_some(), "B must resolve");
    kit.quiesce();
    assert_eq!(kit.check_consistency(&roots()), vec![]);
}

/// Lazy batches to multiple participants go out as one VOTE per
/// participant, each carrying its share of the operations.
#[test]
fn lazy_batch_splits_per_participant() {
    let mut kit = kit_never(8, Protocol::Cx);
    seed_namespace(&mut kit, &[]);
    // ops from one proc whose coordinators coincide but participants vary
    let mut count = 0;
    for k in 0..60u64 {
        let (name, ino) = cross_server_pair(&kit.placement, 70_000 + k * 13, 80_000 + k * 11);
        if kit
            .servers
            .iter()
            .any(|s| s.store().lookup(ROOT, name).is_some())
        {
            continue;
        }
        kit.run_op(
            proc(0),
            FsOp::Create {
                parent: ROOT,
                name,
                ino,
            },
        );
        count += 1;
    }
    kit.quiesce();
    let votes = kit.msg_counts.get(&MsgKind::Vote).copied().unwrap_or(0);
    assert!(votes >= 2, "several participants → several votes");
    assert!(
        votes < count,
        "but far fewer votes ({votes}) than operations ({count})"
    );
    assert_eq!(kit.check_consistency(&roots()), vec![]);
}

/// Crash the participant while the coordinator's batch is mid-VOTE: the
/// rebooted participant's QueryOutcome must make the coordinator re-send
/// the VOTE (re-driving the Voting phase), and the operation commits.
#[test]
fn recovery_redrives_a_voting_batch() {
    let mut kit = kit_never(4, Protocol::Cx);
    seed_namespace(&mut kit, &[]);
    let (name, ino) = cross_server_pair(&kit.placement, 100, 1000);
    let parti = kit.placement.inode_server(ino);
    let op = kit.run_op(
        proc(0),
        FsOp::Create {
            parent: ROOT,
            name,
            ino,
        },
    );
    assert_eq!(kit.outcome(op), Some(OpOutcome::Applied));

    // Start the lazy commitment but swallow the participant's vote.
    kit.hold_if(|env: &Envelope| matches!(env.payload, Payload::VoteResult { .. }));
    kit.quiesce();
    assert_eq!(kit.held_count(), 1, "the vote is in flight");
    kit.stop_holding();

    // The participant dies; its in-flight vote dies with it.
    let idx = parti.0 as usize;
    kit.servers[idx].crash(SimTime::ZERO);
    kit.discard_held();
    kit.run();
    let mut out = Vec::new();
    kit.servers[idx].recover(SimTime::ZERO, &mut out);
    kit.inject_actions(Endpoint::Server(parti), out);
    kit.run();
    kit.fire_timers();
    kit.run();

    assert!(
        kit.servers.iter().all(|s| s.is_quiesced()),
        "the re-driven vote round must finish the batch"
    );
    assert_eq!(kit.check_consistency(&roots()), vec![]);
    assert!(kit
        .servers
        .iter()
        .any(|s| s.store().lookup(ROOT, name) == Some(ino)));
    let votes = kit.msg_counts.get(&MsgKind::Vote).copied().unwrap_or(0);
    assert!(votes >= 2, "the VOTE was re-sent ({votes})");
}
