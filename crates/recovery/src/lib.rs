//! Crash-injection experiments (§IV-E, Table V).
//!
//! "To simulate a server crash, we killed the processes on a server after
//! it has accepted a specific size of valid-records." This crate drives
//! that experiment against the DES cluster: it replays a home2-style
//! workload under Cx with lazy commitments disabled (so valid records
//! accumulate), crashes a server at each target valid-record volume, and
//! measures the recovery time — failure detection, reboot, the sequential
//! log scan, cold-cache re-reads of the affected rows, and the resumption
//! of every half-completed commitment.
//!
//! The protocol being exercised lives in `cx-protocol::cx::recovery`; this
//! crate is the measurement harness.

use cx_cluster::des::{CrashPlan, DesCluster, RecoveryReport};
use cx_cluster::stats::RecoveryCycle;
use cx_types::{BatchTrigger, ClusterConfig, Protocol, ServerId, DUR_MS};
use cx_workloads::{Trace, TraceBuilder, TraceProfile};
use serde::{Deserialize, Serialize};

/// One Table V measurement configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RecoveryExperiment {
    /// Metadata servers in the cluster.
    pub servers: u32,
    /// Which server to kill.
    pub victim: u32,
    /// Valid-record volume (bytes) at which the victim dies.
    pub valid_bytes_target: u64,
    /// Failure-detection delay (heartbeat timeout).
    pub detection_ms: u64,
    /// Server process restart time.
    pub reboot_ms: u64,
    /// Trace scale driving the cluster while records accumulate.
    pub trace_scale: f64,
    pub seed: u64,
}

impl Default for RecoveryExperiment {
    fn default() -> Self {
        Self {
            servers: 8,
            victim: 0,
            valid_bytes_target: 100 << 10,
            detection_ms: 2_000,
            reboot_ms: 800,
            trace_scale: 0.05,
            seed: 0xEC0,
        }
    }
}

/// Result row for Table V.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct RecoveryRow {
    pub target_kb: u64,
    pub valid_kb_at_crash: u64,
    /// Total recovery time (crash to serving again), the paper's metric.
    pub recovery_secs: f64,
    /// Protocol-only portion (scan + resumption).
    pub protocol_secs: f64,
    pub scanned_bytes: u64,
    /// Half-completed commitments the scan found and re-drove (§III-D).
    pub resumed_commitments: u64,
}

impl RecoveryExperiment {
    pub fn with_target(mut self, bytes: u64) -> Self {
        self.valid_bytes_target = bytes;
        self
    }

    /// Build the driving workload: home2 under Cx with lazy commitments
    /// suppressed and sharing disabled (a conflict forces an immediate
    /// commitment, which would prune the very records we want to
    /// accumulate), so the victim's log fills with valid records.
    pub fn workload(&self) -> Trace {
        TraceBuilder::new(TraceProfile::by_name("home2").expect("profile exists"))
            .scale(self.trace_scale)
            .seed(self.seed)
            .tweak(|p| p.shared_access_prob = 0.0)
            .build()
    }

    fn config(&self) -> ClusterConfig {
        let mut cfg = ClusterConfig::new(self.servers, Protocol::Cx);
        cfg.cx.trigger = BatchTrigger::Never;
        cfg.cx.log_limit_bytes = None; // the crash target controls volume
        cfg.seed = self.seed;
        cfg
    }

    /// Run the crash/recovery cycle; returns `None` when the workload
    /// never accumulated enough valid records.
    pub fn run(&self) -> Option<RecoveryRow> {
        let trace = self.workload();
        let report = self.run_with_trace(&trace)?;
        let cycle = *report.first()?;
        Some(self.row(&cycle))
    }

    /// Same, reusing a pre-built trace (sweeps share the workload).
    pub fn run_with_trace(&self, trace: &Trace) -> Option<RecoveryReport> {
        let cluster = DesCluster::new(self.config(), trace).with_crash(CrashPlan {
            server: ServerId(self.victim),
            valid_bytes_target: self.valid_bytes_target,
            detection_ns: self.detection_ms * DUR_MS,
            reboot_ns: self.reboot_ms * DUR_MS,
        });
        cluster.run_recovery_experiment()
    }

    pub fn row(&self, cycle: &RecoveryCycle) -> RecoveryRow {
        RecoveryRow {
            target_kb: self.valid_bytes_target >> 10,
            valid_kb_at_crash: cycle.valid_bytes_at_crash >> 10,
            recovery_secs: cycle.recovery_secs(),
            protocol_secs: cycle.protocol_secs(),
            scanned_bytes: cycle.scanned_bytes,
            resumed_commitments: cycle.resumed_commitments,
        }
    }
}

/// Run the full Table V sweep.
pub fn table5_sweep(targets_kb: &[u64], scale: f64) -> Vec<RecoveryRow> {
    let mut rows = Vec::new();
    for &kb in targets_kb {
        let exp = RecoveryExperiment {
            trace_scale: scale,
            ..Default::default()
        }
        .with_target(kb << 10);
        if let Some(row) = exp.run() {
            rows.push(row);
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_recovery_experiment_completes() {
        let exp = RecoveryExperiment {
            servers: 4,
            trace_scale: 0.004,
            valid_bytes_target: 5 << 10,
            detection_ms: 100,
            reboot_ms: 50,
            ..Default::default()
        };
        let row = exp.run().expect("5 KB of valid records accumulate");
        assert!(row.valid_kb_at_crash >= 5);
        assert!(row.recovery_secs > 0.15, "includes detection+reboot");
        assert!(row.protocol_secs > 0.0);
        assert!(row.scanned_bytes > 0, "durable prefix was scanned");
    }

    #[test]
    fn recovery_time_grows_with_valid_records() {
        let small = RecoveryExperiment {
            servers: 4,
            trace_scale: 0.01,
            detection_ms: 100,
            reboot_ms: 50,
            ..Default::default()
        };
        let r1 = small.clone().with_target(5 << 10).run().unwrap();
        let r2 = small.with_target(80 << 10).run().unwrap();
        assert!(
            r2.protocol_secs > r1.protocol_secs,
            "more records, longer recovery: {} vs {}",
            r2.protocol_secs,
            r1.protocol_secs
        );
        // …but total recovery time is sublinear (Table V's observation):
        // the fixed detection/reboot/scan overheads and batched resumption
        // amortize across records.
        assert!(
            r2.recovery_secs < r1.recovery_secs * 16.0,
            "{} vs {}",
            r2.recovery_secs,
            r1.recovery_secs
        );
    }

    #[test]
    fn unreachable_target_returns_none() {
        let exp = RecoveryExperiment {
            servers: 4,
            trace_scale: 0.0005,
            valid_bytes_target: 100 << 20, // 100 MB never accumulates
            ..Default::default()
        };
        assert!(exp.run().is_none());
    }
}
