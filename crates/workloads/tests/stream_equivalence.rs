//! The streaming workload plane's determinism contract.
//!
//! `TraceBuilder::stream()` must yield *exactly* the operation sequence
//! `TraceBuilder::build()` materializes — same header, same ops, same
//! order — for every Table II profile, with and without the conflict
//! injection adapter, and for Metarates. These tests pin that contract
//! independently of how `build()` happens to be implemented today, so a
//! future direct (non-stream-backed) materializer cannot silently
//! diverge from the lazy path.

use cx_workloads::{
    injection_counts, Metarates, MetaratesMix, Trace, TraceBuilder, TraceProfile, PROFILES,
};
use proptest::prelude::*;

/// Drain a builder's stream by hand (never through `materialize`, which
/// `build()` itself uses) so the two paths stay independent.
fn collect_stream(b: TraceBuilder) -> Trace {
    let mut st = b.stream();
    let mut ops = Vec::new();
    while let Some(op) = st.ops.next_op() {
        ops.push(op);
    }
    Trace {
        name: st.name,
        processes: st.processes,
        seeds: st.seeds,
        ops,
        roots: st.roots,
    }
}

fn assert_traces_equal(built: &Trace, streamed: &Trace, ctx: &str) {
    assert_eq!(built.name, streamed.name, "{ctx}: name");
    assert_eq!(built.processes, streamed.processes, "{ctx}: processes");
    assert_eq!(built.seeds, streamed.seeds, "{ctx}: namespace seeds");
    assert_eq!(built.roots, streamed.roots, "{ctx}: orphan-check roots");
    assert_eq!(built.ops.len(), streamed.ops.len(), "{ctx}: op count");
    assert_eq!(built.ops, streamed.ops, "{ctx}: op sequence");
}

/// Every Table II profile: the pulled sequence equals the materialized
/// one, and the hint is exact for generator-backed streams.
#[test]
fn all_six_profiles_stream_equals_build() {
    for profile in &PROFILES {
        for seed in [0x7ace, 7, 991] {
            let b = TraceBuilder::new(profile).scale(0.002).seed(seed);
            let built = b.clone().build();
            let streamed = collect_stream(b.clone());
            assert_traces_equal(&built, &streamed, &format!("{} seed {seed}", profile.name));
            assert_eq!(
                b.stream().total_ops_hint,
                built.ops.len() as u64,
                "{}: generator hint must be exact",
                profile.name
            );
        }
    }
}

/// The injection adapter parameterized by a counting pass over a second
/// generator stream must produce the same sequence as the materialized
/// `Trace::inject_conflicting_lookups` (which derives the same counts
/// from the full vector).
#[test]
fn injection_adapter_matches_materialized_injection() {
    for ratio in [0.01, 0.05, 0.2] {
        let b = TraceBuilder::new(TraceProfile::by_name("CTH").expect("profile exists"))
            .scale(0.01)
            .seed(11);
        let mut built = b.clone().build();
        built.inject_conflicting_lookups(ratio, 11);

        let (total, injectable) = injection_counts(b.clone().stream());
        let mut adapted = b
            .stream()
            .inject_conflicting_lookups(ratio, 11, total, injectable);
        let mut ops = Vec::new();
        while let Some(op) = adapted.ops.next_op() {
            ops.push(op);
        }
        assert_eq!(built.ops, ops, "ratio {ratio}: injected sequences diverge");
        assert!(
            ops.len() as u64 > total,
            "ratio {ratio}: the adapter must actually add lookups"
        );
    }
}

/// Metarates: the streaming form replays the built benchmark verbatim.
#[test]
fn metarates_stream_equals_build() {
    for mix in [MetaratesMix::UpdateDominated, MetaratesMix::ReadDominated] {
        let m = Metarates::new(mix, 16).seed_files(256).ops_per_proc(40);
        let built = m.build();
        let mut st = m.stream();
        let mut ops = Vec::new();
        while let Some(op) = st.ops.next_op() {
            ops.push(op);
        }
        assert_eq!(built.ops, ops, "{}: op sequence", mix.name());
        assert_eq!(built.seeds, st.seeds, "{}: seeds", mix.name());
    }
}

proptest! {
    /// Random (seed, scale): build == collect(stream) for a cheap and an
    /// expensive profile. Catches rng-state or model-state divergence
    /// anywhere in the parameter space, not just at the pinned points.
    #[test]
    fn stream_equals_build_for_random_parameters(
        seed in 0u64..10_000,
        scale_milli in 1u64..8,
        profile_idx in 0usize..6,
    ) {
        let b = TraceBuilder::new(&PROFILES[profile_idx])
            .scale(scale_milli as f64 / 1000.0)
            .seed(seed);
        let built = b.clone().build();
        let streamed = collect_stream(b);
        prop_assert_eq!(&built.ops, &streamed.ops);
        prop_assert_eq!(&built.seeds, &streamed.seeds);
    }
}
