//! The Metarates-like benchmark workload (§IV-B).
//!
//! "We emulated two typical workloads using Metarates: (1) a read-dominated
//! workload, which consists of 20% updates and 80% stats … (2) a
//! update-dominated workload, which consists of 80% updates and 20% stats.
//! … the update and stat operations in these workloads are designed to
//! concurrently create/remove zero-bytes files in a common directory, and
//! to concurrently stat the generated files, respectively."
//!
//! Each process works on its own file names within the common directory
//! (MPI ranks in Metarates operate on rank-private files), which matches
//! the exclusive-dominated pattern of the paper's conflict analysis.
//! Sequential inode allocation makes the directory's metadata objects
//! "sequentially placed on disk", the property that lets batched
//! write-back approach peak bandwidth (§IV-C2).

use crate::trace::{SeedEntry, Trace, TraceOp, ROOT, SHARED_DIR};
use cx_sim::det_rng;
use cx_types::{FsOp, InodeNo, Name, ProcId};
use rand::seq::SliceRandom;
use rand::Rng;

/// The two §IV-B mixes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetaratesMix {
    /// 20% updates / 80% stats.
    ReadDominated,
    /// 80% updates / 20% stats.
    UpdateDominated,
}

impl MetaratesMix {
    pub fn update_fraction(&self) -> f64 {
        match self {
            MetaratesMix::ReadDominated => 0.2,
            MetaratesMix::UpdateDominated => 0.8,
        }
    }

    pub fn name(&self) -> &'static str {
        match self {
            MetaratesMix::ReadDominated => "read-dominated",
            MetaratesMix::UpdateDominated => "update-dominated",
        }
    }
}

/// Metarates workload builder.
#[derive(Debug, Clone)]
pub struct Metarates {
    pub mix: MetaratesMix,
    /// Total client processes (paper: 8 per client node, 4 client nodes
    /// per server).
    pub processes: u32,
    /// Pre-created files in the common directory ("a single server
    /// manages 40,000 files in a directory"; scale down for tests).
    pub seed_files: u32,
    /// Operations issued per process.
    pub ops_per_proc: u32,
    pub seed: u64,
}

impl Metarates {
    pub fn new(mix: MetaratesMix, processes: u32) -> Self {
        Self {
            mix,
            processes,
            seed_files: 4_000,
            ops_per_proc: 400,
            seed: 0x3e7a,
        }
    }

    pub fn seed_files(mut self, n: u32) -> Self {
        self.seed_files = n;
        self
    }

    pub fn ops_per_proc(mut self, n: u32) -> Self {
        self.ops_per_proc = n;
        self
    }

    /// Stream form for the unified workload plane. Metarates draws its
    /// rng per-process *sequentially* (all of rank 0's ops before rank
    /// 1's) but interleaves the global order round-robin, so emitting
    /// the first global op already requires every rank's stream —
    /// generation cannot be made lazy without changing the sequences.
    /// The workload is small by construction (`processes × ops_per_proc`),
    /// so this materializes internally and streams the result.
    pub fn stream(&self) -> crate::stream::StreamTrace {
        self.build().into_stream()
    }

    pub fn build(&self) -> Trace {
        let mut rng = det_rng(self.seed, 0x3e7a_0000);
        let mut seeds = vec![
            SeedEntry::Dir { ino: ROOT },
            SeedEntry::Dir { ino: SHARED_DIR },
        ];
        let mut next_ino = 10_000u64;
        let mut next_name = 1u64;

        // Pre-populate the common directory, round-robin over processes so
        // each rank owns an equal slice.
        let mut owned: Vec<Vec<(Name, InodeNo)>> =
            (0..self.processes).map(|_| Vec::new()).collect();
        for k in 0..self.seed_files {
            let name = Name(next_name);
            next_name += 1;
            let ino = InodeNo(next_ino);
            next_ino += 1;
            seeds.push(SeedEntry::File {
                parent: SHARED_DIR,
                name,
                ino,
            });
            owned[(k % self.processes) as usize].push((name, ino));
        }

        // Closed-loop streams, interleaved round-robin so the global order
        // mixes processes the way concurrent replay does.
        let mut streams: Vec<Vec<FsOp>> = Vec::with_capacity(self.processes as usize);
        for p in 0..self.processes {
            let mut ops = Vec::with_capacity(self.ops_per_proc as usize);
            for _ in 0..self.ops_per_proc {
                if rng.gen::<f64>() < self.mix.update_fraction() {
                    // update: alternate create / remove to keep the
                    // population stable
                    let remove = owned[p as usize].len()
                        > (self.seed_files / self.processes) as usize
                        && rng.gen_bool(0.5);
                    if remove {
                        let idx = rng.gen_range(0..owned[p as usize].len());
                        let (name, ino) = owned[p as usize].swap_remove(idx);
                        ops.push(FsOp::Remove {
                            parent: SHARED_DIR,
                            name,
                            ino,
                        });
                    } else {
                        let name = Name(next_name);
                        next_name += 1;
                        let ino = InodeNo(next_ino);
                        next_ino += 1;
                        owned[p as usize].push((name, ino));
                        ops.push(FsOp::Create {
                            parent: SHARED_DIR,
                            name,
                            ino,
                        });
                    }
                } else {
                    // stat a generated file of this rank
                    let (_, ino) = owned[p as usize]
                        .choose(&mut rng)
                        .copied()
                        .unwrap_or((Name(1), InodeNo(10_000)));
                    ops.push(FsOp::Stat { ino });
                }
            }
            streams.push(ops);
        }

        let mut ops = Vec::with_capacity((self.processes * self.ops_per_proc) as usize);
        for i in 0..self.ops_per_proc {
            for p in 0..self.processes {
                ops.push(TraceOp {
                    proc: ProcId::new(p, 0),
                    op: streams[p as usize][i as usize],
                });
            }
        }

        Trace {
            name: format!("metarates-{}", self.mix.name()),
            processes: self.processes,
            seeds,
            ops,
            roots: vec![ROOT, SHARED_DIR],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::NamespaceModel;

    #[test]
    fn update_fraction_matches_mix() {
        for (mix, lo, hi) in [
            (MetaratesMix::ReadDominated, 0.15, 0.25),
            (MetaratesMix::UpdateDominated, 0.75, 0.85),
        ] {
            let t = Metarates::new(mix, 8)
                .seed_files(100)
                .ops_per_proc(500)
                .build();
            let updates = t.ops.iter().filter(|o| o.op.is_mutation()).count();
            let frac = updates as f64 / t.ops.len() as f64;
            assert!(
                (lo..=hi).contains(&frac),
                "{}: update fraction {frac}",
                mix.name()
            );
        }
    }

    #[test]
    fn all_operations_are_valid_in_global_order() {
        let t = Metarates::new(MetaratesMix::UpdateDominated, 4)
            .seed_files(40)
            .ops_per_proc(200)
            .build();
        let mut m = NamespaceModel::new();
        for s in &t.seeds {
            match *s {
                SeedEntry::Dir { ino } => m.add_dir(ino),
                SeedEntry::File { parent, name, ino } => {
                    m.apply(&FsOp::Create { parent, name, ino })
                }
            }
        }
        for top in &t.ops {
            if top.op.is_mutation() {
                m.apply(&top.op);
            }
        }
    }

    #[test]
    fn all_updates_hit_the_common_directory() {
        let t = Metarates::new(MetaratesMix::UpdateDominated, 4)
            .seed_files(40)
            .ops_per_proc(100)
            .build();
        for top in &t.ops {
            match top.op {
                FsOp::Create { parent, .. } | FsOp::Remove { parent, .. } => {
                    assert_eq!(parent, SHARED_DIR)
                }
                FsOp::Stat { .. } => {}
                other => panic!("unexpected op {other:?}"),
            }
        }
    }

    #[test]
    fn deterministic() {
        let a = Metarates::new(MetaratesMix::ReadDominated, 4)
            .seed_files(40)
            .ops_per_proc(50)
            .build();
        let b = Metarates::new(MetaratesMix::ReadDominated, 4)
            .seed_files(40)
            .ops_per_proc(50)
            .build();
        assert_eq!(a.ops, b.ops);
    }

    #[test]
    fn round_robin_interleaving() {
        let t = Metarates::new(MetaratesMix::ReadDominated, 3)
            .seed_files(30)
            .ops_per_proc(10)
            .build();
        // first three ops come from three different procs
        let procs: Vec<u32> = t.ops.iter().take(3).map(|o| o.proc.client.0).collect();
        assert_eq!(procs, vec![0, 1, 2]);
    }
}
