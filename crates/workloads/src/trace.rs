//! Synthetic trace generation and conflict injection.

use crate::model::NamespaceModel;
use crate::profile::TraceProfile;
use crate::stream::{OpStream, StreamTrace, VecStream};
use cx_sim::det_rng;
use cx_types::{FsOp, InodeNo, Name, OpClass, ProcId};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::VecDeque;

/// Root of the synthetic namespace.
pub const ROOT: InodeNo = InodeNo(1);
/// The common (shared) directory — the checkpoint directory of the
/// supercomputing traces, the shared project space of the NFS traces.
pub const SHARED_DIR: InodeNo = InodeNo(2);

/// Pre-existing namespace content to seed into the servers before replay.
/// Serializable so a multi-process TCP run can ship the seed list to
/// server processes in their launch config (`cx_net_server`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum SeedEntry {
    Dir {
        ino: InodeNo,
    },
    File {
        parent: InodeNo,
        name: Name,
        ino: InodeNo,
    },
}

/// One replayed operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceOp {
    pub proc: ProcId,
    pub op: FsOp,
}

/// A generated workload: seeds plus a global operation order. Each
/// process's subsequence is its (synchronous) issue order; the cluster
/// replays processes concurrently.
#[derive(Debug, Clone)]
pub struct Trace {
    pub name: String,
    pub processes: u32,
    pub seeds: Vec<SeedEntry>,
    pub ops: Vec<TraceOp>,
    /// Directory inodes exempt from orphan checking.
    pub roots: Vec<InodeNo>,
}

impl Trace {
    /// Count operations by class (regenerates Figure 4's bars).
    pub fn class_histogram(&self) -> Vec<(OpClass, u64)> {
        let mut counts = std::collections::BTreeMap::new();
        for t in &self.ops {
            *counts.entry(t.op.class()).or_insert(0u64) += 1;
        }
        counts.into_iter().collect()
    }

    /// Inject extra lookup requests immediately after other processes'
    /// mutations, as the paper does to sweep the conflict ratio
    /// ("we injected some lookup requests to add some immediate
    /// commitments for cross-server operations", §IV-D2).
    ///
    /// `added_ratio` is the number of injected lookups relative to the
    /// original operation count.
    pub fn inject_conflicting_lookups(&mut self, added_ratio: f64, seed: u64) {
        if added_ratio <= 0.0 {
            return;
        }
        // Only mutations with a (parent, name) target receive injected
        // lookups, so normalize by those — not by all mutations — or the
        // realized count undershoots `added_ratio`.
        let total = self.ops.len() as u64;
        let injectable = self
            .ops
            .iter()
            .filter(|t| matches!(t.op, FsOp::Create { .. } | FsOp::Mkdir { .. }))
            .count() as u64;
        let mut adapter = StreamTrace {
            name: std::mem::take(&mut self.name),
            processes: self.processes,
            seeds: std::mem::take(&mut self.seeds),
            roots: std::mem::take(&mut self.roots),
            total_ops_hint: total,
            ops: Box::new(VecStream::new(std::mem::take(&mut self.ops))),
        }
        .inject_conflicting_lookups(added_ratio, seed, total, injectable);
        let mut out = Vec::with_capacity(total as usize);
        while let Some(t) = adapter.ops.next_op() {
            out.push(t);
        }
        self.name = adapter.name;
        self.seeds = adapter.seeds;
        self.roots = adapter.roots;
        self.ops = out;
    }
}

/// Builds a [`Trace`] from a [`TraceProfile`].
#[derive(Clone)]
pub struct TraceBuilder {
    profile: TraceProfile,
    scale: f64,
    seed: u64,
}

/// Per-process generation state.
struct ProcState {
    dir: InodeNo,
    /// (parent, name, ino) of live files owned by this process.
    files: Vec<(InodeNo, Name, InodeNo)>,
    /// extra hard links owned by this process
    links: Vec<(InodeNo, Name, InodeNo)>,
    /// empty subdirectories available for rmdir
    empty_dirs: Vec<(InodeNo, Name, InodeNo)>,
}

impl TraceBuilder {
    pub fn new(profile: &TraceProfile) -> Self {
        Self {
            profile: *profile,
            scale: 1.0,
            seed: 0x7ace,
        }
    }

    /// Adjust the (copied) profile, e.g. to zero the sharing probability
    /// for conflict-free runs.
    pub fn tweak(mut self, f: impl FnOnce(&mut TraceProfile)) -> Self {
        f(&mut self.profile);
        self
    }

    /// Scale the total operation count (for quick runs and tests).
    pub fn scale(mut self, scale: f64) -> Self {
        self.scale = scale;
        self
    }

    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Materialize the whole trace up front: collect [`Self::stream`].
    pub fn build(self) -> Trace {
        self.stream().materialize()
    }

    /// Lazy form: run the (cheap) namespace-seeding prelude eagerly so
    /// the header is available, then hand the generator state — rng,
    /// namespace model, per-process file lists — to a [`TraceStream`]
    /// that synthesizes one op per pull. Yields exactly the sequence
    /// [`Self::build`] materializes.
    pub fn stream(self) -> StreamTrace {
        let profile = self.profile;
        let total = ((profile.total_ops as f64 * self.scale).round() as u64).max(1);
        let procs = profile.processes;
        let rng = det_rng(self.seed, 0x7ace_0000);
        let mut model = NamespaceModel::new();
        let mut seeds = Vec::new();
        let mut roots = vec![ROOT, SHARED_DIR];

        model.add_dir(ROOT);
        model.add_dir(SHARED_DIR);
        seeds.push(SeedEntry::Dir { ino: ROOT });
        seeds.push(SeedEntry::Dir { ino: SHARED_DIR });

        // Per-process private directories plus a few pre-existing files so
        // early removes and stats have targets.
        let states: Vec<ProcState> = (0..procs)
            .map(|p| {
                let dir = model.fresh_ino();
                model.add_dir(dir);
                seeds.push(SeedEntry::Dir { ino: dir });
                roots.push(dir);
                let mut files = Vec::new();
                for _ in 0..12 {
                    let name = model.fresh_name();
                    let ino = model.fresh_ino();
                    seeds.push(SeedEntry::File {
                        parent: dir,
                        name,
                        ino,
                    });
                    model.apply(&FsOp::Create {
                        parent: dir,
                        name,
                        ino,
                    });
                    files.push((dir, name, ino));
                }
                let _ = p;
                ProcState {
                    dir,
                    files,
                    links: Vec::new(),
                    empty_dirs: Vec::new(),
                }
            })
            .collect();

        // Cumulative class weights for sampling.
        let classes: Vec<(OpClass, f64)> = OpClass::ALL
            .iter()
            .map(|c| (*c, profile.mix.weight(*c)))
            .collect();
        let weight_sum: f64 = classes.iter().map(|(_, w)| w).sum();

        StreamTrace {
            name: profile.name.to_string(),
            processes: procs,
            seeds,
            roots,
            total_ops_hint: total,
            ops: Box::new(TraceStream {
                profile,
                remaining: total,
                procs,
                rng,
                model,
                states,
                recent_shared: VecDeque::new(),
                classes,
                weight_sum,
            }),
        }
    }
}

/// The lazy generator behind [`TraceBuilder::stream`]: one synthesized
/// op per pull, with all namespace/validity state held internally.
pub struct TraceStream {
    profile: TraceProfile,
    remaining: u64,
    procs: u32,
    rng: SmallRng,
    model: NamespaceModel,
    states: Vec<ProcState>,
    /// Recently created shared files: conflict targets.
    recent_shared: VecDeque<(u32, InodeNo, Name, InodeNo)>,
    classes: Vec<(OpClass, f64)>,
    weight_sum: f64,
}

impl OpStream for TraceStream {
    fn next_op(&mut self) -> Option<TraceOp> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let p = self.rng.gen_range(0..self.procs);
        let class = pick_class(&self.classes, self.weight_sum, &mut self.rng);
        let op = synthesize(
            &self.profile,
            class,
            p,
            &mut self.states,
            &mut self.model,
            &mut self.recent_shared,
            &mut self.rng,
        );
        Some(TraceOp {
            proc: ProcId::new(p, 0),
            op,
        })
    }
}

fn pick_class(classes: &[(OpClass, f64)], sum: f64, rng: &mut SmallRng) -> OpClass {
    let mut x = rng.gen::<f64>() * sum;
    for (c, w) in classes {
        if x < *w {
            return *c;
        }
        x -= w;
    }
    OpClass::Stat
}

#[allow(clippy::too_many_arguments)]
fn synthesize(
    profile: &TraceProfile,
    class: OpClass,
    p: u32,
    states: &mut [ProcState],
    model: &mut NamespaceModel,
    recent_shared: &mut VecDeque<(u32, InodeNo, Name, InodeNo)>,
    rng: &mut SmallRng,
) -> FsOp {
    let create = |states: &mut [ProcState],
                  model: &mut NamespaceModel,
                  recent_shared: &mut VecDeque<(u32, InodeNo, Name, InodeNo)>,
                  rng: &mut SmallRng| {
        let shared = rng.gen::<f64>() < profile.shared_create_frac;
        let parent = if shared {
            SHARED_DIR
        } else {
            states[p as usize].dir
        };
        let name = model.fresh_name();
        let ino = model.fresh_ino();
        let op = FsOp::Create { parent, name, ino };
        model.apply(&op);
        states[p as usize].files.push((parent, name, ino));
        if shared {
            recent_shared.push_back((p, parent, name, ino));
            if recent_shared.len() > 512 {
                recent_shared.pop_front();
            }
        }
        op
    };

    match class {
        OpClass::Create => create(states, model, recent_shared, rng),
        OpClass::Remove | OpClass::Unlink => {
            // unlink an extra link if one exists, else remove a file
            if class == OpClass::Unlink {
                if let Some((parent, name, target)) = states[p as usize].links.pop() {
                    let op = FsOp::Unlink {
                        parent,
                        name,
                        target,
                    };
                    model.apply(&op);
                    return op;
                }
            }
            if states[p as usize].files.len() > 1 {
                let idx = rng.gen_range(0..states[p as usize].files.len());
                let (parent, name, ino) = states[p as usize].files.swap_remove(idx);
                let op = FsOp::Remove { parent, name, ino };
                model.apply(&op);
                op
            } else {
                create(states, model, recent_shared, rng)
            }
        }
        OpClass::Mkdir => {
            let parent = states[p as usize].dir;
            let name = model.fresh_name();
            let ino = model.fresh_ino();
            let op = FsOp::Mkdir { parent, name, ino };
            model.apply(&op);
            states[p as usize].empty_dirs.push((parent, name, ino));
            op
        }
        OpClass::Rmdir => {
            if let Some((parent, name, ino)) = states[p as usize].empty_dirs.pop() {
                let op = FsOp::Rmdir { parent, name, ino };
                model.apply(&op);
                op
            } else {
                let parent = states[p as usize].dir;
                let name = model.fresh_name();
                let ino = model.fresh_ino();
                let op = FsOp::Mkdir { parent, name, ino };
                model.apply(&op);
                states[p as usize].empty_dirs.push((parent, name, ino));
                op
            }
        }
        OpClass::Link => {
            if let Some(&(_, _, target)) = states[p as usize].files.last() {
                let parent = states[p as usize].dir;
                let name = model.fresh_name();
                let op = FsOp::Link {
                    parent,
                    name,
                    target,
                };
                model.apply(&op);
                states[p as usize].links.push((parent, name, target));
                op
            } else {
                create(states, model, recent_shared, rng)
            }
        }
        // Reads: mostly own files (the exclusive-dominated pattern of
        // §II-C); with `shared_access_prob`, a *recently created* shared
        // file of another process — the conflict-generating accesses.
        OpClass::Stat | OpClass::Getattr | OpClass::Access | OpClass::Setattr => {
            if rng.gen::<f64>() < profile.shared_access_prob {
                if let Some(&(owner, _, _, ino)) = pick_recent(recent_shared, p, rng) {
                    debug_assert_ne!(owner, p);
                    return match class {
                        OpClass::Setattr => FsOp::Setattr { ino },
                        OpClass::Getattr => FsOp::Getattr { ino },
                        OpClass::Access => FsOp::Access { ino },
                        _ => FsOp::Stat { ino },
                    };
                }
            }
            let ino = own_file(&states[p as usize], rng);
            match class {
                OpClass::Setattr => FsOp::Setattr { ino },
                OpClass::Getattr => FsOp::Getattr { ino },
                OpClass::Access => FsOp::Access { ino },
                _ => FsOp::Stat { ino },
            }
        }
        OpClass::Lookup => {
            if rng.gen::<f64>() < profile.shared_access_prob {
                if let Some(&(_, parent, name, _)) = pick_recent(recent_shared, p, rng) {
                    return FsOp::Lookup { parent, name };
                }
            }
            match states[p as usize].files.choose(rng) {
                Some(&(parent, name, _)) => FsOp::Lookup { parent, name },
                None => FsOp::Readdir {
                    dir: states[p as usize].dir,
                },
            }
        }
        OpClass::Readdir => FsOp::Readdir {
            dir: states[p as usize].dir,
        },
    }
}

/// A recent shared file created by someone other than `p` (prefer the most
/// recent, which is the most likely to still be uncommitted).
fn pick_recent<'a>(
    recent: &'a VecDeque<(u32, InodeNo, Name, InodeNo)>,
    p: u32,
    rng: &mut SmallRng,
) -> Option<&'a (u32, InodeNo, Name, InodeNo)> {
    let window = 16.min(recent.len());
    if window == 0 {
        return None;
    }
    let start = recent.len() - window;
    (0..8).find_map(|_| {
        let idx = start + rng.gen_range(0..window);
        recent.get(idx).filter(|(owner, _, _, _)| *owner != p)
    })
}

fn own_file(state: &ProcState, rng: &mut SmallRng) -> InodeNo {
    state
        .files
        .choose(rng)
        .map(|&(_, _, ino)| ino)
        .unwrap_or(SHARED_DIR)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::PROFILES;

    fn small_trace(name: &str) -> Trace {
        TraceBuilder::new(profile_by(name)).scale(0.01).build()
    }

    fn profile_by(name: &str) -> &'static TraceProfile {
        TraceProfile::by_name(name).unwrap()
    }

    #[test]
    fn trace_sizes_scale() {
        let t = small_trace("CTH");
        let expect = (505_247f64 * 0.01).round() as usize;
        assert_eq!(t.ops.len(), expect);
    }

    #[test]
    fn traces_are_deterministic() {
        let a = TraceBuilder::new(profile_by("home2")).scale(0.002).build();
        let b = TraceBuilder::new(profile_by("home2")).scale(0.002).build();
        assert_eq!(a.ops, b.ops);
        assert_eq!(a.seeds, b.seeds);
        let c = TraceBuilder::new(profile_by("home2"))
            .scale(0.002)
            .seed(99)
            .build();
        assert_ne!(a.ops, c.ops, "different seed, different trace");
    }

    #[test]
    fn class_histogram_tracks_the_mix() {
        let profile = profile_by("s3d");
        let t = TraceBuilder::new(profile).scale(0.05).build();
        let hist = t.class_histogram();
        let total: u64 = hist.iter().map(|(_, n)| n).sum();
        let share = |class| {
            hist.iter()
                .find(|(c, _)| *c == class)
                .map(|(_, n)| *n as f64 / total as f64)
                .unwrap_or(0.0)
        };
        // creates dominate s3d; fallbacks inflate them slightly
        let create_share = share(cx_types::OpClass::Create);
        let expect = profile.mix.share(cx_types::OpClass::Create);
        assert!(
            (create_share - expect).abs() < 0.08,
            "create share {create_share} vs mix {expect}"
        );
        assert!(share(cx_types::OpClass::Lookup) > 0.05);
    }

    #[test]
    fn per_process_mutations_are_valid_in_order() {
        // Replaying each op against a model in global order must never
        // hit an invalid mutation (the generator's core guarantee).
        let t = small_trace("deasna2");
        let mut m = NamespaceModel::new();
        for s in &t.seeds {
            match *s {
                SeedEntry::Dir { ino } => m.add_dir(ino),
                SeedEntry::File { parent, name, ino } => {
                    m.apply(&FsOp::Create { parent, name, ino })
                }
            }
        }
        for top in &t.ops {
            m.apply(&top.op); // panics if invalid
        }
    }

    #[test]
    fn every_profile_builds() {
        for p in &PROFILES {
            let t = TraceBuilder::new(p).scale(0.001).build();
            assert!(!t.ops.is_empty());
            assert_eq!(t.processes, p.processes);
            assert!(t.seeds.len() > 2);
        }
    }

    #[test]
    fn injection_adds_lookups_after_mutations() {
        let mut t = small_trace("home2");
        let before = t.ops.len();
        let mutations = t.ops.iter().filter(|o| o.op.is_mutation()).count();
        t.inject_conflicting_lookups(0.05, 1);
        let added = t.ops.len() - before;
        let target = (before as f64 * 0.05) as usize;
        assert!(
            added as f64 > target as f64 * 0.5
                && added as f64 <= (target as f64 * 1.5 + mutations as f64),
            "added {added} lookups for target {target}"
        );
        // injected lookups follow a mutation by a different process
        let mut prev: Option<&TraceOp> = None;
        let mut seen_injected = 0;
        for op in &t.ops {
            if let (FsOp::Lookup { .. }, Some(prev_op)) = (&op.op, prev) {
                if prev_op.op.is_mutation() && prev_op.proc != op.proc {
                    seen_injected += 1;
                }
            }
            prev = Some(op);
        }
        assert!(seen_injected > 0);
    }

    #[test]
    fn zero_injection_is_identity() {
        let mut t = small_trace("CTH");
        let before = t.ops.clone();
        t.inject_conflicting_lookups(0.0, 1);
        assert_eq!(t.ops, before);
    }
}
