//! Namespace bookkeeping used while generating valid operation streams.

use cx_types::{FsOp, InodeNo, Name};
use std::collections::HashMap;

/// Tracks which files and directories exist so the generator only emits
/// operations that will succeed (trace replays in the paper replay what
/// real applications actually did, so failures are negligible).
#[derive(Debug, Default, Clone)]
pub struct NamespaceModel {
    /// file inode → nlink
    files: HashMap<InodeNo, u32>,
    dirs: HashMap<InodeNo, u32>, // dir → live entry count
    dentries: HashMap<(InodeNo, Name), InodeNo>,
    next_ino: u64,
    next_name: u64,
}

impl NamespaceModel {
    pub fn new() -> Self {
        Self {
            next_ino: 1000,
            next_name: 1,
            ..Self::default()
        }
    }

    pub fn fresh_ino(&mut self) -> InodeNo {
        self.next_ino += 1;
        InodeNo(self.next_ino)
    }

    pub fn fresh_name(&mut self) -> Name {
        self.next_name += 1;
        Name(self.next_name)
    }

    pub fn add_dir(&mut self, ino: InodeNo) {
        self.dirs.insert(ino, 0);
    }

    pub fn exists(&self, ino: InodeNo) -> bool {
        self.files.contains_key(&ino) || self.dirs.contains_key(&ino)
    }

    pub fn entry(&self, dir: InodeNo, name: Name) -> Option<InodeNo> {
        self.dentries.get(&(dir, name)).copied()
    }

    pub fn dir_entries(&self, dir: InodeNo) -> u32 {
        self.dirs.get(&dir).copied().unwrap_or(0)
    }

    pub fn file_count(&self) -> usize {
        self.files.len()
    }

    /// Apply a known-valid operation to the model. Panics on an invalid
    /// one — the generator must only produce valid operations.
    pub fn apply(&mut self, op: &FsOp) {
        match *op {
            FsOp::Create { parent, name, ino } => {
                assert!(self.dentries.insert((parent, name), ino).is_none());
                assert!(self.files.insert(ino, 1).is_none());
                *self.dirs.entry(parent).or_insert(0) += 1;
            }
            FsOp::Mkdir { parent, name, ino } => {
                assert!(self.dentries.insert((parent, name), ino).is_none());
                self.dirs.insert(ino, 0);
                *self.dirs.entry(parent).or_insert(0) += 1;
            }
            FsOp::Remove { parent, name, ino } => {
                assert_eq!(self.dentries.remove(&(parent, name)), Some(ino));
                let n = self.files.get_mut(&ino).expect("file exists");
                if *n <= 1 {
                    self.files.remove(&ino);
                } else {
                    *n -= 1;
                }
                *self.dirs.get_mut(&parent).expect("dir exists") -= 1;
            }
            FsOp::Rmdir { parent, name, ino } => {
                assert_eq!(self.dentries.remove(&(parent, name)), Some(ino));
                assert_eq!(self.dirs.remove(&ino), Some(0), "rmdir of empty dir");
                *self.dirs.get_mut(&parent).expect("dir exists") -= 1;
            }
            FsOp::Link {
                parent,
                name,
                target,
            } => {
                assert!(self.dentries.insert((parent, name), target).is_none());
                *self.files.get_mut(&target).expect("target exists") += 1;
                *self.dirs.entry(parent).or_insert(0) += 1;
            }
            FsOp::Unlink {
                parent,
                name,
                target,
            } => {
                assert_eq!(self.dentries.remove(&(parent, name)), Some(target));
                let n = self.files.get_mut(&target).expect("target exists");
                if *n <= 1 {
                    self.files.remove(&target);
                } else {
                    *n -= 1;
                }
                *self.dirs.get_mut(&parent).expect("dir exists") -= 1;
            }
            // reads change nothing
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle() {
        let mut m = NamespaceModel::new();
        let root = InodeNo(1);
        m.add_dir(root);
        let ino = m.fresh_ino();
        let name = m.fresh_name();
        m.apply(&FsOp::Create {
            parent: root,
            name,
            ino,
        });
        assert!(m.exists(ino));
        assert_eq!(m.entry(root, name), Some(ino));
        assert_eq!(m.dir_entries(root), 1);
        m.apply(&FsOp::Remove {
            parent: root,
            name,
            ino,
        });
        assert!(!m.exists(ino));
        assert_eq!(m.dir_entries(root), 0);
    }

    #[test]
    fn link_counts() {
        let mut m = NamespaceModel::new();
        let root = InodeNo(1);
        m.add_dir(root);
        let ino = m.fresh_ino();
        let n1 = m.fresh_name();
        let n2 = m.fresh_name();
        m.apply(&FsOp::Create {
            parent: root,
            name: n1,
            ino,
        });
        m.apply(&FsOp::Link {
            parent: root,
            name: n2,
            target: ino,
        });
        m.apply(&FsOp::Unlink {
            parent: root,
            name: n1,
            target: ino,
        });
        assert!(m.exists(ino), "one link remains");
        m.apply(&FsOp::Unlink {
            parent: root,
            name: n2,
            target: ino,
        });
        assert!(!m.exists(ino));
    }

    #[test]
    #[should_panic]
    fn invalid_remove_panics() {
        let mut m = NamespaceModel::new();
        m.apply(&FsOp::Remove {
            parent: InodeNo(1),
            name: Name(1),
            ino: InodeNo(2),
        });
    }
}
