//! Workloads: synthetic traces, the Metarates benchmark, and conflict
//! injection.
//!
//! The paper evaluates Cx with six real traces (Table II / Figure 4): three
//! supercomputing traces from Sandia's Red Storm (CTH, s3d_fortIO, alegra)
//! and three Harvard NFS traces (home2, deasna2, lair62b). Those traces are
//! not redistributable, so this crate synthesizes statistically equivalent
//! workloads (see DESIGN.md §2): each [`TraceProfile`] reproduces the
//! published total operation count, the conflict ratio, the stated
//! cross-server proportions (≈35 % for CTH, ≈48 % for s3d), and a
//! documented per-class operation mix standing in for Figure 4.
//!
//! The access-pattern structure follows the paper's analysis (§II-C):
//! checkpointing processes create state files that are "normally
//! exclusively accessed by the process which created it", so conflicts are
//! rare and arise only from the small shared-file population; the NFS
//! workloads are "exclusive-dominated" per-user directories with slightly
//! more sharing.
//!
//! [`Metarates`] emulates the MPI benchmark of §IV-B: processes
//! concurrently create/remove zero-byte files in one common directory and
//! stat them, in read-dominated (20/80) and update-dominated (80/20)
//! mixes.

pub mod metarates;
pub mod model;
pub mod profile;
pub mod stats;
pub mod stream;
pub mod trace;

pub use metarates::{Metarates, MetaratesMix};
pub use model::NamespaceModel;
pub use profile::{ClassMix, TraceProfile, PROFILES};
pub use stats::TraceSummary;
pub use stream::{injection_counts, OpStream, StreamTrace, VecStream};
pub use trace::{SeedEntry, Trace, TraceBuilder, TraceOp};
