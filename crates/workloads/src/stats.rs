//! Trace analysis: the summary statistics the paper reports about its
//! workloads (total operations, per-class mix, cross-server share,
//! sharing structure) computed from a generated [`Trace`].

use crate::stream::StreamTrace;
use crate::trace::{Trace, TraceOp, SHARED_DIR};
use cx_types::{FsOp, Placement};
use serde::Serialize;
use std::collections::{BTreeMap, HashMap, HashSet};

/// Summary of one trace.
#[derive(Debug, Clone, Serialize)]
pub struct TraceSummary {
    pub name: String,
    pub total_ops: u64,
    pub processes: u32,
    /// Operations per class, normalized.
    pub class_shares: BTreeMap<&'static str, f64>,
    /// Fraction of operations that are Table I mutations.
    pub mutation_share: f64,
    /// Fraction of operations that become cross-server at `servers`.
    pub cross_server_share: f64,
    /// Fraction of mutations that target the common (shared) directory.
    pub shared_mutation_share: f64,
    /// Distinct files touched.
    pub distinct_files: u64,
    /// Fraction of files accessed by more than one process.
    pub multi_process_files: f64,
    /// Largest per-process share of the operations (load skew probe).
    pub max_process_share: f64,
}

/// Streaming accumulator behind both analysis entry points: one pass,
/// one op at a time, so full traces never need materializing.
struct SummaryAcc {
    placement: Placement,
    class_counts: BTreeMap<&'static str, u64>,
    total: u64,
    mutations: u64,
    cross: u64,
    shared_mutations: u64,
    per_proc: HashMap<u32, u64>,
    file_users: HashMap<u64, HashSet<u32>>,
}

impl SummaryAcc {
    fn new(servers: u32) -> Self {
        Self {
            placement: Placement::new(servers),
            class_counts: BTreeMap::new(),
            total: 0,
            mutations: 0,
            cross: 0,
            shared_mutations: 0,
            per_proc: HashMap::new(),
            file_users: HashMap::new(),
        }
    }

    fn push(&mut self, t: &TraceOp) {
        self.total += 1;
        *self.class_counts.entry(t.op.class().name()).or_insert(0) += 1;
        *self.per_proc.entry(t.proc.client.0).or_insert(0) += 1;
        if t.op.is_mutation() {
            self.mutations += 1;
            if self.placement.plan(t.op).is_cross_server() {
                self.cross += 1;
            }
        }
        let (target, parent) = target_of(&t.op);
        if let Some(ino) = target {
            self.file_users
                .entry(ino)
                .or_default()
                .insert(t.proc.client.0);
        }
        if t.op.is_mutation() && parent == Some(SHARED_DIR.0) {
            self.shared_mutations += 1;
        }
    }

    fn finish(self, name: String, processes: u32) -> TraceSummary {
        let total = self.total;
        let multi = self.file_users.values().filter(|u| u.len() > 1).count() as f64;
        TraceSummary {
            name,
            total_ops: total,
            processes,
            class_shares: self
                .class_counts
                .into_iter()
                .map(|(c, n)| (c, n as f64 / total as f64))
                .collect(),
            mutation_share: self.mutations as f64 / total as f64,
            cross_server_share: self.cross as f64 / total as f64,
            shared_mutation_share: if self.mutations == 0 {
                0.0
            } else {
                self.shared_mutations as f64 / self.mutations as f64
            },
            distinct_files: self.file_users.len() as u64,
            multi_process_files: if self.file_users.is_empty() {
                0.0
            } else {
                multi / self.file_users.len() as f64
            },
            max_process_share: self
                .per_proc
                .values()
                .map(|n| *n as f64 / total as f64)
                .fold(0.0, f64::max),
        }
    }
}

impl TraceSummary {
    /// Analyze `trace` as placed on `servers` metadata servers.
    pub fn analyze(trace: &Trace, servers: u32) -> TraceSummary {
        let mut acc = SummaryAcc::new(servers);
        for t in &trace.ops {
            acc.push(t);
        }
        acc.finish(trace.name.clone(), trace.processes)
    }

    /// Same analysis off a stream, consuming it — peak memory stays at
    /// the accumulator's maps regardless of trace length.
    pub fn analyze_stream(mut stream: StreamTrace, servers: u32) -> TraceSummary {
        let mut acc = SummaryAcc::new(servers);
        while let Some(t) = stream.ops.next_op() {
            acc.push(&t);
        }
        acc.finish(stream.name, stream.processes)
    }
}

/// The file inode an operation targets, and the parent directory it
/// mutates (if any).
fn target_of(op: &FsOp) -> (Option<u64>, Option<u64>) {
    match *op {
        FsOp::Create { parent, ino, .. }
        | FsOp::Remove { parent, ino, .. }
        | FsOp::Mkdir { parent, ino, .. }
        | FsOp::Rmdir { parent, ino, .. } => (Some(ino.0), Some(parent.0)),
        FsOp::Link { parent, target, .. } | FsOp::Unlink { parent, target, .. } => {
            (Some(target.0), Some(parent.0))
        }
        FsOp::Stat { ino }
        | FsOp::Getattr { ino }
        | FsOp::Access { ino }
        | FsOp::Setattr { ino } => (Some(ino.0), None),
        FsOp::Lookup { .. } | FsOp::Readdir { .. } => (None, None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::TraceProfile;
    use crate::trace::TraceBuilder;
    use cx_types::OpClass;

    fn summary(name: &str) -> TraceSummary {
        let trace = TraceBuilder::new(TraceProfile::by_name(name).unwrap())
            .scale(0.01)
            .build();
        TraceSummary::analyze(&trace, 8)
    }

    #[test]
    fn cross_server_shares_match_the_paper_text() {
        // "about 35% of metadata requests are cross-server operations" on
        // CTH; "about 48%" on s3d (§IV-C1), at 8 servers.
        let cth = summary("CTH");
        assert!(
            (0.30..=0.40).contains(&cth.cross_server_share),
            "CTH cross share {}",
            cth.cross_server_share
        );
        let s3d = summary("s3d");
        assert!(
            (0.43..=0.53).contains(&s3d.cross_server_share),
            "s3d cross share {}",
            s3d.cross_server_share
        );
    }

    #[test]
    fn class_shares_sum_to_one() {
        let s = summary("home2");
        let total: f64 = s.class_shares.values().sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(
            s.class_shares[OpClass::Lookup.name()] > 0.2,
            "NFS is lookup-heavy"
        );
    }

    #[test]
    fn exclusive_access_dominates() {
        // §II-C: "a state file is normally exclusively accessed by the
        // process which created it" — most files have one user.
        for name in ["CTH", "home2"] {
            let s = summary(name);
            assert!(
                s.multi_process_files < 0.2,
                "{name}: {:.3} of files are shared",
                s.multi_process_files
            );
        }
    }

    #[test]
    fn load_is_spread_over_processes() {
        let s = summary("deasna2");
        assert!(s.processes >= 64);
        assert!(
            s.max_process_share < 4.0 / s.processes as f64,
            "no process dominates the trace"
        );
    }

    #[test]
    fn checkpointing_mutates_the_shared_directory() {
        let cth = summary("CTH");
        let home2 = summary("home2");
        assert!(
            cth.shared_mutation_share > home2.shared_mutation_share,
            "checkpointing concentrates creates in the common directory"
        );
    }

    #[test]
    fn summary_serializes() {
        let s = summary("alegra");
        let json = serde_json::to_string(&s).unwrap();
        assert!(json.contains("alegra"));
    }
}
