//! Pull-based streaming workload plane.
//!
//! Full-scale traces reach 11M operations; materializing them as a
//! `Vec<TraceOp>` costs hundreds of megabytes per replay *before* the
//! simulator makes its own per-process copy. [`OpStream`] inverts the
//! flow: the generator state (rng, namespace model, per-process file
//! lists) lives inside the stream and each operation is synthesized the
//! moment a client asks for it, so a replay holds only in-flight ops.
//!
//! Determinism contract: for the same builder parameters,
//! `TraceBuilder::stream()` yields *exactly* the sequence
//! `TraceBuilder::build()` materializes — `build()` is implemented as
//! "collect the stream" and the property tests in
//! `tests/stream_equivalence.rs` pin the equality for every profile.

use crate::trace::{SeedEntry, Trace, TraceOp};
use cx_sim::det_rng;
use cx_types::{FsOp, InodeNo, ProcId};
use rand::rngs::SmallRng;
use rand::Rng;
use std::collections::VecDeque;

/// A pull-based source of trace operations in global issue order.
pub trait OpStream {
    fn next_op(&mut self) -> Option<TraceOp>;
}

/// A workload whose operations are generated on demand. Carries the same
/// header a [`Trace`] does (seeds, roots, process count) — everything the
/// cluster needs up front — while the op sequence stays lazy.
pub struct StreamTrace {
    pub name: String,
    pub processes: u32,
    pub seeds: Vec<SeedEntry>,
    /// Directory inodes exempt from orphan checking.
    pub roots: Vec<InodeNo>,
    /// Exact op count for generator- and vec-backed streams; a lower
    /// bound once an injection adapter is stacked on top (the adapter's
    /// additions are rng-dependent). Used for event-budget sizing and
    /// stuck-op accounting, never for termination.
    pub total_ops_hint: u64,
    pub ops: Box<dyn OpStream + Send>,
}

impl StreamTrace {
    /// Drain the stream into a materialized [`Trace`].
    pub fn materialize(mut self) -> Trace {
        let mut ops = Vec::with_capacity(self.total_ops_hint as usize);
        while let Some(op) = self.ops.next_op() {
            ops.push(op);
        }
        Trace {
            name: self.name,
            processes: self.processes,
            seeds: self.seeds,
            ops,
            roots: self.roots,
        }
    }

    /// Stack the conflict-injection adapter on this stream (§IV-D2's
    /// injected lookups). `base_total` / `base_injectable` are the op
    /// counts of the *underlying* stream, obtained from a counting pass
    /// ([`injection_counts`]) or from a materialized trace; the legacy
    /// materialized path normalized the injection rate by the same two
    /// numbers, so sequences stay byte-identical.
    pub fn inject_conflicting_lookups(
        self,
        added_ratio: f64,
        seed: u64,
        base_total: u64,
        base_injectable: u64,
    ) -> StreamTrace {
        if added_ratio <= 0.0 {
            return self;
        }
        let per_mutation = added_ratio * base_total as f64 / base_injectable.max(1) as f64;
        StreamTrace {
            name: self.name,
            processes: self.processes,
            seeds: self.seeds,
            roots: self.roots,
            total_ops_hint: self.total_ops_hint,
            ops: Box::new(InjectLookups {
                inner: self.ops,
                rng: det_rng(seed, 0x1213),
                per_mutation,
                processes: self.processes,
                pending: VecDeque::new(),
            }),
        }
    }
}

/// A stream over an already-materialized op vector.
pub struct VecStream {
    iter: std::vec::IntoIter<TraceOp>,
}

impl VecStream {
    pub fn new(ops: Vec<TraceOp>) -> Self {
        Self {
            iter: ops.into_iter(),
        }
    }
}

impl OpStream for VecStream {
    fn next_op(&mut self) -> Option<TraceOp> {
        self.iter.next()
    }
}

impl Trace {
    /// Convert into a stream (vec-backed; no extra copy).
    pub fn into_stream(self) -> StreamTrace {
        StreamTrace {
            name: self.name,
            processes: self.processes,
            seeds: self.seeds,
            roots: self.roots,
            total_ops_hint: self.ops.len() as u64,
            ops: Box::new(VecStream::new(self.ops)),
        }
    }

    /// Convert into a stream without consuming the trace (clones the op
    /// vector — same cost the simulator's own intake copy used to pay).
    pub fn to_stream(&self) -> StreamTrace {
        self.clone().into_stream()
    }
}

/// Count (total ops, injectable mutations) of a stream by draining it.
/// Used to parameterize [`StreamTrace::inject_conflicting_lookups`]
/// without materializing: generation is re-run (CPU), memory stays flat.
pub fn injection_counts(mut stream: StreamTrace) -> (u64, u64) {
    let mut total = 0u64;
    let mut injectable = 0u64;
    while let Some(t) = stream.ops.next_op() {
        total += 1;
        if matches!(t.op, FsOp::Create { .. } | FsOp::Mkdir { .. }) {
            injectable += 1;
        }
    }
    (total, injectable)
}

/// Stream adapter injecting lookups by *other* processes immediately
/// after create/mkdir mutations — the paper's conflict-ratio sweep
/// (§IV-D2). Replaces the old drain-and-rebuild implementation on
/// `Trace`; the rng is drawn at exactly the same points (once per pulled
/// mutation), so the emitted sequence matches the legacy one.
struct InjectLookups {
    inner: Box<dyn OpStream + Send>,
    rng: SmallRng,
    per_mutation: f64,
    processes: u32,
    pending: VecDeque<TraceOp>,
}

impl OpStream for InjectLookups {
    fn next_op(&mut self) -> Option<TraceOp> {
        if let Some(op) = self.pending.pop_front() {
            return Some(op);
        }
        let t = self.inner.next_op()?;
        if t.op.is_mutation() {
            let target = match t.op {
                FsOp::Create { parent, name, .. } | FsOp::Mkdir { parent, name, .. } => {
                    Some((parent, name))
                }
                _ => None,
            };
            if let Some((parent, name)) = target {
                let mut n = self.per_mutation;
                while n > 0.0 && self.rng.gen::<f64>() < n {
                    // an access by a *different* process right after the
                    // mutation: lands in the inconsistency window
                    let other = ProcId::new(t.proc.client.0.wrapping_add(1) % self.processes, 0);
                    self.pending.push_back(TraceOp {
                        proc: other,
                        op: FsOp::Lookup { parent, name },
                    });
                    n -= 1.0;
                }
            }
        }
        Some(t)
    }
}
