//! The six trace profiles of Table II / Figure 4.
//!
//! The published facts we reproduce exactly: total operation counts and
//! conflict ratios (Table II), plus the cross-server proportions the text
//! states ("about 48% of metadata requests are cross-server operations" on
//! s3d, "about 35%" on CTH, §IV-C1). The per-class mix stands in for
//! Figure 4 (whose bars are not numerically legible in the text):
//! checkpoint-style create/remove-heavy mixes for the Red Storm traces,
//! lookup/getattr-heavy mixes for the Harvard NFS traces — consistent with
//! the paper's description of both workload families (§II-C).

use cx_types::OpClass;
use serde::{Deserialize, Serialize};

/// Relative weights per operation class (they need not sum to 1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClassMix {
    pub create: f64,
    pub remove: f64,
    pub mkdir: f64,
    pub rmdir: f64,
    pub link: f64,
    pub unlink: f64,
    pub stat: f64,
    pub lookup: f64,
    pub getattr: f64,
    pub setattr: f64,
    pub readdir: f64,
    pub access: f64,
}

impl ClassMix {
    pub fn weight(&self, class: OpClass) -> f64 {
        match class {
            OpClass::Create => self.create,
            OpClass::Remove => self.remove,
            OpClass::Mkdir => self.mkdir,
            OpClass::Rmdir => self.rmdir,
            OpClass::Link => self.link,
            OpClass::Unlink => self.unlink,
            OpClass::Stat => self.stat,
            OpClass::Lookup => self.lookup,
            OpClass::Getattr => self.getattr,
            OpClass::Setattr => self.setattr,
            OpClass::Readdir => self.readdir,
            OpClass::Access => self.access,
        }
    }

    pub fn total(&self) -> f64 {
        OpClass::ALL.iter().map(|c| self.weight(*c)).sum()
    }

    /// Fraction of operations that are Table I mutations (the only ones
    /// that can become cross-server).
    pub fn mutation_fraction(&self) -> f64 {
        let m = self.create + self.remove + self.mkdir + self.rmdir + self.link + self.unlink;
        m / self.total()
    }

    /// Normalized share of one class.
    pub fn share(&self, class: OpClass) -> f64 {
        self.weight(class) / self.total()
    }
}

/// One synthetic trace profile.
///
/// Serialize-only: the `&'static str` fields cannot be deserialized from an
/// owned JSON tree, and profiles are compile-time constants anyway.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct TraceProfile {
    /// Trace name as in the paper.
    pub name: &'static str,
    /// Origin description.
    pub origin: &'static str,
    /// Total metadata operations (Table II).
    pub total_ops: u64,
    /// Conflict ratio the paper measured (Table II), as a fraction.
    pub paper_conflict_ratio: f64,
    /// Number of client processes that generated the trace.
    pub processes: u32,
    /// Operation mix (stands in for Figure 4).
    pub mix: ClassMix,
    /// Probability that a read targets another process's recently
    /// created shared file — the knob calibrated so the *measured*
    /// conflict ratio lands near `paper_conflict_ratio`.
    pub shared_access_prob: f64,
    /// Fraction of creates that go to the shared (common) directory
    /// rather than the process's private directory.
    pub shared_create_frac: f64,
}

/// Checkpoint-style supercomputing mix: dominated by state-file creates
/// and removes plus the stats that checkpointing libraries issue.
const HPC_MIX: ClassMix = ClassMix {
    create: 0.22,
    remove: 0.13,
    mkdir: 0.01,
    rmdir: 0.005,
    link: 0.005,
    unlink: 0.03,
    stat: 0.22,
    lookup: 0.16,
    getattr: 0.12,
    setattr: 0.02,
    readdir: 0.02,
    access: 0.06,
};

/// NFS network-server mix: lookup/getattr heavy, moderate mutations.
const NFS_MIX: ClassMix = ClassMix {
    create: 0.065,
    remove: 0.05,
    mkdir: 0.005,
    rmdir: 0.003,
    link: 0.007,
    unlink: 0.02,
    stat: 0.10,
    lookup: 0.33,
    getattr: 0.27,
    setattr: 0.03,
    readdir: 0.05,
    access: 0.07,
};

/// Email-server mix (lair62b): more create/remove churn than home dirs.
const MAIL_MIX: ClassMix = ClassMix {
    create: 0.10,
    remove: 0.09,
    mkdir: 0.004,
    rmdir: 0.002,
    link: 0.015,
    unlink: 0.039,
    stat: 0.09,
    lookup: 0.31,
    getattr: 0.23,
    setattr: 0.03,
    readdir: 0.04,
    access: 0.05,
};

/// The six profiles of Table II.
pub const PROFILES: [TraceProfile; 6] = [
    TraceProfile {
        name: "CTH",
        origin: "CTH 8.1 shock physics on 3300 Red Storm clients (Sandia)",
        total_ops: 505_247,
        paper_conflict_ratio: 0.00112,
        processes: 64,
        mix: HPC_MIX,
        shared_access_prob: 0.0042,
        shared_create_frac: 0.55,
    },
    TraceProfile {
        name: "s3d",
        origin: "s3d Fortran IO on 6400 Red Storm clients (Sandia)",
        total_ops: 724_818,
        paper_conflict_ratio: 0.00322,
        processes: 64,
        mix: ClassMix {
            // s3d has the highest cross-server share (~48%): heavier
            // create/remove churn than CTH.
            create: 0.30,
            remove: 0.18,
            mkdir: 0.012,
            rmdir: 0.006,
            link: 0.004,
            unlink: 0.048,
            stat: 0.16,
            lookup: 0.12,
            getattr: 0.09,
            setattr: 0.015,
            readdir: 0.015,
            access: 0.05,
        },
        shared_access_prob: 0.0148,
        shared_create_frac: 0.6,
    },
    TraceProfile {
        name: "alegra",
        origin: "Alegra shock on 5000 Red Storm clients (Sandia)",
        total_ops: 404_812,
        paper_conflict_ratio: 0.00623,
        processes: 64,
        mix: HPC_MIX,
        shared_access_prob: 0.024,
        shared_create_frac: 0.55,
    },
    TraceProfile {
        name: "home2",
        origin: "Harvard primary home directories (NFS)",
        total_ops: 2_720_599,
        paper_conflict_ratio: 0.00669,
        processes: 96,
        mix: NFS_MIX,
        shared_access_prob: 0.025,
        shared_create_frac: 0.25,
    },
    TraceProfile {
        name: "deasna2",
        origin: "Harvard research directories (NFS)",
        total_ops: 3_888_022,
        paper_conflict_ratio: 0.02972,
        processes: 96,
        mix: NFS_MIX,
        shared_access_prob: 0.150,
        shared_create_frac: 0.35,
    },
    TraceProfile {
        name: "lair62b",
        origin: "Harvard email directories (NFS)",
        total_ops: 11_057_516,
        paper_conflict_ratio: 0.01571,
        processes: 128,
        mix: MAIL_MIX,
        shared_access_prob: 0.072,
        shared_create_frac: 0.30,
    },
];

impl TraceProfile {
    pub fn by_name(name: &str) -> Option<&'static TraceProfile> {
        PROFILES.iter().find(|p| p.name == name)
    }

    /// Expected cross-server share at `servers` metadata servers: every
    /// mutation whose two halves land on different servers (probability
    /// 1 − 1/N under OrangeFS placement).
    pub fn expected_cross_server(&self, servers: u32) -> f64 {
        self.mix.mutation_fraction() * (1.0 - 1.0 / servers as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_totals_match_the_paper() {
        let expect: [(&str, u64, f64); 6] = [
            ("CTH", 505_247, 0.00112),
            ("s3d", 724_818, 0.00322),
            ("alegra", 404_812, 0.00623),
            ("home2", 2_720_599, 0.00669),
            ("deasna2", 3_888_022, 0.02972),
            ("lair62b", 11_057_516, 0.01571),
        ];
        for (name, ops, conflict) in expect {
            let p = TraceProfile::by_name(name).unwrap();
            assert_eq!(p.total_ops, ops);
            assert!((p.paper_conflict_ratio - conflict).abs() < 1e-9);
        }
    }

    #[test]
    fn mixes_are_normalized_enough() {
        for p in &PROFILES {
            let t = p.mix.total();
            assert!((0.95..=1.05).contains(&t), "{} mix sums to {t}", p.name);
        }
    }

    #[test]
    fn cross_server_shares_match_the_text() {
        // "about 35% of metadata requests are cross-server operations" on
        // CTH and "about 48%" on s3d, at 8 servers (§IV-C1).
        let cth = TraceProfile::by_name("CTH")
            .unwrap()
            .expected_cross_server(8);
        assert!((0.30..=0.42).contains(&cth), "CTH cross-server {cth}");
        let s3d = TraceProfile::by_name("s3d")
            .unwrap()
            .expected_cross_server(8);
        assert!((0.43..=0.53).contains(&s3d), "s3d cross-server {s3d}");
    }

    #[test]
    fn nfs_profiles_are_read_dominated() {
        for name in ["home2", "deasna2", "lair62b"] {
            let p = TraceProfile::by_name(name).unwrap();
            assert!(
                p.mix.mutation_fraction() < 0.30,
                "{name} should be read-dominated"
            );
        }
    }

    #[test]
    fn hpc_profiles_are_mutation_heavy() {
        for name in ["CTH", "s3d", "alegra"] {
            let p = TraceProfile::by_name(name).unwrap();
            assert!(
                p.mix.mutation_fraction() > 0.35,
                "{name} should be mutation-heavy"
            );
        }
    }

    #[test]
    fn conflict_knob_tracks_paper_ratio() {
        // sharing probability must scale with the target conflict ratio so
        // calibration is monotone
        let mut last = 0.0;
        let mut by_ratio: Vec<_> = PROFILES.iter().collect();
        by_ratio.sort_by(|a, b| {
            a.paper_conflict_ratio
                .partial_cmp(&b.paper_conflict_ratio)
                .unwrap()
        });
        for p in by_ratio {
            assert!(
                p.shared_access_prob >= last,
                "{} sharing probability must be monotone in conflict ratio",
                p.name
            );
            last = p.shared_access_prob;
        }
    }
}
