//! Micro-benchmarks of the hot components, with a small hand-rolled timing
//! harness (the workspace builds offline, so there is no Criterion).
//!
//!     cargo bench -p cx-bench
//!     cargo bench -p cx-bench -- wal        # substring filter
//!
//! These measure the substrate itself (not the paper's figures — those
//! live in the `src/bin/` experiment binaries): event-queue churn,
//! protocol-engine throughput on the zero-latency testkit, WAL
//! append/prune and record encode/decode, metadata-store apply/undo and
//! lookup, disk-model scheduling, placement hashing, and trace generation.
//!
//! Each benchmark reports the median per-op time over several timed
//! batches (2 warmup + 9 measured).

use cx_core::{BatchTrigger, ClusterConfig, Protocol};
use cx_protocol::testkit::Kit;
use cx_types::{
    FileKind, FsOp, InodeNo, Name, Placement, ProcId, Role, ServerId, SimTime, SubOp, Verdict,
};
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Runs `batch` (which returns the time spent on `units` operations) a few
/// times and prints the median ns/op.
fn bench(filter: &str, name: &str, units: u64, mut batch: impl FnMut() -> Duration) {
    if !name.contains(filter) {
        return;
    }
    for _ in 0..2 {
        batch();
    }
    let mut samples: Vec<f64> = (0..9)
        .map(|_| batch().as_secs_f64() * 1e9 / units as f64)
        .collect();
    samples.sort_by(f64::total_cmp);
    let median = samples[samples.len() / 2];
    println!("{name:<44} {median:>12.1} ns/op");
}

/// Times `f` and keeps its result from being optimized away.
fn timed<T>(f: impl FnOnce() -> T) -> Duration {
    let start = Instant::now();
    black_box(f());
    start.elapsed()
}

fn bench_event_queue(filter: &str) {
    use cx_sim::Sim;
    const N: u64 = 100_000;
    // Near-future-dominated delay mix, like real DES traffic: mostly small
    // deltas with an occasional long timer.
    let delay = |i: u64| {
        if i.is_multiple_of(64) {
            1_000_000 + (i % 7) * 500_000
        } else {
            (i * 2_654_435_761) % 40_000
        }
    };
    bench(filter, "sim/event_queue_schedule_pop", N, || {
        let mut sim: Sim<u64> = Sim::new();
        timed(|| {
            for i in 0..N {
                sim.schedule(delay(i), 0, i);
            }
            let mut acc = 0u64;
            while let Some((_, _, ev)) = sim.pop() {
                acc = acc.wrapping_add(ev);
            }
            acc
        })
    });
    bench(filter, "sim/event_queue_steady_state", N, || {
        let mut sim: Sim<u64> = Sim::new();
        for i in 0..1024 {
            sim.schedule(delay(i), 0, i);
        }
        timed(|| {
            // Pop one, schedule one: the steady-state shape of a replay.
            for i in 0..N {
                if let Some((_, _, ev)) = sim.pop() {
                    sim.schedule(delay(i.wrapping_add(ev)), 0, i);
                }
            }
            sim.events_processed()
        })
    });
}

fn bench_protocol_engines(filter: &str) {
    for protocol in [
        Protocol::Cx,
        Protocol::Se,
        Protocol::SeBatched,
        Protocol::TwoPc,
        Protocol::Ce,
    ] {
        let name = format!("engine_ops/create_{}", protocol.name());
        bench(filter, &name, 64, || {
            let mut cfg = ClusterConfig::new(4, protocol);
            cfg.cx.trigger = BatchTrigger::Threshold { pending_ops: 64 };
            let mut kit = Kit::new(cfg);
            for s in kit.servers.iter_mut() {
                s.store_mut().seed_inode(InodeNo(1), FileKind::Directory, 1);
            }
            timed(move || {
                for i in 0..64u64 {
                    kit.run_op(
                        ProcId::new((i % 4) as u32, 0),
                        FsOp::Create {
                            parent: InodeNo(1),
                            name: Name(100 + i),
                            ino: InodeNo(1000 + i),
                        },
                    );
                }
                kit.quiesce();
                kit
            })
        });
    }
}

fn wal_record(i: u64) -> cx_wal::Record {
    cx_wal::Record::Result {
        op_id: cx_types::OpId::new(ProcId::new(0, 0), i),
        role: Role::Participant,
        peer: Some(ServerId(1)),
        subop: SubOp::CreateInode {
            ino: InodeNo(i),
            kind: FileKind::Regular,
        },
        verdict: Verdict::Yes,
        invalidated: false,
    }
}

fn bench_wal(filter: &str) {
    use cx_wal::Wal;
    bench(filter, "wal/append_commit_prune", 256, || {
        let mut wal = Wal::new(None);
        timed(move || {
            for i in 0..256 {
                let (seq, _) = wal.append(wal_record(i)).expect("unlimited");
                wal.append(cx_wal::Record::Commit {
                    op_id: cx_types::OpId::new(ProcId::new(0, 0), i),
                })
                .expect("unlimited");
                wal.mark_durable(seq);
            }
            wal.prune_all();
            wal
        })
    });
    bench(filter, "wal/encode_decode_record", 10_000, || {
        let r = wal_record(7);
        timed(|| {
            let mut out = 0usize;
            for _ in 0..10_000 {
                let mut buf = Vec::with_capacity(256);
                cx_wal::encode_record(&mut buf, &r);
                out += black_box(cx_wal::decode_record(&buf).expect("round trip")).1;
            }
            out
        })
    });
}

fn bench_store(filter: &str) {
    use cx_mdstore::MetaStore;
    bench(filter, "mdstore/apply_undo_cycle", 256, || {
        let mut store = MetaStore::new();
        timed(move || {
            for i in 0..256u64 {
                let undo = store
                    .apply(&SubOp::CreateInode {
                        ino: InodeNo(i),
                        kind: FileKind::Regular,
                    })
                    .expect("fresh inode");
                if i % 2 == 0 {
                    store.undo(undo);
                }
            }
            store.take_dirty_pages();
            store
        })
    });
    bench(filter, "mdstore/lookup_hit_miss", 20_000, || {
        let mut store = MetaStore::new();
        store.seed_inode(InodeNo(1), FileKind::Directory, 1);
        for i in 0..1_000u64 {
            store.seed_inode(InodeNo(100 + i), FileKind::Regular, 1);
            store.seed_dentry(InodeNo(1), Name(i), InodeNo(100 + i));
        }
        timed(move || {
            let mut hits = 0usize;
            for i in 0..20_000u64 {
                // Every other probe misses.
                if store.lookup(InodeNo(1), Name(i % 2_000)).is_some() {
                    hits += 1;
                }
            }
            hits
        })
    });
}

fn bench_disk_model(filter: &str) {
    use cx_simio::{Disk, DiskReq};
    use cx_types::DiskConfig;
    bench(filter, "disk/group_commit_512_appends", 512, || {
        let mut disk = Disk::new(DiskConfig::default());
        timed(move || {
            let mut batch = disk
                .submit(
                    SimTime(0),
                    DiskReq::LogAppend {
                        bytes: 200,
                        token: 0,
                    },
                )
                .expect("idle start");
            for t in 1..512u64 {
                disk.submit(
                    SimTime(0),
                    DiskReq::LogAppend {
                        bytes: 200,
                        token: t,
                    },
                );
            }
            while let Some(next) = disk.complete(batch.finish) {
                batch = next;
            }
            disk
        })
    });
    bench(filter, "disk/writeback_merge_1000_pages", 1_000, || {
        let mut disk = Disk::new(DiskConfig::default());
        timed(move || {
            let pages: Vec<u64> = (0..1000u64).map(|i| i * 3).collect();
            let batch = disk
                .submit(SimTime(0), DiskReq::DbWriteback { pages, token: 0 })
                .expect("idle start");
            let _ = disk.complete(batch.finish);
            disk
        })
    });
}

fn bench_placement(filter: &str) {
    let p = Placement::new(32);
    bench(filter, "placement/plan_create", 10_000, || {
        timed(|| {
            let mut acc = 0u32;
            for i in 0..10_000u64 {
                let plan = p.plan(FsOp::Create {
                    parent: InodeNo(1),
                    name: Name(i),
                    ino: InodeNo(1000 + i),
                });
                acc = acc.wrapping_add(black_box(&plan).coordinator.0);
            }
            acc
        })
    });
}

fn bench_trace_generation(filter: &str) {
    use cx_core::{TraceBuilder, TraceProfile};
    bench(filter, "workloads/generate_cth_5k_ops", 1, || {
        let profile = TraceProfile::by_name("CTH").expect("exists");
        timed(|| TraceBuilder::new(profile).scale(0.01).build())
    });
}

fn bench_des_replay(filter: &str) {
    use cx_core::{Experiment, Workload};
    bench(filter, "des/replay_cth_1k_ops_cx", 1, || {
        timed(|| {
            Experiment::new(Workload::trace("CTH").scale(0.002))
                .servers(8)
                .protocol(Protocol::Cx)
                .run()
        })
    });
}

fn main() {
    // Cargo passes `--bench` (and possibly other flags); the first
    // non-flag argument is a substring filter.
    let filter = std::env::args()
        .skip(1)
        .find(|a| !a.starts_with('-'))
        .unwrap_or_default();
    println!("{:<44} {:>12}", "benchmark", "median");
    println!("{}", "-".repeat(60));
    bench_event_queue(&filter);
    bench_protocol_engines(&filter);
    bench_wal(&filter);
    bench_store(&filter);
    bench_disk_model(&filter);
    bench_placement(&filter);
    bench_trace_generation(&filter);
    bench_des_replay(&filter);
}
