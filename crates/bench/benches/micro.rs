//! Criterion micro-benchmarks of the hot components.
//!
//!     cargo bench -p cx-bench
//!
//! These measure the substrate itself (not the paper's figures — those
//! live in the `src/bin/` experiment binaries): protocol-engine throughput
//! on the zero-latency testkit, WAL append/prune, metadata-store
//! apply/undo, disk-model scheduling, placement hashing, and trace
//! generation.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use cx_core::{BatchTrigger, ClusterConfig, Protocol};
use cx_protocol::testkit::Kit;
use cx_types::{FileKind, FsOp, InodeNo, Name, Placement, ProcId, Role, ServerId, SimTime, SubOp, Verdict};

fn bench_protocol_engines(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine_ops");
    g.throughput(Throughput::Elements(1));
    for protocol in [Protocol::Cx, Protocol::Se, Protocol::SeBatched, Protocol::TwoPc, Protocol::Ce] {
        g.bench_function(format!("create_{}", protocol.name()), |b| {
            b.iter_batched(
                || {
                    let mut cfg = ClusterConfig::new(4, protocol);
                    cfg.cx.trigger = BatchTrigger::Threshold { pending_ops: 64 };
                    let mut kit = Kit::new(cfg);
                    for s in kit.servers.iter_mut() {
                        s.store_mut().seed_inode(InodeNo(1), FileKind::Directory, 1);
                    }
                    kit
                },
                |mut kit| {
                    for i in 0..64u64 {
                        kit.run_op(
                            ProcId::new((i % 4) as u32, 0),
                            FsOp::Create {
                                parent: InodeNo(1),
                                name: Name(100 + i),
                                ino: InodeNo(1000 + i),
                            },
                        );
                    }
                    kit.quiesce();
                    kit
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_wal(c: &mut Criterion) {
    use cx_wal::{Record, Wal};
    let rec = |i: u64| Record::Result {
        op_id: cx_types::OpId::new(ProcId::new(0, 0), i),
        role: Role::Participant,
        peer: Some(ServerId(1)),
        subop: SubOp::CreateInode {
            ino: InodeNo(i),
            kind: FileKind::Regular,
        },
        verdict: Verdict::Yes,
        invalidated: false,
    };
    let mut g = c.benchmark_group("wal");
    g.throughput(Throughput::Elements(1));
    g.bench_function("append_commit_prune", |b| {
        b.iter_batched(
            || Wal::new(None),
            |mut wal| {
                for i in 0..256 {
                    let (seq, _) = wal.append(rec(i)).expect("unlimited");
                    wal.append(Record::Commit {
                        op_id: cx_types::OpId::new(ProcId::new(0, 0), i),
                    })
                    .expect("unlimited");
                    wal.mark_durable(seq);
                }
                wal.prune_all();
                wal
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("encode_decode_record", |b| {
        let r = rec(7);
        b.iter(|| {
            let mut buf = Vec::with_capacity(256);
            cx_wal::encode_record(&mut buf, &r);
            cx_wal::decode_record(&buf).expect("round trip")
        })
    });
    g.finish();
}

fn bench_store(c: &mut Criterion) {
    use cx_mdstore::MetaStore;
    let mut g = c.benchmark_group("mdstore");
    g.throughput(Throughput::Elements(1));
    g.bench_function("apply_undo_cycle", |b| {
        b.iter_batched(
            MetaStore::new,
            |mut store| {
                for i in 0..256u64 {
                    let undo = store
                        .apply(&SubOp::CreateInode {
                            ino: InodeNo(i),
                            kind: FileKind::Regular,
                        })
                        .expect("fresh inode");
                    if i % 2 == 0 {
                        store.undo(undo);
                    }
                }
                store.take_dirty_pages();
                store
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_disk_model(c: &mut Criterion) {
    use cx_simio::{Disk, DiskReq};
    use cx_types::DiskConfig;
    let mut g = c.benchmark_group("disk");
    g.bench_function("group_commit_512_appends", |b| {
        b.iter_batched(
            || Disk::new(DiskConfig::default()),
            |mut disk| {
                let mut batch = disk
                    .submit(SimTime(0), DiskReq::LogAppend { bytes: 200, token: 0 })
                    .expect("idle start");
                for t in 1..512u64 {
                    disk.submit(SimTime(0), DiskReq::LogAppend { bytes: 200, token: t });
                }
                while let Some(next) = disk.complete(batch.finish) {
                    batch = next;
                }
                disk
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("writeback_merge_1000_pages", |b| {
        b.iter_batched(
            || Disk::new(DiskConfig::default()),
            |mut disk| {
                let pages: Vec<u64> = (0..1000u64).map(|i| i * 3).collect();
                let batch = disk
                    .submit(SimTime(0), DiskReq::DbWriteback { pages, token: 0 })
                    .expect("idle start");
                let _ = disk.complete(batch.finish);
                disk
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_placement(c: &mut Criterion) {
    let p = Placement::new(32);
    let mut g = c.benchmark_group("placement");
    g.throughput(Throughput::Elements(1));
    g.bench_function("plan_create", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            p.plan(FsOp::Create {
                parent: InodeNo(1),
                name: Name(i),
                ino: InodeNo(1000 + i),
            })
        })
    });
    g.finish();
}

fn bench_trace_generation(c: &mut Criterion) {
    use cx_core::{TraceBuilder, TraceProfile};
    let mut g = c.benchmark_group("workloads");
    g.bench_function("generate_cth_5k_ops", |b| {
        let profile = TraceProfile::by_name("CTH").expect("exists");
        b.iter(|| TraceBuilder::new(profile).scale(0.01).build())
    });
    g.finish();
}

fn bench_des_replay(c: &mut Criterion) {
    use cx_core::{Experiment, Workload};
    let mut g = c.benchmark_group("des");
    g.sample_size(10);
    g.bench_function("replay_cth_1k_ops_cx", |b| {
        b.iter(|| {
            Experiment::new(Workload::trace("CTH").scale(0.002))
                .servers(8)
                .protocol(Protocol::Cx)
                .run()
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_protocol_engines,
    bench_wal,
    bench_store,
    bench_disk_model,
    bench_placement,
    bench_trace_generation,
    bench_des_replay
);
criterion_main!(benches);
