//! Figure 8: impact of the conflict ratio, by injecting lookup requests
//! into home2 the way the paper does.
//!
//!     cargo run --release -p cx-bench --bin figure8_conflict_ratio [--scale f|--full]
//!
//! Paper shape: replay time and message cost both grow with the conflict
//! ratio (every conflict forces an immediate, unbatched commitment), yet
//! OFS-Cx still beats OFS while the ratio stays below ~20%.

use cx_bench::{print_table, write_json, Args};
use cx_core::{Experiment, Protocol, Workload};
use serde::Serialize;

#[derive(Serialize)]
struct Point {
    injected: f64,
    measured_conflict_pct: f64,
    cx_replay_secs: f64,
    cx_msgs: u64,
    immediate: u64,
    beats_ofs: bool,
}

fn main() {
    let args = Args::parse();
    let scale = args.scale(0.03);
    println!("Figure 8 — impact of conflict ratios (home2, 8 servers, scale {scale})\n");

    let ofs = Experiment::new(Workload::trace("home2").scale(scale))
        .servers(8)
        .protocol(Protocol::Se)
        .run();
    assert!(ofs.is_consistent());
    let ofs_secs = ofs.stats.replay_secs();

    // Two knobs raise the conflict ratio: injected lookups (the paper's
    // method) and the generator's sharing probability. Both are swept;
    // the sharing sweep reaches the higher measured ratios.
    let injections = [0.0, 0.02, 0.05, 0.10, 0.20, 0.35, 0.5];
    let sharing = [0.1, 0.3, 0.6, 0.9];
    let mut points: Vec<Point> = cx_bench::par_map(&injections, |&injected| {
        let r = Experiment::new(
            Workload::trace("home2")
                .scale(scale)
                .inject_conflicts(injected),
        )
        .servers(8)
        .protocol(Protocol::Cx)
        .run();
        assert!(r.is_consistent(), "inject {injected}");
        Point {
            injected,
            measured_conflict_pct: r.stats.conflict_ratio() * 100.0,
            cx_replay_secs: r.stats.replay_secs(),
            cx_msgs: r.stats.total_msgs(),
            immediate: r.stats.server_stats.immediate_commitments,
            beats_ofs: r.stats.replay_secs() < ofs_secs,
        }
    });
    points.extend(cx_bench::par_map(&sharing, |&share| {
        let trace =
            cx_core::TraceBuilder::new(cx_core::TraceProfile::by_name("home2").expect("exists"))
                .scale(scale)
                .tweak(|p| p.shared_access_prob = share)
                .build();
        let r = Experiment::new(Workload::Custom(trace))
            .servers(8)
            .protocol(Protocol::Cx)
            .run();
        assert!(r.is_consistent(), "share {share}");
        Point {
            injected: share, // reported in the same column, see note below
            measured_conflict_pct: r.stats.conflict_ratio() * 100.0,
            cx_replay_secs: r.stats.replay_secs(),
            cx_msgs: r.stats.total_msgs(),
            immediate: r.stats.server_stats.immediate_commitments,
            beats_ofs: r.stats.replay_secs() < ofs_secs,
        }
    }));
    points.sort_by(|a, b| {
        a.measured_conflict_pct
            .partial_cmp(&b.measured_conflict_pct)
            .expect("finite")
    });

    println!("OFS baseline (no injection): {ofs_secs:.3} s");
    print_table(
        &[
            "injected",
            "measured conflicts",
            "Cx replay (s)",
            "messages",
            "immediate commits",
            "beats OFS?",
        ],
        &points
            .iter()
            .map(|p| {
                vec![
                    format!("{:.0}%", p.injected * 100.0),
                    format!("{:.2}%", p.measured_conflict_pct),
                    format!("{:.3}", p.cx_replay_secs),
                    p.cx_msgs.to_string(),
                    p.immediate.to_string(),
                    if p.beats_ofs { "yes" } else { "no" }.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!(
        "\npaper: \"the throughput decreases as the ratio increases.\n\
         Nevertheless, as long as the conflict ratio is lower than 20% …\n\
         OFS-Cx outperforms OFS.\" (Our immediate commitments resolve in a\n\
         few virtual milliseconds, so the uncommitted windows close faster\n\
         than the paper's testbed and the measured ratio tops out below\n\
         theirs; within the achievable range the shape matches and Cx\n\
         keeps its lead.)"
    );
    write_json("figure8_conflict_ratio", &points);
}
