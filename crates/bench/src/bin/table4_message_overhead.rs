//! Table IV: messages generated in the trace replays and the message
//! overhead of OFS-Cx.
//!
//!     cargo run --release -p cx-bench --bin table4_message_overhead [--scale f|--full]
//!
//! Paper shape: Cx adds commitment traffic, but batching keeps the
//! overhead between 1.0% and 3.1% (< 4%) across all six traces, growing
//! with the trace's conflict ratio.

use cx_bench::{print_table, write_json, Args};
use cx_core::{Experiment, Protocol, Workload, PROFILES};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    trace: &'static str,
    ofs_msgs: u64,
    cx_msgs: u64,
    overhead_pct: f64,
    paper_overhead_pct: f64,
    cx_server_msgs: u64,
    immediate_commitments: u64,
}

const PAPER: [(&str, f64); 6] = [
    ("CTH", 2.2),
    ("s3d", 3.0),
    ("alegra", 1.0),
    ("home2", 3.1),
    ("deasna2", 2.4),
    ("lair62b", 2.3),
];

fn main() {
    let args = Args::parse();
    let scale = args.scale(0.03);
    println!("Table IV — message overhead of OFS-Cx (8 servers, scale {scale})\n");

    let rows: Vec<Row> = cx_bench::par_map(&PROFILES, |p| {
        let run = |protocol| {
            let r = Experiment::new(Workload::trace(p.name).scale(scale))
                .servers(8)
                .protocol(protocol)
                .run();
            assert!(r.is_consistent());
            r.stats
        };
        let se = run(Protocol::Se);
        let cx = run(Protocol::Cx);
        Row {
            trace: p.name,
            ofs_msgs: se.total_msgs(),
            cx_msgs: cx.total_msgs(),
            overhead_pct: (cx.total_msgs() as f64 / se.total_msgs() as f64 - 1.0) * 100.0,
            paper_overhead_pct: PAPER
                .iter()
                .find(|(n, _)| *n == p.name)
                .map(|(_, o)| *o)
                .unwrap_or(0.0),
            cx_server_msgs: cx.server_msgs,
            immediate_commitments: cx.server_stats.immediate_commitments,
        }
    });

    print_table(
        &[
            "trace",
            "OFS msgs",
            "OFS-Cx msgs",
            "overhead",
            "overhead (paper)",
            "commitment msgs",
            "immediate",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.trace.to_string(),
                    r.ofs_msgs.to_string(),
                    r.cx_msgs.to_string(),
                    format!("{:.1}%", r.overhead_pct),
                    format!("{:.1}%", r.paper_overhead_pct),
                    r.cx_server_msgs.to_string(),
                    r.immediate_commitments.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!(
        "\npaper: \"the actual additional cost is very low at less than 4% …\n\
         because lazy commitments can send batched messages\"; the overhead\n\
         grows with the workload's conflict ratio."
    );
    write_json("table4_message_overhead", &rows);
}
