//! Ablation (DESIGN.md §5.2): group commit on the log device.
//!
//!     cargo run --release -p cx-bench --bin ablation_group_commit [--scale f]
//!
//! Cx writes every Result-Record synchronously; the reason that is cheap
//! is that all appends queued during one flush ride the next single flush.
//! Turning group commit off makes every append pay a full flush and should
//! erase a large part of Cx's advantage — this quantifies the design
//! choice.

use cx_bench::{print_table, write_json, Args};
use cx_core::{Experiment, MetaratesMix, Protocol, Workload};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    workload: &'static str,
    cx_with_gc: f64,
    cx_without_gc: f64,
    ofs: f64,
}

fn main() {
    let args = Args::parse();
    let scale = args.scale(0.02);
    println!("Ablation — group commit on the operation log (8 servers)\n");

    let mut rows = Vec::new();
    for (name, workload) in [
        ("CTH trace", Workload::trace("CTH").scale(scale)),
        (
            "metarates update-dominated",
            Workload::Metarates {
                mix: MetaratesMix::UpdateDominated,
                ops_per_proc: 40,
                files_per_server: 1_000,
            },
        ),
    ] {
        let run = |protocol, group_commit: bool| {
            let r = Experiment::new(workload.clone())
                .servers(8)
                .protocol(protocol)
                .configure(|cfg| cfg.disk.group_commit = group_commit)
                .run();
            assert!(r.is_consistent());
            r.stats.replay_secs()
        };
        rows.push(Row {
            workload: name,
            cx_with_gc: run(Protocol::Cx, true),
            cx_without_gc: run(Protocol::Cx, false),
            ofs: run(Protocol::Se, true),
        });
    }

    print_table(
        &[
            "workload",
            "Cx + group commit (s)",
            "Cx, no group commit (s)",
            "OFS (s)",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.workload.to_string(),
                    format!("{:.3}", r.cx_with_gc),
                    format!("{:.3}", r.cx_without_gc),
                    format!("{:.3}", r.ofs),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!(
        "\nwithout group commit every synchronous Result-Record pays a full\n\
         flush; the concurrency win shrinks toward the serial baseline."
    );
    write_json("ablation_group_commit", &rows);
}
