//! Run every paper experiment in sequence (the `EXPERIMENTS.md`
//! regeneration driver).
//!
//!     cargo run --release -p cx-bench --bin all_experiments [--scale f|--full]
//!
//! Each experiment prints its table and writes JSON under
//! `target/experiments/`; this driver just invokes them in paper order
//! with consistent flags.

use std::process::Command;

const EXPERIMENTS: [&str; 12] = [
    "table2_conflict_ratio",
    "figure4_op_distribution",
    "figure5_trace_replay",
    "table4_message_overhead",
    "figure6_metarates_scaling",
    "figure7_log_size",
    "figure8_conflict_ratio",
    "figure9_batch_strategies",
    "table5_recovery",
    "ablation_group_commit",
    "ablation_writeback_merge",
    "ablation_log_organization",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let exe_dir = std::env::current_exe()
        .expect("current exe")
        .parent()
        .expect("exe dir")
        .to_path_buf();

    let mut failures = Vec::new();
    for (i, name) in EXPERIMENTS.iter().enumerate() {
        println!("\n======================================================================");
        println!("[{}/{}] {}", i + 1, EXPERIMENTS.len(), name);
        println!("======================================================================");
        let bin = exe_dir.join(name);
        let status = Command::new(&bin)
            .args(&args)
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {}: {e}", bin.display()));
        if !status.success() {
            failures.push(*name);
        }
    }

    println!("\n======================================================================");
    if failures.is_empty() {
        println!("all {} experiments completed", EXPERIMENTS.len());
    } else {
        println!("FAILED: {failures:?}");
        std::process::exit(1);
    }
}
