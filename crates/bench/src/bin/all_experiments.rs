//! Run every paper experiment (the `EXPERIMENTS.md` regeneration driver).
//!
//!     cargo run --release -p cx-bench --bin all_experiments \
//!         [--scale f|--full] [--jobs n]
//!
//! Each experiment prints its table and writes JSON under
//! `target/experiments/`; this driver invokes them in paper order with
//! consistent flags. Experiments run **concurrently** (`--jobs`, default
//! one per core) with captured output, replayed in paper order as each
//! finishes — at `--full` scale the basket is dominated by a handful of
//! long traces×protocols sweeps, so fanning binaries across cores cuts
//! the wall-clock to roughly the longest single experiment. When more
//! than one job runs at a time, each child is pinned to one internal
//! worker (`CX_BENCH_THREADS=1`) so the fan-out doesn't oversubscribe
//! the machine with nested sweeps.
//!
//! `--obs` additionally runs the observability export (`perf_baseline
//! --obs`) after the basket, leaving a Perfetto trace + report under
//! `target/experiments/obs_home2.*` beside the JSON artifacts.

use std::process::Command;

const EXPERIMENTS: [&str; 12] = [
    "table2_conflict_ratio",
    "figure4_op_distribution",
    "figure5_trace_replay",
    "table4_message_overhead",
    "figure6_metarates_scaling",
    "figure7_log_size",
    "figure8_conflict_ratio",
    "figure9_batch_strategies",
    "table5_recovery",
    "ablation_group_commit",
    "ablation_writeback_merge",
    "ablation_log_organization",
];

fn main() {
    let args = cx_bench::Args::parse();
    // Strip `--jobs <n>` from the forwarded flags (children don't know it).
    let fwd: Vec<String> = {
        let mut out = Vec::new();
        let mut skip_next = false;
        for a in std::env::args().skip(1) {
            if skip_next {
                skip_next = false;
                continue;
            }
            if a == "--jobs" {
                skip_next = true;
                continue;
            }
            out.push(a);
        }
        out
    };
    let jobs: usize = args
        .value("--jobs")
        .unwrap_or_else(cx_bench::bench_threads)
        .max(1);
    let exe_dir = std::env::current_exe()
        .expect("current exe")
        .parent()
        .expect("exe dir")
        .to_path_buf();

    // Capture each child's output and replay it in paper order; stream
    // directly only when running sequentially.
    let results = cx_bench::par_map_with(jobs, &EXPERIMENTS, |name| {
        let bin = exe_dir.join(name);
        let mut cmd = Command::new(&bin);
        cmd.args(&fwd);
        if jobs > 1 {
            cmd.env("CX_BENCH_THREADS", "1");
        }
        let out = cmd
            .output()
            .unwrap_or_else(|e| panic!("failed to launch {}: {e}", bin.display()));
        (out.status.success(), out.stdout, out.stderr)
    });

    // The obs export rides along after the basket: one home2 replay with
    // recording on, dumped under target/experiments/ with the rest of
    // the artifacts. The children already ignore the `--obs` flag.
    let obs_extra = args.flag("--obs").then(|| {
        let bin = exe_dir.join("perf_baseline");
        let mut cmd = Command::new(&bin);
        cmd.args(&fwd)
            .arg("--obs-out")
            .arg("target/experiments/obs_home2");
        cmd.output()
            .unwrap_or_else(|e| panic!("failed to launch {}: {e}", bin.display()))
    });

    let mut failures = Vec::new();
    for (i, (name, (ok, stdout, stderr))) in EXPERIMENTS.iter().zip(&results).enumerate() {
        println!("\n======================================================================");
        println!("[{}/{}] {}", i + 1, EXPERIMENTS.len(), name);
        println!("======================================================================");
        print!("{}", String::from_utf8_lossy(stdout));
        if !stderr.is_empty() {
            eprint!("{}", String::from_utf8_lossy(stderr));
        }
        if !ok {
            failures.push(*name);
        }
    }
    if let Some(out) = &obs_extra {
        println!("\n======================================================================");
        println!("[extra] perf_baseline --obs");
        println!("======================================================================");
        print!("{}", String::from_utf8_lossy(&out.stdout));
        if !out.stderr.is_empty() {
            eprint!("{}", String::from_utf8_lossy(&out.stderr));
        }
        if !out.status.success() {
            failures.push("perf_baseline --obs");
        }
    }

    println!("\n======================================================================");
    if failures.is_empty() {
        println!(
            "all {} experiments completed ({} jobs)",
            EXPERIMENTS.len(),
            jobs
        );
    } else {
        println!("FAILED: {failures:?}");
        std::process::exit(1);
    }
}
