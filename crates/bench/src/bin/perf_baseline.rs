//! Tracked performance baseline for the DES hot path.
//!
//! Runs a fixed three-workload basket and records wall-clock time and
//! simulator events/sec for each item:
//!
//! 1. `home2_replay_8s` — the home2 trace (lookup-heavy NFS) replayed on
//!    8 servers under Cx; the headline events/sec number.
//! 2. `metarates_update_8s` — update-dominated Metarates at 8 servers
//!    (mutation-heavy, exercises the protocol engines and WAL).
//! 3. `table5_recovery_160kb` — a crash at 160 KB of valid records plus
//!    full recovery (log scan + resumption); wall-clock only, since the
//!    run is dominated by fixed-size protocol work rather than a stream
//!    of events.
//! 4. `lair62b_full_replay` / `lair62b_full_replay_materialized` — the
//!    11M-op lair62b trace replayed end-to-end through the streaming
//!    intake and through an up-front materialized `Trace`. These two
//!    record `peak_rss_kb` (VmHWM, reset between entries): the streamed
//!    path must hold peak memory flat where the materialized path pays
//!    for the whole op vector.
//!
//! 5. `home2_replay_8s_p{N}` (with `--partitions N`) — the home2 replay
//!    on the partitioned parallel kernel, measured at `p1` and `pN` on
//!    the same streaming intake so the ratio isolates the kernel.
//!
//! 6. `home2_tcp_loopback_8s` / `home2_tcp_multiproc_8s` (with `--net
//!    tcp`) — the home2 prefix on the real-socket runtime (`cx-net`,
//!    DESIGN.md §9), in-process loopback and one-OS-process-per-server.
//!    Wall-clock-only (the wire plane has no simulator event counter),
//!    and measured on ONE box: coordinator, clients, and every server
//!    share its cores, so the numbers are wire-plane overhead, not
//!    cluster capacity. `home2_tcp_loopback_8s_obs` is the same loopback
//!    entry with full wall-clock tracing on (recording sink + flush-span
//!    capture); `--net-floor` holds it within 5% of the uninstrumented
//!    floor.
//!
//! Every entry records `peak_rss_kb` (VmHWM, reset per entry); wall-clock
//! entries that complete client ops (the net modes) record `ops_per_sec`
//! instead of a zero event rate. Results
//! merge into `BENCH_PR10.json` at the repo root, keyed by `--label`
//! (e.g. `--label before` / `--label after`), so optimization PRs commit
//! both sides of the comparison with the same binary. After the table, a
//! comparison against the most recent other `BENCH_PR*.json` prints
//! in-run, so drift is visible without waiting for the `ci.sh` gate.
//!
//! `--smoke` runs none of the basket: it replays the golden-digest
//! scenario through both intakes plus `--partitions 1` and asserts the
//! pinned digest, then cross-checks `--partitions 2` run totals against
//! the single-threaded run — the fixed-seed CI gate (`ci.sh`).
//!
//! `--obs` runs the observability export instead of the basket: one home2
//! replay with lifecycle recording on, dashboard to stdout, Perfetto
//! trace + report + JSONL next to `--obs-out <prefix>`, and a digest
//! check that instrumentation didn't perturb the run.
//!
//! `--net-smoke` runs the loopback-TCP CI gate instead of the basket: a
//! small home2 prefix on the real-socket runtime must stay clean, agree
//! with the threaded runtime's tie-insensitive totals, and survive the
//! reconnect drill (every coordinator connection dropped mid-run)
//! losslessly with at least one re-dial.
//!
//! `--multiproc` runs the home2 prefix with one OS process per server
//! (the `cx_net_server` binary) and the coordinator connecting out over
//! real TCP. With `--metrics-out <prefix>` the live registry publishes
//! `.prom` / `.json` during the run, and each server process writes
//! `<prefix>_srv<N>.json` at exit — merge the lot with `cx-obs top
//! <prefix>.json <prefix>_srv*.json`. With `--obs-out <prefix>` every
//! process stamps op phases on its own wall clock (shard-mode sinks on
//! the servers), the coordinator stitches the shards with probe-measured
//! clock offsets, and `<prefix>.report.json` / `.trace.json` (Perfetto)
//! / `.net.json` (`cx-obs net`) land next to it; ≥99% of ops must come
//! back with a server-side Executed stamp.
//!
//! `--live` runs the home2 scenario on the *threaded* runtime with the
//! metric registry publishing live: `--metrics-out <prefix>` (default
//! `target/cx_metrics`) gets a `.prom` (Prometheus text) and `.json`
//! (registry snapshot) refreshed every 500 ms while the run executes —
//! watch it with `cx-obs top <prefix>.json`.
//!
//! `--against other.json` (with the basket) compares this run's home2
//! events/sec to the best rate in another report and fails below
//! `--tolerance` (default 0.80) — the `BENCH_PR4.json` vs
//! `BENCH_PR3.json` no-regression gate in `ci.sh`.
//!
//! Usage: `perf_baseline --label after [--iters 3] [--scale 0.05]
//!         [--filter home2] [--out path.json] [--smoke]
//!         [--obs [--obs-out prefix]] [--live [--metrics-out prefix]]
//!         [--net tcp [--net-scale f] [--net-floor ops_per_sec]]
//!         [--net-smoke]
//!         [--multiproc [--metrics-out prefix] [--obs-out prefix]]
//!         [--against path.json]`

use cx_core::{
    BatchTrigger, ClusterConfig, Experiment, LiveMetrics, MetaratesMix, MetricRegistry, ObsSink,
    Phase, Protocol, RecoveryExperiment, TcpCluster, TcpOptions, TcpRunResult, ThreadedCluster,
    Workload,
};
use cx_workloads::Trace;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// One basket item's measurement. DES entries report `events` /
/// `events_per_sec`; wall-clock entries (the net modes, recovery) have no
/// simulator event counter and report `ops_per_sec` instead — the old
/// schema wrote a misleading `events: 0 / events_per_sec: 0.0` for them.
/// Serialization is hand-rolled (the workspace serde shim has no
/// `skip_serializing_if`): zero event counts and absent op rates are
/// *omitted*, and reads default every optional field, so reports from
/// either schema generation still parse for `--against`.
#[derive(Debug, Clone)]
struct Entry {
    name: String,
    wall_secs: f64,
    events: u64,
    events_per_sec: f64,
    ops_total: u64,
    /// Completed client operations per second, for entries whose unit of
    /// work is an op rather than a simulator event.
    ops_per_sec: Option<f64>,
    peak_rss_kb: Option<u64>,
}

impl Serialize for Entry {
    fn to_json(&self) -> serde::Json {
        let mut o: Vec<(String, serde::Json)> = vec![
            ("name".into(), self.name.to_json()),
            ("wall_secs".into(), self.wall_secs.to_json()),
        ];
        if self.events > 0 {
            o.push(("events".into(), self.events.to_json()));
            o.push(("events_per_sec".into(), self.events_per_sec.to_json()));
        }
        o.push(("ops_total".into(), self.ops_total.to_json()));
        if let Some(r) = self.ops_per_sec {
            o.push(("ops_per_sec".into(), r.to_json()));
        }
        if let Some(kb) = self.peak_rss_kb {
            o.push(("peak_rss_kb".into(), kb.to_json()));
        }
        serde::Json::Object(o)
    }
}

impl Deserialize for Entry {
    fn from_json(v: &serde::Json) -> Result<Self, String> {
        let serde::Json::Object(o) = v else {
            return Err("expected object for Entry".into());
        };
        let get = |k: &str| o.iter().find(|kv| kv.0 == k).map(|kv| &kv.1);
        let req = |k: &str| get(k).ok_or_else(|| format!("missing field `{k}` in Entry"));
        Ok(Entry {
            name: Deserialize::from_json(req("name")?)?,
            wall_secs: Deserialize::from_json(req("wall_secs")?)?,
            events: match get("events") {
                Some(v) => Deserialize::from_json(v)?,
                None => 0,
            },
            events_per_sec: match get("events_per_sec") {
                Some(v) => Deserialize::from_json(v)?,
                None => 0.0,
            },
            ops_total: Deserialize::from_json(req("ops_total")?)?,
            ops_per_sec: match get("ops_per_sec") {
                Some(v) => Deserialize::from_json(v)?,
                None => None,
            },
            peak_rss_kb: match get("peak_rss_kb") {
                Some(v) => Deserialize::from_json(v)?,
                None => None,
            },
        })
    }
}

/// All measurements taken under one `--label`.
#[derive(Debug, Clone)]
struct LabeledRun {
    label: String,
    iters: u32,
    /// Hardware threads available when the run was taken. Honest-labeling
    /// context for the wall-clock rates: numbers from a 1-thread box are
    /// not comparable to multi-core runs of the same basket. Absent in
    /// reports written before this field existed.
    hw_threads: Option<u32>,
    entries: Vec<Entry>,
}

impl Serialize for LabeledRun {
    fn to_json(&self) -> serde::Json {
        let mut o: Vec<(String, serde::Json)> = vec![
            ("label".into(), self.label.to_json()),
            ("iters".into(), self.iters.to_json()),
        ];
        if let Some(t) = self.hw_threads {
            o.push(("hw_threads".into(), t.to_json()));
        }
        o.push(("entries".into(), self.entries.to_json()));
        serde::Json::Object(o)
    }
}

impl Deserialize for LabeledRun {
    fn from_json(v: &serde::Json) -> Result<Self, String> {
        let serde::Json::Object(o) = v else {
            return Err("expected object for LabeledRun".into());
        };
        let get = |k: &str| o.iter().find(|kv| kv.0 == k).map(|kv| &kv.1);
        let req = |k: &str| get(k).ok_or_else(|| format!("missing field `{k}` in LabeledRun"));
        Ok(LabeledRun {
            label: Deserialize::from_json(req("label")?)?,
            iters: Deserialize::from_json(req("iters")?)?,
            hw_threads: match get("hw_threads") {
                Some(v) => Some(Deserialize::from_json(v)?),
                None => None,
            },
            entries: Deserialize::from_json(req("entries")?)?,
        })
    }
}

#[derive(Debug, Clone, Default, Serialize, Deserialize)]
struct Report {
    runs: Vec<LabeledRun>,
}

/// Best-of-N wall time for one run closure returning (events, ops_total).
/// Every entry samples peak RSS: the watermark is reset before the first
/// iteration and read after the last, so each basket item reports its own
/// high-water mark instead of inheriting an earlier item's.
fn measure(name: &str, iters: u32, mut run: impl FnMut() -> (u64, u64)) -> Entry {
    cx_bench::reset_peak_rss();
    let mut best = f64::INFINITY;
    let (mut events, mut ops_total) = (0, 0);
    for _ in 0..iters {
        let t0 = Instant::now();
        let (e, o) = run();
        let secs = t0.elapsed().as_secs_f64();
        if secs < best {
            best = secs;
        }
        (events, ops_total) = (e, o);
    }
    Entry {
        name: name.to_string(),
        wall_secs: best,
        events,
        events_per_sec: if events > 0 {
            events as f64 / best
        } else {
            0.0
        },
        ops_total,
        // Wall-clock entries that complete client ops rate those instead
        // of pretending to an event rate of zero.
        ops_per_sec: (events == 0 && ops_total > 0 && best > 0.0).then(|| ops_total as f64 / best),
        peak_rss_kb: Some(cx_bench::peak_rss_kb()).filter(|&kb| kb > 0),
    }
}

/// Golden-digest gate: the pinned home2 scenario must replay to the
/// digest `tests/determinism_and_recovery.rs` pins, through both the
/// streaming and the materialized intake. Panics (non-zero exit) on any
/// drift, so `ci.sh` catches behavioral changes before the full test
/// suite even builds.
fn smoke() {
    const GOLDEN_HOME2_DIGEST: u64 = 4_199_832_947_163_537_151;
    let e = Experiment::new(Workload::trace("home2").scale(0.005).seed(7))
        .servers(8)
        .protocol(Protocol::Cx)
        .seed(42);
    let streamed = e.run();
    assert!(streamed.is_consistent(), "smoke: streamed run inconsistent");
    assert_eq!(
        streamed.stats.digest(),
        GOLDEN_HOME2_DIGEST,
        "smoke: streamed-intake digest drifted from the golden pin"
    );
    let trace = e.workload.build(&e.cfg);
    let (stats, violations) = cx_core::run_trace(e.cfg.clone(), &trace);
    assert!(
        violations.is_empty(),
        "smoke: materialized run inconsistent"
    );
    assert_eq!(
        stats.digest(),
        GOLDEN_HOME2_DIGEST,
        "smoke: materialized-intake digest drifted from the golden pin"
    );

    // `--partitions 1` is contractually the plain single-threaded path.
    let p1 = e.run_partitioned(1);
    assert_eq!(
        p1.stats.digest(),
        GOLDEN_HOME2_DIGEST,
        "smoke: --partitions 1 digest must be bit-identical to single-threaded"
    );

    // `--partitions 2`: the parallel kernel must preserve every
    // tie-insensitive total (see DESIGN.md §8 — conflict-adjacent counters
    // are tie-sensitive and checked with tolerance in the test suite).
    let p2 = e.run_partitioned(2);
    assert!(p2.is_consistent(), "smoke: partitioned run inconsistent");
    let (a, b) = (&stats, &p2.stats);
    assert_eq!(a.ops_total, b.ops_total, "smoke: p2 ops_total drifted");
    assert_eq!(
        b.ops_applied + b.ops_failed,
        b.ops_total,
        "smoke: p2 op accounting must close"
    );
    assert_eq!(a.cross_ops, b.cross_ops, "smoke: p2 cross_ops drifted");
    assert_eq!(
        a.latency.count, b.latency.count,
        "smoke: p2 latency sample count drifted"
    );
    assert_eq!(
        a.server_stats.subops_executed, b.server_stats.subops_executed,
        "smoke: p2 sub-op total drifted"
    );
    assert_eq!(
        a.server_stats.ops_committed, b.server_stats.ops_committed,
        "smoke: p2 committed-op total drifted"
    );
    println!(
        "smoke ok: home2 digest {GOLDEN_HOME2_DIGEST} on both intakes and \
         --partitions 1; --partitions 2 totals cross-check clean"
    );
}

/// `--obs`: replay the home2 scenario once with the observability plane
/// recording and export the run as `<prefix>.report.json` (full
/// [`cx_core::ObsReport`]), `<prefix>.trace.json` (Chrome-trace-event /
/// Perfetto), and `<prefix>.jsonl` (event stream), then print the text
/// dashboard. A second, uninstrumented replay of the same configuration
/// asserts the digest is untouched — the zero-overhead-when-disabled
/// contract, checked on every `--obs` invocation.
fn obs_run(args: &cx_bench::Args) {
    let scale = args.scale(0.02);
    let servers: u32 = args.value("--servers").unwrap_or(8);
    let prefix: String = args
        .value("--obs-out")
        .unwrap_or_else(|| "target/obs_home2".into());
    let e = Experiment::new(Workload::trace("home2").scale(scale).seed(7))
        .servers(servers)
        .protocol(Protocol::Cx)
        .seed(42);
    let sink = ObsSink::recording("cx");
    let r = e.run_obs(sink.clone());
    assert!(r.is_consistent(), "obs: home2 replay inconsistent");
    let report = sink.report().expect("recording sink yields a report");
    report
        .validate()
        .expect("obs: phase accounting must sum to client latency");

    if let Some(dir) = std::path::Path::new(&prefix).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    std::fs::write(format!("{prefix}.report.json"), report.to_json()).expect("write obs report");
    std::fs::write(format!("{prefix}.trace.json"), report.to_chrome_trace())
        .expect("write obs trace");
    std::fs::write(format!("{prefix}.jsonl"), report.to_jsonl()).expect("write obs jsonl");

    println!("{}", report.render_dashboard());
    // The blame doctor's headline: where the critical-path time went.
    // `cx-obs doctor <prefix>.report.json` prints the full table.
    let blame = report.blame();
    if blame.ops > 0 {
        let total: u64 = blame.client_total.sum + blame.commit_total.sum;
        print!("top blame segments ({} ops decomposed):", blame.ops);
        for (seg, hist) in blame.top_segments().into_iter().take(3) {
            let share = if total > 0 {
                100.0 * hist.sum as f64 / total as f64
            } else {
                0.0
            };
            print!(" {}={:.1}%", seg.name(), share);
        }
        println!();
    }
    println!(
        "[obs: {prefix}.report.json | {prefix}.trace.json ({} spans, load at ui.perfetto.dev) | {prefix}.jsonl | cx-obs doctor {prefix}.report.json]",
        report.spans.len()
    );

    let plain = e.run();
    assert_eq!(
        plain.stats.digest(),
        r.stats.digest(),
        "--obs must not perturb the replay digest"
    );
    println!(
        "digest {} identical with and without --obs",
        plain.stats.digest()
    );
}

/// `--live`: run the home2 scenario on the threaded runtime with live
/// metric exposition. Client threads bump the registry as ops complete;
/// a monitor thread refreshes `<prefix>.prom` / `<prefix>.json` every
/// 500 ms (`cx-obs top <prefix>.json` renders the latter); engines fold
/// their protocol series in at stop. Prints the final snapshot's top
/// view and where the files landed.
fn live_run(args: &cx_bench::Args) {
    let scale = args.scale(0.02);
    let servers: u32 = args.value("--servers").unwrap_or(8);
    let prefix: String = args
        .value("--metrics-out")
        .unwrap_or_else(|| "target/cx_metrics".into());
    let e = Experiment::new(Workload::trace("home2").scale(scale).seed(7))
        .servers(servers)
        .protocol(Protocol::Cx)
        .seed(42);
    if let Some(dir) = std::path::Path::new(&prefix).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    let mut live = LiveMetrics::new(MetricRegistry::new());
    live.out = Some(std::path::PathBuf::from(&prefix));
    let registry = live.registry.clone();
    let st = e.workload.stream(&e.cfg);
    let r = ThreadedCluster::run_stream_live(e.cfg.clone(), st, ObsSink::Off, live);
    assert!(r.violations.is_empty(), "--live: home2 run inconsistent");
    let snap = registry.snapshot();
    println!("{}", snap.render_top());
    assert_eq!(
        snap.value("cx_ops_issued_total"),
        Some(r.stats.ops_total),
        "--live: registry ops_issued must match RunStats"
    );
    println!(
        "[live metrics: {prefix}.prom (Prometheus text) | {prefix}.json \
         (watch with: cx-obs top {prefix}.json)]"
    );
}

/// Wall-clock-safe triggers for the real-socket runtime: the default
/// batch trigger is ~10 *virtual* seconds, which a wall-clock runtime
/// would serve as an actual ten-second stall per batch. Same idiom as
/// the threaded runtime's tests.
fn wall_clock(mut cfg: ClusterConfig) -> ClusterConfig {
    cfg.cx.trigger = BatchTrigger::Timeout {
        period_ns: 5_000_000, // 5 ms
    };
    cfg.cx.hint_mismatch_timeout_ns = 20_000_000;
    cfg
}

/// The home2 prefix the net modes share, on a wall-clock-safe config.
fn net_scenario(servers: u32, scale: f64) -> (ClusterConfig, Trace) {
    let mut cfg = ClusterConfig::new(servers, Protocol::Cx);
    cfg.seed = 42;
    let cfg = wall_clock(cfg);
    let trace = Workload::trace("home2").scale(scale).seed(7).build(&cfg);
    (cfg, trace)
}

/// Spawn one `cx_net_server` OS process per server (the binary sits next
/// to this one in the target dir), wait for each `LISTEN <addr>` line,
/// drive the run as the external coordinator, then reap the children —
/// they exit on their own after answering `Stop`.
fn run_multiproc(
    cfg: &ClusterConfig,
    trace: &Trace,
    opts: TcpOptions,
    server_obs: bool,
    server_metrics: Option<&str>,
) -> TcpRunResult {
    let bin = std::env::current_exe()
        .ok()
        .and_then(|p| p.parent().map(|d| d.join("cx_net_server")))
        .expect("cx_net_server sits next to perf_baseline");
    let _ = std::fs::create_dir_all("target");
    let mut children = Vec::new();
    let mut addrs = Vec::new();
    for s in 0..cfg.servers {
        let path = format!("target/cx_net_server_{s}.json");
        let nsc = cx_bench::NetServerConfig {
            cfg: cfg.clone(),
            me: s,
            seeds: trace.seeds.clone(),
            obs: server_obs,
            metrics_out: server_metrics.map(|p| format!("{p}_srv{s}")),
        };
        std::fs::write(
            &path,
            serde_json::to_string(&nsc).expect("config serializes"),
        )
        .unwrap_or_else(|e| panic!("write {path}: {e}"));
        let mut child = std::process::Command::new(&bin)
            .arg("--config")
            .arg(&path)
            .stdout(std::process::Stdio::piped())
            .spawn()
            .unwrap_or_else(|e| panic!("spawn {}: {e}", bin.display()));
        let mut line = String::new();
        std::io::BufRead::read_line(
            &mut std::io::BufReader::new(child.stdout.take().expect("stdout piped")),
            &mut line,
        )
        .expect("read LISTEN line");
        let addr = line
            .strip_prefix("LISTEN ")
            .unwrap_or_else(|| panic!("server {s}: expected `LISTEN <addr>`, got {line:?}"))
            .trim()
            .parse()
            .expect("socket addr parses");
        addrs.push(addr);
        children.push(child);
    }
    let r = TcpCluster::run_external(cfg.clone(), trace.to_stream(), &addrs, opts);
    for (s, mut child) in children.into_iter().enumerate() {
        let status = child.wait().expect("wait for server process");
        assert!(status.success(), "server process {s} exited with {status}");
    }
    r
}

/// `--net-smoke`: the loopback-TCP CI gate. A small home2 prefix on the
/// real-socket runtime must (a) stay atomicity-clean, (b) finish every
/// op, (c) agree with the threaded runtime on the tie-insensitive totals
/// (`ops_total`, `cross_ops`, the applied+failed closure), and (d)
/// survive the reconnect drill — every coordinator connection dropped
/// mid-run — losslessly, with at least one re-dial.
fn net_smoke(args: &cx_bench::Args) {
    let scale = args.scale(0.0005);
    let servers: u32 = args.value("--servers").unwrap_or(4);
    let (cfg, trace) = net_scenario(servers, scale);

    let tcp = TcpCluster::run(cfg.clone(), &trace);
    assert!(tcp.violations.is_empty(), "net smoke: TCP run inconsistent");
    assert_eq!(
        tcp.stats.ops_total,
        trace.ops.len() as u64,
        "net smoke: ops lost on the wire"
    );
    assert_eq!(
        tcp.stats.ops_applied + tcp.stats.ops_failed,
        tcp.stats.ops_total,
        "net smoke: op accounting must close"
    );

    let thr = ThreadedCluster::run(cfg.clone(), &trace);
    assert_eq!(
        tcp.stats.ops_total, thr.stats.ops_total,
        "net smoke: ops_total drifted vs threaded"
    );
    assert_eq!(
        tcp.stats.cross_ops, thr.stats.cross_ops,
        "net smoke: cross_ops drifted vs threaded"
    );

    let opts = TcpOptions {
        drop_conns_after_ops: Some(trace.ops.len() as u64 / 4),
        ..TcpOptions::default()
    };
    let drill = TcpCluster::run_stream_opts(cfg, trace.to_stream(), opts);
    assert!(
        drill.violations.is_empty(),
        "net smoke: reconnect run inconsistent"
    );
    assert!(
        drill.reconnects >= 1,
        "net smoke: drill must force a re-dial"
    );
    assert_eq!(
        drill.stats.ops_total,
        trace.ops.len() as u64,
        "net smoke: reconnect lost ops"
    );
    println!(
        "net smoke ok: {} ops over loopback TCP ({} server + {} client frames), \
         totals match threaded; reconnect drill re-dialed {}x and stayed lossless",
        tcp.stats.ops_total, tcp.stats.server_msgs, tcp.stats.client_msgs, drill.reconnects
    );
}

/// `--multiproc`: one OS process per server (`cx_net_server`), the
/// coordinator connecting out over real TCP — the smallest honest
/// deployment shape. With `--metrics-out <prefix>` the live registry
/// publishes `.prom` / `.json` while the run executes, which makes the
/// exposition a genuine cross-process ops surface instead of a
/// same-process convenience.
fn multiproc_run(args: &cx_bench::Args) {
    let scale = args.scale(0.002);
    let servers: u32 = args.value("--servers").unwrap_or(4);
    let (cfg, trace) = net_scenario(servers, scale);
    let mut opts = TcpOptions::default();
    let live_out = args.value::<String>("--metrics-out").map(|prefix| {
        if let Some(dir) = std::path::Path::new(&prefix).parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        let mut live = LiveMetrics::new(MetricRegistry::new());
        live.out = Some(std::path::PathBuf::from(&prefix));
        let registry = live.registry.clone();
        opts.live = Some(live);
        (prefix, registry)
    });
    // `--obs-out <prefix>`: wall-clock tracing across every process. The
    // coordinator records; each server runs a shard-mode sink and ships
    // its stamps back in `StopResp` for offset-corrected stitching.
    let obs_prefix: Option<String> = args.value("--obs-out");
    let sink = ObsSink::recording("cx");
    if obs_prefix.is_some() {
        opts.obs = sink.clone();
        opts.net.record_flush_spans = true;
    }

    let t0 = Instant::now();
    let r = run_multiproc(
        &cfg,
        &trace,
        opts,
        obs_prefix.is_some(),
        live_out.as_ref().map(|(p, _)| p.as_str()),
    );
    let wall = t0.elapsed().as_secs_f64();
    assert!(r.violations.is_empty(), "--multiproc: run inconsistent");
    assert_eq!(
        r.stats.ops_total,
        trace.ops.len() as u64,
        "--multiproc: ops lost on the wire"
    );
    assert_eq!(
        r.stats.ops_applied + r.stats.ops_failed,
        r.stats.ops_total,
        "--multiproc: op accounting must close"
    );
    println!(
        "multiproc ok: {} ops across {} server processes in {wall:.2}s \
         ({:.0} ops/s on one box), {} server + {} client frames",
        r.stats.ops_total,
        cfg.servers,
        r.stats.ops_total as f64 / wall,
        r.stats.server_msgs,
        r.stats.client_msgs,
    );
    if let Some((prefix, registry)) = live_out {
        let snap = registry.snapshot();
        assert_eq!(
            snap.value("cx_ops_issued_total"),
            Some(r.stats.ops_total),
            "--multiproc: registry ops_issued must match RunStats"
        );
        println!(
            "[live metrics: {prefix}.prom (Prometheus text) | {prefix}.json \
             (merge all processes with: cx-obs top {prefix}.json {prefix}_srv*.json)]"
        );
    }
    if let Some(prefix) = obs_prefix {
        if let Some(dir) = std::path::Path::new(&prefix).parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        let mut report = sink.report().expect("recording sink yields a report");
        report.flushes = r.telem.flush_spans.clone();
        report
            .validate()
            .expect("--multiproc --obs-out: phase accounting must hold on stitched spans");
        let stitched = report
            .spans
            .iter()
            .filter(|s| s.at(Phase::Executed).is_some())
            .count();
        assert!(
            stitched * 100 >= report.spans.len() * 99,
            "--multiproc --obs-out: only {stitched}/{} spans stitched a server-side \
             Executed stamp",
            report.spans.len()
        );
        std::fs::write(format!("{prefix}.report.json"), report.to_json())
            .expect("write multiproc obs report");
        std::fs::write(format!("{prefix}.trace.json"), report.to_chrome_trace())
            .expect("write multiproc obs trace");
        std::fs::write(format!("{prefix}.net.json"), r.net.to_json())
            .expect("write multiproc net table");
        println!(
            "stitched {stitched}/{} spans across {} server processes \
             (offsets: {})",
            report.spans.len(),
            cfg.servers,
            r.health
                .iter()
                .map(|(n, h)| format!("{n} {:+}ns", h.clock_offset_ns))
                .collect::<Vec<_>>()
                .join(", "),
        );
        println!(
            "[obs: {prefix}.report.json | {prefix}.trace.json (load at ui.perfetto.dev) \
             | {prefix}.net.json (render with: cx-obs net {prefix}.net.json)]"
        );
    }
}

/// `--against <report.json>`: compare this run's home2 events/sec with
/// the best home2 rate in a previous report (any label). Exits non-zero
/// below `--tolerance` (default 0.80 — best-of-N on shared CI hardware
/// jitters, and real regressions from accidental instrumentation on the
/// hot path are far larger than 20%).
fn check_against(report: &Report, label: &str, baseline_path: &str, tolerance: f64) {
    let home2 = |r: &LabeledRun| {
        r.entries
            .iter()
            .find(|e| e.name == "home2_replay_8s")
            .map(|e| e.events_per_sec)
    };
    let baseline: Report = serde_json::from_str(
        &std::fs::read_to_string(baseline_path)
            .unwrap_or_else(|e| panic!("--against {baseline_path}: {e}")),
    )
    .unwrap_or_else(|e| panic!("--against {baseline_path}: bad report: {e:?}"));
    let best = baseline
        .runs
        .iter()
        .filter_map(home2)
        .fold(0.0f64, f64::max);
    let cur = report
        .runs
        .iter()
        .find(|r| r.label == label)
        .and_then(home2)
        .unwrap_or(0.0);
    if best <= 0.0 || cur <= 0.0 {
        println!("--against: no home2_replay_8s entry on one side, skipping comparison");
        return;
    }
    let ratio = cur / best;
    println!(
        "home2 events/sec vs {baseline_path}: {cur:.0} / {best:.0} = {ratio:.2}x \
         (tolerance {tolerance:.2})"
    );
    assert!(
        ratio >= tolerance,
        "throughput regression: {ratio:.2}x of the {baseline_path} baseline \
         is below the {tolerance:.2} floor"
    );
}

/// Print an in-run comparison of this run's entries against the most
/// recent *other* `BENCH_PR*.json` in the report directory, so drift is
/// visible the moment the basket finishes instead of only when the
/// `ci.sh` gate fires. Best-effort: silently skips when no previous
/// report exists.
fn print_previous_comparison(entries: &[Entry], out: &str) {
    let out_path = std::path::Path::new(out);
    // `parent()` of a bare filename is `Some("")`, which read_dir rejects.
    let dir = match out_path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => std::path::Path::new("."),
    };
    let mut candidates: Vec<std::path::PathBuf> = std::fs::read_dir(dir)
        .map(|rd| {
            rd.filter_map(|e| e.ok().map(|e| e.path()))
                .filter(|p| {
                    let name = p.file_name().and_then(|n| n.to_str()).unwrap_or("");
                    name.starts_with("BENCH_PR")
                        && name.ends_with(".json")
                        && p.file_name() != out_path.file_name()
                })
                .collect()
        })
        .unwrap_or_default();
    // Lexicographic sort puts the highest PR number last for single-digit
    // PRs; good enough for a human-facing drift hint.
    candidates.sort();
    let Some(prev_path) = candidates.pop() else {
        return;
    };
    let Some(prev) = std::fs::read_to_string(&prev_path)
        .ok()
        .and_then(|s| serde_json::from_str::<Report>(&s).ok())
    else {
        return;
    };
    // Per entry name, the best rate any labeled run in the previous
    // report achieved (matches the `--against` gate's view).
    let prev_best = |name: &str| {
        prev.runs
            .iter()
            .flat_map(|r| &r.entries)
            .filter(|e| e.name == name && e.events_per_sec > 0.0)
            .map(|e| e.events_per_sec)
            .fold(f64::NAN, f64::max)
    };
    let rows: Vec<Vec<String>> = entries
        .iter()
        .filter(|e| e.events_per_sec > 0.0)
        .filter_map(|e| {
            let best = prev_best(&e.name);
            best.is_finite().then(|| {
                vec![
                    e.name.clone(),
                    format!("{:.0}", best),
                    format!("{:.0}", e.events_per_sec),
                    format!("{:.2}x", e.events_per_sec / best),
                ]
            })
        })
        .collect();
    if rows.is_empty() {
        return;
    }
    println!("\nvs {} (best of its runs):", prev_path.display());
    cx_bench::print_table(&["item", "prev ev/s", "now ev/s", "ratio"], &rows);
}

fn main() {
    let args = cx_bench::Args::parse();
    if args.flag("--smoke") {
        smoke();
        return;
    }
    if args.flag("--obs") {
        obs_run(&args);
        return;
    }
    if args.flag("--live") {
        live_run(&args);
        return;
    }
    if args.flag("--net-smoke") {
        net_smoke(&args);
        return;
    }
    if args.flag("--multiproc") {
        multiproc_run(&args);
        return;
    }
    let label: String = args.value("--label").unwrap_or_else(|| "current".into());
    // At least one iteration, or best-of-N is `inf` and the JSON row is junk.
    let iters: u32 = args.value("--iters").unwrap_or(3).max(1);
    let scale = args.scale(0.05);
    let filter: Option<String> = args.value("--filter");
    let out: String = args
        .value("--out")
        .unwrap_or_else(|| concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_PR10.json").into());
    let wants = |name: &str| filter.as_deref().is_none_or(|f| name.contains(f));

    let mut entries = Vec::new();

    // Traces are built once, outside the timed region: the basket measures
    // the DES hot path (event queue, protocol engines, WAL, disk model),
    // not workload generation.
    if wants("home2_replay_8s") {
        let e = Experiment::new(Workload::trace("home2").scale(scale))
            .servers(8)
            .protocol(Protocol::Cx);
        let trace = e.workload.build(&e.cfg);
        entries.push(measure("home2_replay_8s", iters, || {
            let (stats, violations) = cx_core::run_trace(e.cfg.clone(), &trace);
            assert!(violations.is_empty(), "home2 replay must stay consistent");
            (stats.events, stats.ops_total)
        }));
    }

    // `--partitions N`: measure the partitioned (parallel) kernel against
    // the single-threaded one on the same intake. Both sides stream the
    // workload (generation interleaves with the replay identically), so
    // the pN/p1 ratio isolates the kernel, not the intake.
    if let Some(parts) = args.value::<u32>("--partitions") {
        let e = Experiment::new(Workload::trace("home2").scale(scale))
            .servers(8)
            .protocol(Protocol::Cx);
        for n in [1, parts] {
            let name = format!("home2_replay_8s_p{n}");
            if !wants(&name) {
                continue;
            }
            entries.push(measure(&name, iters, || {
                let r = e.run_partitioned(n);
                assert!(r.is_consistent(), "partitioned home2 replay dirty");
                (r.stats.events, r.stats.ops_total)
            }));
        }
        let rate_of = |suffix: &str| {
            entries
                .iter()
                .find(|en| en.name == format!("home2_replay_8s_p{suffix}"))
                .map(|en| en.events_per_sec)
        };
        if let (Some(p1), Some(pn)) = (rate_of("1"), rate_of(&parts.to_string())) {
            println!(
                "home2 partitioned speedup: p{parts} {:.0} ev/s vs p1 {:.0} ev/s = {:.2}x \
                 ({} hardware threads available)",
                pn,
                p1,
                pn / p1,
                std::thread::available_parallelism().map_or(1, |n| n.get())
            );
        }
    }

    if wants("metarates_update_8s") {
        let e = Experiment::new(Workload::metarates(MetaratesMix::UpdateDominated))
            .servers(8)
            .protocol(Protocol::Cx);
        let trace = e.workload.build(&e.cfg);
        entries.push(measure("metarates_update_8s", iters, || {
            let (stats, violations) = cx_core::run_trace(e.cfg.clone(), &trace);
            assert!(violations.is_empty(), "metarates must stay consistent");
            (stats.events, stats.ops_total)
        }));
    }

    // The full-scale pair measures the end-to-end pipeline (generation +
    // replay), one pass each, with the peak-RSS watermark reset before
    // every entry. The streamed entry runs first so the materialized
    // trace's footprint cannot inflate its high-water mark.
    if wants("lair62b_full_replay") || wants("lair62b_full_replay_materialized") {
        let e = Experiment::new(Workload::trace("lair62b"))
            .servers(8)
            .protocol(Protocol::Cx);
        if wants("lair62b_full_replay") {
            entries.push(measure("lair62b_full_replay", 1, || {
                let r = e.run();
                assert!(r.is_consistent(), "lair62b streamed replay dirty");
                (r.stats.events, r.stats.ops_total)
            }));
        }
        if wants("lair62b_full_replay_materialized") {
            entries.push(measure("lair62b_full_replay_materialized", 1, || {
                let trace = e.workload.build(&e.cfg);
                let (stats, violations) = cx_core::run_trace(e.cfg.clone(), &trace);
                assert!(violations.is_empty(), "lair62b materialized replay dirty");
                (stats.events, stats.ops_total)
            }));
        }
    }

    // `--net tcp`: the home2 prefix on the real-socket runtime, loopback
    // (server threads in this process) and multi-process (one OS process
    // per server). Wall-clock-only entries — the wire plane has no
    // simulator event counter — at their own default scale: synchronous
    // clients over real sockets are orders of magnitude slower per op
    // than the DES, and these entries measure wire-plane overhead on ONE
    // box (every server shares this machine's cores), not cluster
    // capacity.
    if args.value::<String>("--net").as_deref() == Some("tcp") {
        let net_scale = args.value("--net-scale").unwrap_or(0.002);
        let (net_cfg, net_trace) = net_scenario(8, net_scale);
        // Wire-tuning sweep knobs (the EXPERIMENTS.md NetTuning table is
        // produced with these): override the default cork deadline/size.
        let cork_ns: Option<u64> = args.value("--cork-ns");
        let cork_bytes: Option<usize> = args.value("--cork-bytes");
        let client_threads: Option<usize> = args.value("--client-threads");
        let net_opts = move || {
            let mut o = TcpOptions::default();
            if let Some(ns) = cork_ns {
                o.net.tuning.cork_deadline_ns = ns;
            }
            if let Some(b) = cork_bytes {
                o.net.tuning.cork_bytes = b;
            }
            if let Some(t) = client_threads {
                o.client_threads = t;
            }
            o
        };
        if wants("home2_tcp_loopback_8s") {
            let wire = std::cell::Cell::new(cx_core::WireTotals::default());
            entries.push(measure("home2_tcp_loopback_8s", iters, || {
                let r =
                    TcpCluster::run_stream_opts(net_cfg.clone(), net_trace.to_stream(), net_opts());
                assert!(r.violations.is_empty(), "tcp loopback replay dirty");
                wire.set(r.wire);
                (0, r.stats.ops_total)
            }));
            let w = wire.get();
            if w.flushes > 0 {
                println!(
                    "loopback wire: {} frames in {} flushes ({:.1} frames/flush), {} bytes",
                    w.frames,
                    w.flushes,
                    w.frames as f64 / w.flushes as f64,
                    w.bytes
                );
            }
        }
        if wants("home2_tcp_loopback_8s_obs") {
            // The same loopback entry with the full tracing plane on —
            // recording sink on every engine, flush-span capture in the
            // wire queues. `--net-floor` holds this within 5% of the
            // uninstrumented floor: tracing must be cheap enough to leave
            // on.
            entries.push(measure("home2_tcp_loopback_8s_obs", iters, || {
                let mut o = net_opts();
                o.obs = ObsSink::recording("cx");
                o.net.record_flush_spans = true;
                let r = TcpCluster::run_stream_opts(net_cfg.clone(), net_trace.to_stream(), o);
                assert!(r.violations.is_empty(), "tcp loopback obs replay dirty");
                (0, r.stats.ops_total)
            }));
        }
        if wants("home2_tcp_multiproc_8s") {
            entries.push(measure("home2_tcp_multiproc_8s", 1, || {
                let r = run_multiproc(&net_cfg, &net_trace, TcpOptions::default(), false, None);
                assert!(r.violations.is_empty(), "tcp multiproc replay dirty");
                (0, r.stats.ops_total)
            }));
        }
        println!(
            "net entries: single-box wall-clock (all {} servers + clients share \
             this machine); compare tcp entries to each other, not to DES rates",
            net_cfg.servers
        );
    }

    if wants("table5_recovery_160kb") {
        entries.push(measure("table5_recovery_160kb", iters, || {
            let row = RecoveryExperiment {
                servers: 8,
                trace_scale: 0.02,
                detection_ms: 200,
                reboot_ms: 100,
                ..Default::default()
            }
            .with_target(160 << 10)
            .run()
            .expect("160 KB of valid records accumulates");
            assert!(row.recovery_secs > 0.0);
            (0, 0)
        }));
    }

    cx_bench::print_table(
        &[
            "item",
            "wall s",
            "events",
            "events/s",
            "ops",
            "ops/s",
            "peak RSS KiB",
        ],
        &entries
            .iter()
            .map(|e| {
                vec![
                    e.name.clone(),
                    format!("{:.3}", e.wall_secs),
                    e.events.to_string(),
                    format!("{:.0}", e.events_per_sec),
                    e.ops_total.to_string(),
                    match e.ops_per_sec {
                        Some(r) => format!("{r:.0}"),
                        None => "-".into(),
                    },
                    match e.peak_rss_kb {
                        Some(kb) => kb.to_string(),
                        None => "-".into(),
                    },
                ]
            })
            .collect::<Vec<_>>(),
    );

    print_previous_comparison(&entries, &out);

    // Merge into the tracked report: replace any prior run with this label.
    let mut report: Report = std::fs::read_to_string(&out)
        .ok()
        .and_then(|s| serde_json::from_str(&s).ok())
        .unwrap_or_default();
    report.runs.retain(|r| r.label != label);
    report.runs.push(LabeledRun {
        label: label.clone(),
        iters,
        hw_threads: std::thread::available_parallelism()
            .ok()
            .map(|n| n.get() as u32),
        entries,
    });

    // Report the headline speedup whenever both sides are present.
    let rate = |lbl: &str| {
        report
            .runs
            .iter()
            .find(|r| r.label == lbl)
            .and_then(|r| r.entries.iter().find(|e| e.name == "home2_replay_8s"))
            .map(|e| e.events_per_sec)
    };
    if let (Some(before), Some(after)) = (rate("before"), rate("after")) {
        println!(
            "\nhome2 events/sec: before {:.0} -> after {:.0} ({:.2}x)",
            before,
            after,
            after / before
        );
    }

    // And the memory headline: streamed vs materialized full-scale RSS.
    let rss = |name: &str| {
        report
            .runs
            .iter()
            .find(|r| r.label == label)
            .and_then(|r| r.entries.iter().find(|e| e.name == name))
            .and_then(|e| e.peak_rss_kb)
            .filter(|&kb| kb > 0)
    };
    if let (Some(st), Some(mat)) = (
        rss("lair62b_full_replay"),
        rss("lair62b_full_replay_materialized"),
    ) {
        println!(
            "lair62b peak RSS: streamed {} KiB vs materialized {} KiB ({:.1}x lower)",
            st,
            mat,
            mat as f64 / st as f64
        );
    }

    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out, json + "\n").expect("write benchmark report");
    println!("[json: {out}]  (label: {label})");

    if let Some(baseline_path) = args.value::<String>("--against") {
        let tolerance: f64 = args.value("--tolerance").unwrap_or(0.80);
        check_against(&report, &label, &baseline_path, tolerance);
    }

    // `--net-floor <ops/s>`: hard throughput gate on the loopback TCP
    // entry — the wire plane must beat a pinned ops/s on this box. The
    // instrumented entry, when present, gets 95% of the same floor: the
    // telemetry-overhead gate.
    if let Some(floor) = args.value::<f64>("--net-floor") {
        let entry_rate = |name: &str| {
            report
                .runs
                .iter()
                .find(|r| r.label == label)
                .and_then(|r| r.entries.iter().find(|e| e.name == name))
                .and_then(|e| e.ops_per_sec)
        };
        let cur = entry_rate("home2_tcp_loopback_8s").unwrap_or(0.0);
        println!("net floor: home2_tcp_loopback_8s {cur:.0} ops/s vs floor {floor:.0}");
        assert!(
            cur >= floor,
            "wire-plane throughput regression: {cur:.0} ops/s is below the \
             {floor:.0} ops/s floor (single-box loopback)"
        );
        if let Some(obs_rate) = entry_rate("home2_tcp_loopback_8s_obs") {
            let obs_floor = floor * 0.95;
            println!(
                "net floor: home2_tcp_loopback_8s_obs {obs_rate:.0} ops/s vs floor \
                 {obs_floor:.0} (spans + flush telemetry on)"
            );
            assert!(
                obs_rate >= obs_floor,
                "telemetry overhead regression: {obs_rate:.0} ops/s with tracing on \
                 is below {obs_floor:.0} (95% of the {floor:.0} floor)"
            );
        }
    }
}
