//! Figure 6: benchmark-driven evaluation — aggregated Metarates throughput
//! as the cluster scales, for the update-dominated (80% updates) and
//! read-dominated (20% updates) mixes.
//!
//!     cargo run --release -p cx-bench --bin figure6_metarates_scaling [--ops n] [--max-servers n]
//!
//! Paper shape: OFS-Cx scales to 32 servers and gains ≥70% over OFS on
//! update-dominated runs (82% at 8 servers) and ≥40% on read-dominated
//! runs; OFS-batched sits between.

use cx_bench::{gain, print_table, write_json, Args};
use cx_core::{Experiment, HistSummary, MetaratesMix, Protocol, Workload};
use serde::Serialize;

#[derive(Serialize)]
struct Point {
    mix: &'static str,
    servers: u32,
    ofs: f64,
    batched: f64,
    cx: f64,
    cx_gain_pct: f64,
    /// Client-visible latency quantiles under Cx (p50/p90/p99/p99.9 from
    /// the always-on histogram; mean kept for paper-parity).
    cx_latency: HistSummary,
    /// Conflicts per cross-server op under Cx at this cluster size.
    conflict_pct_cross: f64,
}

fn main() {
    let args = Args::parse();
    let ops: u32 = args.value("--ops").unwrap_or(50);
    let max_servers: u32 = args.value("--max-servers").unwrap_or(32);
    let sizes: Vec<u32> = [4u32, 8, 16, 32]
        .into_iter()
        .filter(|s| *s <= max_servers)
        .collect();
    println!(
        "Figure 6 — Metarates aggregated throughput (clients = 4×servers,\n\
         8 processes per client, {ops} ops per process)\n"
    );

    let mut points = Vec::new();
    for mix in [MetaratesMix::UpdateDominated, MetaratesMix::ReadDominated] {
        let mix_points: Vec<Point> = cx_bench::par_map(&sizes, |&servers| {
            let run = |protocol| {
                let r = Experiment::new(Workload::Metarates {
                    mix,
                    ops_per_proc: ops,
                    files_per_server: 2_000,
                })
                .servers(servers)
                .protocol(protocol)
                .run();
                assert!(r.is_consistent(), "{mix:?}/{servers}/{protocol:?}");
                (
                    r.stats.throughput(),
                    r.stats.latency_hist.summary(),
                    r.stats.cross_conflict_ratio(),
                )
            };
            let ((se, _, _), (ba, _, _), (cx, cx_lat, cx_confl)) = (
                run(Protocol::Se),
                run(Protocol::SeBatched),
                run(Protocol::Cx),
            );
            Point {
                mix: mix.name(),
                servers,
                ofs: se,
                batched: ba,
                cx,
                cx_gain_pct: gain(se, cx),
                cx_latency: cx_lat,
                conflict_pct_cross: cx_confl * 100.0,
            }
        });
        println!("--- {} runs ---", mix.name());
        print_table(
            &[
                "servers",
                "OFS op/s",
                "OFS-batched op/s",
                "OFS-Cx op/s",
                "Cx gain",
                "Cx lat mean",
                "Cx p50",
                "Cx p90",
                "Cx p99",
                "Cx p99.9",
                "confl%/cross",
            ],
            &mix_points
                .iter()
                .map(|p| {
                    vec![
                        p.servers.to_string(),
                        format!("{:.0}", p.ofs),
                        format!("{:.0}", p.batched),
                        format!("{:.0}", p.cx),
                        format!("+{:.0}%", p.cx_gain_pct),
                        cx_core::fmt_ns_f(p.cx_latency.mean_ns),
                        HistSummary::fmt_ns(p.cx_latency.p50_ns),
                        HistSummary::fmt_ns(p.cx_latency.p90_ns),
                        HistSummary::fmt_ns(p.cx_latency.p99_ns),
                        HistSummary::fmt_ns(p.cx_latency.p999_ns),
                        format!("{:.2}%", p.conflict_pct_cross),
                    ]
                })
                .collect::<Vec<_>>(),
        );
        println!();
        points.extend(mix_points);
    }

    println!(
        "paper: Cx gains ≥70% (update-dominated, 82% at 8 servers) and ≥40%\n\
         (read-dominated) while \"the aggregated throughput of OFS-Cx scales\n\
         well when increasing the number of servers up to 32\"."
    );
    write_json("figure6_metarates_scaling", &points);
}
