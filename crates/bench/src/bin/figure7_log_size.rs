//! Figure 7: sensitivity to the log size.
//!
//! (a) throughput relative to OFS as a function of the log's upper limit —
//!     a small log fills, blocks new arrivals and forces commitments;
//! (b) total valid-record volume over time with an unlimited log — rises
//!     for ~the first trigger period, peaks, then drops at every lazy
//!     commitment (the paper saw a ~600 KB peak with 10 s drops on home2).
//!
//!     cargo run --release -p cx-bench --bin figure7_log_size [--scale f|--full]

use cx_bench::{print_table, write_json, Args};
use cx_core::{BatchTrigger, Experiment, Protocol, Workload, DUR_MS};
use serde::Serialize;

#[derive(Serialize)]
struct LimitPoint {
    limit_kb: Option<u64>,
    replay_secs: f64,
    vs_ofs_pct: f64,
    log_full_blocks: u64,
}

#[derive(Serialize)]
struct Out {
    limits: Vec<LimitPoint>,
    timeline: Vec<(f64, u64, u64)>,
}

fn main() {
    let args = Args::parse();
    let scale = args.scale(0.04);
    // The trigger period is scaled with the workload so several lazy
    // commitment cycles land inside the replay, like the paper's 10 s
    // timeout inside a minutes-long replay.
    let period_ns = args.value("--period-ms").unwrap_or(400u64) * DUR_MS;
    println!("Figure 7 — log-size sensitivity (home2, 8 servers, scale {scale})\n");

    let workload = || Workload::trace("home2").scale(scale);
    let ofs = Experiment::new(workload())
        .servers(8)
        .protocol(Protocol::Se)
        .run();
    assert!(ofs.is_consistent());
    let ofs_secs = ofs.stats.replay_secs();

    // (a) limit sweep
    let limits: Vec<Option<u64>> = vec![
        Some(16 << 10),
        Some(64 << 10),
        Some(256 << 10),
        Some(1 << 20),
        None,
    ];
    let points: Vec<LimitPoint> = cx_bench::par_map(&limits, |limit| {
        let r = Experiment::new(workload())
            .servers(8)
            .protocol(Protocol::Cx)
            .log_limit(*limit)
            .trigger(BatchTrigger::Timeout { period_ns })
            .run();
        assert!(r.is_consistent());
        LimitPoint {
            limit_kb: limit.map(|b| b >> 10),
            replay_secs: r.stats.replay_secs(),
            vs_ofs_pct: (1.0 - r.stats.replay_secs() / ofs_secs) * 100.0,
            log_full_blocks: r.stats.server_stats.log_full_blocks,
        }
    });

    println!("(a) impact of the log upper-limit    [OFS baseline: {ofs_secs:.3} s]");
    print_table(
        &["log limit", "Cx replay (s)", "vs OFS", "blocked-on-log"],
        &points
            .iter()
            .map(|p| {
                vec![
                    p.limit_kb
                        .map(|kb| format!("{kb} KB"))
                        .unwrap_or_else(|| "unlimited".into()),
                    format!("{:.3}", p.replay_secs),
                    format!("+{:.0}%", p.vs_ofs_pct),
                    p.log_full_blocks.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );

    // (b) valid-record timeline with an unlimited log
    let r = Experiment::new(workload())
        .servers(8)
        .protocol(Protocol::Cx)
        .log_limit(None)
        .trigger(BatchTrigger::Timeout { period_ns })
        .run();
    assert!(r.is_consistent());
    println!(
        "\n(b) valid-records' size over time (unlimited log, {} ms trigger)",
        period_ns / DUR_MS
    );
    println!(
        "    peak on the busiest server: {} KB",
        r.stats.peak_valid_bytes >> 10
    );
    let timeline: Vec<(f64, u64, u64)> = r
        .stats
        .timeline
        .iter()
        .map(|s| (s.at_secs, s.mean_bytes, s.max_bytes))
        .collect();
    for s in timeline.iter().step_by((timeline.len() / 24).max(1)) {
        let bar = "#".repeat(((s.1 >> 10) as usize).min(70));
        println!("    {:>7.2}s {:>6} KB |{}", s.0, s.1 >> 10, bar);
    }
    println!(
        "\npaper: larger logs help (pruning pressure blocks requests);\n\
         valid records climb during the first trigger period, peak, and\n\
         drop at every batched commitment."
    );
    write_json(
        "figure7_log_size",
        &Out {
            limits: points,
            timeline,
        },
    );
}
