//! Figure 5: trace-driven evaluation — replay time of the six traces
//! under OFS, OFS-batched, and OFS-Cx on 8 metadata servers.
//!
//!     cargo run --release -p cx-bench --bin figure5_trace_replay [--scale f|--full] [--servers n]
//!
//! Paper shape: OFS-Cx speeds up every trace by ≥38% (s3d by >50%,
//! tracking its ~48% cross-server share); OFS-batched improves ≥15%; Cx
//! beats OFS-batched by ≥16%.

use cx_bench::{improvement, print_table, write_json, Args};
use cx_core::{Experiment, HistSummary, Protocol, Workload, PROFILES};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    trace: &'static str,
    ops: u64,
    cross_share: f64,
    ofs_secs: f64,
    batched_secs: f64,
    cx_secs: f64,
    cx_vs_ofs_pct: f64,
    batched_vs_ofs_pct: f64,
    cx_vs_batched_pct: f64,
    /// Client-visible latency quantiles under Cx (mean kept for
    /// paper-parity; p50/p90/p99/p99.9 come from the always-on histogram).
    cx_latency: HistSummary,
    ofs_latency: HistSummary,
    /// Conflicts over *all* ops — Table II's denominator (<4% claim).
    conflict_pct_all: f64,
    /// Conflicts over cross-server ops only: how often a concurrent
    /// execution actually collides, the rate that matters for Cx's
    /// immediate-commitment fallback.
    conflict_pct_cross: f64,
}

fn main() {
    let args = Args::parse();
    let scale = args.scale(0.03);
    let servers: u32 = args.value("--servers").unwrap_or(8);
    println!("Figure 5 — trace replay times ({servers} servers, scale {scale})\n");

    let rows: Vec<Row> = cx_bench::par_map(&PROFILES, |p| {
        let run = |protocol| {
            let r = Experiment::new(Workload::trace(p.name).scale(scale))
                .servers(servers)
                .protocol(protocol)
                .run();
            assert!(r.is_consistent(), "{}/{:?}", p.name, protocol);
            assert_eq!(r.stats.ops_stuck, 0);
            r.stats
        };
        let se = run(Protocol::Se);
        let ba = run(Protocol::SeBatched);
        let cx = run(Protocol::Cx);
        Row {
            trace: p.name,
            ops: cx.ops_total,
            cross_share: cx.cross_ops as f64 / cx.ops_total as f64,
            ofs_secs: se.replay.as_secs_f64(),
            batched_secs: ba.replay.as_secs_f64(),
            cx_secs: cx.replay.as_secs_f64(),
            cx_vs_ofs_pct: improvement(se.replay.as_secs_f64(), cx.replay.as_secs_f64()),
            batched_vs_ofs_pct: improvement(se.replay.as_secs_f64(), ba.replay.as_secs_f64()),
            cx_vs_batched_pct: improvement(ba.replay.as_secs_f64(), cx.replay.as_secs_f64()),
            cx_latency: cx.latency_hist.summary(),
            ofs_latency: se.latency_hist.summary(),
            conflict_pct_all: cx.conflict_ratio() * 100.0,
            conflict_pct_cross: cx.cross_conflict_ratio() * 100.0,
        }
    });

    print_table(
        &[
            "trace",
            "ops",
            "cross%",
            "OFS (s)",
            "batched (s)",
            "Cx (s)",
            "Cx vs OFS",
            "batched vs OFS",
            "Cx vs batched",
            "Cx lat mean",
            "Cx p50",
            "Cx p90",
            "Cx p99",
            "Cx p99.9",
            "confl%",
            "confl%/cross",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.trace.to_string(),
                    r.ops.to_string(),
                    format!("{:.0}%", r.cross_share * 100.0),
                    format!("{:.3}", r.ofs_secs),
                    format!("{:.3}", r.batched_secs),
                    format!("{:.3}", r.cx_secs),
                    format!("+{:.0}%", r.cx_vs_ofs_pct),
                    format!("+{:.0}%", r.batched_vs_ofs_pct),
                    format!("+{:.0}%", r.cx_vs_batched_pct),
                    cx_core::fmt_ns_f(r.cx_latency.mean_ns),
                    HistSummary::fmt_ns(r.cx_latency.p50_ns),
                    HistSummary::fmt_ns(r.cx_latency.p90_ns),
                    HistSummary::fmt_ns(r.cx_latency.p99_ns),
                    HistSummary::fmt_ns(r.cx_latency.p999_ns),
                    format!("{:.2}%", r.conflict_pct_all),
                    format!("{:.2}%", r.conflict_pct_cross),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!(
        "\npaper: Cx ≥38% on every trace (s3d >50%); batched ≥15%; Cx over\n\
         batched ≥16%. The improvement tracks the trace's cross-server share.\n\
         confl% is Table II's all-ops ratio (paper: <4% in every trace);\n\
         confl%/cross divides by cross-server ops only — the rate at which a\n\
         concurrent execution actually falls back to an immediate commitment."
    );
    write_json("figure5_trace_replay", &rows);
}
