//! Figure 4: metadata operation distribution in the six workloads, with
//! the total operation count on top of each bar.
//!
//!     cargo run --release -p cx-bench --bin figure4_op_distribution [--scale f]

use cx_bench::{print_table, write_json, Args};
use cx_core::{OpClass, TraceBuilder, PROFILES};
use serde::Serialize;
use std::collections::BTreeMap;

#[derive(Serialize)]
struct Dist {
    trace: &'static str,
    total_ops: u64,
    shares: BTreeMap<&'static str, f64>,
}

fn main() {
    let args = Args::parse();
    let scale = args.scale(0.02);
    println!("Figure 4 — metadata operation distribution (scale {scale})\n");

    let mut dists = Vec::new();
    for p in &PROFILES {
        let t = TraceBuilder::new(p).scale(scale).build();
        let hist = t.class_histogram();
        let total: u64 = hist.iter().map(|(_, n)| n).sum();
        let shares: BTreeMap<&'static str, f64> = hist
            .iter()
            .map(|(c, n)| (c.name(), *n as f64 / total as f64))
            .collect();
        dists.push(Dist {
            trace: p.name,
            total_ops: p.total_ops,
            shares,
        });
    }

    let mut headers = vec!["class"];
    headers.extend(dists.iter().map(|d| d.trace));
    let mut rows = Vec::new();
    rows.push(
        std::iter::once("total (paper)".to_string())
            .chain(dists.iter().map(|d| d.total_ops.to_string()))
            .collect::<Vec<_>>(),
    );
    for class in OpClass::ALL {
        let mut row = vec![class.name().to_string()];
        for d in &dists {
            row.push(format!(
                "{:.1}%",
                d.shares.get(class.name()).copied().unwrap_or(0.0) * 100.0
            ));
        }
        rows.push(row);
    }
    print_table(&headers, &rows);

    println!(
        "\nnote: the original traces are not redistributable; these mixes are\n\
         the documented substitution (DESIGN.md §2): checkpoint-style\n\
         create/remove-heavy mixes for the Red Storm traces, lookup/getattr-\n\
         heavy mixes for the Harvard NFS traces."
    );
    write_json("figure4_op_distribution", &dists);
}
