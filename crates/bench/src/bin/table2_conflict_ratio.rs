//! Table II: conflict ratios in six typical workloads.
//!
//!     cargo run --release -p cx-bench --bin table2_conflict_ratio [--scale f|--full]
//!
//! Replays each synthetic trace profile under Cx on 8 servers and measures
//! the realized conflict ratio (conflicting operations / all operations),
//! next to the ratio the paper reports for the original trace.

use cx_bench::{print_table, write_json, Args};
use cx_core::{Experiment, Protocol, Workload, PROFILES};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    trace: &'static str,
    total_ops_paper: u64,
    replayed_ops: u64,
    conflict_ratio_paper: f64,
    conflict_ratio_measured: f64,
    conflicts: u64,
}

fn main() {
    let args = Args::parse();
    let scale = args.scale(0.05);
    println!("Table II — conflict ratios (8 servers, Cx, scale {scale})\n");

    let rows: Vec<Row> = cx_bench::par_map(&PROFILES, |p| {
        let r = Experiment::new(Workload::trace(p.name).scale(scale))
            .servers(8)
            .protocol(Protocol::Cx)
            .run();
        assert!(r.is_consistent(), "{} diverged", p.name);
        Row {
            trace: p.name,
            total_ops_paper: p.total_ops,
            replayed_ops: r.stats.ops_total,
            conflict_ratio_paper: p.paper_conflict_ratio,
            conflict_ratio_measured: r.stats.conflict_ratio(),
            conflicts: r.stats.server_stats.conflicts,
        }
    });

    print_table(
        &[
            "trace",
            "ops (paper)",
            "ops (replayed)",
            "conflict % (paper)",
            "conflict % (measured)",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.trace.to_string(),
                    r.total_ops_paper.to_string(),
                    r.replayed_ops.to_string(),
                    format!("{:.3}%", r.conflict_ratio_paper * 100.0),
                    format!("{:.3}%", r.conflict_ratio_measured * 100.0),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!(
        "\npaper's observation: \"the conflict ratio of all workloads is very low\"\n\
         (< 4%); supercomputing checkpointing conflicts least, shared research\n\
         and email directories conflict most."
    );
    write_json("table2_conflict_ratio", &rows);
}
