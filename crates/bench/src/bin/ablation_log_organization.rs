//! Ablation (§IV-A, "Log organization"): log-structured file vs log
//! records stored in the database.
//!
//!     cargo run --release -p cx-bench --bin ablation_log_organization [--scale f]
//!
//! "Log records can be stored in the BDB or can be organized as a
//! log-structured file. We choose the latter approach to exploit more disk
//! bandwidth, and build an index on top of it to accelerate searches."
//! This quantifies that choice: the BDB path pays the heavier journal
//! flush plus in-place page writes for every record batch.

use cx_bench::{print_table, write_json, Args};
use cx_core::{Experiment, MetaratesMix, Protocol, Workload};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    workload: &'static str,
    logfile_secs: f64,
    bdb_log_secs: f64,
    slowdown_pct: f64,
}

fn main() {
    let args = Args::parse();
    let scale = args.scale(0.02);
    println!("Ablation — log organization (Cx, 8 servers)\n");

    let mut rows = Vec::new();
    for (name, workload) in [
        ("CTH trace", Workload::trace("CTH").scale(scale)),
        (
            "metarates update-dominated",
            Workload::Metarates {
                mix: MetaratesMix::UpdateDominated,
                ops_per_proc: 40,
                files_per_server: 1_000,
            },
        ),
    ] {
        let run = |in_db: bool| {
            let r = Experiment::new(workload.clone())
                .servers(8)
                .protocol(Protocol::Cx)
                .configure(|cfg| cfg.cx.log_in_database = in_db)
                .run();
            assert!(r.is_consistent());
            r.stats.replay_secs()
        };
        let logfile = run(false);
        let bdb = run(true);
        rows.push(Row {
            workload: name,
            logfile_secs: logfile,
            bdb_log_secs: bdb,
            slowdown_pct: (bdb / logfile - 1.0) * 100.0,
        });
    }

    print_table(
        &[
            "workload",
            "log-structured file (s)",
            "log in BDB (s)",
            "slowdown",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.workload.to_string(),
                    format!("{:.3}", r.logfile_secs),
                    format!("{:.3}", r.bdb_log_secs),
                    format!("+{:.0}%", r.slowdown_pct),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!(
        "\nthe paper's choice quantified: the log-structured file exploits\n\
         sequential bandwidth, while database-resident log records pay the\n\
         journal flush plus in-place page writes per batch."
    );
    write_json("ablation_log_organization", &rows);
}
