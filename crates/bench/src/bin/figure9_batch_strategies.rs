//! Figure 9: sensitivity to the batched-commitment strategies (timeout and
//! threshold triggers), with an unlimited log, plus the paper's
//! future-work idle trigger as an extension series.
//!
//!     cargo run --release -p cx-bench --bin figure9_batch_strategies [--scale f|--full]
//!
//! Paper shape: the replay time decreases as the timeout or threshold
//! grows (more commitments batched together); the optimum is reached when
//! no lazy commitment fires during the replay at all (the 256 s timeout).

use cx_bench::{print_table, write_json, Args};
use cx_core::{BatchTrigger, Experiment, Protocol, Workload, DUR_MS, DUR_SEC};
use serde::Serialize;

#[derive(Serialize)]
struct Point {
    strategy: String,
    value: String,
    replay_secs: f64,
    lazy_batches: u64,
    peak_valid_kb: u64,
}

fn main() {
    let args = Args::parse();
    let scale = args.scale(0.04);
    println!(
        "Figure 9 — batched-commitment strategies (home2, 8 servers,\n\
         unlimited log, scale {scale})\n"
    );

    let run = |trigger: BatchTrigger| {
        let r = Experiment::new(Workload::trace("home2").scale(scale))
            .servers(8)
            .protocol(Protocol::Cx)
            .log_limit(None)
            .trigger(trigger)
            .run();
        assert!(r.is_consistent());
        (
            r.stats.replay_secs(),
            r.stats.server_stats.lazy_batches,
            r.stats.peak_valid_bytes >> 10,
        )
    };

    // (a) timeout sweep — scaled-down equivalents of the paper's 1..256 s
    let timeouts_ms: Vec<u64> = vec![25, 50, 100, 200, 400, 800, 1600];
    let mut points: Vec<Point> = cx_bench::par_map(&timeouts_ms, |&ms| {
        let (t, batches, peak) = run(BatchTrigger::Timeout {
            period_ns: ms * DUR_MS,
        });
        Point {
            strategy: "timeout".into(),
            value: format!("{ms} ms"),
            replay_secs: t,
            lazy_batches: batches,
            peak_valid_kb: peak,
        }
    });
    // the paper's optimum: a timeout so large no lazy commitment fires
    {
        let (t, batches, peak) = run(BatchTrigger::Timeout {
            period_ns: 256 * DUR_SEC,
        });
        points.push(Point {
            strategy: "timeout".into(),
            value: "256 s (optimum)".into(),
            replay_secs: t,
            lazy_batches: batches,
            peak_valid_kb: peak,
        });
    }

    // (b) threshold sweep
    let thresholds: Vec<u64> = vec![8, 32, 128, 512, 2048];
    points.extend(cx_bench::par_map(&thresholds, |&n| {
        let (t, batches, peak) = run(BatchTrigger::Threshold { pending_ops: n });
        Point {
            strategy: "threshold".into(),
            value: format!("{n} ops"),
            replay_secs: t,
            lazy_batches: batches,
            peak_valid_kb: peak,
        }
    }));

    // extension: the idle trigger the paper lists as future work
    {
        let (t, batches, peak) = run(BatchTrigger::Idle {
            idle_ns: 20 * DUR_MS,
            fallback_ns: 2 * DUR_SEC,
        });
        points.push(Point {
            strategy: "idle (extension)".into(),
            value: "20 ms quiet".into(),
            replay_secs: t,
            lazy_batches: batches,
            peak_valid_kb: peak,
        });
    }

    print_table(
        &[
            "strategy",
            "value",
            "replay (s)",
            "lazy batches",
            "peak valid KB",
        ],
        &points
            .iter()
            .map(|p| {
                vec![
                    p.strategy.clone(),
                    p.value.clone(),
                    format!("{:.3}", p.replay_secs),
                    p.lazy_batches.to_string(),
                    p.peak_valid_kb.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!(
        "\npaper: \"the replay time decreases as the value of timeout or\n\
         threshold increases … if setting a high value, consequently the\n\
         number of valid records on the log file increases as well, thus\n\
         prolonging the recovery time potentially.\""
    );
    write_json("figure9_batch_strategies", &points);
}
