//! One metadata server as its own OS process, speaking the `cx-net`
//! wire plane (DESIGN.md §9).
//!
//! The coordinator (`perf_baseline --multiproc` or `--net tcp`) writes a
//! [`cx_bench::NetServerConfig`] JSON per server, spawns this binary with
//! `--config <path>`, and parses the `LISTEN <addr>` line printed once
//! the listener is bound. From then on everything — peer addresses,
//! workload messages, quiesce/probe drain, final stats — arrives over
//! TCP; the process exits after answering the coordinator's `Stop`.
//!
//! Usage: `cx_net_server --config target/cx_net_server_0.json`

use cx_bench::NetServerConfig;
use cx_types::ServerId;
use std::io::Write;

fn main() {
    let args = cx_bench::Args::parse();
    let path: String = args
        .value("--config")
        .expect("usage: cx_net_server --config <file.json>");
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    let nsc: NetServerConfig =
        serde_json::from_str(&text).unwrap_or_else(|e| panic!("parse {path}: {e:?}"));
    let opts = cx_cluster::ServeOptions {
        obs: nsc.obs,
        net: cx_net::PlaneConfig {
            record_flush_spans: nsc.obs,
            ..cx_net::PlaneConfig::default()
        },
        metrics_out: nsc.metrics_out.clone().map(Into::into),
    };
    cx_cluster::serve_one_opts(&nsc.cfg, ServerId(nsc.me), &nsc.seeds, opts, |addr| {
        // The coordinator blocks on this line; stdout is block-buffered
        // when piped, so flush explicitly.
        println!("LISTEN {addr}");
        std::io::stdout().flush().expect("flush LISTEN line");
    })
    .unwrap_or_else(|e| panic!("server {} failed: {e}", nsc.me));
}
