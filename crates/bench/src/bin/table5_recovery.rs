//! Table V: recovery time as the valid-records' volume grows.
//!
//!     cargo run --release -p cx-bench --bin table5_recovery [--scale f|--full]
//!
//! For each target volume the harness replays home2 under Cx (lazy
//! commitments suppressed so records accumulate), kills a server at the
//! target, reboots it after the failure-detection delay, and measures the
//! recovery: log scan + cold-cache row reads + batched resumption of every
//! half-completed commitment.
//!
//! Paper shape: 5→1000 KB of valid records take 3→17 s; a 100× record
//! increase costs < 3× the time, because resumption is batched.

use cx_bench::{print_table, write_json, Args};
use cx_core::RecoveryExperiment;

const PAPER: [(u64, f64); 6] = [
    (5, 3.0),
    (10, 6.0),
    (50, 8.0),
    (100, 10.0),
    (500, 12.0),
    (1000, 17.0),
];

fn main() {
    let args = Args::parse();
    let scale = args.scale(0.12);
    println!("Table V — recovery time vs valid-records' size (8 servers)\n");

    let rows: Vec<_> = cx_bench::par_map(&PAPER, |&(kb, paper_secs)| {
        let exp = RecoveryExperiment {
            servers: 8,
            trace_scale: scale,
            detection_ms: 2_000,
            reboot_ms: 800,
            ..Default::default()
        }
        .with_target(kb << 10);
        exp.run().map(|row| (row, paper_secs))
    })
    .into_iter()
    .flatten()
    .collect();

    print_table(
        &[
            "valid records",
            "at crash",
            "recovery (s)",
            "paper (s)",
            "scan+resume (s)",
        ],
        &rows
            .iter()
            .map(|(r, paper)| {
                vec![
                    format!("{} KB", r.target_kb),
                    format!("{} KB", r.valid_kb_at_crash),
                    format!("{:.1}", r.recovery_secs),
                    format!("{:.0}", paper),
                    format!("{:.2}", r.protocol_secs),
                ]
            })
            .collect::<Vec<_>>(),
    );

    if rows.len() >= 2 {
        let first = &rows.first().expect("nonempty").0;
        let last = &rows.last().expect("nonempty").0;
        let record_ratio = last.target_kb as f64 / first.target_kb as f64;
        let time_ratio = last.recovery_secs / first.recovery_secs;
        println!(
            "\n{record_ratio:.0}× the valid records cost {time_ratio:.1}× the recovery time\n\
             (paper: 100× → <3×; batched resumption amortizes the work)."
        );
        if rows.len() < PAPER.len() {
            println!(
                "note: {} target volume(s) skipped — the workload at scale {scale}\n\
                 never accumulated that many valid records; rerun with --full.",
                PAPER.len() - rows.len()
            );
        }
    }
    write_json(
        "table5_recovery",
        &rows.iter().map(|(r, _)| *r).collect::<Vec<_>>(),
    );
}
