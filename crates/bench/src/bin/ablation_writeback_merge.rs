//! Ablation (DESIGN.md §5.3): elevator merging of batched write-back.
//!
//!     cargo run --release -p cx-bench --bin ablation_writeback_merge [--scale f]
//!
//! The paper attributes the large update-dominated Metarates win partly to
//! "batched updates on these objects may constantly push the performance
//! of BDB write-back close to its peak point" — metadata objects of one
//! directory are sequentially placed, so batched write-back merges into
//! few disk runs. Setting the elevator's merge gap to zero disables that
//! merging and should disproportionately hurt the single-directory
//! workload compared to the scattered-directory traces.

use cx_bench::{print_table, write_json, Args};
use cx_core::{Experiment, MetaratesMix, Protocol, Workload};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    workload: &'static str,
    merged_secs: f64,
    unmerged_secs: f64,
    slowdown_pct: f64,
    pages_per_run_merged: f64,
}

fn main() {
    let args = Args::parse();
    let scale = args.scale(0.02);
    println!("Ablation — write-back merging (Cx, 8 servers)\n");

    let mut rows = Vec::new();
    for (name, workload) in [
        (
            "metarates update-dominated (one directory)",
            Workload::Metarates {
                mix: MetaratesMix::UpdateDominated,
                ops_per_proc: 40,
                files_per_server: 1_000,
            },
        ),
        (
            "home2 trace (many directories)",
            Workload::trace("home2").scale(scale),
        ),
    ] {
        let run = |merge_gap: u64| {
            let r = Experiment::new(workload.clone())
                .servers(8)
                .protocol(Protocol::Cx)
                .configure(|cfg| cfg.disk.merge_gap = merge_gap)
                .run();
            assert!(r.is_consistent());
            // total disk busy time across the cluster: the write-back work
            // itself, excluding idle waits for the lazy trigger
            (
                r.stats.disk.busy_ns as f64 / 1e9 / 8.0,
                r.stats.disk.pages_per_run(),
            )
        };
        let (merged, ppr) = run(16);
        let (unmerged, _) = run(0);
        rows.push(Row {
            workload: name,
            merged_secs: merged,
            unmerged_secs: unmerged,
            slowdown_pct: (unmerged / merged - 1.0) * 100.0,
            pages_per_run_merged: ppr,
        });
    }

    print_table(
        &[
            "workload",
            "merged disk busy (s)",
            "unmerged disk busy (s)",
            "slowdown",
            "pages/run",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.workload.to_string(),
                    format!("{:.3}", r.merged_secs),
                    format!("{:.3}", r.unmerged_secs),
                    format!("+{:.0}%", r.slowdown_pct),
                    format!("{:.1}", r.pages_per_run_merged),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!(
        "\n(per-server disk busy time is the metric: merging acts on the\n\
         deferred write-back work, not on the client-visible replay.)"
    );
    write_json("ablation_writeback_merge", &rows);
}
