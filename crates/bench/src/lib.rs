//! Shared plumbing for the experiment binaries.
//!
//! Every table and figure of the paper's evaluation has a binary in
//! `src/bin/` that regenerates it:
//!
//! | binary | paper artifact |
//! |---|---|
//! | `table2_conflict_ratio` | Table II — conflict ratios in six workloads |
//! | `figure4_op_distribution` | Figure 4 — metadata operation mixes |
//! | `figure5_trace_replay` | Figure 5 — trace replay times, OFS vs OFS-batched vs OFS-Cx |
//! | `table4_message_overhead` | Table IV — message counts and Cx overhead |
//! | `figure6_metarates_scaling` | Figure 6 — Metarates throughput vs cluster size |
//! | `figure7_log_size` | Figure 7 — log-limit sensitivity + valid-record timeline |
//! | `figure8_conflict_ratio` | Figure 8 — injected-conflict sensitivity |
//! | `figure9_batch_strategies` | Figure 9 — timeout/threshold trigger sweeps |
//! | `table5_recovery` | Table V — recovery time vs valid-record volume |
//! | `ablation_group_commit` | DESIGN.md §5.2 — group commit on/off |
//! | `ablation_writeback_merge` | DESIGN.md §5.3 — elevator merging on/off |
//!
//! Binaries accept `--scale <f64>` (trace fraction; default keeps each run
//! under ~a minute) and `--full` (paper scale: every operation of Table
//! II). Results print as aligned tables and are also written as JSON under
//! `target/experiments/`.

use serde::Serialize;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Launch config for the `cx_net_server` binary: everything one server
/// process needs to join a multi-process TCP cluster. The coordinator
/// (`perf_baseline --multiproc` / `--net tcp`) writes one of these per
/// server, spawns the binary with `--config <path>`, and reads the
/// `LISTEN <addr>` line the server prints once bound.
#[derive(Debug, Clone, Serialize, serde::Deserialize)]
pub struct NetServerConfig {
    pub cfg: cx_types::ClusterConfig,
    /// Which `ServerId` this process is.
    pub me: u32,
    /// The workload's namespace seeds (identical on every server).
    pub seeds: Vec<cx_workloads::SeedEntry>,
    /// Run a shard-mode observability sink in this process: stamp op
    /// phases on the local wall clock, record wire flush spans, and ship
    /// everything back in the `StopResp` for offset-corrected stitching.
    pub obs: bool,
    /// Write this process's metric snapshot (`<path>.json` / `<path>.prom`)
    /// once at exit, for `cx-obs top` merging across processes.
    pub metrics_out: Option<String>,
}

/// Worker count for [`par_map`]: `CX_BENCH_THREADS` if set (CI uses this to
/// cap parallelism), otherwise the machine's available parallelism.
pub fn bench_threads() -> usize {
    std::env::var("CX_BENCH_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// Order-preserving parallel map over a slice — the shared sweep helper for
/// the experiment binaries. Work is handed out item-at-a-time so uneven
/// sweep points (e.g. different cluster sizes) balance across workers.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_with(bench_threads(), items, f)
}

/// [`par_map`] with an explicit worker count (clamped to at least one).
/// The `--full` driver uses this to fan whole experiment binaries across
/// cores with `--jobs`, independent of `CX_BENCH_THREADS`.
pub fn par_map_with<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = threads.max(1).min(items.len());
    if threads <= 1 {
        return items.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let out = f(&items[i]);
                *slots[i].lock().unwrap() = Some(out);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| m.into_inner().unwrap().expect("worker filled every slot"))
        .collect()
}

/// Parse `--scale <f64>`, `--full`, `--servers <n>` style flags.
pub struct Args {
    raw: Vec<String>,
}

impl Default for Args {
    fn default() -> Self {
        Self::parse()
    }
}

impl Args {
    pub fn parse() -> Self {
        Self {
            raw: std::env::args().skip(1).collect(),
        }
    }

    pub fn flag(&self, name: &str) -> bool {
        self.raw.iter().any(|a| a == name)
    }

    pub fn value<T: std::str::FromStr>(&self, name: &str) -> Option<T> {
        self.raw
            .iter()
            .position(|a| a == name)
            .and_then(|i| self.raw.get(i + 1))
            .and_then(|v| v.parse().ok())
    }

    /// Trace scale: `--full` → 1.0, else `--scale` or the default.
    pub fn scale(&self, default: f64) -> f64 {
        if self.flag("--full") {
            1.0
        } else {
            self.value("--scale").unwrap_or(default)
        }
    }
}

/// Peak resident set size ("VmHWM") of this process in KiB, read from
/// `/proc/self/status`. Returns 0 where the proc file is unavailable
/// (non-Linux), so callers can record it unconditionally.
pub fn peak_rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("VmHWM:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or(0)
}

/// Reset the kernel's peak-RSS watermark (writes `5` to
/// `/proc/self/clear_refs`) so back-to-back measurements in one process
/// don't inherit each other's high-water mark. Best-effort: where the
/// write is not permitted the old watermark simply survives, which only
/// ever over-reports.
pub fn reset_peak_rss() {
    let _ = std::fs::write("/proc/self/clear_refs", "5");
}

/// Print an aligned table.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: Vec<String>| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!("{:>width$}  ", c, width = widths[i]));
        }
        println!("{}", s.trim_end());
    };
    line(headers.iter().map(|h| h.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

/// Write a JSON artifact under `target/experiments/<name>.json`.
pub fn write_json<T: Serialize>(name: &str, value: &T) {
    let dir = PathBuf::from("target/experiments");
    if std::fs::create_dir_all(&dir).is_err() {
        return;
    }
    let path = dir.join(format!("{name}.json"));
    if let Ok(json) = serde_json::to_string_pretty(value) {
        let _ = std::fs::write(&path, json);
        println!("\n[json: {}]", path.display());
    }
}

/// Percent improvement of `new` over `old` (lower is better).
pub fn improvement(old: f64, new: f64) -> f64 {
    (1.0 - new / old) * 100.0
}

/// Percent gain of `new` over `old` (higher is better).
pub fn gain(old: f64, new: f64) -> f64 {
    (new / old - 1.0) * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn improvement_and_gain() {
        assert!((improvement(2.0, 1.0) - 50.0).abs() < 1e-9);
        assert!((gain(100.0, 182.0) - 82.0).abs() < 1e-9);
    }

    #[test]
    fn par_map_preserves_order_and_covers_all_items() {
        let items: Vec<u64> = (0..37).collect();
        let out = par_map(&items, |&x| x * 3);
        assert_eq!(out, (0..37).map(|x| x * 3).collect::<Vec<_>>());
        assert!(par_map(&Vec::<u64>::new(), |&x| x).is_empty());
    }

    #[test]
    fn args_scale_logic() {
        let a = Args {
            raw: vec!["--scale".into(), "0.25".into()],
        };
        assert_eq!(a.scale(0.1), 0.25);
        let b = Args {
            raw: vec!["--full".into()],
        };
        assert_eq!(b.scale(0.1), 1.0);
        let c = Args { raw: vec![] };
        assert_eq!(c.scale(0.1), 0.1);
        assert!(b.flag("--full") && !c.flag("--full"));
        assert_eq!(a.value::<u32>("--servers"), None);
    }
}
