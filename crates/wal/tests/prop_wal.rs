//! Property-based tests of the write-ahead log.

use cx_types::ids::ProcId;
use cx_types::{FileKind, InodeNo, Name, OpId, Role, ServerId, SubOp, Verdict};
use cx_wal::{decode_record, encode_record, Record, SeqNo, Wal};
use proptest::prelude::*;

fn op_id_strategy() -> impl Strategy<Value = OpId> {
    (0u32..4, 0u32..2, 0u64..64).prop_map(|(c, p, seq)| OpId::new(ProcId::new(c, p), seq))
}

fn subop_strategy() -> impl Strategy<Value = SubOp> {
    let ino = (1u64..1000).prop_map(InodeNo);
    let name = (1u64..1000).prop_map(Name);
    prop_oneof![
        (ino.clone(), name.clone(), ino.clone(), any::<bool>()).prop_map(
            |(parent, name, child, dir)| SubOp::InsertEntry {
                parent,
                name,
                child,
                kind: if dir {
                    FileKind::Directory
                } else {
                    FileKind::Regular
                },
            }
        ),
        (ino.clone(), name.clone(), ino.clone()).prop_map(|(parent, name, child)| {
            SubOp::RemoveEntry {
                parent,
                name,
                child,
            }
        }),
        (ino.clone(), any::<bool>()).prop_map(|(i, dir)| SubOp::CreateInode {
            ino: i,
            kind: if dir {
                FileKind::Directory
            } else {
                FileKind::Regular
            },
        }),
        ino.clone().prop_map(|i| SubOp::ReleaseInode { ino: i }),
        ino.clone().prop_map(|i| SubOp::IncNlink { ino: i }),
        ino.clone().prop_map(|i| SubOp::DecNlink { ino: i }),
        ino.clone().prop_map(|i| SubOp::TouchInode { ino: i }),
        (ino.clone(), name).prop_map(|(parent, name)| SubOp::ReadEntry { parent, name }),
        ino.prop_map(|i| SubOp::ReadInode { ino: i }),
    ]
}

fn record_strategy() -> impl Strategy<Value = Record> {
    prop_oneof![
        (
            op_id_strategy(),
            any::<bool>(),
            prop::option::of(0u32..8),
            subop_strategy(),
            any::<bool>(),
            any::<bool>(),
        )
            .prop_map(
                |(op_id, coord, peer, subop, yes, invalidated)| Record::Result {
                    op_id,
                    role: if coord {
                        Role::Coordinator
                    } else {
                        Role::Participant
                    },
                    peer: peer.map(ServerId),
                    subop,
                    verdict: if yes { Verdict::Yes } else { Verdict::No },
                    invalidated,
                }
            ),
        op_id_strategy().prop_map(|op_id| Record::Commit { op_id }),
        op_id_strategy().prop_map(|op_id| Record::Abort { op_id }),
        op_id_strategy().prop_map(|op_id| Record::Complete { op_id }),
    ]
}

proptest! {
    /// Every record round-trips through the binary encoding, and the
    /// stated encoded length is exact.
    #[test]
    fn encoding_round_trips(rec in record_strategy()) {
        let mut buf = Vec::new();
        encode_record(&mut buf, &rec);
        prop_assert_eq!(buf.len() as u64, rec.encoded_len());
        let (back, consumed) = decode_record(&buf).expect("decodes");
        prop_assert_eq!(back, rec);
        prop_assert_eq!(consumed, buf.len());
    }

    /// A concatenated log decodes back to the same record sequence.
    #[test]
    fn log_streams_decode(recs in prop::collection::vec(record_strategy(), 1..40)) {
        let mut buf = Vec::new();
        for r in &recs {
            encode_record(&mut buf, r);
        }
        let mut off = 0;
        let mut decoded = Vec::new();
        while off < buf.len() {
            let (r, n) = decode_record(&buf[off..]).expect("stream decodes");
            decoded.push(r);
            off += n;
        }
        prop_assert_eq!(decoded, recs);
    }

    /// Valid-byte accounting is exact under arbitrary append/prune
    /// interleavings, and pruning never removes an un-prunable op.
    #[test]
    fn accounting_is_exact(
        recs in prop::collection::vec(record_strategy(), 1..60),
        prune_each in any::<bool>(),
    ) {
        let mut wal = Wal::new(None);
        for rec in recs {
            let op = rec.op_id();
            wal.append(rec).expect("unlimited log");
            if prune_each {
                wal.prune_op(&op);
            }
        }
        wal.prune_all();
        // whatever remains is exactly the sum of its record sizes…
        let remaining: u64 = wal.scan().map(|(_, r)| r.encoded_len()).sum();
        prop_assert_eq!(wal.valid_bytes(), remaining);
        // …and none of it is prunable
        let (coord, parti) = wal.half_completed();
        for op in coord.iter().chain(parti.iter()) {
            prop_assert!(!wal.op_state(op).expect("indexed").prunable());
        }
        // conservation: appended == pruned + remaining
        prop_assert_eq!(
            wal.total_appended_bytes(),
            wal.total_pruned_bytes() + wal.valid_bytes()
        );
    }

    /// Crash keeps exactly the durable prefix: every surviving record was
    /// marked durable, and the rebuilt index matches a fresh replay.
    #[test]
    fn crash_keeps_durable_prefix(
        recs in prop::collection::vec(record_strategy(), 1..40),
        durable_upto in 0usize..40,
    ) {
        let mut wal = Wal::new(None);
        let mut seqs = Vec::new();
        for rec in &recs {
            let (seq, _) = wal.append(rec.clone()).expect("unlimited");
            seqs.push(seq);
        }
        let cut = durable_upto.min(recs.len());
        if cut > 0 {
            wal.mark_durable(seqs[cut - 1]);
        }
        wal.crash();
        // survivors are exactly recs[..cut]
        let survivors: Vec<Record> = wal.scan().map(|(_, r)| r.clone()).collect();
        prop_assert_eq!(&survivors[..], &recs[..cut]);
        // the rebuilt index equals a fresh wal fed the same prefix
        let mut fresh = Wal::new(None);
        for rec in &recs[..cut] {
            fresh.append(rec.clone()).expect("unlimited");
        }
        for rec in &recs[..cut] {
            let op = rec.op_id();
            prop_assert_eq!(wal.op_state(&op), fresh.op_state(&op));
        }
        prop_assert_eq!(wal.valid_bytes(), fresh.valid_bytes());
    }

    /// Torn tail at every byte offset of the last record: decoding a log
    /// image whose physical tail was cut anywhere inside the last record
    /// yields exactly the whole-record prefix — no panic, no phantom
    /// record, regardless of where the cut lands.
    #[test]
    fn torn_tail_decodes_exact_prefix(recs in prop::collection::vec(record_strategy(), 1..10)) {
        let mut buf = Vec::new();
        let mut boundaries = vec![0usize];
        for r in &recs {
            encode_record(&mut buf, r);
            boundaries.push(buf.len());
        }
        let last_start = boundaries[recs.len() - 1];
        for cut in last_start..buf.len() {
            let torn = &buf[..cut];
            let mut off = 0;
            let mut decoded = Vec::new();
            while off < torn.len() {
                match decode_record(&torn[off..]) {
                    Ok((r, n)) => {
                        decoded.push(r);
                        off += n;
                    }
                    Err(_) => break,
                }
            }
            prop_assert_eq!(
                &decoded[..],
                &recs[..recs.len() - 1],
                "cut at byte {} must recover exactly the whole-record prefix",
                cut
            );
        }
    }

    /// `Wal::crash_torn` at any byte budget keeps exactly the durable
    /// prefix plus the maximal run of whole volatile records that fits —
    /// checked at every record boundary and one byte either side of it.
    #[test]
    fn wal_torn_crash_keeps_whole_record_prefix(
        recs in prop::collection::vec(record_strategy(), 1..10),
        durable_upto in 0usize..10,
    ) {
        let cut = durable_upto.min(recs.len());
        let build = || {
            let mut wal = Wal::new(None);
            let mut seqs = Vec::new();
            for rec in &recs {
                let (seq, _) = wal.append(rec.clone()).expect("unlimited");
                seqs.push(seq);
            }
            if cut > 0 {
                wal.mark_durable(seqs[cut - 1]);
            }
            wal
        };
        // candidate torn budgets: every whole-record boundary of the
        // volatile suffix, plus one byte either side
        let mut budgets = vec![0u64];
        let mut cum = 0u64;
        for rec in &recs[cut..] {
            cum += rec.encoded_len();
            budgets.extend([cum.saturating_sub(1), cum, cum + 1]);
        }
        for extra in budgets {
            // how many whole volatile records fit in `extra` bytes?
            let mut fit = 0;
            let mut used = 0u64;
            for rec in &recs[cut..] {
                if used + rec.encoded_len() > extra {
                    break;
                }
                used += rec.encoded_len();
                fit += 1;
            }
            let mut wal = build();
            wal.crash_torn(extra);
            let survivors: Vec<Record> = wal.scan().map(|(_, r)| r.clone()).collect();
            prop_assert_eq!(
                &survivors[..],
                &recs[..cut + fit],
                "durable prefix {} + torn budget {} must keep {} records",
                cut, extra, cut + fit
            );
            // survivors are durable: a second, clean crash changes nothing
            wal.crash();
            prop_assert_eq!(wal.record_count(), cut + fit);
        }
    }

    /// The log limit is a true invariant: valid bytes never exceed the
    /// cap plus control-record slack, and appends start succeeding again
    /// after pruning.
    #[test]
    fn limit_is_enforced(ops in prop::collection::vec(op_id_strategy(), 1..50)) {
        let limit = 1000u64;
        let mut wal = Wal::new(Some(limit));
        let mut control_bytes = 0u64;
        for op in ops {
            let rec = Record::Result {
                op_id: op,
                role: Role::Participant,
                peer: None,
                subop: SubOp::CreateInode { ino: InodeNo(1), kind: FileKind::Regular },
                verdict: Verdict::Yes,
                invalidated: false,
            };
            match wal.append(rec) {
                Ok(_) => {
                    let (_, b) = wal.append(Record::Commit { op_id: op }).expect("control");
                    control_bytes += b;
                }
                Err(_) => {
                    // full: prune and retry must make room
                    wal.prune_all();
                    control_bytes = 0;
                    prop_assert!(wal.valid_bytes() <= limit);
                }
            }
            prop_assert!(
                wal.valid_bytes() <= limit + control_bytes,
                "valid {} exceeded cap {} + control slack {}",
                wal.valid_bytes(), limit, control_bytes
            );
        }
    }
}

#[test]
fn seqno_ordering_matches_append_order() {
    let mut wal = Wal::new(None);
    let mut last = None;
    for i in 0..20 {
        let (seq, _) = wal
            .append(Record::Commit {
                op_id: OpId::new(ProcId::new(0, 0), i),
            })
            .expect("unlimited");
        if let Some(prev) = last {
            assert!(seq > prev);
        }
        last = Some(seq);
    }
    assert_eq!(last, Some(SeqNo(19)));
}
