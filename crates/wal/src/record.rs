//! Log record types and their binary encoding.
//!
//! Records are encoded to real bytes (with the updated-object images of a
//! Result-Record represented as zero padding of the right length) so that
//! log sizes, the Figure 7(b) valid-record curve, and the recovery scan of
//! Table V all operate on realistic volumes.

use bytes::{Buf, BufMut};
use cx_types::ids::{ClientId, ProcessId};
use cx_types::{FileKind, InodeNo, Name, OpId, ProcId, Role, ServerId, SubOp, Verdict};
use serde::{Deserialize, Serialize};

/// Commit/abort decision for one operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Outcome {
    Committed,
    Aborted,
}

/// The four record families of §III-A, as a dense index. Fault injection
/// keys crash points on "the Nth append of family F", so the [`crate::Wal`]
/// counts appends and flush completions per family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum RecordFamily {
    Result,
    Commit,
    Abort,
    Complete,
}

impl RecordFamily {
    pub const COUNT: usize = 4;
    pub const ALL: [RecordFamily; Self::COUNT] = [
        RecordFamily::Result,
        RecordFamily::Commit,
        RecordFamily::Abort,
        RecordFamily::Complete,
    ];

    pub fn index(self) -> usize {
        self as usize
    }
}

/// A log record (§III-A).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Record {
    /// Result of this server's sub-operation, with redo image.
    Result {
        op_id: OpId,
        role: Role,
        /// The other affected server, so a rebooted participant can ask
        /// the coordinator for the outcome (recovery), and a rebooted
        /// coordinator knows whom to vote with.
        peer: Option<ServerId>,
        subop: SubOp,
        verdict: Verdict,
        /// Set when the execution was invalidated during disordered
        /// conflict handling (§III-C step 4).
        invalidated: bool,
    },
    /// All sub-ops succeeded; operation committed.
    Commit { op_id: OpId },
    /// Executions failed or disagreed; operation aborted.
    Abort { op_id: OpId },
    /// Coordinator only: the whole operation has been completed.
    Complete { op_id: OpId },
}

impl Record {
    pub fn op_id(&self) -> OpId {
        match *self {
            Record::Result { op_id, .. }
            | Record::Commit { op_id }
            | Record::Abort { op_id }
            | Record::Complete { op_id } => op_id,
        }
    }

    pub fn family(&self) -> RecordFamily {
        match self {
            Record::Result { .. } => RecordFamily::Result,
            Record::Commit { .. } => RecordFamily::Commit,
            Record::Abort { .. } => RecordFamily::Abort,
            Record::Complete { .. } => RecordFamily::Complete,
        }
    }

    /// Encoded size in bytes (without re-encoding).
    pub fn encoded_len(&self) -> u64 {
        match self {
            Record::Result { subop, .. } => {
                // tag + op_id(16) + role + peer(5) + verdict + invalidated
                // + subop tag/fields (34) + image length (4) + image
                1 + 16 + 1 + 5 + 1 + 1 + 34 + 4 + subop.write_bytes() as u64
            }
            _ => 1 + 16,
        }
    }
}

const TAG_RESULT: u8 = 1;
const TAG_COMMIT: u8 = 2;
const TAG_ABORT: u8 = 3;
const TAG_COMPLETE: u8 = 4;

fn put_op_id(buf: &mut Vec<u8>, id: OpId) {
    buf.put_u32(id.proc.client.0);
    buf.put_u32(id.proc.process.0);
    buf.put_u64(id.seq);
}

fn get_op_id(buf: &mut &[u8]) -> OpId {
    let client = buf.get_u32();
    let process = buf.get_u32();
    let seq = buf.get_u64();
    OpId::new(
        ProcId {
            client: ClientId(client),
            process: ProcessId(process),
        },
        seq,
    )
}

fn put_subop(buf: &mut Vec<u8>, s: &SubOp) {
    // fixed 34 bytes: tag + kindish byte + four u64 slots
    let (tag, a, b, c, k): (u8, u64, u64, u64, u8) = match *s {
        SubOp::InsertEntry {
            parent,
            name,
            child,
            kind,
        } => (1, parent.0, name.0, child.0, kind_byte(kind)),
        SubOp::RemoveEntry {
            parent,
            name,
            child,
        } => (2, parent.0, name.0, child.0, 0),
        SubOp::CreateInode { ino, kind } => (3, ino.0, 0, 0, kind_byte(kind)),
        SubOp::ReleaseInode { ino } => (4, ino.0, 0, 0, 0),
        SubOp::IncNlink { ino } => (5, ino.0, 0, 0, 0),
        SubOp::DecNlink { ino } => (6, ino.0, 0, 0, 0),
        SubOp::ReadInode { ino } => (7, ino.0, 0, 0, 0),
        SubOp::ReadEntry { parent, name } => (8, parent.0, name.0, 0, 0),
        SubOp::ReadDir { dir } => (9, dir.0, 0, 0, 0),
        SubOp::TouchInode { ino } => (10, ino.0, 0, 0, 0),
    };
    buf.put_u8(tag);
    buf.put_u8(k);
    buf.put_u64(a);
    buf.put_u64(b);
    buf.put_u64(c);
    buf.put_u64(0); // reserved
}

fn kind_byte(k: FileKind) -> u8 {
    match k {
        FileKind::Regular => 0,
        FileKind::Directory => 1,
    }
}

fn byte_kind(b: u8) -> FileKind {
    if b == 0 {
        FileKind::Regular
    } else {
        FileKind::Directory
    }
}

const SUBOP_BYTES: usize = 34;

fn get_subop(buf: &mut &[u8]) -> Result<SubOp, String> {
    if buf.len() < SUBOP_BYTES {
        return Err("truncated sub-op".into());
    }
    let tag = buf.get_u8();
    let k = buf.get_u8();
    let a = buf.get_u64();
    let b = buf.get_u64();
    let c = buf.get_u64();
    let _reserved = buf.get_u64();
    Ok(match tag {
        1 => SubOp::InsertEntry {
            parent: InodeNo(a),
            name: Name(b),
            child: InodeNo(c),
            kind: byte_kind(k),
        },
        2 => SubOp::RemoveEntry {
            parent: InodeNo(a),
            name: Name(b),
            child: InodeNo(c),
        },
        3 => SubOp::CreateInode {
            ino: InodeNo(a),
            kind: byte_kind(k),
        },
        4 => SubOp::ReleaseInode { ino: InodeNo(a) },
        5 => SubOp::IncNlink { ino: InodeNo(a) },
        6 => SubOp::DecNlink { ino: InodeNo(a) },
        7 => SubOp::ReadInode { ino: InodeNo(a) },
        8 => SubOp::ReadEntry {
            parent: InodeNo(a),
            name: Name(b),
        },
        9 => SubOp::ReadDir { dir: InodeNo(a) },
        10 => SubOp::TouchInode { ino: InodeNo(a) },
        t => return Err(format!("bad sub-op tag {t}")),
    })
}

/// Append the record's encoding to `buf`.
pub fn encode_record(buf: &mut Vec<u8>, rec: &Record) {
    match rec {
        Record::Result {
            op_id,
            role,
            peer,
            subop,
            verdict,
            invalidated,
        } => {
            buf.put_u8(TAG_RESULT);
            put_op_id(buf, *op_id);
            buf.put_u8(matches!(role, Role::Coordinator) as u8);
            match peer {
                Some(s) => {
                    buf.put_u8(1);
                    buf.put_u32(s.0);
                }
                None => {
                    buf.put_u8(0);
                    buf.put_u32(0);
                }
            }
            buf.put_u8(verdict.is_yes() as u8);
            buf.put_u8(*invalidated as u8);
            put_subop(buf, subop);
            let image = subop.write_bytes();
            buf.put_u32(image);
            buf.resize(buf.len() + image as usize, 0);
        }
        Record::Commit { op_id } => {
            buf.put_u8(TAG_COMMIT);
            put_op_id(buf, *op_id);
        }
        Record::Abort { op_id } => {
            buf.put_u8(TAG_ABORT);
            put_op_id(buf, *op_id);
        }
        Record::Complete { op_id } => {
            buf.put_u8(TAG_COMPLETE);
            put_op_id(buf, *op_id);
        }
    }
}

/// Decode one record from the front of `buf`, returning it and the number
/// of bytes consumed.
///
/// A truncated buffer — a torn tail left by a crash mid-append — is an
/// `Err`, never a panic and never a phantom record: every fixed-size field
/// group is length-checked before it is read.
pub fn decode_record(mut buf: &[u8]) -> Result<(Record, usize), String> {
    let start = buf.len();
    if buf.is_empty() {
        return Err("empty buffer".into());
    }
    let tag = buf.get_u8();
    // Every record starts with a 16-byte operation id.
    if buf.len() < 16 {
        return Err("truncated op id".into());
    }
    let rec = match tag {
        TAG_RESULT => {
            let op_id = get_op_id(&mut buf);
            // role + peer flag + peer id + verdict + invalidated
            if buf.len() < 1 + 1 + 4 + 1 + 1 {
                return Err("truncated result header".into());
            }
            let role = if buf.get_u8() == 1 {
                Role::Coordinator
            } else {
                Role::Participant
            };
            let has_peer = buf.get_u8() == 1;
            let peer_raw = buf.get_u32();
            let peer = has_peer.then_some(ServerId(peer_raw));
            let verdict = if buf.get_u8() == 1 {
                Verdict::Yes
            } else {
                Verdict::No
            };
            let invalidated = buf.get_u8() == 1;
            let subop = get_subop(&mut buf)?;
            if buf.len() < 4 {
                return Err("truncated image length".into());
            }
            let image = buf.get_u32() as usize;
            if buf.len() < image {
                return Err("truncated image".into());
            }
            buf.advance(image);
            Record::Result {
                op_id,
                role,
                peer,
                subop,
                verdict,
                invalidated,
            }
        }
        TAG_COMMIT => Record::Commit {
            op_id: get_op_id(&mut buf),
        },
        TAG_ABORT => Record::Abort {
            op_id: get_op_id(&mut buf),
        },
        TAG_COMPLETE => Record::Complete {
            op_id: get_op_id(&mut buf),
        },
        t => return Err(format!("bad record tag {t}")),
    };
    Ok((rec, start - buf.len()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oid(seq: u64) -> OpId {
        OpId::new(ProcId::new(3, 4), seq)
    }

    fn sample_result() -> Record {
        Record::Result {
            op_id: oid(9),
            role: Role::Coordinator,
            peer: Some(ServerId(5)),
            subop: SubOp::InsertEntry {
                parent: InodeNo(1),
                name: Name(0xDEAD),
                child: InodeNo(77),
                kind: FileKind::Regular,
            },
            verdict: Verdict::Yes,
            invalidated: false,
        }
    }

    #[test]
    fn result_record_round_trips() {
        let rec = sample_result();
        let mut buf = Vec::new();
        encode_record(&mut buf, &rec);
        let (back, n) = decode_record(&buf).unwrap();
        assert_eq!(back, rec);
        assert_eq!(n, buf.len());
        assert_eq!(n as u64, rec.encoded_len());
    }

    #[test]
    fn all_subops_round_trip() {
        let subs = [
            SubOp::InsertEntry {
                parent: InodeNo(1),
                name: Name(2),
                child: InodeNo(3),
                kind: FileKind::Directory,
            },
            SubOp::RemoveEntry {
                parent: InodeNo(1),
                name: Name(2),
                child: InodeNo(3),
            },
            SubOp::CreateInode {
                ino: InodeNo(4),
                kind: FileKind::Directory,
            },
            SubOp::ReleaseInode { ino: InodeNo(4) },
            SubOp::IncNlink { ino: InodeNo(4) },
            SubOp::DecNlink { ino: InodeNo(4) },
            SubOp::ReadInode { ino: InodeNo(4) },
            SubOp::ReadEntry {
                parent: InodeNo(1),
                name: Name(2),
            },
            SubOp::ReadDir { dir: InodeNo(1) },
            SubOp::TouchInode { ino: InodeNo(4) },
        ];
        for subop in subs {
            let rec = Record::Result {
                op_id: oid(1),
                role: Role::Participant,
                peer: None,
                subop,
                verdict: Verdict::No,
                invalidated: true,
            };
            let mut buf = Vec::new();
            encode_record(&mut buf, &rec);
            let (back, n) = decode_record(&buf).unwrap();
            assert_eq!(back, rec, "{subop:?}");
            assert_eq!(n as u64, rec.encoded_len());
        }
    }

    #[test]
    fn control_records_round_trip_and_are_small() {
        for rec in [
            Record::Commit { op_id: oid(1) },
            Record::Abort { op_id: oid(2) },
            Record::Complete { op_id: oid(3) },
        ] {
            let mut buf = Vec::new();
            encode_record(&mut buf, &rec);
            let (back, n) = decode_record(&buf).unwrap();
            assert_eq!(back, rec);
            assert_eq!(n as u64, rec.encoded_len());
            assert_eq!(n, 17);
        }
    }

    #[test]
    fn multiple_records_decode_sequentially() {
        let recs = vec![
            sample_result(),
            Record::Commit { op_id: oid(9) },
            Record::Complete { op_id: oid(9) },
        ];
        let mut buf = Vec::new();
        for r in &recs {
            encode_record(&mut buf, r);
        }
        let mut off = 0;
        let mut decoded = Vec::new();
        while off < buf.len() {
            let (r, n) = decode_record(&buf[off..]).unwrap();
            decoded.push(r);
            off += n;
        }
        assert_eq!(decoded, recs);
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(decode_record(&[]).is_err());
        assert!(decode_record(&[99, 0, 0]).is_err());
    }

    #[test]
    fn truncation_at_every_offset_is_an_error_not_a_panic() {
        for rec in [
            sample_result(),
            Record::Commit { op_id: oid(1) },
            Record::Abort { op_id: oid(2) },
            Record::Complete { op_id: oid(3) },
        ] {
            let mut buf = Vec::new();
            encode_record(&mut buf, &rec);
            for cut in 0..buf.len() {
                assert!(
                    decode_record(&buf[..cut]).is_err(),
                    "{rec:?} truncated to {cut} bytes must not decode"
                );
            }
        }
    }

    #[test]
    fn families_are_dense_and_match() {
        for (i, f) in RecordFamily::ALL.iter().enumerate() {
            assert_eq!(f.index(), i);
        }
        assert_eq!(sample_result().family(), RecordFamily::Result);
        assert_eq!(
            Record::Complete { op_id: oid(1) }.family(),
            RecordFamily::Complete
        );
    }

    #[test]
    fn result_record_size_includes_object_image() {
        let rec = sample_result();
        // image for InsertEntry is 176 bytes; record must be bigger.
        assert!(rec.encoded_len() > 176);
    }
}
