//! The Cx operation log.
//!
//! "Cx ensures consistency with the presence of node crashes by writing log
//! records on affected servers" (§III-A). Three record families exist, each
//! carrying the owning operation id:
//!
//! * **Result-Record** — the result of the corresponding sub-operation on
//!   this server (including the updated object images, which is what makes
//!   it a redo record).
//! * **Commit-Record / Abort-Record** — all sub-ops' executions succeeded /
//!   failed on the affected servers; on the participant this also means the
//!   whole operation is finished.
//! * **Complete-Record** — coordinator only: the whole operation finished.
//!
//! The log is organized "as a log-structured file … to exploit more disk
//! bandwidth, and build an index on top of it to accelerate searches"
//! (§IV-A). [`Wal`] is that logical structure: an append-only record
//! sequence plus an in-memory per-operation index. Physical timing lives in
//! `cx-simio`; the WAL tracks *durability* (a record only counts after its
//! disk flush completed) so crash injection can truncate un-flushed tails.
//!
//! Pruning (§III-D): the coordinator prunes an operation's records once a
//! Complete-Record is present; the participant once a Commit- or
//! Abort-Record is present. When the log is full, new arrivals must wait
//! for pruning — the effect studied in Figure 7(a).

pub mod log;
pub mod record;

pub use log::{OpLogState, SeqNo, Wal};
pub use record::{decode_record, encode_record, Outcome, Record, RecordFamily};
