//! The logical write-ahead log: append order, durability, index, pruning.

use crate::record::{Outcome, Record, RecordFamily};
use cx_types::{CxError, CxResult, OpId, Role, ServerId, SubOp, Verdict};
use cx_types::{FxBuildHasher, FxHashMap};
use std::collections::VecDeque;

/// Position of a record in the log's append order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SeqNo(pub u64);

/// Inline list of an operation's record sequence numbers.
///
/// An operation logs at most a Result-Record, an outcome record, and a
/// Complete-Record in the common case, so four inline slots cover almost
/// every op without a heap allocation; longer histories (re-executed
/// sub-ops during disordered-conflict handling) spill to a `Vec`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SeqList {
    inline: [u64; 4],
    len: u8,
    spill: Vec<u64>,
}

impl SeqList {
    pub fn push(&mut self, seq: u64) {
        if (self.len as usize) < self.inline.len() {
            self.inline[self.len as usize] = seq;
            self.len += 1;
        } else {
            self.spill.push(seq);
        }
    }

    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        self.inline[..self.len as usize]
            .iter()
            .copied()
            .chain(self.spill.iter().copied())
    }

    pub fn len(&self) -> usize {
        self.len as usize + self.spill.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0 && self.spill.is_empty()
    }
}

/// Record store indexed by sequence number.
///
/// Sequence numbers are dense and monotone, so slot `seq - base` replaces
/// the tree walk a `BTreeMap<u64, Record>` would need on the append/prune
/// hot path. Pruning leaves holes; a pruned prefix is compacted away by
/// advancing `base`, and trailing holes are popped so the deque stays
/// bounded by the live span of the log.
#[derive(Debug, Clone, Default)]
struct RecordSlots {
    /// Sequence number of `slots[0]`.
    base: u64,
    slots: VecDeque<Option<Record>>,
    live: usize,
}

impl RecordSlots {
    /// Insert at `seq`, which never falls inside the occupied span: appends
    /// are monotone, and a crash that truncated the tail leaves `next_seq`
    /// pointing past it (the gap is padded with holes).
    fn insert(&mut self, seq: u64, rec: Record) {
        if self.slots.is_empty() {
            self.base = seq;
        }
        debug_assert!(seq >= self.base + self.slots.len() as u64);
        while self.base + (self.slots.len() as u64) < seq {
            self.slots.push_back(None);
        }
        self.slots.push_back(Some(rec));
        self.live += 1;
    }

    fn get_mut(&mut self, seq: u64) -> Option<&mut Record> {
        let idx = seq.checked_sub(self.base)? as usize;
        self.slots.get_mut(idx)?.as_mut()
    }

    fn remove(&mut self, seq: u64) -> Option<Record> {
        let idx = seq.checked_sub(self.base)? as usize;
        let rec = self.slots.get_mut(idx)?.take()?;
        self.live -= 1;
        while matches!(self.slots.front(), Some(None)) {
            self.slots.pop_front();
            self.base += 1;
        }
        while matches!(self.slots.back(), Some(None)) {
            self.slots.pop_back();
        }
        Some(rec)
    }

    /// Drop every record with sequence number `>= seq` (crash truncation).
    fn truncate_from(&mut self, seq: u64) {
        let keep = seq.saturating_sub(self.base).min(self.slots.len() as u64) as usize;
        while self.slots.len() > keep {
            if self.slots.pop_back().flatten().is_some() {
                self.live -= 1;
            }
        }
        while matches!(self.slots.back(), Some(None)) {
            self.slots.pop_back();
        }
    }

    /// Live records in sequence order.
    fn iter(&self) -> impl Iterator<Item = (u64, &Record)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(move |(i, s)| s.as_ref().map(|r| (self.base + i as u64, r)))
    }

    fn len(&self) -> usize {
        self.live
    }
}

/// Per-operation view assembled by the index.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct OpLogState {
    /// This server's role, from the Result-Record.
    pub role: Option<Role>,
    /// The other affected server, from the Result-Record.
    pub peer: Option<ServerId>,
    /// The logged sub-op and its verdict.
    pub subop: Option<SubOp>,
    pub verdict: Option<Verdict>,
    /// Execution was invalidated during disordered-conflict handling.
    pub invalidated: bool,
    /// Commit-/Abort-Record present.
    pub outcome: Option<Outcome>,
    /// Complete-Record present (coordinator only).
    pub complete: bool,
    /// Unpruned bytes currently held by this operation's records.
    pub bytes: u64,
    /// Sequence numbers of this operation's records (so pruning removes
    /// exactly them without scanning the whole log).
    pub seqs: SeqList,
}

impl OpLogState {
    /// §III-D pruning rule: "for the coordinator, if a Complete-Record is
    /// presented in the log, all log records of that operation can be
    /// pruned; for the participant … a presented Commit-Record/Abort-Record
    /// indicates that all log records of that operation can be pruned."
    pub fn prunable(&self) -> bool {
        match self.role {
            Some(Role::Coordinator) => self.complete,
            Some(Role::Participant) => self.outcome.is_some(),
            // Control record without a local Result-Record (possible after
            // a crash truncated the tail): prunable once an outcome or
            // completion is known.
            None => self.complete || self.outcome.is_some(),
        }
    }
}

/// The write-ahead log of one server.
///
/// Appends are volatile until [`Wal::mark_durable`] confirms the disk flush
/// (log appends complete strictly in order, so durability is a prefix);
/// [`Wal::crash`] truncates the un-flushed tail and rebuilds the index,
/// which is exactly the state a rebooted server recovers from.
#[derive(Debug, Clone, Default)]
pub struct Wal {
    records: RecordSlots,
    next_seq: u64,
    /// All records with seq < durable_next are on disk.
    durable_next: u64,
    index: FxHashMap<OpId, OpLogState>,
    valid_bytes: u64,
    limit: Option<u64>,
    total_appended: u64,
    total_pruned: u64,
    /// Cumulative appends per record family (never decremented — pruning
    /// and crashes don't undo that the protocol step happened). Fault
    /// injection keys crash points on these counts.
    appended_counts: [u64; RecordFamily::COUNT],
    /// Cumulative flush completions per record family.
    durable_counts: [u64; RecordFamily::COUNT],
    /// Families of the not-yet-durable suffix, in append order, so
    /// [`Wal::mark_durable`] can attribute flush completions to families
    /// without re-reading (possibly already pruned) records.
    tail_families: VecDeque<(u64, RecordFamily)>,
    /// Crashes that actually dropped appended records (torn or volatile
    /// tail) — the introspection plane's `cx_wal_truncations_total`.
    truncations: u64,
}

impl Wal {
    pub fn new(limit: Option<u64>) -> Self {
        Self {
            limit,
            // Pre-sized to the typical in-flight op count so the steady
            // state never pays a rehash.
            index: FxHashMap::with_capacity_and_hasher(256, FxBuildHasher::default()),
            ..Self::default()
        }
    }

    /// Unpruned record volume — the paper's "valid-records' size"
    /// (Figure 7(b), Table V).
    pub fn valid_bytes(&self) -> u64 {
        self.valid_bytes
    }

    pub fn limit(&self) -> Option<u64> {
        self.limit
    }

    pub fn total_appended_bytes(&self) -> u64 {
        self.total_appended
    }

    pub fn total_pruned_bytes(&self) -> u64 {
        self.total_pruned
    }

    /// Crashes that dropped at least one appended record.
    pub fn truncations(&self) -> u64 {
        self.truncations
    }

    /// Would appending `bytes` more exceed the log's upper limit?
    /// Only Result-Records are limited: commit/abort/complete records must
    /// always be appendable or the server could never prune its way out of
    /// a full log.
    pub fn has_room(&self, bytes: u64) -> bool {
        match self.limit {
            Some(l) => self.valid_bytes + bytes <= l,
            None => true,
        }
    }

    /// Append a record. Result-Records respect the size limit
    /// ([`CxError::LogFull`]); control records always succeed. Returns the
    /// sequence number and encoded size (the caller submits a disk append
    /// of that many bytes and calls [`Wal::mark_durable`] on completion).
    pub fn append(&mut self, rec: Record) -> CxResult<(SeqNo, u64)> {
        let bytes = rec.encoded_len();
        if matches!(rec, Record::Result { .. }) && !self.has_room(bytes) {
            return Err(CxError::LogFull {
                needed: bytes,
                available: self
                    .limit
                    .map(|l| l.saturating_sub(self.valid_bytes))
                    .unwrap_or(u64::MAX),
            });
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        let family = rec.family();
        self.appended_counts[family.index()] += 1;
        self.tail_families.push_back((seq, family));
        self.index_record(&rec, bytes, seq);
        self.records.insert(seq, rec);
        self.valid_bytes += bytes;
        self.total_appended += bytes;
        Ok((SeqNo(seq), bytes))
    }

    fn index_record(&mut self, rec: &Record, bytes: u64, seq: u64) {
        let st = self.index.entry(rec.op_id()).or_default();
        st.bytes += bytes;
        st.seqs.push(seq);
        match rec {
            Record::Result {
                role,
                peer,
                subop,
                verdict,
                invalidated,
                ..
            } => {
                st.role = Some(*role);
                st.peer = *peer;
                st.subop = Some(*subop);
                st.verdict = Some(*verdict);
                st.invalidated = *invalidated;
            }
            Record::Commit { .. } => st.outcome = Some(Outcome::Committed),
            Record::Abort { .. } => st.outcome = Some(Outcome::Aborted),
            Record::Complete { .. } => st.complete = true,
        }
    }

    /// Mark every record with sequence number `<= upto` durable.
    pub fn mark_durable(&mut self, upto: SeqNo) {
        self.durable_next = self.durable_next.max(upto.0 + 1);
        while matches!(self.tail_families.front(), Some(&(seq, _)) if seq < self.durable_next) {
            let (_, family) = self.tail_families.pop_front().expect("checked front");
            self.durable_counts[family.index()] += 1;
        }
    }

    /// Cumulative appends per record family, indexed by
    /// [`RecordFamily::index`].
    pub fn appended_counts(&self) -> [u64; RecordFamily::COUNT] {
        self.appended_counts
    }

    /// Cumulative flush completions per record family, indexed by
    /// [`RecordFamily::index`].
    pub fn durable_counts(&self) -> [u64; RecordFamily::COUNT] {
        self.durable_counts
    }

    /// True once the given append survived a flush.
    pub fn is_durable(&self, seq: SeqNo) -> bool {
        seq.0 < self.durable_next
    }

    /// Look up an operation in the index.
    pub fn op_state(&self, op: &OpId) -> Option<&OpLogState> {
        self.index.get(op)
    }

    /// Flip the invalidation flag on an operation's Result-Record
    /// (§III-C step 4: "the participant first invalidates the execution of
    /// Ep-B by invalidating the Result-Record of Ep-B").
    pub fn invalidate_result(&mut self, op: &OpId) -> CxResult<()> {
        let st = self.index.get_mut(op).ok_or(CxError::NoSuchRecord(*op))?;
        st.invalidated = true;
        // The index knows exactly which records belong to this op; no need
        // to scan the whole log.
        for seq in st.seqs.iter() {
            if let Some(Record::Result { invalidated, .. }) = self.records.get_mut(seq) {
                *invalidated = true;
            }
        }
        Ok(())
    }

    /// Prune one operation's records if its pruning rule allows. Returns
    /// freed bytes.
    pub fn prune_op(&mut self, op: &OpId) -> u64 {
        let Some(st) = self.index.get(op) else {
            return 0;
        };
        if !st.prunable() {
            return 0;
        }
        let freed = st.bytes;
        let st = self.index.remove(op).expect("checked above");
        for seq in st.seqs.iter() {
            self.records.remove(seq);
        }
        self.valid_bytes -= freed;
        self.total_pruned += freed;
        freed
    }

    /// Prune every prunable operation ("the log records are periodically
    /// pruned after the commitments are performed", §III-D).
    pub fn prune_all(&mut self) -> u64 {
        let prunable: Vec<OpId> = self
            .index
            .iter()
            .filter(|(_, st)| st.prunable())
            .map(|(op, _)| *op)
            .collect();
        prunable.iter().map(|op| self.prune_op(op)).sum()
    }

    /// Operations whose commitment is unfinished, grouped by this server's
    /// role — the recovery protocol's work list ("resume all half-completed
    /// commitments of cross-server operations left in the log", §III-D).
    pub fn half_completed(&self) -> (Vec<OpId>, Vec<OpId>) {
        let mut coord = Vec::new();
        let mut parti = Vec::new();
        for (op, st) in &self.index {
            match st.role {
                Some(Role::Coordinator) if !st.complete => coord.push(*op),
                Some(Role::Participant) if st.outcome.is_none() => parti.push(*op),
                _ => {}
            }
        }
        coord.sort_unstable();
        parti.sort_unstable();
        (coord, parti)
    }

    /// Crash: lose every record that never became durable, then rebuild
    /// the index from what remains.
    pub fn crash(&mut self) {
        self.crash_torn(0);
    }

    /// Crash with a torn tail. The durable prefix always survives — an
    /// acknowledgement is only sent after its flush completed, so durable
    /// records are physically on the platter — plus whichever *whole*
    /// volatile records fit in the first `extra_bytes` of the in-flight
    /// suffix: the bytes the disk happened to have written when power was
    /// lost. A partially-written record never survives; the on-disk format
    /// rejects torn encodings (see [`crate::decode_record`]), so the
    /// recovery scan stops at the last whole record.
    ///
    /// Survivors are promoted to durable: they are on disk now, whatever
    /// the in-flight flush bookkeeping said when power failed.
    pub fn crash_torn(&mut self, extra_bytes: u64) {
        let mut survive_next = self.durable_next;
        if extra_bytes > 0 {
            let mut budget = extra_bytes;
            for (seq, rec) in self.records.iter() {
                if seq < self.durable_next {
                    continue;
                }
                let len = rec.encoded_len();
                if len > budget {
                    break;
                }
                budget -= len;
                survive_next = seq + 1;
            }
        }
        if survive_next < self.next_seq {
            self.truncations += 1;
        }
        self.records.truncate_from(survive_next);
        // Promote the surviving volatile records to durable; the rest of
        // the in-flight suffix is gone for good.
        while matches!(self.tail_families.front(), Some(&(seq, _)) if seq < survive_next) {
            let (_, family) = self.tail_families.pop_front().expect("checked front");
            self.durable_counts[family.index()] += 1;
        }
        self.tail_families.clear();
        self.durable_next = self.durable_next.max(survive_next);
        self.rebuild_index();
    }

    fn rebuild_index(&mut self) {
        self.index.clear();
        self.valid_bytes = 0;
        let records: Vec<(u64, Record)> =
            self.records.iter().map(|(s, r)| (s, r.clone())).collect();
        for (seq, rec) in &records {
            let bytes = rec.encoded_len();
            self.index_record(rec, bytes, *seq);
            self.valid_bytes += bytes;
        }
    }

    /// Records in append order (the recovery scan).
    pub fn scan(&self) -> impl Iterator<Item = (SeqNo, &Record)> {
        self.records.iter().map(|(s, r)| (SeqNo(s), r))
    }

    pub fn record_count(&self) -> usize {
        self.records.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cx_types::{FileKind, InodeNo, ProcId};

    fn oid(seq: u64) -> OpId {
        OpId::new(ProcId::new(0, 0), seq)
    }

    fn result(op: OpId, role: Role) -> Record {
        Record::Result {
            op_id: op,
            role,
            peer: Some(ServerId(1)),
            subop: SubOp::CreateInode {
                ino: InodeNo(10),
                kind: FileKind::Regular,
            },
            verdict: Verdict::Yes,
            invalidated: false,
        }
    }

    #[test]
    fn append_and_index() {
        let mut wal = Wal::new(None);
        let (s0, b0) = wal.append(result(oid(1), Role::Coordinator)).unwrap();
        assert_eq!(s0, SeqNo(0));
        assert_eq!(wal.valid_bytes(), b0);
        let st = wal.op_state(&oid(1)).unwrap();
        assert_eq!(st.role, Some(Role::Coordinator));
        assert_eq!(st.verdict, Some(Verdict::Yes));
        assert!(!st.prunable());
    }

    #[test]
    fn coordinator_prunes_on_complete_only() {
        let mut wal = Wal::new(None);
        wal.append(result(oid(1), Role::Coordinator)).unwrap();
        wal.append(Record::Commit { op_id: oid(1) }).unwrap();
        assert_eq!(wal.prune_op(&oid(1)), 0, "commit alone is not enough");
        wal.append(Record::Complete { op_id: oid(1) }).unwrap();
        let freed = wal.prune_op(&oid(1));
        assert!(freed > 0);
        assert_eq!(wal.valid_bytes(), 0);
        assert_eq!(wal.record_count(), 0);
    }

    #[test]
    fn participant_prunes_on_outcome() {
        let mut wal = Wal::new(None);
        wal.append(result(oid(1), Role::Participant)).unwrap();
        assert_eq!(wal.prune_op(&oid(1)), 0);
        wal.append(Record::Abort { op_id: oid(1) }).unwrap();
        assert!(wal.prune_op(&oid(1)) > 0);
        assert_eq!(wal.valid_bytes(), 0);
    }

    #[test]
    fn log_limit_blocks_result_records_but_not_control() {
        let mut wal = Wal::new(Some(400)); // each Result-Record is 191 bytes
        wal.append(result(oid(1), Role::Coordinator)).unwrap();
        wal.append(result(oid(2), Role::Coordinator)).unwrap();
        let err = wal.append(result(oid(3), Role::Coordinator)).unwrap_err();
        assert!(matches!(err, CxError::LogFull { .. }));
        // control records still go through
        wal.append(Record::Commit { op_id: oid(1) }).unwrap();
        wal.append(Record::Complete { op_id: oid(1) }).unwrap();
        // pruning makes room again
        assert!(wal.prune_op(&oid(1)) > 0);
        wal.append(result(oid(3), Role::Coordinator)).unwrap();
    }

    #[test]
    fn crash_truncates_volatile_tail() {
        let mut wal = Wal::new(None);
        let (s1, _) = wal.append(result(oid(1), Role::Coordinator)).unwrap();
        wal.append(result(oid(2), Role::Coordinator)).unwrap();
        wal.mark_durable(s1);
        assert!(wal.is_durable(s1));
        wal.crash();
        assert!(wal.op_state(&oid(1)).is_some());
        assert!(
            wal.op_state(&oid(2)).is_none(),
            "un-flushed record must vanish on crash"
        );
        assert_eq!(wal.record_count(), 1);
    }

    #[test]
    fn half_completed_partition() {
        let mut wal = Wal::new(None);
        wal.append(result(oid(1), Role::Coordinator)).unwrap();
        wal.append(result(oid(2), Role::Participant)).unwrap();
        wal.append(result(oid(3), Role::Coordinator)).unwrap();
        wal.append(Record::Commit { op_id: oid(3) }).unwrap();
        wal.append(Record::Complete { op_id: oid(3) }).unwrap();
        wal.append(result(oid(4), Role::Participant)).unwrap();
        wal.append(Record::Commit { op_id: oid(4) }).unwrap();
        let (coord, parti) = wal.half_completed();
        assert_eq!(coord, vec![oid(1)], "op 3 is complete");
        assert_eq!(parti, vec![oid(2)], "op 4 has its outcome");
    }

    #[test]
    fn invalidate_result_flips_flag() {
        let mut wal = Wal::new(None);
        wal.append(result(oid(1), Role::Participant)).unwrap();
        wal.invalidate_result(&oid(1)).unwrap();
        assert!(wal.op_state(&oid(1)).unwrap().invalidated);
        // and the stored record reflects it (visible to recovery scans)
        let (_, rec) = wal.scan().next().unwrap();
        assert!(matches!(
            rec,
            Record::Result {
                invalidated: true,
                ..
            }
        ));
        assert!(wal.invalidate_result(&oid(9)).is_err());
    }

    #[test]
    fn prune_all_frees_everything_eligible() {
        let mut wal = Wal::new(None);
        for i in 0..10 {
            wal.append(result(oid(i), Role::Participant)).unwrap();
            if i % 2 == 0 {
                wal.append(Record::Commit { op_id: oid(i) }).unwrap();
            }
        }
        let before = wal.valid_bytes();
        let freed = wal.prune_all();
        assert!(freed > 0 && freed < before);
        let (_, parti) = wal.half_completed();
        assert_eq!(parti.len(), 5, "odd ops remain");
    }

    #[test]
    fn crash_rebuild_preserves_index_consistency() {
        let mut wal = Wal::new(None);
        let (_, _) = wal.append(result(oid(1), Role::Participant)).unwrap();
        let (s2, _) = wal.append(Record::Commit { op_id: oid(1) }).unwrap();
        wal.mark_durable(s2);
        wal.crash();
        let st = wal.op_state(&oid(1)).unwrap();
        assert_eq!(st.outcome, Some(Outcome::Committed));
        assert!(st.prunable());
        assert_eq!(
            wal.valid_bytes(),
            wal.scan().map(|(_, r)| r.encoded_len()).sum::<u64>()
        );
    }

    #[test]
    fn family_counters_track_appends_and_flushes() {
        let mut wal = Wal::new(None);
        let (s1, _) = wal.append(result(oid(1), Role::Participant)).unwrap();
        wal.append(Record::Commit { op_id: oid(1) }).unwrap();
        let idx = |f: RecordFamily| f.index();
        assert_eq!(wal.appended_counts()[idx(RecordFamily::Result)], 1);
        assert_eq!(wal.appended_counts()[idx(RecordFamily::Commit)], 1);
        assert_eq!(wal.durable_counts(), [0; RecordFamily::COUNT]);
        wal.mark_durable(s1);
        assert_eq!(wal.durable_counts()[idx(RecordFamily::Result)], 1);
        assert_eq!(wal.durable_counts()[idx(RecordFamily::Commit)], 0);
        // pruning never decrements the cumulative counters
        wal.append(Record::Complete { op_id: oid(1) }).unwrap();
        wal.prune_all();
        assert_eq!(wal.appended_counts()[idx(RecordFamily::Result)], 1);
    }

    #[test]
    fn torn_crash_keeps_whole_volatile_prefix() {
        let mut wal = Wal::new(None);
        let (s1, _) = wal.append(result(oid(1), Role::Participant)).unwrap();
        let (_, b2) = wal.append(result(oid(2), Role::Participant)).unwrap();
        wal.append(result(oid(3), Role::Participant)).unwrap();
        wal.mark_durable(s1);
        // enough torn bytes for op 2's whole record but not op 3's
        wal.crash_torn(b2 + 1);
        assert!(wal.op_state(&oid(1)).is_some());
        assert!(
            wal.op_state(&oid(2)).is_some(),
            "whole torn record survives"
        );
        assert!(wal.op_state(&oid(3)).is_none(), "partial record is lost");
        // survivors are durable now: a second crash keeps them
        wal.crash();
        assert!(wal.op_state(&oid(2)).is_some());
        assert_eq!(wal.record_count(), 2);
    }

    #[test]
    fn torn_crash_with_zero_extra_matches_plain_crash() {
        let build = || {
            let mut wal = Wal::new(None);
            let (s, _) = wal.append(result(oid(1), Role::Coordinator)).unwrap();
            wal.append(result(oid(2), Role::Coordinator)).unwrap();
            wal.mark_durable(s);
            wal
        };
        let mut a = build();
        let mut b = build();
        a.crash();
        b.crash_torn(0);
        assert_eq!(a.record_count(), b.record_count());
        assert_eq!(a.valid_bytes(), b.valid_bytes());
    }

    #[test]
    fn truncation_counter_tracks_lossy_crashes_only() {
        let mut wal = Wal::new(None);
        let (s1, _) = wal.append(result(oid(1), Role::Coordinator)).unwrap();
        wal.mark_durable(s1);
        wal.crash();
        assert_eq!(wal.truncations(), 0, "nothing volatile was lost");
        wal.append(result(oid(2), Role::Coordinator)).unwrap();
        wal.crash();
        assert_eq!(wal.truncations(), 1, "volatile record dropped");
        let (s3, _) = wal.append(result(oid(3), Role::Coordinator)).unwrap();
        let (_, b4) = wal.append(result(oid(4), Role::Coordinator)).unwrap();
        wal.mark_durable(s3);
        wal.crash_torn(b4); // whole torn record survives — still no loss
        assert_eq!(wal.truncations(), 1);
    }

    #[test]
    fn accounting_totals() {
        let mut wal = Wal::new(None);
        wal.append(result(oid(1), Role::Participant)).unwrap();
        wal.append(Record::Commit { op_id: oid(1) }).unwrap();
        let appended = wal.total_appended_bytes();
        assert_eq!(appended, wal.valid_bytes());
        wal.prune_all();
        assert_eq!(wal.total_pruned_bytes(), appended);
        assert_eq!(wal.valid_bytes(), 0);
    }
}
