//! In-memory metadata rows, sub-op execution, undo, and dirty tracking.

use cx_simio::object_page;
use cx_types::{CxError, CxResult, FileKind, FxHashMap, InodeNo, Name, ObjectId, SubOp};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// An inode row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Inode {
    pub kind: FileKind,
    /// Link count. Files and directories start at 1 (we do not model the
    /// "." / ".." self-links); `ReleaseInode`/`DecNlink` free the inode
    /// when it reaches 0 (Table I).
    pub nlink: u32,
    /// Attribute version, bumped by setattr and entry updates on the
    /// parent ("update parent inode", Table I).
    pub version: u64,
}

impl Inode {
    fn new(kind: FileKind) -> Self {
        Self {
            kind,
            nlink: 1,
            version: 0,
        }
    }
}

/// Inverse of one applied sub-op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Undo {
    /// Nothing to roll back (reads).
    Nothing,
    RemoveDentry {
        parent: InodeNo,
        name: Name,
    },
    RestoreDentry {
        parent: InodeNo,
        name: Name,
        child: InodeNo,
    },
    RemoveInode {
        ino: InodeNo,
    },
    /// Restores an inode freed (or decremented) by Release/DecNlink.
    RestoreInode {
        ino: InodeNo,
        inode: Inode,
    },
    DecNlink {
        ino: InodeNo,
    },
    RestoreVersion {
        ino: InodeNo,
        version: u64,
    },
}

/// Cumulative store statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StoreStats {
    pub applies: u64,
    pub undos: u64,
    pub reads: u64,
    pub writeback_objects: u64,
}

/// One server's metadata rows.
///
/// The row maps use the Fx hasher: lookups dominate the sub-op hot path,
/// and nothing behavioral reads them in iteration order ([`GlobalView`]
/// re-sorts into BTreeMaps when merging; the store prop tests sort their
/// snapshots). The `dirty` set stays a `BTreeSet` on purpose — its
/// iteration order becomes the write-back page list, which the disk model
/// times, so it is load-bearing for determinism.
///
/// [`GlobalView`]: crate::GlobalView
#[derive(Debug, Clone, Default)]
pub struct MetaStore {
    inodes: FxHashMap<InodeNo, Inode>,
    dentries: FxHashMap<(InodeNo, Name), InodeNo>,
    /// Per-server directory partition attributes ("update parent inode" on
    /// the coordinator updates this server's partition row of the parent).
    dir_partitions: FxHashMap<InodeNo, u64>,
    dirty: BTreeSet<ObjectId>,
    stats: StoreStats,
}

impl MetaStore {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn stats(&self) -> &StoreStats {
        &self.stats
    }

    // ---- queries ----

    pub fn inode(&self, ino: InodeNo) -> Option<&Inode> {
        self.inodes.get(&ino)
    }

    pub fn lookup(&self, parent: InodeNo, name: Name) -> Option<InodeNo> {
        self.dentries.get(&(parent, name)).copied()
    }

    pub fn inode_count(&self) -> usize {
        self.inodes.len()
    }

    pub fn dentry_count(&self) -> usize {
        self.dentries.len()
    }

    pub fn dentries(&self) -> impl Iterator<Item = (&(InodeNo, Name), &InodeNo)> {
        self.dentries.iter()
    }

    pub fn inodes(&self) -> impl Iterator<Item = (&InodeNo, &Inode)> {
        self.inodes.iter()
    }

    /// Pre-populate an inode (workload setup: traces begin with existing
    /// directories and files).
    pub fn seed_inode(&mut self, ino: InodeNo, kind: FileKind, nlink: u32) {
        self.inodes.insert(
            ino,
            Inode {
                kind,
                nlink,
                version: 0,
            },
        );
    }

    /// Pre-populate a dentry.
    pub fn seed_dentry(&mut self, parent: InodeNo, name: Name, child: InodeNo) {
        self.dentries.insert((parent, name), child);
    }

    // ---- execution ----

    /// Execute one sub-op against the in-memory rows. On success the
    /// touched objects become dirty and an [`Undo`] is returned; on error
    /// nothing changed.
    pub fn apply(&mut self, subop: &SubOp) -> CxResult<Undo> {
        let undo = self.apply_inner(subop)?;
        if subop.is_write() {
            for obj in subop.objects().iter() {
                self.dirty.insert(obj);
            }
            self.stats.applies += 1;
        } else {
            self.stats.reads += 1;
        }
        Ok(undo)
    }

    fn apply_inner(&mut self, subop: &SubOp) -> CxResult<Undo> {
        match *subop {
            SubOp::InsertEntry {
                parent,
                name,
                child,
                ..
            } => {
                let key = (parent, name);
                if self.dentries.contains_key(&key) {
                    return Err(CxError::EntryExists(ObjectId::Dentry(parent, name)));
                }
                self.dentries.insert(key, child);
                *self.dir_partitions.entry(parent).or_insert(0) += 1;
                Ok(Undo::RemoveDentry { parent, name })
            }
            SubOp::RemoveEntry {
                parent,
                name,
                child,
            } => {
                let key = (parent, name);
                match self.dentries.get(&key) {
                    Some(&c) if c == child => {
                        self.dentries.remove(&key);
                        *self.dir_partitions.entry(parent).or_insert(0) += 1;
                        Ok(Undo::RestoreDentry {
                            parent,
                            name,
                            child,
                        })
                    }
                    Some(_) => Err(CxError::WrongKind(ObjectId::Dentry(parent, name))),
                    None => Err(CxError::NotFound(ObjectId::Dentry(parent, name))),
                }
            }
            SubOp::CreateInode { ino, kind } => {
                if self.inodes.contains_key(&ino) {
                    return Err(CxError::EntryExists(ObjectId::Inode(ino)));
                }
                self.inodes.insert(ino, Inode::new(kind));
                Ok(Undo::RemoveInode { ino })
            }
            SubOp::ReleaseInode { ino } | SubOp::DecNlink { ino } => {
                let inode = *self
                    .inodes
                    .get(&ino)
                    .ok_or(CxError::NotFound(ObjectId::Inode(ino)))?;
                if inode.nlink <= 1 {
                    // frees the inode if the nlink reaches 0 (Table I)
                    self.inodes.remove(&ino);
                } else {
                    let e = self.inodes.get_mut(&ino).expect("checked above");
                    e.nlink -= 1;
                    e.version += 1;
                }
                Ok(Undo::RestoreInode { ino, inode })
            }
            SubOp::IncNlink { ino } => {
                let e = self
                    .inodes
                    .get_mut(&ino)
                    .ok_or(CxError::NotFound(ObjectId::Inode(ino)))?;
                e.nlink += 1;
                e.version += 1;
                Ok(Undo::DecNlink { ino })
            }
            SubOp::TouchInode { ino } => {
                let e = self
                    .inodes
                    .get_mut(&ino)
                    .ok_or(CxError::NotFound(ObjectId::Inode(ino)))?;
                let version = e.version;
                e.version += 1;
                Ok(Undo::RestoreVersion { ino, version })
            }
            SubOp::ReadInode { ino } => {
                self.inodes
                    .get(&ino)
                    .ok_or(CxError::NotFound(ObjectId::Inode(ino)))?;
                Ok(Undo::Nothing)
            }
            SubOp::ReadEntry { parent, name } => {
                self.dentries
                    .get(&(parent, name))
                    .ok_or(CxError::NotFound(ObjectId::Dentry(parent, name)))?;
                Ok(Undo::Nothing)
            }
            SubOp::ReadDir { dir } => {
                // A directory partition may legitimately be empty; reading
                // it succeeds as long as the directory exists anywhere. We
                // accept locally-unknown directories (their partition rows
                // are created lazily), matching OrangeFS semantics.
                let _ = dir;
                Ok(Undo::Nothing)
            }
        }
    }

    /// Roll back one applied sub-op (abort path). The touched objects are
    /// dirty again: the rollback itself must reach the database.
    pub fn undo(&mut self, undo: Undo) {
        match undo {
            Undo::Nothing => return,
            Undo::RemoveDentry { parent, name } => {
                self.dentries.remove(&(parent, name));
                self.dirty.insert(ObjectId::Dentry(parent, name));
                self.dirty.insert(ObjectId::Inode(parent));
            }
            Undo::RestoreDentry {
                parent,
                name,
                child,
            } => {
                self.dentries.insert((parent, name), child);
                self.dirty.insert(ObjectId::Dentry(parent, name));
                self.dirty.insert(ObjectId::Inode(parent));
            }
            Undo::RemoveInode { ino } => {
                self.inodes.remove(&ino);
                self.dirty.insert(ObjectId::Inode(ino));
            }
            Undo::RestoreInode { ino, inode } => {
                self.inodes.insert(ino, inode);
                self.dirty.insert(ObjectId::Inode(ino));
            }
            Undo::DecNlink { ino } => {
                if let Some(e) = self.inodes.get_mut(&ino) {
                    e.nlink -= 1;
                    e.version += 1;
                }
                self.dirty.insert(ObjectId::Inode(ino));
            }
            Undo::RestoreVersion { ino, version } => {
                if let Some(e) = self.inodes.get_mut(&ino) {
                    e.version = version;
                }
                self.dirty.insert(ObjectId::Inode(ino));
            }
        }
        self.stats.undos += 1;
    }

    // ---- write-back ----

    pub fn dirty_count(&self) -> usize {
        self.dirty.len()
    }

    /// Drain the dirty set as disk pages for a write-back batch.
    pub fn take_dirty_pages(&mut self) -> Vec<u64> {
        let pages: Vec<u64> = self.dirty.iter().map(object_page).collect();
        self.stats.writeback_objects += self.dirty.len() as u64;
        self.dirty.clear();
        pages
    }

    /// Drain the dirty pages of the given objects only (per-operation
    /// write-back used by the SE baseline's synchronous path).
    pub fn take_dirty_pages_of(&mut self, objs: impl IntoIterator<Item = ObjectId>) -> Vec<u64> {
        let mut pages = Vec::new();
        for obj in objs {
            if self.dirty.remove(&obj) {
                self.stats.writeback_objects += 1;
                pages.push(object_page(&obj));
            }
        }
        pages
    }

    /// Crash: the in-memory image is volatile. The caller (recovery)
    /// rebuilds state by replaying durable log records and re-reading the
    /// on-disk database; for the simulation the database image is exactly
    /// the committed state, which recovery reconstructs via
    /// [`MetaStore::apply`].
    pub fn clear(&mut self) {
        self.inodes.clear();
        self.dentries.clear();
        self.dir_partitions.clear();
        self.dirty.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn create(ino: u64) -> SubOp {
        SubOp::CreateInode {
            ino: InodeNo(ino),
            kind: FileKind::Regular,
        }
    }

    fn insert(parent: u64, name: u64, child: u64) -> SubOp {
        SubOp::InsertEntry {
            parent: InodeNo(parent),
            name: Name(name),
            child: InodeNo(child),
            kind: FileKind::Regular,
        }
    }

    #[test]
    fn create_then_stat_then_release() {
        let mut s = MetaStore::new();
        s.apply(&create(10)).unwrap();
        assert_eq!(s.inode(InodeNo(10)).unwrap().nlink, 1);
        s.apply(&SubOp::ReadInode { ino: InodeNo(10) }).unwrap();
        s.apply(&SubOp::ReleaseInode { ino: InodeNo(10) }).unwrap();
        assert!(s.inode(InodeNo(10)).is_none(), "freed at nlink 0");
    }

    #[test]
    fn duplicate_create_fails_cleanly() {
        let mut s = MetaStore::new();
        s.apply(&create(10)).unwrap();
        let err = s.apply(&create(10)).unwrap_err();
        assert!(matches!(err, CxError::EntryExists(_)));
        assert_eq!(s.inode_count(), 1);
    }

    #[test]
    fn insert_remove_entry_round_trip() {
        let mut s = MetaStore::new();
        s.apply(&insert(1, 5, 10)).unwrap();
        assert_eq!(s.lookup(InodeNo(1), Name(5)), Some(InodeNo(10)));
        assert!(matches!(
            s.apply(&insert(1, 5, 11)).unwrap_err(),
            CxError::EntryExists(_)
        ));
        s.apply(&SubOp::RemoveEntry {
            parent: InodeNo(1),
            name: Name(5),
            child: InodeNo(10),
        })
        .unwrap();
        assert_eq!(s.lookup(InodeNo(1), Name(5)), None);
    }

    #[test]
    fn remove_entry_checks_child_identity() {
        let mut s = MetaStore::new();
        s.apply(&insert(1, 5, 10)).unwrap();
        let err = s
            .apply(&SubOp::RemoveEntry {
                parent: InodeNo(1),
                name: Name(5),
                child: InodeNo(99),
            })
            .unwrap_err();
        assert!(matches!(err, CxError::WrongKind(_)));
    }

    #[test]
    fn undo_reverses_every_mutation() {
        let mut s = MetaStore::new();

        let u = s.apply(&insert(1, 5, 10)).unwrap();
        s.undo(u);
        assert_eq!(s.lookup(InodeNo(1), Name(5)), None);

        let u = s.apply(&create(10)).unwrap();
        s.undo(u);
        assert!(s.inode(InodeNo(10)).is_none());

        s.apply(&create(10)).unwrap();
        let u = s.apply(&SubOp::IncNlink { ino: InodeNo(10) }).unwrap();
        s.undo(u);
        assert_eq!(s.inode(InodeNo(10)).unwrap().nlink, 1);

        let u = s.apply(&SubOp::ReleaseInode { ino: InodeNo(10) }).unwrap();
        assert!(s.inode(InodeNo(10)).is_none());
        s.undo(u);
        assert_eq!(s.inode(InodeNo(10)).unwrap().nlink, 1);

        let before = s.inode(InodeNo(10)).unwrap().version;
        let u = s.apply(&SubOp::TouchInode { ino: InodeNo(10) }).unwrap();
        s.undo(u);
        assert_eq!(s.inode(InodeNo(10)).unwrap().version, before);
    }

    #[test]
    fn nlink_chain_link_unlink() {
        let mut s = MetaStore::new();
        s.apply(&create(10)).unwrap();
        s.apply(&SubOp::IncNlink { ino: InodeNo(10) }).unwrap();
        assert_eq!(s.inode(InodeNo(10)).unwrap().nlink, 2);
        s.apply(&SubOp::DecNlink { ino: InodeNo(10) }).unwrap();
        assert_eq!(s.inode(InodeNo(10)).unwrap().nlink, 1);
        s.apply(&SubOp::DecNlink { ino: InodeNo(10) }).unwrap();
        assert!(s.inode(InodeNo(10)).is_none(), "last unlink frees");
    }

    #[test]
    fn reads_fail_on_missing_objects() {
        let mut s = MetaStore::new();
        assert!(s.apply(&SubOp::ReadInode { ino: InodeNo(9) }).is_err());
        assert!(s
            .apply(&SubOp::ReadEntry {
                parent: InodeNo(1),
                name: Name(2),
            })
            .is_err());
        assert_eq!(s.stats().reads, 0, "failed reads are not counted");
    }

    #[test]
    fn dirty_tracking_and_writeback() {
        let mut s = MetaStore::new();
        s.apply(&insert(1, 5, 10)).unwrap();
        s.apply(&create(10)).unwrap();
        assert_eq!(s.dirty_count(), 3); // dentry + parent partition + inode
        let pages = s.take_dirty_pages();
        assert_eq!(pages.len(), 3);
        assert_eq!(s.dirty_count(), 0);
        // reads never dirty anything
        s.apply(&SubOp::ReadInode { ino: InodeNo(10) }).unwrap();
        assert_eq!(s.dirty_count(), 0);
    }

    #[test]
    fn selective_writeback_for_sync_path() {
        let mut s = MetaStore::new();
        s.apply(&create(10)).unwrap();
        s.apply(&create(11)).unwrap();
        let pages = s.take_dirty_pages_of([ObjectId::Inode(InodeNo(10))]);
        assert_eq!(pages.len(), 1);
        assert_eq!(s.dirty_count(), 1, "other object stays dirty");
    }

    #[test]
    fn failed_apply_leaves_no_dirt() {
        let mut s = MetaStore::new();
        let _ = s.apply(&SubOp::IncNlink { ino: InodeNo(9) });
        assert_eq!(s.dirty_count(), 0);
    }

    #[test]
    fn seeding_supports_pre_populated_namespaces() {
        let mut s = MetaStore::new();
        s.seed_inode(InodeNo(1), FileKind::Directory, 1);
        s.seed_dentry(InodeNo(1), Name(7), InodeNo(10));
        s.seed_inode(InodeNo(10), FileKind::Regular, 1);
        assert_eq!(s.lookup(InodeNo(1), Name(7)), Some(InodeNo(10)));
        assert_eq!(s.dirty_count(), 0, "seeding is clean");
    }
}
