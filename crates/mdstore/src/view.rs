//! Cluster-wide consistency checking.
//!
//! The paper's correctness goal: "the whole system should either see the
//! outcomes of all sub-ops of a cross-server operation, or none of them.
//! Hence, the metadata cross servers are consistent after the execution of
//! a cross-server operation" (§II-A). [`GlobalView`] merges every server's
//! store and verifies exactly that, once the cluster has quiesced (no
//! pending commitments).

use crate::store::MetaStore;
use cx_types::{FileKind, InodeNo, Name};
use std::collections::BTreeMap;

/// A detected cross-server inconsistency.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// A directory entry references an inode that exists on no server.
    DanglingEntry {
        parent: InodeNo,
        name: Name,
        child: InodeNo,
    },
    /// An inode's nlink disagrees with the number of entries referencing
    /// it.
    NlinkMismatch {
        ino: InodeNo,
        nlink: u32,
        referenced: u32,
    },
    /// An inode no entry references (orphan). Roots are exempt.
    OrphanInode { ino: InodeNo },
    /// The same inode exists on two servers (placement violation).
    DuplicateInode { ino: InodeNo },
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::DanglingEntry {
                parent,
                name,
                child,
            } => write!(
                f,
                "dangling entry {}/{:x} -> missing inode {}",
                parent.0, name.0, child.0
            ),
            Violation::NlinkMismatch {
                ino,
                nlink,
                referenced,
            } => write!(
                f,
                "inode {} has nlink {} but {} referencing entries",
                ino.0, nlink, referenced
            ),
            Violation::OrphanInode { ino } => write!(f, "orphan inode {}", ino.0),
            Violation::DuplicateInode { ino } => write!(f, "inode {} on two servers", ino.0),
        }
    }
}

/// Merged view over all servers' stores.
#[derive(Debug, Default)]
pub struct GlobalView {
    inodes: BTreeMap<InodeNo, (FileKind, u32)>,
    dentries: BTreeMap<(InodeNo, Name), InodeNo>,
    duplicates: Vec<InodeNo>,
}

impl GlobalView {
    /// Merge the given stores (one per server).
    pub fn merge<'a>(stores: impl IntoIterator<Item = &'a MetaStore>) -> Self {
        let mut view = GlobalView::default();
        for store in stores {
            for (ino, inode) in store.inodes() {
                if view
                    .inodes
                    .insert(*ino, (inode.kind, inode.nlink))
                    .is_some()
                {
                    view.duplicates.push(*ino);
                }
            }
            for (&(parent, name), &child) in store.dentries() {
                view.dentries.insert((parent, name), child);
            }
        }
        view
    }

    pub fn inode_count(&self) -> usize {
        self.inodes.len()
    }

    pub fn dentry_count(&self) -> usize {
        self.dentries.len()
    }

    pub fn contains_dentry(&self, parent: InodeNo, name: Name) -> bool {
        self.dentries.contains_key(&(parent, name))
    }

    pub fn contains_inode(&self, ino: InodeNo) -> bool {
        self.inodes.contains_key(&ino)
    }

    /// The inode a directory entry points at, if the entry exists.
    pub fn dentry(&self, parent: InodeNo, name: Name) -> Option<InodeNo> {
        self.dentries.get(&(parent, name)).copied()
    }

    /// An inode's kind and link count, if it exists on any server.
    pub fn inode(&self, ino: InodeNo) -> Option<(FileKind, u32)> {
        self.inodes.get(&ino).copied()
    }

    /// All directory entries, in key order.
    pub fn dentries(&self) -> impl Iterator<Item = (InodeNo, Name, InodeNo)> + '_ {
        self.dentries
            .iter()
            .map(|(&(parent, name), &child)| (parent, name, child))
    }

    /// All inodes, in key order.
    pub fn inodes(&self) -> impl Iterator<Item = (InodeNo, FileKind, u32)> + '_ {
        self.inodes
            .iter()
            .map(|(&ino, &(kind, nlink))| (ino, kind, nlink))
    }

    /// Check the atomicity invariants. `roots` are inodes that legitimately
    /// have no referencing entry (the namespace roots seeded by the
    /// workload).
    pub fn check(&self, roots: &[InodeNo]) -> Vec<Violation> {
        let mut violations = Vec::new();
        for &ino in &self.duplicates {
            // Directory roots legitimately appear on several servers: each
            // server holds a partition-attribute row for them.
            if !roots.contains(&ino) {
                violations.push(Violation::DuplicateInode { ino });
            }
        }

        let mut refs: BTreeMap<InodeNo, u32> = BTreeMap::new();
        for (&(parent, name), &child) in &self.dentries {
            if !self.inodes.contains_key(&child) {
                violations.push(Violation::DanglingEntry {
                    parent,
                    name,
                    child,
                });
            }
            *refs.entry(child).or_insert(0) += 1;
        }

        for (&ino, &(_, nlink)) in &self.inodes {
            let referenced = refs.get(&ino).copied().unwrap_or(0);
            if roots.contains(&ino) {
                continue;
            }
            if referenced == 0 {
                violations.push(Violation::OrphanInode { ino });
            } else if referenced != nlink {
                violations.push(Violation::NlinkMismatch {
                    ino,
                    nlink,
                    referenced,
                });
            }
        }
        violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cx_types::{FsOp, Placement, SubOp};

    fn consistent_pair() -> (MetaStore, MetaStore) {
        // server 0 holds the dentry, server 1 holds the inode
        let mut s0 = MetaStore::new();
        let mut s1 = MetaStore::new();
        s0.apply(&SubOp::InsertEntry {
            parent: InodeNo(1),
            name: Name(7),
            child: InodeNo(10),
            kind: FileKind::Regular,
        })
        .unwrap();
        s1.apply(&SubOp::CreateInode {
            ino: InodeNo(10),
            kind: FileKind::Regular,
        })
        .unwrap();
        (s0, s1)
    }

    #[test]
    fn consistent_cross_server_create_passes() {
        let (s0, s1) = consistent_pair();
        let view = GlobalView::merge([&s0, &s1]);
        assert_eq!(view.check(&[]), vec![]);
        assert_eq!(view.inode_count(), 1);
        assert_eq!(view.dentry_count(), 1);
    }

    #[test]
    fn half_applied_create_is_detected_both_ways() {
        // Entry without inode: dangling.
        let (s0, _) = consistent_pair();
        let empty = MetaStore::new();
        let view = GlobalView::merge([&s0, &empty]);
        assert!(matches!(
            view.check(&[])[0],
            Violation::DanglingEntry { .. }
        ));

        // Inode without entry: orphan.
        let (_, s1) = consistent_pair();
        let view = GlobalView::merge([&empty, &s1]);
        assert!(matches!(view.check(&[])[0], Violation::OrphanInode { .. }));
    }

    #[test]
    fn nlink_mismatch_detected() {
        let (s0, mut s1) = consistent_pair();
        // a second link exists only as nlink bump, no second entry
        s1.apply(&SubOp::IncNlink { ino: InodeNo(10) }).unwrap();
        let view = GlobalView::merge([&s0, &s1]);
        assert!(matches!(
            view.check(&[])[0],
            Violation::NlinkMismatch {
                nlink: 2,
                referenced: 1,
                ..
            }
        ));
    }

    #[test]
    fn roots_are_exempt_from_orphan_check() {
        let mut s = MetaStore::new();
        s.seed_inode(InodeNo(1), FileKind::Directory, 1);
        let view = GlobalView::merge([&s]);
        assert_eq!(view.check(&[InodeNo(1)]), vec![]);
        assert_eq!(view.check(&[]).len(), 1);
    }

    #[test]
    fn duplicate_inode_across_servers_detected() {
        let mut s0 = MetaStore::new();
        let mut s1 = MetaStore::new();
        s0.seed_inode(InodeNo(5), FileKind::Regular, 1);
        s1.seed_inode(InodeNo(5), FileKind::Regular, 1);
        let view = GlobalView::merge([&s0, &s1]);
        assert!(view
            .check(&[])
            .iter()
            .any(|v| matches!(v, Violation::DuplicateInode { .. })));
        // …but declared roots (directory partitions) are exempt.
        assert!(!view
            .check(&[InodeNo(5)])
            .iter()
            .any(|v| matches!(v, Violation::DuplicateInode { .. })));
    }

    #[test]
    fn full_plan_application_is_consistent() {
        // Apply every Table I operation through its plan on a 4-server
        // layout and verify global consistency afterwards.
        let placement = Placement::new(4);
        let mut stores: Vec<MetaStore> = (0..4).map(|_| MetaStore::new()).collect();
        let root = InodeNo(1);

        let apply = |stores: &mut Vec<MetaStore>, op: FsOp| {
            let plan = placement.plan(op);
            for (server, subop, _) in plan.assignments() {
                stores[server.0 as usize].apply(&subop).unwrap();
            }
        };

        apply(
            &mut stores,
            FsOp::Create {
                parent: root,
                name: Name(1),
                ino: InodeNo(10),
            },
        );
        apply(
            &mut stores,
            FsOp::Mkdir {
                parent: root,
                name: Name(2),
                ino: InodeNo(11),
            },
        );
        apply(
            &mut stores,
            FsOp::Link {
                parent: root,
                name: Name(3),
                target: InodeNo(10),
            },
        );
        apply(
            &mut stores,
            FsOp::Unlink {
                parent: root,
                name: Name(3),
                target: InodeNo(10),
            },
        );
        apply(
            &mut stores,
            FsOp::Remove {
                parent: root,
                name: Name(1),
                ino: InodeNo(10),
            },
        );
        apply(
            &mut stores,
            FsOp::Rmdir {
                parent: root,
                name: Name(2),
                ino: InodeNo(11),
            },
        );

        let view = GlobalView::merge(stores.iter());
        assert_eq!(view.check(&[root]), vec![]);
        assert_eq!(view.inode_count(), 0, "everything was removed again");
        assert_eq!(view.dentry_count(), 0);
    }
}
