//! Per-server metadata store.
//!
//! Each OrangeFS metadata server "stores metadata as rows in Berkeley
//! DataBase" (§IV-A). [`MetaStore`] is the in-memory image of those rows —
//! the BDB cache — holding this server's inodes and directory entries.
//! Sub-operations execute against it ([`MetaStore::apply`]) and produce
//! [`Undo`] tokens so an aborted cross-server operation can roll back
//! ("the coordinator can instruct participants to roll back their states",
//! §II-B).
//!
//! The store also tracks **dirty objects**: rows modified in memory but not
//! yet written back to the on-disk database. The SE baseline writes each
//! row back synchronously per sub-op; OFS-batched and Cx take the dirty set
//! in batches ([`MetaStore::take_dirty_pages`]) whose disk cost `cx-simio`
//! computes with elevator merging.
//!
//! [`GlobalView`] merges the stores of every server in a cluster and checks
//! the paper's correctness goal — atomicity of cross-server operations: no
//! dangling entries, no orphan inodes, nlink counts consistent with the
//! entries that reference them.

pub mod store;
pub mod view;

pub use store::{Inode, MetaStore, StoreStats, Undo};
pub use view::{GlobalView, Violation};
