//! Property-based tests of the metadata store: apply/undo inversion and
//! dirty-tracking discipline.

use cx_mdstore::MetaStore;
use cx_types::{FileKind, FsOp, InodeNo, Name, Placement, SubOp};
use proptest::prelude::*;

fn subop_strategy() -> impl Strategy<Value = SubOp> {
    let ino = (2u64..40).prop_map(InodeNo);
    let name = (1u64..40).prop_map(Name);
    prop_oneof![
        (name.clone(), ino.clone(), any::<bool>()).prop_map(|(name, child, dir)| {
            SubOp::InsertEntry {
                parent: InodeNo(1),
                name,
                child,
                kind: if dir {
                    FileKind::Directory
                } else {
                    FileKind::Regular
                },
            }
        }),
        (name.clone(), ino.clone()).prop_map(|(name, child)| SubOp::RemoveEntry {
            parent: InodeNo(1),
            name,
            child,
        }),
        (ino.clone(), any::<bool>()).prop_map(|(i, dir)| SubOp::CreateInode {
            ino: i,
            kind: if dir {
                FileKind::Directory
            } else {
                FileKind::Regular
            },
        }),
        ino.clone().prop_map(|i| SubOp::ReleaseInode { ino: i }),
        ino.clone().prop_map(|i| SubOp::IncNlink { ino: i }),
        ino.clone().prop_map(|i| SubOp::DecNlink { ino: i }),
        ino.clone().prop_map(|i| SubOp::TouchInode { ino: i }),
        (name, ino.clone()).prop_map(|(name, _)| SubOp::ReadEntry {
            parent: InodeNo(1),
            name,
        }),
        ino.prop_map(|i| SubOp::ReadInode { ino: i }),
    ]
}

type InodeRows = Vec<(InodeNo, FileKind, u32)>;
type DentryRows = Vec<((InodeNo, Name), InodeNo)>;

fn snapshot(store: &MetaStore) -> (InodeRows, DentryRows) {
    // Sort: the store's hash maps iterate in table order, not key order.
    let mut inodes: Vec<_> = store.inodes().map(|(i, n)| (*i, n.kind, n.nlink)).collect();
    inodes.sort_by_key(|(i, _, _)| i.0);
    let mut dentries: Vec<_> = store.dentries().map(|(k, v)| (*k, *v)).collect();
    dentries.sort_by_key(|((p, n), _)| (p.0, n.0));
    (inodes, dentries)
}

proptest! {
    /// Applying any sub-op and undoing it restores the exact prior state
    /// (modulo attribute version counters, which carry no semantics).
    #[test]
    fn undo_is_exact_inverse(
        setup in prop::collection::vec(subop_strategy(), 0..30),
        probe in subop_strategy(),
    ) {
        let mut store = MetaStore::new();
        store.seed_inode(InodeNo(1), FileKind::Directory, 1);
        for s in &setup {
            let _ = store.apply(s); // failures are fine; they change nothing
        }
        let before = snapshot(&store);
        if let Ok(undo) = store.apply(&probe) {
            store.undo(undo);
        }
        prop_assert_eq!(snapshot(&store), before);
    }

    /// A failed apply leaves the store untouched and dirties nothing.
    #[test]
    fn failed_apply_is_a_noop(
        setup in prop::collection::vec(subop_strategy(), 0..30),
        probe in subop_strategy(),
    ) {
        let mut store = MetaStore::new();
        store.seed_inode(InodeNo(1), FileKind::Directory, 1);
        for s in &setup {
            let _ = store.apply(s);
        }
        store.take_dirty_pages();
        let before = snapshot(&store);
        if store.apply(&probe).is_err() {
            prop_assert_eq!(snapshot(&store), before);
            prop_assert_eq!(store.dirty_count(), 0);
        }
    }

    /// Dirty pages drain exactly once: a second take returns nothing.
    #[test]
    fn dirty_drains_once(ops in prop::collection::vec(subop_strategy(), 1..30)) {
        let mut store = MetaStore::new();
        store.seed_inode(InodeNo(1), FileKind::Directory, 1);
        for s in &ops {
            let _ = store.apply(s);
        }
        let first = store.take_dirty_pages();
        let second = store.take_dirty_pages();
        prop_assert!(second.is_empty());
        // every successful write dirtied at least one page
        if ops.iter().any(|s| s.is_write()) {
            // (possible that all writes failed; then first can be empty)
            prop_assert!(first.len() <= 3 * ops.len());
        }
    }

    /// Placement planning is total and consistent: every op yields a plan
    /// whose assignments cover the op's sub-ops on the right servers.
    #[test]
    fn plans_are_consistent(servers in 1u32..33, name in 1u64..10_000, ino in 2u64..10_000) {
        let placement = Placement::new(servers);
        let ops = [
            FsOp::Create { parent: InodeNo(1), name: Name(name), ino: InodeNo(ino) },
            FsOp::Remove { parent: InodeNo(1), name: Name(name), ino: InodeNo(ino) },
            FsOp::Link { parent: InodeNo(1), name: Name(name), target: InodeNo(ino) },
            FsOp::Stat { ino: InodeNo(ino) },
            FsOp::Lookup { parent: InodeNo(1), name: Name(name) },
        ];
        for op in ops {
            let plan = placement.plan(op);
            prop_assert!(plan.coordinator.0 < servers);
            if let Some((s, _)) = plan.participant {
                prop_assert!(s.0 < servers);
                prop_assert_ne!(s, plan.coordinator, "cross-server means two servers");
            }
            if op.is_mutation() {
                prop_assert_eq!(
                    plan.participant.is_none(),
                    plan.colocated.is_some(),
                    "a mutation has exactly two halves"
                );
                prop_assert_eq!(
                    plan.coordinator,
                    placement.dentry_server(InodeNo(1), Name(name)),
                    "the coordinator owns the parent entry"
                );
            } else {
                prop_assert!(plan.participant.is_none() && plan.colocated.is_none());
            }
        }
    }
}
