//! The event queue and virtual clock.
//!
//! The queue is a bucketed timing wheel over a payload slab:
//!
//! - Event payloads live in a slab and are moved exactly twice (in at
//!   schedule, out at pop). Everything the queue reorders is a 24-byte
//!   [`Handle`], which matters because the cluster's event enum is ~200
//!   bytes and a binary heap sifts its elements on every operation.
//! - Near-future handles go into a ring of fixed-width buckets (O(1)
//!   schedule); the bucket under the cursor drains through a small binary
//!   heap so pop order within a bucket is exact. A one-bit-per-bucket
//!   occupancy bitmap makes skipping empty buckets cheap.
//! - Handles beyond the wheel horizon (~67 ms: failure detectors, long
//!   timeouts) wait in an overflow heap and merge in by bucket number as
//!   the cursor advances.
//!
//! Pop order is identical to a single global heap ordered by `(at, seq)`
//! — `seq` is the schedule order, so ties break FIFO and the simulation
//! is bit-deterministic.
//!
//! Set `CX_SIM_QUEUE=heap` to fall back to the plain binary heap (the
//! pre-wheel implementation). Both backends must produce identical runs;
//! the determinism suite exercises this.

use cx_types::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Index of a node (actor) in the simulation. The cluster crate assigns
/// dense indices to servers, disks and client processes.
pub type NodeIdx = u32;

struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    dst: NodeIdx,
    event: E,
}

// BinaryHeap is a max-heap; invert the ordering to pop the earliest event.
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

/// A deadline queue with the simulator's tie-break: entries pop in
/// `(deadline, insertion order)`. The threaded runtime's timer thread
/// uses this so both runtimes fire same-deadline timers in the same
/// order.
pub struct TimerQueue<T> {
    heap: BinaryHeap<Scheduled<T>>,
    seq: u64,
}

impl<T> Default for TimerQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> TimerQueue<T> {
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    pub fn push(&mut self, deadline: SimTime, item: T) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Scheduled {
            at: deadline,
            seq,
            dst: 0,
            event: item,
        });
    }

    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        self.heap.pop().map(|s| (s.at, s.event))
    }

    /// Earliest deadline without popping.
    pub fn peek_deadline(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.at)
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }
}

/// Bucket width: 2^16 ns ≈ 65.5 µs. The DES queue is shallow (tens of
/// events spanning a few hundred µs), so wide buckets keep the ring walk
/// short and the active-bucket heap still only holds a handful of
/// handles.
const BUCKET_SHIFT: u32 = 16;
/// Ring size: 1024 buckets ≈ 67 ms horizon — covers network, disk and
/// batch-timer delays; only failure-detection timers overflow.
const RING_BUCKETS: usize = 1024;
const RING_MASK: u64 = RING_BUCKETS as u64 - 1;
const WORDS: usize = RING_BUCKETS / 64;

#[inline]
fn bucket_of(at: SimTime) -> u64 {
    at.0 >> BUCKET_SHIFT
}

/// What the wheel actually sorts: 24 bytes, `Copy`. `idx` points into
/// the payload slab.
#[derive(Clone, Copy)]
struct Handle {
    at: SimTime,
    seq: u64,
    idx: u32,
    dst: NodeIdx,
}

// Same inverted (at, seq) ordering as `Scheduled`.
impl Ord for Handle {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl PartialOrd for Handle {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl PartialEq for Handle {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Handle {}

/// Payload storage: slots are recycled through a free list, so a steady
/// simulation allocates nothing once warm.
struct Slab<E> {
    items: Vec<Option<E>>,
    free: Vec<u32>,
}

impl<E> Slab<E> {
    fn new() -> Self {
        Self {
            items: Vec::new(),
            free: Vec::new(),
        }
    }

    #[inline]
    fn insert(&mut self, event: E) -> u32 {
        match self.free.pop() {
            Some(i) => {
                self.items[i as usize] = Some(event);
                i
            }
            None => {
                self.items.push(Some(event));
                (self.items.len() - 1) as u32
            }
        }
    }

    #[inline]
    fn take(&mut self, idx: u32) -> E {
        self.free.push(idx);
        self.items[idx as usize].take().expect("live slab slot")
    }
}

/// The timing wheel proper. Invariants:
/// - `active` holds only handles whose bucket is ≤ `cursor` (equal in the
///   common case; smaller only when a bounded pop — [`Wheel::pop_before`]
///   advanced the cursor past the limit — is followed by a schedule into
///   the gap, which the windowed partition loop does via its mailbox);
/// - ring slot `b & RING_MASK` holds only handles of one bucket
///   `b ∈ (cursor, cursor + RING_BUCKETS)` (the cursor never skips a
///   non-empty bucket, so a slot is fully drained before its number is
///   reused a revolution later);
/// - `overflow` holds handles that were beyond the horizon *when
///   scheduled*; its top is merged by bucket number during advance.
struct Wheel<E> {
    /// Bucket number currently being drained (monotone).
    cursor: u64,
    /// Handles of the cursor bucket, sorted descending by `(at, seq)` and
    /// popped from the back — buckets hold a handful of handles, so one
    /// sort per bucket beats a binary heap's per-operation sifting, and
    /// same-bucket inserts during the drain are a short memmove.
    active: Vec<Handle>,
    ring: Vec<Vec<Handle>>,
    /// One bit per ring slot: slot is non-empty.
    occupied: [u64; WORDS],
    overflow: BinaryHeap<Handle>,
    slab: Slab<E>,
    len: usize,
}

impl<E> Wheel<E> {
    fn new() -> Self {
        Self {
            cursor: 0,
            active: Vec::new(),
            ring: (0..RING_BUCKETS).map(|_| Vec::new()).collect(),
            occupied: [0; WORDS],
            overflow: BinaryHeap::new(),
            slab: Slab::new(),
            len: 0,
        }
    }

    #[inline]
    fn push(&mut self, at: SimTime, seq: u64, dst: NodeIdx, event: E) {
        let idx = self.slab.insert(event);
        let h = Handle { at, seq, idx, dst };
        self.len += 1;
        let b = bucket_of(at);
        if b <= self.cursor {
            // Keep the drain order exact: insert behind every handle that
            // pops later (descending, so "greater" keys come first).
            // Buckets below the cursor must also land here: their ring
            // slot numbers would alias a future revolution.
            let pos = self.active.partition_point(|x| (x.at, x.seq) > (at, seq));
            self.active.insert(pos, h);
        } else if b < self.cursor + RING_BUCKETS as u64 {
            let slot = (b & RING_MASK) as usize;
            self.ring[slot].push(h);
            self.occupied[slot >> 6] |= 1 << (slot & 63);
        } else {
            self.overflow.push(h);
        }
    }

    /// Bucket number of the next non-empty ring slot strictly after the
    /// cursor, reconstructed from the wrap-around distance.
    fn next_ring_bucket(&self) -> Option<u64> {
        let start = ((self.cursor + 1) & RING_MASK) as usize;
        let mut dist = 0usize;
        let mut word_idx = start >> 6;
        let mut bit_base = start & 63;
        let mut word = self.occupied[word_idx] >> bit_base;
        loop {
            if word != 0 {
                let slot_dist = dist + word.trailing_zeros() as usize;
                if slot_dist >= RING_BUCKETS {
                    return None;
                }
                return Some(self.cursor + 1 + slot_dist as u64);
            }
            dist += 64 - bit_base;
            if dist >= RING_BUCKETS {
                return None;
            }
            bit_base = 0;
            word_idx = (word_idx + 1) % WORDS;
            word = self.occupied[word_idx];
        }
    }

    /// Refill `active` from the earliest non-empty bucket. Returns false
    /// when the wheel is empty.
    fn advance(&mut self) -> bool {
        debug_assert!(self.active.is_empty());
        let ring_b = self.next_ring_bucket();
        let ovf_b = self.overflow.peek().map(|h| bucket_of(h.at));
        let next = match (ring_b, ovf_b) {
            (Some(r), Some(o)) => Some(r.min(o)),
            (r, o) => r.or(o),
        };
        let Some(next) = next else { return false };
        self.cursor = next;
        // Ring slot first (if this bucket has one), then any overflow
        // handles in the same bucket; the active heap restores exact
        // (at, seq) order among all of them.
        if ring_b == Some(next) {
            let slot = (next & RING_MASK) as usize;
            self.active.append(&mut self.ring[slot]);
            self.occupied[slot >> 6] &= !(1 << (slot & 63));
        }
        while self
            .overflow
            .peek()
            .is_some_and(|h| bucket_of(h.at) == next)
        {
            let h = self.overflow.pop().expect("peeked");
            self.active.push(h);
        }
        self.active
            .sort_unstable_by_key(|h| std::cmp::Reverse((h.at, h.seq)));
        debug_assert!(!self.active.is_empty());
        true
    }

    fn pop(&mut self) -> Option<(SimTime, NodeIdx, E)> {
        if self.active.is_empty() && !self.advance() {
            return None;
        }
        let h = self.active.pop().expect("advance refilled");
        self.len -= 1;
        Some((h.at, h.dst, self.slab.take(h.idx)))
    }

    /// Pop the next event only if it is strictly before `limit`. O(1) on
    /// the hot path: at most one bucket refill per call, and the refill
    /// is the same work `pop` would have done.
    fn pop_before(&mut self, limit: SimTime) -> Option<(SimTime, NodeIdx, E)> {
        if self.active.is_empty() && !self.advance() {
            return None;
        }
        let h = *self.active.last().expect("advance refilled");
        if h.at >= limit {
            return None;
        }
        self.active.pop();
        self.len -= 1;
        Some((h.at, h.dst, self.slab.take(h.idx)))
    }

    /// Earliest event time without popping. O(len of the next bucket);
    /// only used by diagnostics and tests, not the event loop.
    fn peek_time(&self) -> Option<SimTime> {
        if let Some(h) = self.active.last() {
            return Some(h.at);
        }
        let ring_t = self.next_ring_bucket().and_then(|b| {
            self.ring[(b & RING_MASK) as usize]
                .iter()
                .map(|h| h.at)
                .min()
        });
        let ovf_t = self.overflow.peek().map(|h| h.at);
        match (ring_t, ovf_t) {
            (Some(r), Some(o)) => Some(r.min(o)),
            (r, o) => r.or(o),
        }
    }
}

/// Queue backend: timing wheel by default, plain heap when
/// `CX_SIM_QUEUE=heap` (determinism cross-check and safety hatch).
// One instance per `Sim`, so the size gap between variants costs nothing;
// boxing the wheel would add a pointer hop to every queue operation.
#[allow(clippy::large_enum_variant)]
enum Queue<E> {
    Wheel(Wheel<E>),
    Heap(BinaryHeap<Scheduled<E>>),
}

impl<E> Queue<E> {
    fn new() -> Self {
        match std::env::var("CX_SIM_QUEUE").as_deref() {
            Ok("heap") => Queue::Heap(BinaryHeap::new()),
            _ => Queue::Wheel(Wheel::new()),
        }
    }

    fn len(&self) -> usize {
        match self {
            Queue::Wheel(w) => w.len,
            Queue::Heap(h) => h.len(),
        }
    }
}

/// A deterministic discrete-event simulator.
///
/// ```
/// use cx_sim::Sim;
///
/// let mut sim: Sim<&'static str> = Sim::new();
/// sim.schedule(10, 0, "b");
/// sim.schedule(5, 0, "a");
/// let (t, _, ev) = sim.pop().unwrap();
/// assert_eq!((t.0, ev), (5, "a"));
/// ```
pub struct Sim<E> {
    now: SimTime,
    queue: Queue<E>,
    seq: u64,
    processed: u64,
}

impl<E> Default for Sim<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Sim<E> {
    pub fn new() -> Self {
        Self {
            now: SimTime::ZERO,
            queue: Queue::new(),
            seq: 0,
            processed: 0,
        }
    }

    /// Current virtual time: the timestamp of the most recently popped
    /// event (events never run "in the past").
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `event` for `dst`, `delay` ns after the current time.
    pub fn schedule(&mut self, delay: u64, dst: NodeIdx, event: E) {
        self.schedule_at(self.now + delay, dst, event);
    }

    /// Schedule `event` at an absolute virtual time. Times in the past are
    /// clamped to `now` (the event still runs after currently queued events
    /// with the same timestamp, preserving causality).
    pub fn schedule_at(&mut self, at: SimTime, dst: NodeIdx, event: E) {
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        match &mut self.queue {
            Queue::Wheel(w) => w.push(at, seq, dst, event),
            Queue::Heap(h) => h.push(Scheduled {
                at,
                seq,
                dst,
                event,
            }),
        }
    }

    /// Pop the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, NodeIdx, E)> {
        let (at, dst, event) = match &mut self.queue {
            Queue::Wheel(w) => w.pop()?,
            Queue::Heap(h) => {
                let s = h.pop()?;
                (s.at, s.dst, s.event)
            }
        };
        debug_assert!(at >= self.now, "time went backwards");
        self.now = at;
        self.processed += 1;
        Some((at, dst, event))
    }

    /// Pop the next event only if its timestamp is strictly before
    /// `limit`, advancing the clock to it; `None` leaves the queue (and
    /// the clock) untouched. This is the conservative-window primitive:
    /// the partitioned runtime drains each partition's kernel up to the
    /// agreed horizon without paying a `peek_time` per event.
    pub fn pop_before(&mut self, limit: SimTime) -> Option<(SimTime, NodeIdx, E)> {
        let (at, dst, event) = match &mut self.queue {
            Queue::Wheel(w) => w.pop_before(limit)?,
            Queue::Heap(h) => {
                if h.peek().is_none_or(|s| s.at >= limit) {
                    return None;
                }
                let s = h.pop().expect("peeked");
                (s.at, s.dst, s.event)
            }
        };
        debug_assert!(at >= self.now, "time went backwards");
        self.now = at;
        self.processed += 1;
        Some((at, dst, event))
    }

    /// Timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        match &self.queue {
            Queue::Wheel(w) => w.peek_time(),
            Queue::Heap(h) => h.peek().map(|s| s.at),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.queue.len() == 0
    }

    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Total events processed so far (a cheap progress/complexity metric).
    pub fn events_processed(&self) -> u64 {
        self.processed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut sim: Sim<u32> = Sim::new();
        sim.schedule(30, 0, 3);
        sim.schedule(10, 0, 1);
        sim.schedule(20, 0, 2);
        let order: Vec<u32> = std::iter::from_fn(|| sim.pop().map(|(_, _, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_by_schedule_order() {
        let mut sim: Sim<u32> = Sim::new();
        for i in 0..100 {
            sim.schedule(5, 0, i);
        }
        let order: Vec<u32> = std::iter::from_fn(|| sim.pop().map(|(_, _, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut sim: Sim<()> = Sim::new();
        sim.schedule(10, 0, ());
        sim.schedule(10, 0, ());
        sim.schedule(25, 0, ());
        let mut last = SimTime::ZERO;
        while let Some((t, _, _)) = sim.pop() {
            assert!(t >= last);
            last = t;
        }
        assert_eq!(last.0, 25);
        assert_eq!(sim.events_processed(), 3);
    }

    #[test]
    fn past_events_clamp_to_now() {
        let mut sim: Sim<u32> = Sim::new();
        sim.schedule(100, 0, 1);
        sim.pop();
        assert_eq!(sim.now().0, 100);
        sim.schedule_at(SimTime(50), 0, 2); // in the past
        let (t, _, e) = sim.pop().unwrap();
        assert_eq!((t.0, e), (100, 2));
    }

    #[test]
    fn nested_scheduling_during_pop_loop() {
        // Events scheduled from handlers interleave correctly.
        let mut sim: Sim<u32> = Sim::new();
        sim.schedule(10, 0, 0);
        let mut seen = Vec::new();
        while let Some((_, _, e)) = sim.pop() {
            seen.push(e);
            if e < 3 {
                sim.schedule(10, 0, e + 1);
            }
        }
        assert_eq!(seen, vec![0, 1, 2, 3]);
        assert_eq!(sim.now().0, 40);
    }

    #[test]
    fn peek_does_not_advance() {
        let mut sim: Sim<()> = Sim::new();
        sim.schedule(7, 0, ());
        assert_eq!(sim.peek_time(), Some(SimTime(7)));
        assert_eq!(sim.now(), SimTime::ZERO);
        assert_eq!(sim.pending(), 1);
    }

    /// The wheel horizon is ~67 ms; events far beyond it (failure
    /// detectors, long timeouts) take the overflow path and still pop in
    /// exact order, including FIFO ties against ring events.
    #[test]
    fn overflow_events_interleave_correctly() {
        let mut sim: Sim<u32> = Sim::new();
        let hour = 3_600_000_000_000; // far past any horizon
        sim.schedule(hour, 0, 40);
        sim.schedule(5_000, 0, 10); // in-ring
        sim.schedule(hour, 0, 41); // same bucket + time as 40: FIFO
        sim.schedule(200_000_000, 0, 30); // past horizon at schedule time
        sim.schedule(100_000_000, 0, 20); // also past horizon
        let order: Vec<u32> = std::iter::from_fn(|| sim.pop().map(|(_, _, e)| e)).collect();
        assert_eq!(order, vec![10, 20, 30, 40, 41]);
        assert_eq!(sim.now().0, hour);
    }

    /// An event scheduled into the bucket currently being drained joins
    /// the active heap and sorts correctly against what is left in it.
    #[test]
    fn same_bucket_insert_during_drain() {
        let mut sim: Sim<u32> = Sim::new();
        sim.schedule(100, 0, 1);
        sim.schedule(30_000, 0, 3);
        let (t, _, e) = sim.pop().unwrap();
        assert_eq!((t.0, e), (100, 1));
        sim.schedule(10_000, 0, 2); // t=10100: same 65 µs bucket as t=30000
        let order: Vec<u32> = std::iter::from_fn(|| sim.pop().map(|(_, _, e)| e)).collect();
        assert_eq!(order, vec![2, 3]);
    }

    /// A dense random workload pops in exactly the order the reference
    /// heap implementation would produce: sorted by (at, seq).
    #[test]
    fn wheel_matches_reference_order_on_random_load() {
        let mut sim: Sim<usize> = Sim::new();
        let mut expect: Vec<(u64, usize)> = Vec::new();
        // Deterministic LCG: spread delays across bucket widths, bucket
        // boundaries, the horizon, and far overflow.
        let mut x: u64 = 0x2545F4914F6CDD1D;
        let mut step = || {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            x >> 33
        };
        for i in 0..500 {
            let delay = match i % 5 {
                0 => step() % 1_000,          // same-bucket ties
                1 => step() % 100_000,        // near ring
                2 => step() % 10_000_000,     // mid ring
                3 => step() % 500_000_000,    // mostly past horizon
                _ => 65_536 * (i as u64 % 7), // exact bucket boundaries
            };
            expect.push((delay, i));
            sim.schedule(delay, 0, i);
        }
        // All scheduled at now=0, so (at, seq) order is (delay, index).
        expect.sort();
        let got: Vec<usize> = std::iter::from_fn(|| sim.pop().map(|(_, _, e)| e)).collect();
        let want: Vec<usize> = expect.into_iter().map(|(_, i)| i).collect();
        assert_eq!(got, want);
    }

    /// Interleaved schedule/pop with re-scheduling from handlers — the
    /// cursor moves while new events land in current, ring, and overflow
    /// buckets.
    #[test]
    fn interleaved_load_stays_sorted() {
        let mut sim: Sim<u64> = Sim::new();
        for i in 0..32 {
            sim.schedule(i * 10_000, 0, i);
        }
        let mut popped = Vec::new();
        let mut spawned = 32u64;
        while let Some((t, _, e)) = sim.pop() {
            popped.push((t, e));
            if spawned < 400 {
                // Handlers schedule relative to the advancing clock.
                sim.schedule((e * 7919) % 30_000_000, 0, spawned);
                sim.schedule(67_000_000 + (e % 3) * 65_536, 0, spawned + 1);
                spawned += 2;
            }
        }
        let mut sorted = popped.clone();
        sorted.sort_by_key(|&(t, _)| t);
        // Time-sorted (stable sort keeps equal times in pop order, which
        // must already be seq order).
        assert_eq!(popped, sorted);
        assert_eq!(sim.events_processed(), popped.len() as u64);
    }

    /// `pop_before` is a strict filter on the next event and never
    /// advances the clock on refusal.
    #[test]
    fn pop_before_respects_limit() {
        let mut sim: Sim<u32> = Sim::new();
        sim.schedule(10, 0, 1);
        sim.schedule(20, 0, 2);
        sim.schedule(200_000, 0, 3); // different bucket
        assert_eq!(sim.pop_before(SimTime(10)), None, "strict bound");
        assert_eq!(sim.now(), SimTime::ZERO);
        let (t, _, e) = sim.pop_before(SimTime(11)).unwrap();
        assert_eq!((t.0, e), (10, 1));
        assert_eq!(sim.now().0, 10);
        let (_, _, e) = sim.pop_before(SimTime(1_000_000)).unwrap();
        assert_eq!(e, 2);
        let (_, _, e) = sim.pop_before(SimTime(1_000_000)).unwrap();
        assert_eq!(e, 3);
        assert_eq!(sim.pop_before(SimTime(u64::MAX)), None, "empty queue");
    }

    /// The windowed-partition pattern: a bounded pop advances the cursor
    /// past the limit without popping, then an external (mailbox) arrival
    /// lands in the gap between the limit and the cursor. Order must stay
    /// exact — this exercises the `b <= cursor` branch of `Wheel::push`.
    #[test]
    fn schedule_behind_cursor_after_bounded_pop() {
        let mut sim: Sim<u32> = Sim::new();
        sim.schedule(100, 0, 1);
        // Far-future event: next bucket is ~5 ms away, so a bounded pop
        // moves the cursor well past the 200 µs window below.
        sim.schedule(5_000_000, 0, 9);
        let (_, _, e) = sim.pop_before(SimTime(200_000)).unwrap();
        assert_eq!(e, 1);
        assert_eq!(sim.pop_before(SimTime(200_000)), None);
        // Arrivals land between the window edge and the advanced cursor.
        sim.schedule_at(SimTime(150_000), 0, 2);
        sim.schedule_at(SimTime(120_000), 0, 3);
        sim.schedule_at(SimTime(150_000), 0, 4); // tie: FIFO after 2
        let order: Vec<u32> = std::iter::from_fn(|| sim.pop().map(|(_, _, e)| e)).collect();
        assert_eq!(order, vec![3, 2, 4, 9]);
    }

    /// Both queue backends agree on `pop_before` semantics.
    #[test]
    fn heap_backend_pop_before_matches() {
        std::env::set_var("CX_SIM_QUEUE", "heap");
        let mut sim: Sim<u32> = Sim::new();
        std::env::remove_var("CX_SIM_QUEUE");
        sim.schedule(10, 0, 1);
        sim.schedule(20, 0, 2);
        assert_eq!(sim.pop_before(SimTime(10)), None);
        assert_eq!(sim.pop_before(SimTime(15)).map(|(_, _, e)| e), Some(1));
        assert_eq!(sim.pop_before(SimTime(15)), None);
        assert_eq!(sim.pop_before(SimTime(21)).map(|(_, _, e)| e), Some(2));
    }

    /// The timer queue shares the simulator's FIFO tie-break.
    #[test]
    fn timer_queue_breaks_ties_fifo() {
        let mut q: TimerQueue<u32> = TimerQueue::new();
        q.push(SimTime(50), 1);
        q.push(SimTime(10), 2);
        q.push(SimTime(50), 3);
        assert_eq!(q.peek_deadline(), Some(SimTime(10)));
        assert_eq!(q.len(), 3);
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, x)| x)).collect();
        assert_eq!(order, vec![2, 1, 3]);
        assert!(q.is_empty());
    }
}
