//! The event queue and virtual clock.

use cx_types::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Index of a node (actor) in the simulation. The cluster crate assigns
/// dense indices to servers, disks and client processes.
pub type NodeIdx = u32;

struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    dst: NodeIdx,
    event: E,
}

// BinaryHeap is a max-heap; invert the ordering to pop the earliest event.
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

/// A deterministic discrete-event simulator.
///
/// ```
/// use cx_sim::Sim;
///
/// let mut sim: Sim<&'static str> = Sim::new();
/// sim.schedule(10, 0, "b");
/// sim.schedule(5, 0, "a");
/// let (t, _, ev) = sim.pop().unwrap();
/// assert_eq!((t.0, ev), (5, "a"));
/// ```
pub struct Sim<E> {
    now: SimTime,
    heap: BinaryHeap<Scheduled<E>>,
    seq: u64,
    processed: u64,
}

impl<E> Default for Sim<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Sim<E> {
    pub fn new() -> Self {
        Self {
            now: SimTime::ZERO,
            heap: BinaryHeap::new(),
            seq: 0,
            processed: 0,
        }
    }

    /// Current virtual time: the timestamp of the most recently popped
    /// event (events never run "in the past").
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `event` for `dst`, `delay` ns after the current time.
    pub fn schedule(&mut self, delay: u64, dst: NodeIdx, event: E) {
        self.schedule_at(self.now + delay, dst, event);
    }

    /// Schedule `event` at an absolute virtual time. Times in the past are
    /// clamped to `now` (the event still runs after currently queued events
    /// with the same timestamp, preserving causality).
    pub fn schedule_at(&mut self, at: SimTime, dst: NodeIdx, event: E) {
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Scheduled {
            at,
            seq,
            dst,
            event,
        });
    }

    /// Pop the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, NodeIdx, E)> {
        let s = self.heap.pop()?;
        debug_assert!(s.at >= self.now, "time went backwards");
        self.now = s.at;
        self.processed += 1;
        Some((s.at, s.dst, s.event))
    }

    /// Timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.at)
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    pub fn pending(&self) -> usize {
        self.heap.len()
    }

    /// Total events processed so far (a cheap progress/complexity metric).
    pub fn events_processed(&self) -> u64 {
        self.processed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut sim: Sim<u32> = Sim::new();
        sim.schedule(30, 0, 3);
        sim.schedule(10, 0, 1);
        sim.schedule(20, 0, 2);
        let order: Vec<u32> = std::iter::from_fn(|| sim.pop().map(|(_, _, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_by_schedule_order() {
        let mut sim: Sim<u32> = Sim::new();
        for i in 0..100 {
            sim.schedule(5, 0, i);
        }
        let order: Vec<u32> = std::iter::from_fn(|| sim.pop().map(|(_, _, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut sim: Sim<()> = Sim::new();
        sim.schedule(10, 0, ());
        sim.schedule(10, 0, ());
        sim.schedule(25, 0, ());
        let mut last = SimTime::ZERO;
        while let Some((t, _, _)) = sim.pop() {
            assert!(t >= last);
            last = t;
        }
        assert_eq!(last.0, 25);
        assert_eq!(sim.events_processed(), 3);
    }

    #[test]
    fn past_events_clamp_to_now() {
        let mut sim: Sim<u32> = Sim::new();
        sim.schedule(100, 0, 1);
        sim.pop();
        assert_eq!(sim.now().0, 100);
        sim.schedule_at(SimTime(50), 0, 2); // in the past
        let (t, _, e) = sim.pop().unwrap();
        assert_eq!((t.0, e), (100, 2));
    }

    #[test]
    fn nested_scheduling_during_pop_loop() {
        // Events scheduled from handlers interleave correctly.
        let mut sim: Sim<u32> = Sim::new();
        sim.schedule(10, 0, 0);
        let mut seen = Vec::new();
        while let Some((_, _, e)) = sim.pop() {
            seen.push(e);
            if e < 3 {
                sim.schedule(10, 0, e + 1);
            }
        }
        assert_eq!(seen, vec![0, 1, 2, 3]);
        assert_eq!(sim.now().0, 40);
    }

    #[test]
    fn peek_does_not_advance() {
        let mut sim: Sim<()> = Sim::new();
        sim.schedule(7, 0, ());
        assert_eq!(sim.peek_time(), Some(SimTime(7)));
        assert_eq!(sim.now(), SimTime::ZERO);
        assert_eq!(sim.pending(), 1);
    }
}
