//! Conservative parallel-DES plumbing: the cross-partition mailbox and
//! the synchronization barrier the partitioned cluster runtime drives.
//!
//! The parallel scheme is a classic conservative barrier-window design:
//! every partition owns its own [`crate::Sim`] kernel (timing wheel +
//! virtual clock) and the partitions advance in lockstep windows whose
//! width equals the *lookahead* — the minimum latency any cross-partition
//! interaction can have. In this codebase the only cross-partition edge
//! is a network message, so the lookahead is the configured one-way
//! network latency: a message sent at virtual time `t` arrives no earlier
//! than `t + one_way_ns`. Each window `[H, H + W)` with `W = one_way_ns`
//! is therefore closed under local causality: nothing sent inside the
//! window can affect any partition before the *next* window, so
//! partitions may process a whole window without hearing from each other.
//!
//! Determinism rests on two rules enforced here:
//!
//! 1. **Deterministic merge order.** Inbound cross-partition events are
//!    delivered in `(arrival time, source partition, per-source sequence)`
//!    order, independent of thread scheduling ([`Mailbox::drain`] sorts).
//! 2. **Deterministic batch membership.** The window loop separates the
//!    "post" phase from the "drain" phase with a barrier, so exactly the
//!    messages of one window — never a racing prefix of the next — form a
//!    drain batch. The scheduling sequence numbers each partition assigns
//!    to the merged events are then reproducible, which is what makes
//!    same-nanosecond ties replay identically for a fixed (seed, P).

use cx_types::SimTime;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Mutex;

/// One message crossing a partition boundary. `src`/`seq` exist purely
/// for the deterministic merge order; `at` is the (already latency
/// adjusted) virtual arrival time at the destination.
#[derive(Debug, Clone)]
pub struct CrossEvent<M> {
    pub at: SimTime,
    /// Sending partition.
    pub src: u32,
    /// Sender-local sequence number (monotone per source partition).
    pub seq: u64,
    pub msg: M,
}

/// P×P mailbox: slot `(src, dst)` buffers the messages `src` posted to
/// `dst` during the current window. Each slot has its own lock, and
/// within a window phase a slot is only ever touched by one thread (the
/// source posts, then — after the barrier — the destination drains), so
/// the mutexes are uncontended; they exist to make the type `Sync`
/// without unsafe code.
pub struct Mailbox<M> {
    parts: usize,
    slots: Vec<Mutex<Vec<CrossEvent<M>>>>,
}

impl<M> Mailbox<M> {
    pub fn new(parts: usize) -> Self {
        assert!(parts >= 1);
        Self {
            parts,
            slots: (0..parts * parts).map(|_| Mutex::new(Vec::new())).collect(),
        }
    }

    pub fn parts(&self) -> usize {
        self.parts
    }

    /// Post one event from partition `src` to partition `dst`.
    pub fn post(&self, src: u32, dst: u32, ev: CrossEvent<M>) {
        self.slots[src as usize * self.parts + dst as usize]
            .lock()
            .expect("mailbox slot")
            .push(ev);
    }

    /// Move every event addressed to `dst` into `out`, sorted by
    /// `(arrival, source partition, source sequence)` — the deterministic
    /// merge order. `out` is cleared first (pass a reusable buffer).
    pub fn drain(&self, dst: u32, out: &mut Vec<CrossEvent<M>>) {
        out.clear();
        for src in 0..self.parts {
            out.append(
                &mut self.slots[src * self.parts + dst as usize]
                    .lock()
                    .expect("mailbox slot"),
            );
        }
        out.sort_by_key(|a| (a.at, a.src, a.seq));
    }
}

/// A reusable spin-then-yield barrier with a combined min-reduction and a
/// sticky abort flag — the two collective operations the window loop
/// needs (agree on the global next-event time; agree to stop early).
///
/// Generation-based: the aggregation slot alternates with the generation
/// parity. Slot reuse (generation g+2) is safe because every thread must
/// *return* from generation g's wait (which includes reading g's result)
/// before it can arrive at generation g+1, and g+2 cannot complete until
/// every thread passed g+1.
pub struct PartitionBarrier {
    parts: u32,
    count: AtomicU32,
    gen: AtomicU32,
    mins: [AtomicU64; 2],
    result: [AtomicU64; 2],
    abort: AtomicBool,
}

impl PartitionBarrier {
    pub fn new(parts: u32) -> Self {
        assert!(parts >= 1);
        Self {
            parts,
            count: AtomicU32::new(0),
            gen: AtomicU32::new(0),
            mins: [AtomicU64::new(u64::MAX), AtomicU64::new(u64::MAX)],
            result: [AtomicU64::new(u64::MAX), AtomicU64::new(u64::MAX)],
            abort: AtomicBool::new(false),
        }
    }

    pub fn parts(&self) -> u32 {
        self.parts
    }

    /// Request a collective early stop; observed by every partition at
    /// its next [`PartitionBarrier::wait_min`]. Sticky for the lifetime
    /// of the barrier (a run aborts exactly once).
    pub fn set_abort(&self) {
        self.abort.store(true, Ordering::Release);
    }

    pub fn aborted(&self) -> bool {
        self.abort.load(Ordering::Acquire)
    }

    /// Block until all `parts` partitions called in; returns the minimum
    /// of every partition's `v` plus the abort flag. Use `u64::MAX` as
    /// the identity vote ("nothing pending" / pure phase sync).
    ///
    /// Waiters spin briefly then yield — on an oversubscribed host (more
    /// partitions than cores) pure spinning would deadlock-by-starvation
    /// the partition that still has to arrive.
    pub fn wait_min(&self, v: u64) -> (u64, bool) {
        let gen = self.gen.load(Ordering::Acquire);
        let slot = (gen & 1) as usize;
        self.mins[slot].fetch_min(v, Ordering::AcqRel);
        if self.count.fetch_add(1, Ordering::AcqRel) + 1 == self.parts {
            // Last arriver: publish, reset the slot for generation g+2,
            // release the waiters by bumping the generation.
            let m = self.mins[slot].swap(u64::MAX, Ordering::AcqRel);
            self.result[slot].store(m, Ordering::Release);
            self.count.store(0, Ordering::Release);
            self.gen.store(gen.wrapping_add(1), Ordering::Release);
        } else {
            let mut spins = 0u32;
            while self.gen.load(Ordering::Acquire) == gen {
                spins = spins.wrapping_add(1);
                if spins < 64 {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
        }
        (
            self.result[slot].load(Ordering::Acquire),
            self.abort.load(Ordering::Acquire),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mailbox_merge_order_is_deterministic() {
        let mb: Mailbox<&'static str> = Mailbox::new(3);
        let ev = |at: u64, src: u32, seq: u64, msg| CrossEvent {
            at: SimTime(at),
            src,
            seq,
            msg,
        };
        // Posted in scrambled order across sources; drain must sort by
        // (at, src, seq).
        mb.post(2, 0, ev(50, 2, 0, "e"));
        mb.post(1, 0, ev(10, 1, 0, "b"));
        mb.post(1, 0, ev(10, 1, 1, "c"));
        mb.post(0, 0, ev(10, 0, 7, "a"));
        mb.post(2, 0, ev(20, 2, 1, "d"));
        let mut out = Vec::new();
        mb.drain(0, &mut out);
        let got: Vec<&str> = out.iter().map(|e| e.msg).collect();
        assert_eq!(got, vec!["a", "b", "c", "d", "e"]);
        // Slots are emptied by the drain.
        mb.drain(0, &mut out);
        assert!(out.is_empty());
        // Other destinations unaffected.
        mb.post(0, 2, ev(1, 0, 0, "z"));
        mb.drain(2, &mut out);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn barrier_min_reduction_across_threads() {
        let b = PartitionBarrier::new(4);
        let votes = [[7u64, 3, 9], [5, 3, u64::MAX], [6, 4, 2], [8, 3, 2]];
        std::thread::scope(|s| {
            let handles: Vec<_> = votes
                .iter()
                .map(|vs| {
                    let b = &b;
                    s.spawn(move || vs.iter().map(|&v| b.wait_min(v).0).collect::<Vec<_>>())
                })
                .collect();
            for h in handles {
                assert_eq!(h.join().unwrap(), vec![5, 3, 2]);
            }
        });
        assert!(!b.aborted());
    }

    #[test]
    fn barrier_abort_is_sticky_and_collective() {
        let b = PartitionBarrier::new(2);
        std::thread::scope(|s| {
            let t0 = s.spawn(|| {
                b.set_abort();
                b.wait_min(u64::MAX)
            });
            let t1 = s.spawn(|| b.wait_min(1));
            assert_eq!(t0.join().unwrap(), (1, true));
            assert_eq!(t1.join().unwrap(), (1, true));
        });
        assert!(b.aborted());
    }

    #[test]
    fn single_partition_barrier_never_blocks() {
        let b = PartitionBarrier::new(1);
        assert_eq!(b.wait_min(42), (42, false));
        assert_eq!(b.wait_min(u64::MAX), (u64::MAX, false));
    }
}
