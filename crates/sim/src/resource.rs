//! Queueing helpers for modelling serially-used resources.

use cx_types::SimTime;

/// A FIFO-served resource with a single service channel (a server CPU, a
/// NIC serialization stage). `reserve` implements the classic
/// "busy-until" pattern: work starts at `max(now, busy_until)` and the
/// caller schedules its completion event at the returned time.
#[derive(Debug, Clone, Default)]
pub struct FifoResource {
    busy_until: SimTime,
    /// Total busy time accumulated, for utilization accounting.
    busy_ns: u64,
    /// Total queueing delay experienced by reservations.
    wait_ns: u64,
    reservations: u64,
}

impl FifoResource {
    pub fn new() -> Self {
        Self::default()
    }

    /// Reserve the resource for `duration` ns starting no earlier than
    /// `now`; returns the completion time.
    pub fn reserve(&mut self, now: SimTime, duration: u64) -> SimTime {
        let start = now.max(self.busy_until);
        self.wait_ns += start.since(now);
        self.busy_until = start + duration;
        self.busy_ns += duration;
        self.reservations += 1;
        self.busy_until
    }

    /// When the resource becomes free (may be in the past).
    pub fn free_at(&self) -> SimTime {
        self.busy_until
    }

    /// Outstanding queued work at `now` in nanoseconds: how long a new
    /// arrival would wait before service starts (0 when idle). The
    /// observability plane samples this as the per-server queue depth.
    pub fn backlog_ns(&self, now: SimTime) -> u64 {
        self.busy_until.0.saturating_sub(now.0)
    }

    /// Is the resource idle at `now`?
    pub fn idle_at(&self, now: SimTime) -> bool {
        self.busy_until <= now
    }

    pub fn busy_ns(&self) -> u64 {
        self.busy_ns
    }

    pub fn total_wait_ns(&self) -> u64 {
        self.wait_ns
    }

    pub fn reservations(&self) -> u64 {
        self.reservations
    }

    /// Utilization over `[0, horizon]`.
    pub fn utilization(&self, horizon: SimTime) -> f64 {
        if horizon.0 == 0 {
            0.0
        } else {
            self.busy_ns as f64 / horizon.0 as f64
        }
    }

    /// Drop all queued state (used when a simulated node crashes: whatever
    /// the CPU was doing is lost with the volatile state).
    pub fn reset(&mut self, now: SimTime) {
        self.busy_until = now;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn back_to_back_reservations_queue() {
        let mut r = FifoResource::new();
        let t0 = SimTime(0);
        assert_eq!(r.reserve(t0, 10).0, 10);
        assert_eq!(r.reserve(t0, 10).0, 20, "second waits for first");
        assert_eq!(r.total_wait_ns(), 10);
        assert_eq!(r.busy_ns(), 20);
        assert_eq!(r.reservations(), 2);
    }

    #[test]
    fn idle_gap_is_not_counted_busy() {
        let mut r = FifoResource::new();
        r.reserve(SimTime(0), 10);
        // arrives after the resource went idle
        assert_eq!(r.reserve(SimTime(100), 5).0, 105);
        assert_eq!(r.busy_ns(), 15);
        assert_eq!(r.total_wait_ns(), 0);
    }

    #[test]
    fn utilization_accounts_only_busy_time() {
        let mut r = FifoResource::new();
        r.reserve(SimTime(0), 50);
        assert!((r.utilization(SimTime(100)) - 0.5).abs() < 1e-12);
        assert_eq!(r.utilization(SimTime(0)), 0.0);
    }

    #[test]
    fn backlog_tracks_outstanding_work() {
        let mut r = FifoResource::new();
        assert_eq!(r.backlog_ns(SimTime(0)), 0);
        r.reserve(SimTime(0), 50);
        assert_eq!(r.backlog_ns(SimTime(10)), 40);
        assert_eq!(r.backlog_ns(SimTime(60)), 0);
    }

    #[test]
    fn idle_probe_and_reset() {
        let mut r = FifoResource::new();
        r.reserve(SimTime(0), 10);
        assert!(!r.idle_at(SimTime(5)));
        assert!(r.idle_at(SimTime(10)));
        r.reserve(SimTime(10), 100);
        r.reset(SimTime(20));
        assert!(r.idle_at(SimTime(20)));
    }
}
