//! Deterministic random-number streams.
//!
//! Every component draws from its own stream so adding randomness in one
//! place never perturbs another (a classic DES reproducibility pitfall).

use cx_types::ids::mix64;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Create the RNG for stream `stream` of experiment seed `seed`.
///
/// The same (seed, stream) pair always yields the same sequence; different
/// streams are decorrelated by a 64-bit mix.
pub fn det_rng(seed: u64, stream: u64) -> SmallRng {
    SmallRng::seed_from_u64(mix64(seed, stream ^ 0xD15C_0DE5_EED5_EED5))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream_same_sequence() {
        let a: Vec<u64> = det_rng(7, 3)
            .sample_iter(rand::distributions::Standard)
            .take(16)
            .collect();
        let b: Vec<u64> = det_rng(7, 3)
            .sample_iter(rand::distributions::Standard)
            .take(16)
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_streams_diverge() {
        let a: u64 = det_rng(7, 3).gen();
        let b: u64 = det_rng(7, 4).gen();
        assert_ne!(a, b);
    }

    #[test]
    fn different_seeds_diverge() {
        let a: u64 = det_rng(7, 3).gen();
        let b: u64 = det_rng(8, 3).gen();
        assert_ne!(a, b);
    }
}
