//! Discrete-event simulation kernel.
//!
//! The Cx evaluation replays multi-million-operation traces against clusters
//! of up to 32 metadata servers. We reproduce it on a deterministic
//! discrete-event simulator: a virtual clock, an event queue with
//! deterministic tie-breaking, and a handful of queueing helpers
//! ([`FifoResource`]) used to model server CPUs.
//!
//! The kernel is generic over the event type; `cx-cluster` instantiates it
//! with its cluster events and drives the loop. Nothing here knows about
//! file systems or protocols.
//!
//! Determinism contract: given the same initial schedule and the same
//! sequence of `schedule*` calls, `pop` returns events in exactly the same
//! order — ties in time are broken by schedule order. All randomness comes
//! from [`rng::det_rng`], seeded from the experiment configuration.

pub mod kernel;
pub mod partition;
pub mod resource;
pub mod rng;

pub use kernel::{NodeIdx, Sim, TimerQueue};
pub use partition::{CrossEvent, Mailbox, PartitionBarrier};
pub use resource::FifoResource;
pub use rng::det_rng;
