//! Property tests of the DES kernel's ordering contract.

use cx_sim::{FifoResource, Sim};
use cx_types::SimTime;
use proptest::prelude::*;

proptest! {
    /// Events pop in nondecreasing time order with FIFO tie-breaking,
    /// regardless of the schedule.
    #[test]
    fn pop_order_is_total(delays in prop::collection::vec(0u64..1000, 1..200)) {
        let mut sim: Sim<usize> = Sim::new();
        for (i, d) in delays.iter().enumerate() {
            sim.schedule(*d, 0, i);
        }
        let mut last_time = SimTime::ZERO;
        let mut seen_at_time: Vec<usize> = Vec::new();
        let mut current_time = SimTime::ZERO;
        let mut popped = 0usize;
        while let Some((t, _, idx)) = sim.pop() {
            popped += 1;
            prop_assert!(t >= last_time, "time went backwards");
            prop_assert_eq!(t.0, delays[idx], "event fires at its scheduled time");
            if t != current_time {
                current_time = t;
                seen_at_time.clear();
            }
            // FIFO among equal timestamps: indices increase
            if let Some(&prev) = seen_at_time.last() {
                prop_assert!(idx > prev, "ties must break by schedule order");
            }
            seen_at_time.push(idx);
            last_time = t;
        }
        prop_assert_eq!(popped, delays.len());
        prop_assert_eq!(sim.events_processed(), delays.len() as u64);
    }

    /// Re-scheduling from handlers preserves causality: an event scheduled
    /// at +d from handling time never fires before it.
    #[test]
    fn nested_schedules_respect_causality(
        seeds in prop::collection::vec((0u64..100, 0u64..100), 1..50),
    ) {
        let mut sim: Sim<(u64, u64)> = Sim::new();
        for &(d, redelay) in &seeds {
            sim.schedule(d, 0, (d, redelay));
        }
        let mut extra = 0;
        while let Some((t, _, (orig, redelay))) = sim.pop() {
            prop_assert!(t.0 >= orig);
            if redelay > 0 && extra < 200 {
                extra += 1;
                let due = t + redelay;
                sim.schedule(redelay, 0, (due.0, 0));
            }
        }
    }

    /// FifoResource never overlaps reservations and accounts busy time
    /// exactly.
    #[test]
    fn fifo_resource_serializes(jobs in prop::collection::vec((0u64..500, 1u64..100), 1..100)) {
        let mut r = FifoResource::new();
        let mut last_end = SimTime::ZERO;
        let mut total = 0u64;
        for &(arrival, dur) in &jobs {
            let end = r.reserve(SimTime(arrival), dur);
            prop_assert!(end.0 >= arrival + dur);
            prop_assert!(end >= last_end, "completions are FIFO");
            last_end = end;
            total += dur;
        }
        prop_assert_eq!(r.busy_ns(), total);
        prop_assert_eq!(r.reservations(), jobs.len() as u64);
    }
}
