//! Property test: every protocol message kind round-trips through the wire
//! codec bit-exactly, for randomized field values (ISSUE 7 tentpole (a)).
//!
//! Each proptest case draws a seed, then builds one randomized instance of
//! *all 20* `Payload` variants (asserting the tag coverage explicitly), plus
//! randomized endpoints and control frames, and checks
//! `decode(encode(f)) == f` with full buffer consumption.

use cx_net::wire::{decode_frame, encode_to_vec, Frame};
use cx_net::NodeId;
use cx_protocol::Endpoint;
use cx_types::{
    FileKind, FsOp, Hint, InodeNo, Name, ObjectId, OpId, OpOutcome, OpPlan, Payload, ProcId, Role,
    ServerId, SubOp, Verdict,
};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

fn arb_op_id(rng: &mut SmallRng) -> OpId {
    OpId::new(
        ProcId::new(rng.gen_range(0u32..1 << 20), rng.gen_range(0u32..1 << 20)),
        rng.next_u64(),
    )
}

fn arb_op_ids(rng: &mut SmallRng) -> Vec<OpId> {
    let n = rng.gen_range(0usize..8);
    (0..n).map(|_| arb_op_id(rng)).collect()
}

fn arb_verdict(rng: &mut SmallRng) -> Verdict {
    Verdict::from_ok(rng.gen_bool(0.5))
}

fn arb_kind(rng: &mut SmallRng) -> FileKind {
    if rng.gen_bool(0.5) {
        FileKind::Regular
    } else {
        FileKind::Directory
    }
}

fn arb_subop(rng: &mut SmallRng) -> SubOp {
    let ino = InodeNo(rng.next_u64());
    let parent = InodeNo(rng.next_u64());
    let name = Name(rng.next_u64());
    match rng.gen_range(0u32..10) {
        0 => SubOp::InsertEntry {
            parent,
            name,
            child: ino,
            kind: arb_kind(rng),
        },
        1 => SubOp::RemoveEntry {
            parent,
            name,
            child: ino,
        },
        2 => SubOp::CreateInode {
            ino,
            kind: arb_kind(rng),
        },
        3 => SubOp::ReleaseInode { ino },
        4 => SubOp::IncNlink { ino },
        5 => SubOp::DecNlink { ino },
        6 => SubOp::ReadInode { ino },
        7 => SubOp::ReadEntry { parent, name },
        8 => SubOp::ReadDir { dir: ino },
        _ => SubOp::TouchInode { ino },
    }
}

fn arb_objs(rng: &mut SmallRng) -> Vec<ObjectId> {
    let n = rng.gen_range(0usize..5);
    (0..n)
        .map(|_| {
            if rng.gen_bool(0.5) {
                ObjectId::Inode(InodeNo(rng.next_u64()))
            } else {
                ObjectId::Dentry(InodeNo(rng.next_u64()), Name(rng.next_u64()))
            }
        })
        .collect()
}

fn arb_plan(rng: &mut SmallRng) -> OpPlan {
    let parent = InodeNo(rng.next_u64());
    let name = Name(rng.next_u64());
    let ino = InodeNo(rng.next_u64());
    let op = match rng.gen_range(0u32..12) {
        0 => FsOp::Create { parent, name, ino },
        1 => FsOp::Remove { parent, name, ino },
        2 => FsOp::Mkdir { parent, name, ino },
        3 => FsOp::Rmdir { parent, name, ino },
        4 => FsOp::Link {
            parent,
            name,
            target: ino,
        },
        5 => FsOp::Unlink {
            parent,
            name,
            target: ino,
        },
        6 => FsOp::Stat { ino },
        7 => FsOp::Lookup { parent, name },
        8 => FsOp::Getattr { ino },
        9 => FsOp::Setattr { ino },
        10 => FsOp::Readdir { dir: ino },
        _ => FsOp::Access { ino },
    };
    OpPlan {
        op,
        coordinator: ServerId(rng.gen_range(0u32..64)),
        coord_subop: arb_subop(rng),
        participant: if rng.gen_bool(0.5) {
            Some((ServerId(rng.gen_range(0u32..64)), arb_subop(rng)))
        } else {
            None
        },
        colocated: if rng.gen_bool(0.3) {
            Some(arb_subop(rng))
        } else {
            None
        },
    }
}

/// A randomized payload with the given wire tag (0..=19): one constructor
/// per `Payload` variant, so the caller can enumerate full kind coverage.
fn arb_payload(tag: u8, rng: &mut SmallRng) -> Payload {
    match tag {
        0 => Payload::SubOpReq {
            op_id: arb_op_id(rng),
            subop: arb_subop(rng),
            role: if rng.gen_bool(0.5) {
                Role::Coordinator
            } else {
                Role::Participant
            },
            peer: if rng.gen_bool(0.5) {
                Some(ServerId(rng.gen_range(0u32..64)))
            } else {
                None
            },
            colocated: if rng.gen_bool(0.3) {
                Some(arb_subop(rng))
            } else {
                None
            },
        },
        1 => Payload::SubOpResp {
            op_id: arb_op_id(rng),
            verdict: arb_verdict(rng),
            hint: Hint(arb_op_ids(rng)),
        },
        2 => Payload::LCom {
            op_id: arb_op_id(rng),
        },
        3 => Payload::AllNo {
            op_id: arb_op_id(rng),
        },
        4 => Payload::Committed {
            op_id: arb_op_id(rng),
        },
        5 => Payload::Vote {
            ops: arb_op_ids(rng),
            order_after: arb_op_ids(rng),
        },
        6 => Payload::VoteResult {
            results: arb_op_ids(rng)
                .into_iter()
                .map(|id| (id, arb_verdict(rng)))
                .collect(),
        },
        7 => Payload::CommitDecision {
            commits: arb_op_ids(rng),
            aborts: arb_op_ids(rng),
        },
        8 => Payload::Ack {
            ops: arb_op_ids(rng),
        },
        9 => Payload::CommitmentReq {
            pending: arb_op_id(rng),
            sweep: rng.gen_bool(0.5),
        },
        10 => Payload::QueryOutcome {
            ops: arb_op_ids(rng),
        },
        11 => Payload::OpReq {
            op_id: arb_op_id(rng),
            plan: arb_plan(rng),
        },
        12 => Payload::OpResp {
            op_id: arb_op_id(rng),
            outcome: if rng.gen_bool(0.5) {
                OpOutcome::Applied
            } else {
                OpOutcome::Failed
            },
        },
        13 => Payload::VoteExec {
            op_id: arb_op_id(rng),
            subop: arb_subop(rng),
        },
        14 => Payload::Clear {
            op_id: arb_op_id(rng),
            subop: arb_subop(rng),
        },
        15 => Payload::ClearResp {
            op_id: arb_op_id(rng),
        },
        16 => Payload::Migrate {
            op_id: arb_op_id(rng),
            objs: arb_objs(rng),
        },
        17 => Payload::MigrateResp {
            op_id: arb_op_id(rng),
            objs: arb_objs(rng),
        },
        18 => Payload::MigrateBack {
            op_id: arb_op_id(rng),
            objs: arb_objs(rng),
            install: if rng.gen_bool(0.5) {
                Some(arb_subop(rng))
            } else {
                None
            },
        },
        19 => Payload::MigrateBackAck {
            op_id: arb_op_id(rng),
            verdict: arb_verdict(rng),
        },
        _ => unreachable!("wire tags are 0..=19"),
    }
}

fn arb_endpoint(rng: &mut SmallRng) -> Endpoint {
    if rng.gen_bool(0.5) {
        Endpoint::Server(ServerId(rng.gen_range(0u32..64)))
    } else {
        Endpoint::Proc(ProcId::new(
            rng.gen_range(0u32..1 << 16),
            rng.gen_range(0u32..1 << 16),
        ))
    }
}

fn assert_roundtrip(f: &Frame) {
    let bytes = encode_to_vec(f);
    let (back, used) =
        decode_frame(&bytes).unwrap_or_else(|e| panic!("decode failed for {f:?}: {e}"));
    assert_eq!(used, bytes.len(), "partial consume for {f:?}");
    assert_eq!(&back, f);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Every one of the 20 payload kinds round-trips, with random fields.
    #[test]
    fn every_payload_kind_roundtrips(seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        for tag in 0..Payload::WIRE_TAG_COUNT {
            let payload = arb_payload(tag, &mut rng);
            prop_assert_eq!(payload.wire_tag(), tag, "constructor/tag drift");
            let frame = Frame::Msg {
                sent_ns: rng.next_u64(),
                from: arb_endpoint(&mut rng),
                to: arb_endpoint(&mut rng),
                payload,
            };
            assert_roundtrip(&frame);
        }
    }

    /// Control frames round-trip with random fields.
    #[test]
    fn control_frames_roundtrip(seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        assert_roundtrip(&Frame::Hello {
            node: if rng.gen_bool(0.5) {
                NodeId::Server(rng.gen_range(0u32..64))
            } else {
                NodeId::ClientHost(rng.gen_range(0u32..64))
            },
            listen_port: rng.gen_range(0u32..1 << 16) as u16,
        });
        let n = rng.gen_range(0usize..8);
        assert_roundtrip(&Frame::Peers {
            servers: (0..n)
                .map(|i| (i as u32, format!("127.0.0.1:{}", rng.gen_range(1024u32..65536))))
                .collect(),
        });
        assert_roundtrip(&Frame::Quiesce);
        assert_roundtrip(&Frame::Probe {
            token: rng.next_u64(),
            t0_ns: rng.next_u64(),
        });
        assert_roundtrip(&Frame::ProbeResp {
            token: rng.next_u64(),
            quiesced: rng.gen_bool(0.5),
            echo_t0_ns: rng.next_u64(),
            remote_ns: rng.next_u64(),
        });
        assert_roundtrip(&Frame::Stop);
        let ni = rng.gen_range(0usize..16);
        let nd = rng.gen_range(0usize..16);
        assert_roundtrip(&Frame::StopResp {
            stats_json: (0..rng.gen_range(0usize..64)).map(|_| rng.gen_range(0u32..256) as u8).collect(),
            inodes: (0..ni)
                .map(|_| (rng.next_u64(), rng.gen_range(0u32..2) as u8, rng.gen_range(0u32..8)))
                .collect(),
            dentries: (0..nd).map(|_| (rng.next_u64(), rng.next_u64(), rng.next_u64())).collect(),
        });
    }

    #[test]
    /// Frames concatenated back-to-back decode one at a time with correct
    /// consumed lengths (stream framing).
    fn concatenated_frames_decode_in_sequence(seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let frames: Vec<Frame> = (0..5)
            .map(|_| Frame::Msg {
                sent_ns: rng.next_u64(),
                from: arb_endpoint(&mut rng),
                to: arb_endpoint(&mut rng),
                payload: arb_payload(rng.gen_range(0u32..20) as u8, &mut rng),
            })
            .collect();
        let mut buf = Vec::new();
        for f in &frames {
            cx_net::wire::encode_frame(f, &mut buf);
        }
        let mut at = 0usize;
        for f in &frames {
            let (back, used) = decode_frame(&buf[at..]).expect("decode");
            prop_assert_eq!(&back, f);
            at += used;
        }
        prop_assert_eq!(at, buf.len());
    }
}
