//! Coalesced-stream decode equivalence (ISSUE 8 satellite 2): a byte
//! stream of many frames encoded back-to-back — exactly what the
//! coalescing writer's single `write_all` produces — must decode through
//! the incremental [`FrameBuffer`] to the identical frame sequence no
//! matter how the stream is split into reads: frame-aligned, mid-header,
//! mid-body, byte-at-a-time, or all at once.

use cx_net::wire::{decode_frame, encode_frame, Frame, FrameBuffer};
use cx_net::NodeId;
use cx_protocol::Endpoint;
use cx_types::{Hint, OpId, Payload, ProcId, ServerId, Verdict};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

fn sample_frame(rng: &mut SmallRng) -> Frame {
    let op_id = OpId::new(
        ProcId::new(rng.gen_range(0u32..100), rng.gen_range(0u32..100)),
        rng.next_u64(),
    );
    match rng.gen_range(0u32..6) {
        0 => Frame::Msg {
            sent_ns: rng.next_u64(),
            from: Endpoint::Server(ServerId(0)),
            to: Endpoint::Proc(ProcId::new(1, 2)),
            payload: Payload::SubOpResp {
                op_id,
                verdict: Verdict::Yes,
                hint: Hint(vec![op_id]),
            },
        },
        1 => Frame::Msg {
            sent_ns: rng.next_u64(),
            from: Endpoint::Server(ServerId(1)),
            to: Endpoint::Server(ServerId(2)),
            payload: Payload::Vote {
                ops: (0..rng.gen_range(0u64..6))
                    .map(|s| OpId::new(ProcId::new(0, 0), s))
                    .collect(),
                order_after: vec![],
            },
        },
        2 => Frame::Hello {
            node: NodeId::ClientHost(rng.gen_range(0u32..8)),
            listen_port: rng.gen_range(1024u16..u16::MAX),
        },
        3 => Frame::Probe {
            token: rng.next_u64(),
            t0_ns: rng.next_u64(),
        },
        4 => Frame::Quiesce,
        _ => Frame::StopResp {
            stats_json: (0..rng.gen_range(0usize..64))
                .map(|_| rng.gen_range(0u32..256) as u8)
                .collect(),
            inodes: vec![(rng.next_u64(), 1, 2)],
            dentries: vec![(1, rng.next_u64(), 3)],
        },
    }
}

/// Encode `frames` back-to-back, the coalescing writer's wire image.
fn coalesce(frames: &[Frame]) -> Vec<u8> {
    let mut buf = Vec::new();
    for f in frames {
        encode_frame(f, &mut buf);
    }
    buf
}

/// Reference decode: frame-at-a-time over the whole buffer.
fn decode_whole(mut bytes: &[u8]) -> Vec<Frame> {
    let mut out = Vec::new();
    while !bytes.is_empty() {
        let (f, used) = decode_frame(bytes).expect("valid stream");
        out.push(f);
        bytes = &bytes[used..];
    }
    out
}

/// Feed `bytes` into a `FrameBuffer` split at the given cut points,
/// draining after every chunk (as a reader would after every `read`).
fn decode_chunked(bytes: &[u8], cuts: &[usize]) -> Vec<Frame> {
    let mut fb = FrameBuffer::with_capacity(64);
    let mut out = Vec::new();
    let mut prev = 0;
    for &c in cuts {
        fb.extend(&bytes[prev..c]);
        fb.drain_frames(&mut out).expect("valid stream");
        prev = c;
    }
    fb.extend(&bytes[prev..]);
    fb.drain_frames(&mut out).expect("valid stream");
    assert_eq!(fb.pending(), 0, "a complete stream leaves no residue");
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    /// Arbitrary split boundaries — including mid-length-prefix and
    /// mid-body cuts — decode to the same sequence as the unsplit stream.
    #[test]
    fn arbitrary_boundaries_decode_identically(seed in any::<u64>(), nsplits in 0usize..12) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let frames: Vec<Frame> = (0..rng.gen_range(1usize..12))
            .map(|_| sample_frame(&mut rng))
            .collect();
        let bytes = coalesce(&frames);
        let reference = decode_whole(&bytes);
        prop_assert_eq!(&reference, &frames, "reference decode is identity");

        let mut cuts: Vec<usize> = (0..nsplits)
            .map(|_| rng.gen_range(0usize..bytes.len() + 1))
            .collect();
        cuts.sort_unstable();
        let chunked = decode_chunked(&bytes, &cuts);
        prop_assert_eq!(chunked, reference);
    }

    /// The pathological split: one byte per `read`.
    #[test]
    fn byte_at_a_time_decodes_identically(seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let frames: Vec<Frame> = (0..rng.gen_range(1usize..6))
            .map(|_| sample_frame(&mut rng))
            .collect();
        let bytes = coalesce(&frames);
        let cuts: Vec<usize> = (1..bytes.len()).collect();
        prop_assert_eq!(decode_chunked(&bytes, &cuts), frames);
    }

    /// Draining mid-stream never yields a frame early: after any prefix,
    /// the frames out so far are exactly the fully-contained ones.
    #[test]
    fn prefix_yields_exactly_contained_frames(seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let frames: Vec<Frame> = (0..rng.gen_range(1usize..8))
            .map(|_| sample_frame(&mut rng))
            .collect();
        let bytes = coalesce(&frames);
        // Frame end offsets in the coalesced stream.
        let mut ends = Vec::new();
        {
            let mut off = 0;
            for f in &frames {
                let mut one = Vec::new();
                encode_frame(f, &mut one);
                off += one.len();
                ends.push(off);
            }
        }
        let cut = rng.gen_range(0usize..bytes.len() + 1);
        let mut fb = FrameBuffer::with_capacity(64);
        fb.extend(&bytes[..cut]);
        let mut out = Vec::new();
        fb.drain_frames(&mut out).expect("prefix of a valid stream");
        let contained = ends.iter().filter(|&&e| e <= cut).count();
        prop_assert_eq!(out.len(), contained, "cut at {} of {}", cut, bytes.len());
        prop_assert_eq!(&out[..], &frames[..contained]);
    }
}
