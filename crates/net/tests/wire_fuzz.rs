//! Decoder fuzz: arbitrary bytes never panic the wire decoder (ISSUE 7
//! satellite 2). Three generators stress different failure surfaces:
//!
//! 1. pure random bytes — mostly hit version/tag checks;
//! 2. truncations of valid frames — every prefix must fail `Truncated`
//!    (or decode to the same frame once complete);
//! 3. single-byte corruptions of valid frames — must either decode to
//!    *some* frame (bit flips in value fields are legal payloads) or
//!    return a typed error, never panic or over-allocate.

use cx_net::wire::{decode_frame, encode_to_vec, Frame, WireError, MAX_FRAME_LEN};
use cx_protocol::Endpoint;
use cx_types::{Hint, OpId, Payload, ProcId, ServerId, Verdict};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

fn sample_frame(rng: &mut SmallRng) -> Frame {
    let op_id = OpId::new(
        ProcId::new(rng.gen_range(0u32..100), rng.gen_range(0u32..100)),
        rng.next_u64(),
    );
    match rng.gen_range(0u32..5) {
        0 => Frame::Msg {
            sent_ns: rng.next_u64(),
            from: Endpoint::Server(ServerId(0)),
            to: Endpoint::Proc(ProcId::new(1, 2)),
            payload: Payload::SubOpResp {
                op_id,
                verdict: Verdict::Yes,
                hint: Hint(vec![op_id]),
            },
        },
        1 => Frame::Msg {
            sent_ns: rng.next_u64(),
            from: Endpoint::Server(ServerId(1)),
            to: Endpoint::Server(ServerId(2)),
            payload: Payload::Vote {
                ops: (0..rng.gen_range(0u64..6))
                    .map(|s| OpId::new(ProcId::new(0, 0), s))
                    .collect(),
                order_after: vec![],
            },
        },
        2 => Frame::Peers {
            servers: vec![(0, "127.0.0.1:9000".into())],
        },
        3 => Frame::ProbeResp {
            token: rng.next_u64(),
            quiesced: true,
        },
        _ => Frame::StopResp {
            stats_json: b"{}".to_vec(),
            inodes: vec![(rng.next_u64(), 1, 2)],
            dentries: vec![(1, rng.next_u64(), 3)],
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(500))]

    #[test]
    /// Pure random bytes: decode returns, never panics, and any `Ok` must
    /// have consumed within bounds.
    fn random_bytes_never_panic(seed in any::<u64>(), len in 0usize..256) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let bytes: Vec<u8> = (0..len).map(|_| rng.gen_range(0u32..256) as u8).collect();
        if let Ok((_, used)) = decode_frame(&bytes) {
            prop_assert!(used <= bytes.len());
        }
    }

    #[test]
    /// Every strict prefix of a valid frame fails with a typed error
    /// (almost always `Truncated`; a cut inside the length prefix also
    /// reads as truncated).
    fn truncations_yield_typed_errors(seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let bytes = encode_to_vec(&sample_frame(&mut rng));
        for cut in 0..bytes.len() {
            match decode_frame(&bytes[..cut]) {
                Err(WireError::Truncated) => {}
                Err(e) => prop_assert!(false, "cut at {cut}: unexpected error {e:?}"),
                Ok(_) => prop_assert!(false, "cut at {cut}: decoded from a strict prefix"),
            }
        }
    }

    #[test]
    /// Single-byte corruption anywhere in a valid frame either decodes (a
    /// value-field flip is a different but legal frame) or yields a typed
    /// error; it never panics and never allocates beyond the input size.
    fn corrupted_frames_never_panic(seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let bytes = encode_to_vec(&sample_frame(&mut rng));
        for at in 0..bytes.len() {
            let mut evil = bytes.clone();
            evil[at] ^= 1 << rng.gen_range(0u32..8);
            if let Ok((_, used)) = decode_frame(&evil) {
                prop_assert!(used <= evil.len());
            }
        }
    }

    #[test]
    /// Hostile length prefixes: any announced length beyond the cap is
    /// rejected before allocation; lengths within the cap but beyond the
    /// buffer read as truncated.
    fn hostile_length_prefixes(seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut bytes = encode_to_vec(&Frame::Quiesce);
        let huge = rng.gen_range((MAX_FRAME_LEN as u64 + 1)..u32::MAX as u64 + 1) as u32;
        bytes[..4].copy_from_slice(&huge.to_le_bytes());
        prop_assert_eq!(decode_frame(&bytes), Err(WireError::Oversized(huge)));

        let mut bytes = encode_to_vec(&Frame::Quiesce);
        let big_but_capped = rng.gen_range(1000u32..MAX_FRAME_LEN);
        bytes[..4].copy_from_slice(&big_but_capped.to_le_bytes());
        prop_assert_eq!(decode_frame(&bytes), Err(WireError::Truncated));
    }
}
