//! Decoder fuzz: arbitrary bytes never panic the wire decoder (ISSUE 7
//! satellite 2). Three generators stress different failure surfaces:
//!
//! 1. pure random bytes — mostly hit version/tag checks;
//! 2. truncations of valid frames — every prefix must fail `Truncated`
//!    (or decode to the same frame once complete);
//! 3. single-byte corruptions of valid frames — must either decode to
//!    *some* frame (bit flips in value fields are legal payloads) or
//!    return a typed error, never panic or over-allocate.
//!
//! ISSUE 8 extends the surface to *coalesced* inputs: the same hostility
//! applied to multi-frame streams fed chunk-wise through the incremental
//! [`FrameBuffer`] the batching reader uses.

use cx_net::wire::{
    decode_frame, encode_frame, encode_to_vec, Frame, FrameBuffer, WireError, MAX_FRAME_LEN,
};
use cx_protocol::Endpoint;
use cx_types::{Hint, OpId, Payload, ProcId, ServerId, Verdict};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

fn sample_frame(rng: &mut SmallRng) -> Frame {
    let op_id = OpId::new(
        ProcId::new(rng.gen_range(0u32..100), rng.gen_range(0u32..100)),
        rng.next_u64(),
    );
    match rng.gen_range(0u32..5) {
        0 => Frame::Msg {
            sent_ns: rng.next_u64(),
            from: Endpoint::Server(ServerId(0)),
            to: Endpoint::Proc(ProcId::new(1, 2)),
            payload: Payload::SubOpResp {
                op_id,
                verdict: Verdict::Yes,
                hint: Hint(vec![op_id]),
            },
        },
        1 => Frame::Msg {
            sent_ns: rng.next_u64(),
            from: Endpoint::Server(ServerId(1)),
            to: Endpoint::Server(ServerId(2)),
            payload: Payload::Vote {
                ops: (0..rng.gen_range(0u64..6))
                    .map(|s| OpId::new(ProcId::new(0, 0), s))
                    .collect(),
                order_after: vec![],
            },
        },
        2 => Frame::Peers {
            servers: vec![(0, "127.0.0.1:9000".into())],
        },
        3 => Frame::ProbeResp {
            token: rng.next_u64(),
            quiesced: true,
            echo_t0_ns: rng.next_u64(),
            remote_ns: rng.next_u64(),
        },
        _ => Frame::StopResp {
            stats_json: b"{}".to_vec(),
            inodes: vec![(rng.next_u64(), 1, 2)],
            dentries: vec![(1, rng.next_u64(), 3)],
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(500))]

    #[test]
    /// Pure random bytes: decode returns, never panics, and any `Ok` must
    /// have consumed within bounds.
    fn random_bytes_never_panic(seed in any::<u64>(), len in 0usize..256) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let bytes: Vec<u8> = (0..len).map(|_| rng.gen_range(0u32..256) as u8).collect();
        if let Ok((_, used)) = decode_frame(&bytes) {
            prop_assert!(used <= bytes.len());
        }
    }

    #[test]
    /// Every strict prefix of a valid frame fails with a typed error
    /// (almost always `Truncated`; a cut inside the length prefix also
    /// reads as truncated).
    fn truncations_yield_typed_errors(seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let bytes = encode_to_vec(&sample_frame(&mut rng));
        for cut in 0..bytes.len() {
            match decode_frame(&bytes[..cut]) {
                Err(WireError::Truncated) => {}
                Err(e) => prop_assert!(false, "cut at {cut}: unexpected error {e:?}"),
                Ok(_) => prop_assert!(false, "cut at {cut}: decoded from a strict prefix"),
            }
        }
    }

    #[test]
    /// Single-byte corruption anywhere in a valid frame either decodes (a
    /// value-field flip is a different but legal frame) or yields a typed
    /// error; it never panics and never allocates beyond the input size.
    fn corrupted_frames_never_panic(seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let bytes = encode_to_vec(&sample_frame(&mut rng));
        for at in 0..bytes.len() {
            let mut evil = bytes.clone();
            evil[at] ^= 1 << rng.gen_range(0u32..8);
            if let Ok((_, used)) = decode_frame(&evil) {
                prop_assert!(used <= evil.len());
            }
        }
    }

    #[test]
    /// Hostile length prefixes: any announced length beyond the cap is
    /// rejected before allocation; lengths within the cap but beyond the
    /// buffer read as truncated.
    fn hostile_length_prefixes(seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut bytes = encode_to_vec(&Frame::Quiesce);
        let huge = rng.gen_range((MAX_FRAME_LEN as u64 + 1)..u32::MAX as u64 + 1) as u32;
        bytes[..4].copy_from_slice(&huge.to_le_bytes());
        prop_assert_eq!(decode_frame(&bytes), Err(WireError::Oversized(huge)));

        let mut bytes = encode_to_vec(&Frame::Quiesce);
        let big_but_capped = rng.gen_range(1000u32..MAX_FRAME_LEN);
        bytes[..4].copy_from_slice(&big_but_capped.to_le_bytes());
        prop_assert_eq!(decode_frame(&bytes), Err(WireError::Truncated));
    }

    #[test]
    /// Random bytes fed chunk-wise through the incremental buffer: the
    /// drain either keeps waiting for more input or returns a typed error;
    /// it never panics, and an oversized announced length is rejected
    /// without buffering the body.
    fn coalesced_random_bytes_never_panic(seed in any::<u64>(), len in 0usize..512) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let bytes: Vec<u8> = (0..len).map(|_| rng.gen_range(0u32..256) as u8).collect();
        let mut fb = FrameBuffer::with_capacity(64);
        let mut out = Vec::new();
        let mut pos = 0;
        while pos < bytes.len() {
            let chunk = 1 + rng.gen_range(0usize..bytes.len() - pos);
            fb.extend(&bytes[pos..pos + chunk]);
            pos += chunk;
            if fb.drain_frames(&mut out).is_err() {
                break; // malformed mid-stream: reader resets, as conn.rs does
            }
        }
    }

    #[test]
    /// A single-byte corruption inside a coalesced multi-frame stream:
    /// frames before the corruption still decode, and the stream as a
    /// whole either decodes (value-field flip) or dies with a typed error
    /// at the corrupted frame — never a panic, never a reordering.
    fn coalesced_corruption_fails_cleanly(seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let frames = [
            Frame::Probe { token: rng.next_u64(), t0_ns: 0 },
            sample_frame(&mut rng),
            Frame::Probe { token: rng.next_u64(), t0_ns: 0 },
        ];
        let mut bytes = Vec::new();
        let mut ends = Vec::new();
        for f in &frames {
            encode_frame(f, &mut bytes);
            ends.push(bytes.len());
        }
        let at = rng.gen_range(0usize..bytes.len());
        bytes[at] ^= 1 << rng.gen_range(0u32..8);

        let mut fb = FrameBuffer::with_capacity(64);
        fb.extend(&bytes);
        let mut out = Vec::new();
        let res = fb.drain_frames(&mut out);
        // Frames wholly before the corrupted one are untouched by the flip
        // and must have decoded as themselves.
        let intact = ends.iter().filter(|&&e| e <= at).count();
        prop_assert!(out.len() >= intact.min(frames.len()),
            "decoded {} frames, corruption at {at} leaves {intact} intact", out.len());
        for (a, b) in out.iter().take(intact).zip(&frames) {
            prop_assert_eq!(a, b);
        }
        if res.is_ok() && out.len() == frames.len() && fb.pending() == 0 {
            // Value-field flip: a different but fully legal stream — fine.
        }
    }
}
