//! Length-prefixed binary wire codec for the Cx protocol.
//!
//! Frame layout (DESIGN.md §9):
//!
//! ```text
//! [u32 LE length][u8 version][u8 tag][body]
//! ```
//!
//! `length` counts everything after the prefix (version + tag + body).
//! `version` is [`WIRE_VERSION`]; a peer speaking a different version is
//! rejected with [`WireError::BadVersion`] rather than misparsed. `tag`
//! selects the frame: tags `0..=19` are protocol [`Payload`] variants in
//! declaration order ([`Payload::wire_tag`]), tags `240..=246` are the
//! runtime control plane (handshake, peer gossip, quiesce/probe/stop).
//!
//! The decoder is total: arbitrary bytes yield a typed [`WireError`], never
//! a panic and never an unbounded allocation (every vector length is checked
//! against the bytes actually remaining in the frame before reserving).
//! Integers are little-endian throughout; `Option` is a one-byte flag;
//! vectors are `u32` counts.

use cx_protocol::Endpoint;
use cx_types::{
    FileKind, FsOp, Hint, InodeNo, Name, ObjectId, OpId, OpOutcome, OpPlan, Payload, ProcId, Role,
    ServerId, SubOp, Verdict,
};
use std::fmt;
use std::io::{self, Read, Write};

use crate::NodeId;

/// Current wire protocol version.
pub const WIRE_VERSION: u8 = 1;

/// Upper bound on a single frame's post-prefix length. Generous (a batched
/// commitment over the whole lazy queue is a few hundred KiB at most) while
/// still rejecting hostile length prefixes before any allocation happens.
pub const MAX_FRAME_LEN: u32 = 64 << 20;

// Control-plane frame tags; payload frames use `Payload::wire_tag()` (0..=19).
const TAG_HELLO: u8 = 240;
const TAG_PEERS: u8 = 241;
const TAG_QUIESCE: u8 = 242;
const TAG_PROBE: u8 = 243;
const TAG_PROBE_RESP: u8 = 244;
const TAG_STOP: u8 = 245;
const TAG_STOP_RESP: u8 = 246;

/// Everything that travels over a `cx-net` socket.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// A protocol message. `sent_ns` is the sender's clock (nanoseconds
    /// since the run epoch) so the receiver can record one-way flow arcs.
    Msg {
        sent_ns: u64,
        from: Endpoint,
        to: Endpoint,
        payload: Payload,
    },
    /// First frame on every connection: who is dialing, and on which port
    /// the dialer's own listener accepts dial-backs.
    Hello { node: NodeId, listen_port: u16 },
    /// Coordinator → server gossip: the listen addresses of every server,
    /// so multi-process servers can dial each other without a rendezvous
    /// service.
    Peers { servers: Vec<(u32, String)> },
    /// Coordinator asks a server to flush batched commitments (the threaded
    /// runtime's drain protocol, over the wire).
    Quiesce,
    /// Coordinator asks: are you quiesced? Token echoes back in the reply.
    /// `t0_ns` is the sender's clock at send time (nanoseconds since its
    /// run epoch); its echo in [`Frame::ProbeResp`] turns every quiesce
    /// probe into an NTP-style RTT/clock-offset sample for free.
    Probe { token: u64, t0_ns: u64 },
    ProbeResp {
        token: u64,
        quiesced: bool,
        /// The probe's `t0_ns`, echoed verbatim (the prober's own clock).
        echo_t0_ns: u64,
        /// The responder's clock when it built the reply — the `t1` of the
        /// offset estimate `t1 - (t0 + t3) / 2`.
        remote_ns: u64,
    },
    /// Coordinator asks the server to stop and ship its final state.
    Stop,
    /// Server's terminal reply: engine stats as JSON plus a binary snapshot
    /// of the metadata store for the global consistency check.
    StopResp {
        stats_json: Vec<u8>,
        /// `(ino, kind, nlink)` rows; kind 0 = regular, 1 = directory.
        inodes: Vec<(u64, u8, u32)>,
        /// `(parent, name, child)` rows.
        dentries: Vec<(u64, u64, u64)>,
    },
}

/// Typed decode failure. The decoder returns these for any malformed input;
/// it never panics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// Input ended before the announced frame/field length.
    Truncated,
    /// Version byte differs from [`WIRE_VERSION`].
    BadVersion(u8),
    /// Frame tag is neither a payload tag nor a control tag.
    UnknownTag(u8),
    /// Length prefix exceeds [`MAX_FRAME_LEN`].
    Oversized(u32),
    /// A vector/string count is impossible for the bytes remaining.
    BadLength,
    /// An enum discriminant byte is out of range for `what`.
    UnknownEnum { what: &'static str, value: u8 },
    /// Frame body has leftover bytes after a complete decode.
    Trailing(usize),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "truncated frame"),
            WireError::BadVersion(v) => {
                write!(f, "wire version {v} (expected {WIRE_VERSION})")
            }
            WireError::UnknownTag(t) => write!(f, "unknown frame tag {t}"),
            WireError::Oversized(n) => {
                write!(f, "frame length {n} exceeds max {MAX_FRAME_LEN}")
            }
            WireError::BadLength => write!(f, "impossible collection length"),
            WireError::UnknownEnum { what, value } => {
                write!(f, "unknown {what} discriminant {value}")
            }
            WireError::Trailing(n) => write!(f, "{n} trailing bytes after frame body"),
        }
    }
}

impl std::error::Error for WireError {}

// ---------------------------------------------------------------- encoding

struct Enc<'a> {
    out: &'a mut Vec<u8>,
}

impl Enc<'_> {
    fn u8(&mut self, v: u8) {
        self.out.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }
    fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }
    fn len(&mut self, n: usize) {
        debug_assert!(n <= u32::MAX as usize);
        self.u32(n as u32);
    }

    fn op_id(&mut self, id: OpId) {
        self.u32(id.proc.client.0);
        self.u32(id.proc.process.0);
        self.u64(id.seq);
    }
    fn op_ids(&mut self, ids: &[OpId]) {
        self.len(ids.len());
        for &id in ids {
            self.op_id(id);
        }
    }
    fn verdict(&mut self, v: Verdict) {
        self.u8(v.is_yes() as u8);
    }
    fn role(&mut self, r: Role) {
        self.u8(match r {
            Role::Coordinator => 0,
            Role::Participant => 1,
        });
    }
    fn file_kind(&mut self, k: FileKind) {
        self.u8(match k {
            FileKind::Regular => 0,
            FileKind::Directory => 1,
        });
    }
    fn outcome(&mut self, o: OpOutcome) {
        self.u8(match o {
            OpOutcome::Applied => 0,
            OpOutcome::Failed => 1,
        });
    }
    fn object_id(&mut self, o: ObjectId) {
        match o {
            ObjectId::Inode(ino) => {
                self.u8(0);
                self.u64(ino.0);
            }
            ObjectId::Dentry(dir, name) => {
                self.u8(1);
                self.u64(dir.0);
                self.u64(name.0);
            }
        }
    }
    fn subop(&mut self, s: SubOp) {
        match s {
            SubOp::InsertEntry {
                parent,
                name,
                child,
                kind,
            } => {
                self.u8(0);
                self.u64(parent.0);
                self.u64(name.0);
                self.u64(child.0);
                self.file_kind(kind);
            }
            SubOp::RemoveEntry {
                parent,
                name,
                child,
            } => {
                self.u8(1);
                self.u64(parent.0);
                self.u64(name.0);
                self.u64(child.0);
            }
            SubOp::CreateInode { ino, kind } => {
                self.u8(2);
                self.u64(ino.0);
                self.file_kind(kind);
            }
            SubOp::ReleaseInode { ino } => {
                self.u8(3);
                self.u64(ino.0);
            }
            SubOp::IncNlink { ino } => {
                self.u8(4);
                self.u64(ino.0);
            }
            SubOp::DecNlink { ino } => {
                self.u8(5);
                self.u64(ino.0);
            }
            SubOp::ReadInode { ino } => {
                self.u8(6);
                self.u64(ino.0);
            }
            SubOp::ReadEntry { parent, name } => {
                self.u8(7);
                self.u64(parent.0);
                self.u64(name.0);
            }
            SubOp::ReadDir { dir } => {
                self.u8(8);
                self.u64(dir.0);
            }
            SubOp::TouchInode { ino } => {
                self.u8(9);
                self.u64(ino.0);
            }
        }
    }
    fn opt_subop(&mut self, s: &Option<SubOp>) {
        match s {
            None => self.u8(0),
            Some(s) => {
                self.u8(1);
                self.subop(*s);
            }
        }
    }
    fn fs_op(&mut self, op: FsOp) {
        match op {
            FsOp::Create { parent, name, ino } => {
                self.u8(0);
                self.u64(parent.0);
                self.u64(name.0);
                self.u64(ino.0);
            }
            FsOp::Remove { parent, name, ino } => {
                self.u8(1);
                self.u64(parent.0);
                self.u64(name.0);
                self.u64(ino.0);
            }
            FsOp::Mkdir { parent, name, ino } => {
                self.u8(2);
                self.u64(parent.0);
                self.u64(name.0);
                self.u64(ino.0);
            }
            FsOp::Rmdir { parent, name, ino } => {
                self.u8(3);
                self.u64(parent.0);
                self.u64(name.0);
                self.u64(ino.0);
            }
            FsOp::Link {
                parent,
                name,
                target,
            } => {
                self.u8(4);
                self.u64(parent.0);
                self.u64(name.0);
                self.u64(target.0);
            }
            FsOp::Unlink {
                parent,
                name,
                target,
            } => {
                self.u8(5);
                self.u64(parent.0);
                self.u64(name.0);
                self.u64(target.0);
            }
            FsOp::Stat { ino } => {
                self.u8(6);
                self.u64(ino.0);
            }
            FsOp::Lookup { parent, name } => {
                self.u8(7);
                self.u64(parent.0);
                self.u64(name.0);
            }
            FsOp::Getattr { ino } => {
                self.u8(8);
                self.u64(ino.0);
            }
            FsOp::Setattr { ino } => {
                self.u8(9);
                self.u64(ino.0);
            }
            FsOp::Readdir { dir } => {
                self.u8(10);
                self.u64(dir.0);
            }
            FsOp::Access { ino } => {
                self.u8(11);
                self.u64(ino.0);
            }
        }
    }
    fn plan(&mut self, p: &OpPlan) {
        self.fs_op(p.op);
        self.u32(p.coordinator.0);
        self.subop(p.coord_subop);
        match p.participant {
            None => self.u8(0),
            Some((sid, s)) => {
                self.u8(1);
                self.u32(sid.0);
                self.subop(s);
            }
        }
        self.opt_subop(&p.colocated);
    }
    fn endpoint(&mut self, e: Endpoint) {
        match e {
            Endpoint::Proc(p) => {
                self.u8(0);
                self.u32(p.client.0);
                self.u32(p.process.0);
            }
            Endpoint::Server(s) => {
                self.u8(1);
                self.u32(s.0);
            }
        }
    }
    fn node_id(&mut self, n: NodeId) {
        match n {
            NodeId::Server(s) => {
                self.u8(0);
                self.u32(s);
            }
            NodeId::ClientHost(c) => {
                self.u8(1);
                self.u32(c);
            }
        }
    }

    fn payload(&mut self, p: &Payload) {
        match p {
            Payload::SubOpReq {
                op_id,
                subop,
                role,
                peer,
                colocated,
            } => {
                self.op_id(*op_id);
                self.subop(*subop);
                self.role(*role);
                match peer {
                    None => self.u8(0),
                    Some(s) => {
                        self.u8(1);
                        self.u32(s.0);
                    }
                }
                self.opt_subop(colocated);
            }
            Payload::SubOpResp {
                op_id,
                verdict,
                hint,
            } => {
                self.op_id(*op_id);
                self.verdict(*verdict);
                self.op_ids(&hint.0);
            }
            Payload::LCom { op_id }
            | Payload::AllNo { op_id }
            | Payload::Committed { op_id }
            | Payload::ClearResp { op_id } => self.op_id(*op_id),
            Payload::Vote { ops, order_after } => {
                self.op_ids(ops);
                self.op_ids(order_after);
            }
            Payload::VoteResult { results } => {
                self.len(results.len());
                for (id, v) in results {
                    self.op_id(*id);
                    self.verdict(*v);
                }
            }
            Payload::CommitDecision { commits, aborts } => {
                self.op_ids(commits);
                self.op_ids(aborts);
            }
            Payload::Ack { ops } | Payload::QueryOutcome { ops } => self.op_ids(ops),
            Payload::CommitmentReq { pending, sweep } => {
                self.op_id(*pending);
                self.bool(*sweep);
            }
            Payload::OpReq { op_id, plan } => {
                self.op_id(*op_id);
                self.plan(plan);
            }
            Payload::OpResp { op_id, outcome } => {
                self.op_id(*op_id);
                self.outcome(*outcome);
            }
            Payload::VoteExec { op_id, subop } | Payload::Clear { op_id, subop } => {
                self.op_id(*op_id);
                self.subop(*subop);
            }
            Payload::Migrate { op_id, objs } | Payload::MigrateResp { op_id, objs } => {
                self.op_id(*op_id);
                self.len(objs.len());
                for &o in objs {
                    self.object_id(o);
                }
            }
            Payload::MigrateBack {
                op_id,
                objs,
                install,
            } => {
                self.op_id(*op_id);
                self.len(objs.len());
                for &o in objs {
                    self.object_id(o);
                }
                self.opt_subop(install);
            }
            Payload::MigrateBackAck { op_id, verdict } => {
                self.op_id(*op_id);
                self.verdict(*verdict);
            }
        }
    }
}

/// Append one complete frame (length prefix included) to `buf`.
pub fn encode_frame(frame: &Frame, buf: &mut Vec<u8>) {
    let len_at = buf.len();
    buf.extend_from_slice(&[0u8; 4]); // patched below
    let mut e = Enc { out: buf };
    e.u8(WIRE_VERSION);
    match frame {
        Frame::Msg {
            sent_ns,
            from,
            to,
            payload,
        } => {
            e.u8(payload.wire_tag());
            e.u64(*sent_ns);
            e.endpoint(*from);
            e.endpoint(*to);
            e.payload(payload);
        }
        Frame::Hello { node, listen_port } => {
            e.u8(TAG_HELLO);
            e.node_id(*node);
            e.u16(*listen_port);
        }
        Frame::Peers { servers } => {
            e.u8(TAG_PEERS);
            e.len(servers.len());
            for (sid, addr) in servers {
                e.u32(*sid);
                let bytes = addr.as_bytes();
                debug_assert!(bytes.len() <= u16::MAX as usize);
                e.u16(bytes.len() as u16);
                e.out.extend_from_slice(bytes);
            }
        }
        Frame::Quiesce => e.u8(TAG_QUIESCE),
        Frame::Probe { token, t0_ns } => {
            e.u8(TAG_PROBE);
            e.u64(*token);
            e.u64(*t0_ns);
        }
        Frame::ProbeResp {
            token,
            quiesced,
            echo_t0_ns,
            remote_ns,
        } => {
            e.u8(TAG_PROBE_RESP);
            e.u64(*token);
            e.bool(*quiesced);
            e.u64(*echo_t0_ns);
            e.u64(*remote_ns);
        }
        Frame::Stop => e.u8(TAG_STOP),
        Frame::StopResp {
            stats_json,
            inodes,
            dentries,
        } => {
            e.u8(TAG_STOP_RESP);
            e.len(stats_json.len());
            e.out.extend_from_slice(stats_json);
            e.len(inodes.len());
            for &(ino, kind, nlink) in inodes {
                e.u64(ino);
                e.u8(kind);
                e.u32(nlink);
            }
            e.len(dentries.len());
            for &(parent, name, child) in dentries {
                e.u64(parent);
                e.u64(name);
                e.u64(child);
            }
        }
    }
    let body_len = (buf.len() - len_at - 4) as u32;
    buf[len_at..len_at + 4].copy_from_slice(&body_len.to_le_bytes());
}

/// Encode into a fresh buffer (convenience for tests and one-shot sends).
pub fn encode_to_vec(frame: &Frame) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64);
    encode_frame(frame, &mut buf);
    buf
}

// ---------------------------------------------------------------- decoding

struct Cur<'a> {
    b: &'a [u8],
    pos: usize,
}

impl<'a> Cur<'a> {
    fn remaining(&self) -> usize {
        self.b.len() - self.pos
    }
    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated);
        }
        let s = &self.b[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn bool(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            value => Err(WireError::UnknownEnum {
                what: "bool",
                value,
            }),
        }
    }
    /// Collection count, validated against the bytes actually remaining
    /// (each element needs at least `min_elem` bytes) so a hostile count
    /// can never cause an oversized allocation.
    fn count(&mut self, min_elem: usize) -> Result<usize, WireError> {
        let n = self.u32()? as usize;
        if n > self.remaining() / min_elem.max(1) {
            return Err(WireError::BadLength);
        }
        Ok(n)
    }

    fn op_id(&mut self) -> Result<OpId, WireError> {
        let client = self.u32()?;
        let process = self.u32()?;
        let seq = self.u64()?;
        Ok(OpId::new(ProcId::new(client, process), seq))
    }
    fn op_ids(&mut self) -> Result<Vec<OpId>, WireError> {
        let n = self.count(16)?;
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(self.op_id()?);
        }
        Ok(v)
    }
    fn verdict(&mut self) -> Result<Verdict, WireError> {
        match self.u8()? {
            0 => Ok(Verdict::No),
            1 => Ok(Verdict::Yes),
            value => Err(WireError::UnknownEnum {
                what: "verdict",
                value,
            }),
        }
    }
    fn role(&mut self) -> Result<Role, WireError> {
        match self.u8()? {
            0 => Ok(Role::Coordinator),
            1 => Ok(Role::Participant),
            value => Err(WireError::UnknownEnum {
                what: "role",
                value,
            }),
        }
    }
    fn file_kind(&mut self) -> Result<FileKind, WireError> {
        match self.u8()? {
            0 => Ok(FileKind::Regular),
            1 => Ok(FileKind::Directory),
            value => Err(WireError::UnknownEnum {
                what: "file kind",
                value,
            }),
        }
    }
    fn outcome(&mut self) -> Result<OpOutcome, WireError> {
        match self.u8()? {
            0 => Ok(OpOutcome::Applied),
            1 => Ok(OpOutcome::Failed),
            value => Err(WireError::UnknownEnum {
                what: "op outcome",
                value,
            }),
        }
    }
    fn object_id(&mut self) -> Result<ObjectId, WireError> {
        match self.u8()? {
            0 => Ok(ObjectId::Inode(InodeNo(self.u64()?))),
            1 => Ok(ObjectId::Dentry(InodeNo(self.u64()?), Name(self.u64()?))),
            value => Err(WireError::UnknownEnum {
                what: "object id",
                value,
            }),
        }
    }
    fn object_ids(&mut self) -> Result<Vec<ObjectId>, WireError> {
        let n = self.count(9)?;
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(self.object_id()?);
        }
        Ok(v)
    }
    fn subop(&mut self) -> Result<SubOp, WireError> {
        Ok(match self.u8()? {
            0 => SubOp::InsertEntry {
                parent: InodeNo(self.u64()?),
                name: Name(self.u64()?),
                child: InodeNo(self.u64()?),
                kind: self.file_kind()?,
            },
            1 => SubOp::RemoveEntry {
                parent: InodeNo(self.u64()?),
                name: Name(self.u64()?),
                child: InodeNo(self.u64()?),
            },
            2 => SubOp::CreateInode {
                ino: InodeNo(self.u64()?),
                kind: self.file_kind()?,
            },
            3 => SubOp::ReleaseInode {
                ino: InodeNo(self.u64()?),
            },
            4 => SubOp::IncNlink {
                ino: InodeNo(self.u64()?),
            },
            5 => SubOp::DecNlink {
                ino: InodeNo(self.u64()?),
            },
            6 => SubOp::ReadInode {
                ino: InodeNo(self.u64()?),
            },
            7 => SubOp::ReadEntry {
                parent: InodeNo(self.u64()?),
                name: Name(self.u64()?),
            },
            8 => SubOp::ReadDir {
                dir: InodeNo(self.u64()?),
            },
            9 => SubOp::TouchInode {
                ino: InodeNo(self.u64()?),
            },
            value => {
                return Err(WireError::UnknownEnum {
                    what: "sub-op",
                    value,
                })
            }
        })
    }
    fn opt_subop(&mut self) -> Result<Option<SubOp>, WireError> {
        Ok(if self.bool()? {
            Some(self.subop()?)
        } else {
            None
        })
    }
    fn fs_op(&mut self) -> Result<FsOp, WireError> {
        Ok(match self.u8()? {
            0 => FsOp::Create {
                parent: InodeNo(self.u64()?),
                name: Name(self.u64()?),
                ino: InodeNo(self.u64()?),
            },
            1 => FsOp::Remove {
                parent: InodeNo(self.u64()?),
                name: Name(self.u64()?),
                ino: InodeNo(self.u64()?),
            },
            2 => FsOp::Mkdir {
                parent: InodeNo(self.u64()?),
                name: Name(self.u64()?),
                ino: InodeNo(self.u64()?),
            },
            3 => FsOp::Rmdir {
                parent: InodeNo(self.u64()?),
                name: Name(self.u64()?),
                ino: InodeNo(self.u64()?),
            },
            4 => FsOp::Link {
                parent: InodeNo(self.u64()?),
                name: Name(self.u64()?),
                target: InodeNo(self.u64()?),
            },
            5 => FsOp::Unlink {
                parent: InodeNo(self.u64()?),
                name: Name(self.u64()?),
                target: InodeNo(self.u64()?),
            },
            6 => FsOp::Stat {
                ino: InodeNo(self.u64()?),
            },
            7 => FsOp::Lookup {
                parent: InodeNo(self.u64()?),
                name: Name(self.u64()?),
            },
            8 => FsOp::Getattr {
                ino: InodeNo(self.u64()?),
            },
            9 => FsOp::Setattr {
                ino: InodeNo(self.u64()?),
            },
            10 => FsOp::Readdir {
                dir: InodeNo(self.u64()?),
            },
            11 => FsOp::Access {
                ino: InodeNo(self.u64()?),
            },
            value => {
                return Err(WireError::UnknownEnum {
                    what: "fs op",
                    value,
                })
            }
        })
    }
    fn plan(&mut self) -> Result<OpPlan, WireError> {
        let op = self.fs_op()?;
        let coordinator = ServerId(self.u32()?);
        let coord_subop = self.subop()?;
        let participant = if self.bool()? {
            Some((ServerId(self.u32()?), self.subop()?))
        } else {
            None
        };
        let colocated = self.opt_subop()?;
        Ok(OpPlan {
            op,
            coordinator,
            coord_subop,
            participant,
            colocated,
        })
    }
    fn endpoint(&mut self) -> Result<Endpoint, WireError> {
        match self.u8()? {
            0 => {
                let client = self.u32()?;
                let process = self.u32()?;
                Ok(Endpoint::Proc(ProcId::new(client, process)))
            }
            1 => Ok(Endpoint::Server(ServerId(self.u32()?))),
            value => Err(WireError::UnknownEnum {
                what: "endpoint",
                value,
            }),
        }
    }
    fn node_id(&mut self) -> Result<NodeId, WireError> {
        match self.u8()? {
            0 => Ok(NodeId::Server(self.u32()?)),
            1 => Ok(NodeId::ClientHost(self.u32()?)),
            value => Err(WireError::UnknownEnum {
                what: "node id",
                value,
            }),
        }
    }

    fn payload(&mut self, tag: u8) -> Result<Payload, WireError> {
        Ok(match tag {
            0 => Payload::SubOpReq {
                op_id: self.op_id()?,
                subop: self.subop()?,
                role: self.role()?,
                peer: if self.bool()? {
                    Some(ServerId(self.u32()?))
                } else {
                    None
                },
                colocated: self.opt_subop()?,
            },
            1 => Payload::SubOpResp {
                op_id: self.op_id()?,
                verdict: self.verdict()?,
                hint: Hint(self.op_ids()?),
            },
            2 => Payload::LCom {
                op_id: self.op_id()?,
            },
            3 => Payload::AllNo {
                op_id: self.op_id()?,
            },
            4 => Payload::Committed {
                op_id: self.op_id()?,
            },
            5 => Payload::Vote {
                ops: self.op_ids()?,
                order_after: self.op_ids()?,
            },
            6 => {
                let n = self.count(17)?;
                let mut results = Vec::with_capacity(n);
                for _ in 0..n {
                    let id = self.op_id()?;
                    let v = self.verdict()?;
                    results.push((id, v));
                }
                Payload::VoteResult { results }
            }
            7 => Payload::CommitDecision {
                commits: self.op_ids()?,
                aborts: self.op_ids()?,
            },
            8 => Payload::Ack {
                ops: self.op_ids()?,
            },
            9 => Payload::CommitmentReq {
                pending: self.op_id()?,
                sweep: self.bool()?,
            },
            10 => Payload::QueryOutcome {
                ops: self.op_ids()?,
            },
            11 => Payload::OpReq {
                op_id: self.op_id()?,
                plan: self.plan()?,
            },
            12 => Payload::OpResp {
                op_id: self.op_id()?,
                outcome: self.outcome()?,
            },
            13 => Payload::VoteExec {
                op_id: self.op_id()?,
                subop: self.subop()?,
            },
            14 => Payload::Clear {
                op_id: self.op_id()?,
                subop: self.subop()?,
            },
            15 => Payload::ClearResp {
                op_id: self.op_id()?,
            },
            16 => Payload::Migrate {
                op_id: self.op_id()?,
                objs: self.object_ids()?,
            },
            17 => Payload::MigrateResp {
                op_id: self.op_id()?,
                objs: self.object_ids()?,
            },
            18 => Payload::MigrateBack {
                op_id: self.op_id()?,
                objs: self.object_ids()?,
                install: self.opt_subop()?,
            },
            19 => Payload::MigrateBackAck {
                op_id: self.op_id()?,
                verdict: self.verdict()?,
            },
            _ => return Err(WireError::UnknownTag(tag)),
        })
    }
}

/// Decode the post-prefix body (version + tag + fields) of one frame.
fn decode_body(body: &[u8]) -> Result<Frame, WireError> {
    let mut c = Cur { b: body, pos: 0 };
    let version = c.u8()?;
    if version != WIRE_VERSION {
        return Err(WireError::BadVersion(version));
    }
    let tag = c.u8()?;
    let frame = match tag {
        t if t < Payload::WIRE_TAG_COUNT => {
            let sent_ns = c.u64()?;
            let from = c.endpoint()?;
            let to = c.endpoint()?;
            let payload = c.payload(t)?;
            Frame::Msg {
                sent_ns,
                from,
                to,
                payload,
            }
        }
        TAG_HELLO => Frame::Hello {
            node: c.node_id()?,
            listen_port: c.u16()?,
        },
        TAG_PEERS => {
            let n = c.count(6)?; // u32 id + u16 addr length minimum
            let mut servers = Vec::with_capacity(n);
            for _ in 0..n {
                let sid = c.u32()?;
                let alen = c.u16()? as usize;
                let bytes = c.take(alen)?;
                let addr = std::str::from_utf8(bytes)
                    .map_err(|_| WireError::BadLength)?
                    .to_owned();
                servers.push((sid, addr));
            }
            Frame::Peers { servers }
        }
        TAG_QUIESCE => Frame::Quiesce,
        TAG_PROBE => Frame::Probe {
            token: c.u64()?,
            t0_ns: c.u64()?,
        },
        TAG_PROBE_RESP => Frame::ProbeResp {
            token: c.u64()?,
            quiesced: c.bool()?,
            echo_t0_ns: c.u64()?,
            remote_ns: c.u64()?,
        },
        TAG_STOP => Frame::Stop,
        TAG_STOP_RESP => {
            let jlen = c.count(1)?;
            let stats_json = c.take(jlen)?.to_vec();
            let ni = c.count(13)?;
            let mut inodes = Vec::with_capacity(ni);
            for _ in 0..ni {
                let ino = c.u64()?;
                let kind = c.u8()?;
                let nlink = c.u32()?;
                inodes.push((ino, kind, nlink));
            }
            let nd = c.count(24)?;
            let mut dentries = Vec::with_capacity(nd);
            for _ in 0..nd {
                let parent = c.u64()?;
                let name = c.u64()?;
                let child = c.u64()?;
                dentries.push((parent, name, child));
            }
            Frame::StopResp {
                stats_json,
                inodes,
                dentries,
            }
        }
        t => return Err(WireError::UnknownTag(t)),
    };
    if c.remaining() != 0 {
        return Err(WireError::Trailing(c.remaining()));
    }
    Ok(frame)
}

/// Decode one frame from the front of `bytes`. Returns the frame and the
/// total number of bytes consumed (length prefix included).
pub fn decode_frame(bytes: &[u8]) -> Result<(Frame, usize), WireError> {
    if bytes.len() < 4 {
        return Err(WireError::Truncated);
    }
    let len = u32::from_le_bytes(bytes[..4].try_into().unwrap());
    if len > MAX_FRAME_LEN {
        return Err(WireError::Oversized(len));
    }
    let len = len as usize;
    if bytes.len() < 4 + len {
        return Err(WireError::Truncated);
    }
    let frame = decode_body(&bytes[4..4 + len])?;
    Ok((frame, 4 + len))
}

/// Read exactly one frame from a blocking stream. `Ok(None)` means the peer
/// closed the connection cleanly at a frame boundary; a close mid-frame is
/// an `UnexpectedEof` error, and malformed bytes surface as `InvalidData`
/// wrapping the [`WireError`] text.
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Option<Frame>> {
    let mut prefix = [0u8; 4];
    let mut got = 0;
    while got < 4 {
        match r.read(&mut prefix[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "eof inside frame length prefix",
                ))
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_le_bytes(prefix);
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            WireError::Oversized(len).to_string(),
        ));
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)?;
    decode_body(&body)
        .map(Some)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

/// Write one frame to a blocking stream (no flush; the caller decides when
/// to flush if the stream is buffered).
pub fn write_frame<W: Write>(w: &mut W, frame: &Frame, scratch: &mut Vec<u8>) -> io::Result<()> {
    scratch.clear();
    encode_frame(frame, scratch);
    w.write_all(scratch)
}

/// Incremental decoder over a reusable buffer: bytes go in at arbitrary
/// boundaries (whatever each `read` returned), complete frames come out.
/// A coalesced stream split anywhere — even mid-length-prefix — decodes to
/// the identical frame sequence as frame-at-a-time decoding, because the
/// buffer only ever commits a frame once all of its announced bytes are
/// present.
///
/// The buffer is reused across fills: consumed bytes are compacted to the
/// front before each refill, so the steady state allocates nothing (the
/// buffer grows only when a single frame exceeds the current capacity).
#[derive(Debug)]
pub struct FrameBuffer {
    buf: Vec<u8>,
    /// Offset of the first unconsumed byte in `buf`.
    start: usize,
}

impl Default for FrameBuffer {
    fn default() -> Self {
        Self::with_capacity(64 << 10)
    }
}

impl FrameBuffer {
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            buf: Vec::with_capacity(cap.max(8)),
            start: 0,
        }
    }

    /// Unconsumed bytes currently buffered (a partial frame tail, usually).
    pub fn pending(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Drop already-consumed bytes, moving any partial tail to the front.
    fn compact(&mut self) {
        if self.start > 0 {
            self.buf.drain(..self.start);
            self.start = 0;
        }
    }

    /// Append bytes at an arbitrary split point (test/fuzz entry; the
    /// socket path uses [`FrameBuffer::fill_from`]).
    pub fn extend(&mut self, bytes: &[u8]) {
        self.compact();
        self.buf.extend_from_slice(bytes);
    }

    /// One `read` from a blocking stream into the buffer tail. Returns the
    /// byte count (`0` = clean EOF). The read window is the buffer's spare
    /// capacity, grown to at least `min_window` so a large frame can always
    /// make progress.
    pub fn fill_from<R: Read>(&mut self, r: &mut R, min_window: usize) -> io::Result<usize> {
        self.compact();
        let len = self.buf.len();
        let window = (self.buf.capacity() - len).max(min_window.max(1));
        self.buf.resize(len + window, 0);
        loop {
            match r.read(&mut self.buf[len..]) {
                Ok(n) => {
                    self.buf.truncate(len + n);
                    return Ok(n);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    self.buf.truncate(len);
                    return Err(e);
                }
            }
        }
    }

    /// Decode the next complete frame, if one is fully buffered.
    /// `Ok(None)` means more bytes are needed; malformed bytes surface as
    /// the same typed [`WireError`]s as [`decode_frame`]. The length
    /// prefix is checked here rather than delegated, so a `Truncated`
    /// from *inside* a fully-present body (an announced length that lies
    /// about its fields) is reported as the error it is instead of
    /// waiting forever for bytes that cannot help.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, WireError> {
        let avail = &self.buf[self.start..];
        if avail.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes(avail[..4].try_into().expect("4 bytes checked"));
        if len > MAX_FRAME_LEN {
            return Err(WireError::Oversized(len));
        }
        if avail.len() < 4 + len as usize {
            return Ok(None);
        }
        let (frame, used) = decode_frame(avail)?;
        self.start += used;
        Ok(Some(frame))
    }

    /// Decode every complete frame currently buffered into `out`.
    /// Returns the number of frames appended; stops (with the typed error)
    /// at the first malformed frame.
    pub fn drain_frames(&mut self, out: &mut Vec<Frame>) -> Result<usize, WireError> {
        let mut n = 0;
        while let Some(f) = self.next_frame()? {
            out.push(f);
            n += 1;
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(f: Frame) {
        let bytes = encode_to_vec(&f);
        let (back, used) = decode_frame(&bytes).expect("decode");
        assert_eq!(used, bytes.len());
        assert_eq!(back, f);
    }

    #[test]
    fn control_frames_roundtrip() {
        roundtrip(Frame::Hello {
            node: NodeId::Server(7),
            listen_port: 9999,
        });
        roundtrip(Frame::Hello {
            node: NodeId::ClientHost(0),
            listen_port: 0,
        });
        roundtrip(Frame::Peers {
            servers: vec![(0, "127.0.0.1:4000".into()), (1, "127.0.0.1:4001".into())],
        });
        roundtrip(Frame::Quiesce);
        roundtrip(Frame::Probe {
            token: 42,
            t0_ns: 123_456_789,
        });
        roundtrip(Frame::ProbeResp {
            token: 42,
            quiesced: true,
            echo_t0_ns: 123_456_789,
            remote_ns: 987_654_321,
        });
        roundtrip(Frame::Stop);
        roundtrip(Frame::StopResp {
            stats_json: b"{\"x\":1}".to_vec(),
            inodes: vec![(1, 1, 2), (9, 0, 1)],
            dentries: vec![(1, 77, 9)],
        });
    }

    #[test]
    fn short_prefix_is_truncated() {
        assert_eq!(decode_frame(&[1, 0]), Err(WireError::Truncated));
    }

    #[test]
    fn oversized_prefix_is_rejected_before_alloc() {
        let mut bytes = (MAX_FRAME_LEN + 1).to_le_bytes().to_vec();
        bytes.extend_from_slice(&[0; 8]);
        assert_eq!(
            decode_frame(&bytes),
            Err(WireError::Oversized(MAX_FRAME_LEN + 1))
        );
    }

    #[test]
    fn bad_version_is_rejected() {
        let mut bytes = encode_to_vec(&Frame::Quiesce);
        bytes[4] = 99;
        assert_eq!(decode_frame(&bytes), Err(WireError::BadVersion(99)));
    }

    #[test]
    fn unknown_tag_is_rejected() {
        let mut bytes = encode_to_vec(&Frame::Quiesce);
        bytes[5] = 200; // between payload and control ranges
        assert_eq!(decode_frame(&bytes), Err(WireError::UnknownTag(200)));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = encode_to_vec(&Frame::Probe { token: 1, t0_ns: 0 });
        // Grow the body by one byte and patch the prefix accordingly.
        bytes.push(0xAB);
        let len = (bytes.len() - 4) as u32;
        bytes[..4].copy_from_slice(&len.to_le_bytes());
        assert_eq!(decode_frame(&bytes), Err(WireError::Trailing(1)));
    }

    #[test]
    fn hostile_vec_count_is_bad_length_not_alloc() {
        // A Vote frame whose ops count claims u32::MAX entries.
        let f = Frame::Msg {
            sent_ns: 0,
            from: Endpoint::Server(ServerId(0)),
            to: Endpoint::Server(ServerId(1)),
            payload: Payload::Vote {
                ops: vec![],
                order_after: vec![],
            },
        };
        let mut bytes = encode_to_vec(&f);
        // ops count lives right after version+tag+sent_ns+from+to.
        let count_at = 4 + 1 + 1 + 8 + 5 + 5;
        bytes[count_at..count_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(decode_frame(&bytes), Err(WireError::BadLength));
    }

    #[test]
    fn stream_read_frame_handles_clean_close_and_mid_frame_eof() {
        let bytes = encode_to_vec(&Frame::Probe { token: 9, t0_ns: 0 });
        // Clean close: empty stream.
        let mut empty: &[u8] = &[];
        assert!(read_frame(&mut empty).unwrap().is_none());
        // One whole frame then clean close.
        let mut whole: &[u8] = &bytes;
        assert_eq!(
            read_frame(&mut whole).unwrap(),
            Some(Frame::Probe { token: 9, t0_ns: 0 })
        );
        assert!(read_frame(&mut whole).unwrap().is_none());
        // Truncated mid-frame.
        let mut cut: &[u8] = &bytes[..bytes.len() - 1];
        assert!(read_frame(&mut cut).is_err());
    }
}
