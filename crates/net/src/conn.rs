//! Connection management: one listener + per-peer writer threads.
//!
//! Topology: every node runs one [`ConnectionManager`]. Connections are
//! simplex — a node dials out to write, and accepts to read. The first
//! frame on every connection is a [`Frame::Hello`] naming the dialer and
//! its own listen port, so the acceptor can attribute inbound frames and
//! learn the dial-back address without a rendezvous service.
//!
//! Per peer, the manager keeps a writer thread fed by a **bounded** queue:
//! when the peer is slow (or reconnecting), `send` blocks the caller — that
//! is the backpressure policy, chosen over dropping because the protocol
//! engines assume a lossless transport (loss recovery belongs to the chaos
//! plane, not the wire). Writes go through a scratch buffer so each frame
//! is one `write_all`; a connection is only ever closed at a frame
//! boundary, which keeps reconnects lossless too.
//!
//! Reconnect: on dial/write failure the writer re-dials with exponential
//! backoff (base doubling to a cap), re-sends its `Hello`, and retains the
//! in-flight frame. [`ConnectionManager::drop_connection`] closes a live
//! socket at the next frame boundary — the hook the reconnect drills use.

use crate::health::{HealthSnapshot, PeerHealth};
use crate::wire::{read_frame, write_frame, Frame};
use crate::NodeId;
use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io;
use std::net::{IpAddr, Ipv4Addr, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Tuning knobs for the wire plane.
#[derive(Debug, Clone)]
pub struct PlaneConfig {
    /// First reconnect delay; doubles per consecutive failure.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_max: Duration,
    /// Outbound frames buffered per peer before `send` blocks.
    pub queue_cap: usize,
}

impl Default for PlaneConfig {
    fn default() -> Self {
        Self {
            backoff_base: Duration::from_millis(10),
            backoff_max: Duration::from_secs(1),
            queue_cap: 1024,
        }
    }
}

/// Shared map of node → listen address. Pre-populated for in-process
/// clusters; learned from `Hello` handshakes and `Peers` gossip frames in
/// multi-process mode.
pub struct AddrBook {
    inner: Mutex<HashMap<NodeId, SocketAddr>>,
}

impl Default for AddrBook {
    fn default() -> Self {
        Self::new()
    }
}

impl AddrBook {
    pub fn new() -> Self {
        Self {
            inner: Mutex::new(HashMap::new()),
        }
    }
    pub fn set(&self, node: NodeId, addr: SocketAddr) {
        self.inner.lock().insert(node, addr);
    }
    pub fn get(&self, node: NodeId) -> Option<SocketAddr> {
        self.inner.lock().get(&node).copied()
    }
}

struct Peer {
    tx: Sender<Frame>,
    health: Arc<PeerHealth>,
    kill: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

/// Serializes the forward loops of successive connections from the same
/// peer: across a reconnect, the old connection's reader drains to EOF and
/// releases the node's lock before the new connection's reader may forward
/// its first frame. This preserves per-peer FIFO order into the inbound
/// channel (the writer only ever closes at a frame boundary, so the drain
/// is complete).
struct ReaderOrder {
    locks: Mutex<HashMap<NodeId, Arc<Mutex<()>>>>,
}

impl Default for ReaderOrder {
    fn default() -> Self {
        Self {
            locks: Mutex::new(HashMap::new()),
        }
    }
}

impl ReaderOrder {
    fn lock_for(&self, node: NodeId) -> Arc<Mutex<()>> {
        Arc::clone(
            self.locks
                .lock()
                .entry(node)
                .or_insert_with(|| Arc::new(Mutex::new(()))),
        )
    }
}

/// One node's view of the wire: a listener (reads) plus on-demand writer
/// threads (one per peer it has sent to).
pub struct ConnectionManager {
    me: NodeId,
    listen_addr: SocketAddr,
    book: Arc<AddrBook>,
    cfg: PlaneConfig,
    /// Kept so the merged inbound channel stays connected for the whole
    /// manager lifetime, even between reader generations.
    _inbound_tx: Sender<(NodeId, Frame)>,
    peers: Mutex<HashMap<NodeId, Peer>>,
    shutdown: Arc<AtomicBool>,
    accept_handle: Mutex<Option<JoinHandle<()>>>,
    /// Read-side sockets, retained so shutdown can unblock their readers.
    reader_socks: Arc<Mutex<Vec<TcpStream>>>,
    reader_handles: Arc<Mutex<Vec<JoinHandle<()>>>>,
    reconnects: Arc<AtomicU64>,
}

impl ConnectionManager {
    /// Bind a loopback listener and start accepting. Returns the manager
    /// and the merged inbound channel: `(peer, frame)` for every frame any
    /// peer sends us (the `Hello` handshake itself is consumed internally).
    pub fn start(
        me: NodeId,
        book: Arc<AddrBook>,
        cfg: PlaneConfig,
    ) -> io::Result<(Self, Receiver<(NodeId, Frame)>)> {
        let listener = TcpListener::bind((Ipv4Addr::LOCALHOST, 0))?;
        let listen_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let (inbound_tx, inbound_rx) = unbounded();
        let shutdown = Arc::new(AtomicBool::new(false));
        let reader_socks: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));
        let reader_handles: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

        let accept_handle = {
            let inbound_tx = inbound_tx.clone();
            let shutdown = Arc::clone(&shutdown);
            let book = Arc::clone(&book);
            let socks = Arc::clone(&reader_socks);
            let handles = Arc::clone(&reader_handles);
            let order = Arc::new(ReaderOrder::default());
            thread::spawn(move || {
                accept_loop(listener, inbound_tx, shutdown, book, socks, handles, order);
            })
        };

        Ok((
            Self {
                me,
                listen_addr,
                book,
                cfg,
                _inbound_tx: inbound_tx,
                peers: Mutex::new(HashMap::new()),
                shutdown,
                accept_handle: Mutex::new(Some(accept_handle)),
                reader_socks,
                reader_handles,
                reconnects: Arc::new(AtomicU64::new(0)),
            },
            inbound_rx,
        ))
    }

    pub fn listen_addr(&self) -> SocketAddr {
        self.listen_addr
    }

    pub fn me(&self) -> NodeId {
        self.me
    }

    /// The shared address book this manager dials through (peer-map
    /// gossip writes learned addresses here).
    pub fn book(&self) -> &AddrBook {
        &self.book
    }

    /// Queue a frame for `to`. Blocks when the peer's outbound queue is
    /// full (backpressure). Errors only if the manager is shut down.
    pub fn send(&self, to: NodeId, frame: Frame) -> Result<(), &'static str> {
        if self.shutdown.load(Ordering::Relaxed) {
            return Err("connection manager is shut down");
        }
        let tx = {
            let mut peers = self.peers.lock();
            let peer = peers.entry(to).or_insert_with(|| self.spawn_writer(to));
            peer.tx.clone()
        };
        // Blocking send outside the peers lock: backpressure must not
        // serialize sends to *other* peers.
        tx.send(frame).map_err(|_| "peer writer exited")
    }

    fn spawn_writer(&self, to: NodeId) -> Peer {
        let (tx, rx) = bounded(self.cfg.queue_cap);
        let health = Arc::new(PeerHealth::new());
        let kill = Arc::new(AtomicBool::new(false));
        let ctx = WriterCtx {
            me: self.me,
            to,
            listen_port: self.listen_addr.port(),
            book: Arc::clone(&self.book),
            cfg: self.cfg.clone(),
            health: Arc::clone(&health),
            kill: Arc::clone(&kill),
            shutdown: Arc::clone(&self.shutdown),
            reconnects: Arc::clone(&self.reconnects),
        };
        let handle = thread::spawn(move || writer_loop(ctx, rx));
        Peer {
            tx,
            health,
            kill,
            handle: Some(handle),
        }
    }

    /// Close the live connection to `to` at the next frame boundary; the
    /// writer re-dials with backoff. No frames are lost (the close happens
    /// between frames and the peer reads to EOF).
    pub fn drop_connection(&self, to: NodeId) -> bool {
        let peers = self.peers.lock();
        match peers.get(&to) {
            Some(p) => {
                p.kill.store(true, Ordering::Relaxed);
                true
            }
            None => false,
        }
    }

    pub fn health(&self, to: NodeId) -> Option<HealthSnapshot> {
        self.peers.lock().get(&to).map(|p| p.health.snapshot())
    }

    /// Health of every peer this node has written to, in node order.
    pub fn health_all(&self) -> Vec<(NodeId, HealthSnapshot)> {
        let peers = self.peers.lock();
        let mut v: Vec<_> = peers
            .iter()
            .map(|(n, p)| (*n, p.health.snapshot()))
            .collect();
        v.sort_by_key(|(n, _)| *n);
        v
    }

    /// Total successful re-dials across all peers (0 for a run where no
    /// connection was ever lost).
    pub fn reconnects_total(&self) -> u64 {
        self.reconnects.load(Ordering::Relaxed)
    }

    /// Stop accepting, drain and join every writer, unblock every reader.
    /// Queued outbound frames are flushed before writers exit (unless their
    /// peer is unreachable).
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::Relaxed);
        // Drop senders so writers drain their queues and exit.
        let peers: Vec<Peer> = {
            let mut map = self.peers.lock();
            let keys: Vec<NodeId> = map.keys().copied().collect();
            keys.into_iter().filter_map(|k| map.remove(&k)).collect()
        };
        for mut p in peers {
            drop(p.tx);
            if let Some(h) = p.handle.take() {
                let _ = h.join();
            }
        }
        if let Some(h) = self.accept_handle.lock().take() {
            let _ = h.join();
        }
        for s in self.reader_socks.lock().drain(..) {
            let _ = s.shutdown(std::net::Shutdown::Both);
        }
        let handles: Vec<JoinHandle<()>> = self.reader_handles.lock().drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

struct WriterCtx {
    me: NodeId,
    to: NodeId,
    listen_port: u16,
    book: Arc<AddrBook>,
    cfg: PlaneConfig,
    health: Arc<PeerHealth>,
    kill: Arc<AtomicBool>,
    shutdown: Arc<AtomicBool>,
    reconnects: Arc<AtomicU64>,
}

fn writer_loop(ctx: WriterCtx, rx: Receiver<Frame>) {
    let mut conn: Option<TcpStream> = None;
    let mut ever_connected = false;
    let mut scratch = Vec::with_capacity(256);
    let mut pending: Option<Frame> = None;
    loop {
        if ctx.kill.swap(false, Ordering::Relaxed) {
            // Orderly close at a frame boundary; everything written so far
            // is flushed by the OS on close.
            conn = None;
        }
        let frame = match pending.take() {
            Some(f) => f,
            None => match rx.recv_timeout(Duration::from_millis(20)) {
                Ok(f) => f,
                Err(crossbeam::channel::RecvTimeoutError::Timeout) => continue,
                // All senders dropped *and* the queue is drained: done.
                Err(crossbeam::channel::RecvTimeoutError::Disconnected) => return,
            },
        };
        // Ensure a live connection, backing off between failed dials.
        let mut backoff = ctx.cfg.backoff_base;
        while conn.is_none() {
            if ctx.shutdown.load(Ordering::Relaxed) && ctx.health.consecutive() > 0 {
                // Peer unreachable during shutdown: drop the queue.
                return;
            }
            match dial(&ctx, &mut scratch) {
                Ok(s) => {
                    if ever_connected {
                        ctx.health.note_reconnect();
                        ctx.reconnects.fetch_add(1, Ordering::Relaxed);
                    }
                    ever_connected = true;
                    conn = Some(s);
                }
                Err(_) => {
                    ctx.health.note_failure();
                    thread::sleep(backoff);
                    backoff = (backoff * 2).min(ctx.cfg.backoff_max);
                }
            }
        }
        let stream = conn.as_mut().expect("connection established above");
        let t0 = Instant::now();
        match write_frame(stream, &frame, &mut scratch) {
            Ok(()) => ctx.health.note_send(t0.elapsed()),
            Err(_) => {
                ctx.health.note_failure();
                conn = None;
                pending = Some(frame); // retry on the next connection
            }
        }
    }
}

fn dial(ctx: &WriterCtx, scratch: &mut Vec<u8>) -> io::Result<TcpStream> {
    let addr = ctx
        .book
        .get(ctx.to)
        .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "peer address unknown"))?;
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    write_frame(
        &mut stream,
        &Frame::Hello {
            node: ctx.me,
            listen_port: ctx.listen_port,
        },
        scratch,
    )?;
    Ok(stream)
}

impl PeerHealth {
    fn consecutive(&self) -> u64 {
        self.snapshot().consecutive_failures
    }
}

#[allow(clippy::too_many_arguments)]
fn accept_loop(
    listener: TcpListener,
    inbound_tx: Sender<(NodeId, Frame)>,
    shutdown: Arc<AtomicBool>,
    book: Arc<AddrBook>,
    socks: Arc<Mutex<Vec<TcpStream>>>,
    handles: Arc<Mutex<Vec<JoinHandle<()>>>>,
    order: Arc<ReaderOrder>,
) {
    loop {
        match listener.accept() {
            Ok((stream, peer_addr)) => {
                let _ = stream.set_nodelay(true);
                if let Ok(clone) = stream.try_clone() {
                    socks.lock().push(clone);
                }
                let tx = inbound_tx.clone();
                let book = Arc::clone(&book);
                let order = Arc::clone(&order);
                let h = thread::spawn(move || reader_loop(stream, peer_addr.ip(), tx, book, order));
                handles.lock().push(h);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                if shutdown.load(Ordering::Relaxed) {
                    return;
                }
                thread::sleep(Duration::from_millis(2));
            }
            Err(_) => {
                if shutdown.load(Ordering::Relaxed) {
                    return;
                }
                thread::sleep(Duration::from_millis(2));
            }
        }
    }
}

fn reader_loop(
    mut stream: TcpStream,
    peer_ip: IpAddr,
    inbound: Sender<(NodeId, Frame)>,
    book: Arc<AddrBook>,
    order: Arc<ReaderOrder>,
) {
    // Strict handshake: the first frame must identify the dialer.
    let from = match read_frame(&mut stream) {
        Ok(Some(Frame::Hello { node, listen_port })) => {
            if listen_port != 0 {
                book.set(node, SocketAddr::new(peer_ip, listen_port));
            }
            node
        }
        _ => return, // anonymous or garbage connection: refuse
    };
    // FIFO across reconnects: wait until the previous connection from this
    // node (if any) has drained to EOF.
    let node_lock = order.lock_for(from);
    let _guard = node_lock.lock();
    loop {
        match read_frame(&mut stream) {
            Ok(Some(frame)) => {
                if inbound.send((from, frame)).is_err() {
                    return; // node is shutting down
                }
            }
            Ok(None) => return, // clean close at a frame boundary
            Err(_) => return,   // reset / malformed; writer side re-dials
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_nodes_exchange_frames_over_loopback() {
        let book = Arc::new(AddrBook::new());
        let (a, _rx_a) =
            ConnectionManager::start(NodeId::Server(0), Arc::clone(&book), PlaneConfig::default())
                .unwrap();
        let (b, rx_b) =
            ConnectionManager::start(NodeId::Server(1), Arc::clone(&book), PlaneConfig::default())
                .unwrap();
        book.set(NodeId::Server(0), a.listen_addr());
        book.set(NodeId::Server(1), b.listen_addr());

        for t in 0..100u64 {
            a.send(NodeId::Server(1), Frame::Probe { token: t })
                .unwrap();
        }
        for t in 0..100u64 {
            let (from, f) = rx_b.recv_timeout(Duration::from_secs(5)).unwrap();
            assert_eq!(from, NodeId::Server(0));
            assert_eq!(f, Frame::Probe { token: t }, "in-order delivery");
        }
        let h = a.health(NodeId::Server(1)).unwrap();
        assert_eq!(h.sends, 100);
        assert!(h.score > 0.5);
        assert_eq!(a.reconnects_total(), 0);
        a.shutdown();
        b.shutdown();
    }

    #[test]
    fn dropped_connection_reconnects_without_frame_loss() {
        let book = Arc::new(AddrBook::new());
        let cfg = PlaneConfig {
            backoff_base: Duration::from_millis(1),
            ..PlaneConfig::default()
        };
        let (a, _rx_a) =
            ConnectionManager::start(NodeId::Server(0), Arc::clone(&book), cfg.clone()).unwrap();
        let (b, rx_b) =
            ConnectionManager::start(NodeId::Server(1), Arc::clone(&book), cfg).unwrap();
        book.set(NodeId::Server(1), b.listen_addr());

        // Phase 1: deliver a batch, and wait for it so the writer is
        // provably idle when the connection is dropped.
        for t in 0..200u64 {
            a.send(NodeId::Server(1), Frame::Probe { token: t })
                .unwrap();
        }
        for t in 0..200u64 {
            let (_, f) = rx_b.recv_timeout(Duration::from_secs(5)).unwrap();
            assert_eq!(f, Frame::Probe { token: t });
        }
        // Phase 2: drop the live socket, keep sending. The writer closes at
        // the next frame boundary and must re-dial to deliver the rest.
        assert!(a.drop_connection(NodeId::Server(1)));
        for t in 200..500u64 {
            a.send(NodeId::Server(1), Frame::Probe { token: t })
                .unwrap();
        }
        for t in 200..500u64 {
            let (_, f) = rx_b.recv_timeout(Duration::from_secs(5)).unwrap();
            assert_eq!(f, Frame::Probe { token: t }, "no loss across reconnect");
        }
        assert!(
            a.reconnects_total() >= 1,
            "the dropped connection must have been re-dialed"
        );
        assert!(a.health(NodeId::Server(1)).unwrap().reconnects >= 1);
        a.shutdown();
        b.shutdown();
    }

    #[test]
    fn dial_to_unknown_peer_backs_off_until_address_appears() {
        let book = Arc::new(AddrBook::new());
        let cfg = PlaneConfig {
            backoff_base: Duration::from_millis(1),
            ..PlaneConfig::default()
        };
        let (a, _rx_a) =
            ConnectionManager::start(NodeId::Server(0), Arc::clone(&book), cfg.clone()).unwrap();
        // Send before the peer address is known: the writer retries.
        a.send(NodeId::Server(1), Frame::Probe { token: 7 })
            .unwrap();
        thread::sleep(Duration::from_millis(10));
        assert!(a.health(NodeId::Server(1)).unwrap().consecutive_failures > 0);

        let (b, rx_b) =
            ConnectionManager::start(NodeId::Server(1), Arc::clone(&book), cfg).unwrap();
        book.set(NodeId::Server(1), b.listen_addr());
        let (_, f) = rx_b.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(f, Frame::Probe { token: 7 });
        a.shutdown();
        b.shutdown();
    }
}
