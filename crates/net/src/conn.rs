//! Connection management: one listener + per-peer writer threads.
//!
//! Topology: every node runs one [`ConnectionManager`]. Connections are
//! simplex — a node dials out to write, and accepts to read. The first
//! frame on every connection is a [`Frame::Hello`] naming the dialer and
//! its own listen port, so the acceptor can attribute inbound frames and
//! learn the dial-back address without a rendezvous service.
//!
//! Per peer, the manager keeps a **bounded** outbound queue: when the peer
//! is slow (or reconnecting), `send` blocks the caller — that is the
//! backpressure policy, chosen over dropping because the protocol engines
//! assume a lossless transport (loss recovery belongs to the chaos plane,
//! not the wire).
//!
//! **Coalescing by lock combining**: after enqueuing, a sender tries the
//! peer's flush lock; whoever holds it drains the *entire* queue per
//! round, encodes every pending frame back-to-back into one reusable
//! scratch buffer, and issues a single `write_all` — one syscall per
//! *batch*, not per frame — looping until the queue is empty. Under load
//! the current holder keeps absorbing frames that arrive mid-write
//! (backlog combining: the busier the wire, the larger the batches), while
//! an idle peer's lone frame is flushed by its own sender immediately, at
//! no handoff or wakeup cost. `cork_bytes` caps the encoded bytes per
//! write ([`cx_types::NetTuning`]). A per-peer writer *daemon* thread
//! backstops the inline path: it owns reconnect backoff, drains frames a
//! stalled connection left behind, and — when it is the flusher for a
//! growing backlog — may hold the cork for up to `cork_deadline_ns` to
//! gather stragglers. A connection is only ever closed at a **flush**
//! boundary — which is always a frame boundary — and the frames of a
//! coalesced-but-unflushed batch are retained (their encoding intact) for
//! the next connection generation, so reconnects stay lossless and
//! per-peer FIFO.
//!
//! The read side mirrors it: each reader fills a large reusable
//! [`FrameBuffer`], decodes *every* complete frame per `read`, and forwards
//! them as one `Vec<Frame>` batch through the merged inbound channel — one
//! channel wakeup per batch. Batch vectors come from a shared
//! [`VecPool`]; consumers hand drained batches back via
//! [`ConnectionManager::recycle_batch`], so the steady state allocates
//! nothing on either path.
//!
//! Reconnect: on dial/write failure the frames stay queued and the writer
//! daemon re-dials with exponential backoff (base doubling to a cap),
//! re-sends its `Hello`, and flushes the retained batch.
//! [`ConnectionManager::drop_connection`] closes a live socket at the next
//! flush boundary — the hook the reconnect drills use.

use crate::health::{HealthSnapshot, PeerHealth};
use crate::wire::{encode_frame, write_frame, Frame, FrameBuffer};
use crate::NodeId;
use crossbeam::channel::{unbounded, Receiver, Sender};
use cx_obs::{FlushSpan, LogHistogram};
use cx_types::{NetTuning, VecPool};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};
use std::io::{self, Write};
use std::net::{IpAddr, Ipv4Addr, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex, MutexGuard, PoisonError, TryLockError};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Lock a `std` mutex parking_lot-style: a panicked holder releases.
fn plock<T>(m: &StdMutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Tuning knobs for the wire plane.
#[derive(Debug, Clone)]
pub struct PlaneConfig {
    /// First reconnect delay; doubles per consecutive failure.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_max: Duration,
    /// Coalescing/corking/queue knobs (shared vocabulary with the rest of
    /// the workspace via `cx-types`).
    pub tuning: NetTuning,
    /// Keep a per-flush [`FlushSpan`] log for the Perfetto trace (bounded;
    /// see [`FLUSH_SPAN_CAP`]). The telemetry histograms are always on —
    /// only the span log, whose memory grows with the run, is gated.
    pub record_flush_spans: bool,
}

impl Default for PlaneConfig {
    fn default() -> Self {
        Self {
            backoff_base: Duration::from_millis(10),
            backoff_max: Duration::from_secs(1),
            tuning: NetTuning::default(),
            record_flush_spans: false,
        }
    }
}

/// Shared map of node → listen address. Pre-populated for in-process
/// clusters; learned from `Hello` handshakes and `Peers` gossip frames in
/// multi-process mode.
pub struct AddrBook {
    inner: Mutex<HashMap<NodeId, SocketAddr>>,
}

impl Default for AddrBook {
    fn default() -> Self {
        Self::new()
    }
}

impl AddrBook {
    pub fn new() -> Self {
        Self {
            inner: Mutex::new(HashMap::new()),
        }
    }
    pub fn set(&self, node: NodeId, addr: SocketAddr) {
        self.inner.lock().insert(node, addr);
    }
    pub fn get(&self, node: NodeId) -> Option<SocketAddr> {
        self.inner.lock().get(&node).copied()
    }
}

/// Pending outbound frames for one peer. Guarded by [`PeerShared::queue`];
/// `room` wakes senders blocked on a full queue, `daemon` wakes the writer
/// daemon when an inline flush stalls (dead connection) or at shutdown.
struct PeerQueue {
    q: VecDeque<Frame>,
    shutdown: bool,
    /// When a flush session corks (defers its write), the instant the cork
    /// pops. Written under the queue lock before the daemon is notified,
    /// so the wakeup cannot be lost; the daemon `take`s it and performs
    /// the timed flush.
    cork_until: Option<Instant>,
}

/// Connection + unflushed-batch state for one peer — the flush lock.
/// Invariants:
///
/// * `batch` holds every frame drained from the queue but not yet
///   confirmed written; `scratch` holds exactly the concatenated encoding
///   of `batch` at all times (a failed `write_all` leaves both intact, so
///   the next connection generation resends the identical bytes).
/// * A flush writes all of `scratch` in one `write_all`; only a fully
///   successful flush clears `batch`+`scratch` — lossless across
///   generations.
/// * The connection is closed (kill/drop/write error) only between
///   flushes, so the peer's reader always drains to EOF at a frame
///   boundary.
struct FlushState {
    conn: Option<TcpStream>,
    ever_connected: bool,
    batch: VecDeque<Frame>,
    scratch: Vec<u8>,
    hello_scratch: Vec<u8>,
    /// Inline flushers skip dialing before this instant; the daemon owns
    /// the exponential part of the backoff.
    next_dial_at: Option<Instant>,
    /// When the last successful flush completed — the cork clock: a batch
    /// arriving within `cork_deadline_ns` of it is part of a busy stream
    /// and may be held for company.
    last_flush_at: Option<Instant>,
}

/// Everything the inline flush path and the writer daemon share.
struct PeerShared {
    me: NodeId,
    to: NodeId,
    listen_port: u16,
    book: Arc<AddrBook>,
    cfg: PlaneConfig,
    queue: StdMutex<PeerQueue>,
    room: Condvar,
    daemon: Condvar,
    flush: StdMutex<FlushState>,
    kill: AtomicBool,
    health: Arc<PeerHealth>,
    shutdown: Arc<AtomicBool>,
    reconnects: Arc<AtomicU64>,
    wire: Arc<WireCounters>,
    telem: Arc<TelemetryState>,
}

struct Peer {
    shared: Arc<PeerShared>,
    handle: Option<JoinHandle<()>>,
}

/// How a flush session ended.
#[derive(PartialEq)]
enum SessionEnd {
    /// Queue and batch both empty at the moment of release.
    Done,
    /// Work remains but the connection is down (or the inline round cap
    /// was hit) — the writer daemon must take over.
    Stalled,
    /// The gathered batch was deliberately held back (adaptive cork): the
    /// previous flush was less than `cork_deadline_ns` ago and the batch
    /// is still under `cork_bytes`. `PeerQueue::cork_until` was set and
    /// the daemon notified; it flushes when the cork pops.
    Corked,
}

/// Aggregate send-side wire counters across every peer of one manager —
/// the raw material for frames/s, bytes/s, flushes/s rates.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WireTotals {
    /// Frames written (sum of all peers' flushed batch sizes).
    pub frames: u64,
    /// Encoded bytes written.
    pub bytes: u64,
    /// `write_all` calls (coalesced batches).
    pub flushes: u64,
}

impl WireTotals {
    /// Fold another node's totals in (cluster-wide aggregation).
    pub fn add(&mut self, other: WireTotals) {
        self.frames += other.frames;
        self.bytes += other.bytes;
        self.flushes += other.flushes;
    }
}

/// Manager-level send counters, bumped by writers at each flush. Kept
/// separate from the per-peer [`PeerHealth`] map so totals survive peer
/// teardown: `shutdown()` drains the peers map, and a run's final
/// aggregation must still see everything the node ever wrote.
#[derive(Debug, Default)]
struct WireCounters {
    frames: AtomicU64,
    bytes: AtomicU64,
    flushes: AtomicU64,
}

impl WireCounters {
    fn note_flush(&self, frames: u64, bytes: u64) {
        self.frames.fetch_add(frames, Ordering::Relaxed);
        self.bytes.fetch_add(bytes, Ordering::Relaxed);
        self.flushes.fetch_add(1, Ordering::Relaxed);
    }

    fn totals(&self) -> WireTotals {
        WireTotals {
            frames: self.frames.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
            flushes: self.flushes.load(Ordering::Relaxed),
        }
    }
}

/// Upper bound on retained [`FlushSpan`]s per manager (~40 B each). Past
/// it flushes still count in the histograms; only the trace log saturates,
/// with the overflow tallied in [`WireTelemetry::spans_dropped`].
pub const FLUSH_SPAN_CAP: usize = 1 << 16;

/// Live wall-clock telemetry shared by every peer of one manager: the
/// flush/queue/stall histograms (always on — one `Mutex`ed record per
/// *flush*, not per frame) and the optional per-flush span log. All stamps
/// are nanoseconds since the manager's `epoch`, so one process's spans are
/// directly comparable and cross-process ones differ by a probe-estimated
/// offset ([`crate::ClockSync`]).
struct TelemetryState {
    epoch: Instant,
    record_spans: bool,
    queue_depth: Mutex<LogHistogram>,
    flush_frames: Mutex<LogHistogram>,
    flush_latency_ns: Mutex<LogHistogram>,
    cork_scope_ns: Mutex<LogHistogram>,
    stall_ns: Mutex<LogHistogram>,
    spans: Mutex<Vec<FlushSpan>>,
    spans_dropped: AtomicU64,
}

impl TelemetryState {
    fn new(epoch: Instant, record_spans: bool) -> Self {
        Self {
            epoch,
            record_spans,
            queue_depth: Mutex::new(LogHistogram::default()),
            flush_frames: Mutex::new(LogHistogram::default()),
            flush_latency_ns: Mutex::new(LogHistogram::default()),
            cork_scope_ns: Mutex::new(LogHistogram::default()),
            stall_ns: Mutex::new(LogHistogram::default()),
            spans: Mutex::new(Vec::new()),
            spans_dropped: AtomicU64::new(0),
        }
    }

    fn note_queue_depth(&self, depth: u64) {
        self.queue_depth.lock().record(depth);
    }

    fn note_flush(
        &self,
        from: NodeId,
        to: NodeId,
        t0: Instant,
        dur: Duration,
        frames: u64,
        bytes: u64,
    ) {
        self.flush_frames.lock().record(frames);
        self.flush_latency_ns.lock().record(dur.as_nanos() as u64);
        if self.record_spans {
            let mut spans = self.spans.lock();
            if spans.len() < FLUSH_SPAN_CAP {
                spans.push(FlushSpan {
                    from: from.flow(),
                    to: to.flow(),
                    start_ns: t0.saturating_duration_since(self.epoch).as_nanos() as u64,
                    dur_ns: dur.as_nanos() as u64,
                    frames: frames.min(u32::MAX as u64) as u32,
                    bytes: bytes.min(u32::MAX as u64) as u32,
                });
            } else {
                self.spans_dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    fn note_stall(&self, dur: Duration) {
        self.stall_ns.lock().record(dur.as_nanos() as u64);
    }

    fn note_cork_scope(&self, dur: Duration) {
        self.cork_scope_ns.lock().record(dur.as_nanos() as u64);
    }
}

/// A point-in-time copy of one manager's wall-clock wire telemetry — what
/// [`ConnectionManager::telemetry`] returns and `StopResp` ships from
/// child processes. Histograms merge losslessly ([`LogHistogram::merge`]);
/// flush-span stamps are on the recording process's epoch clock and need
/// offset correction before cross-process comparison.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct WireTelemetry {
    pub queue_depth: LogHistogram,
    pub flush_frames: LogHistogram,
    pub flush_latency_ns: LogHistogram,
    pub cork_scope_ns: LogHistogram,
    pub stall_ns: LogHistogram,
    pub flush_spans: Vec<FlushSpan>,
    /// Flushes whose spans were discarded at [`FLUSH_SPAN_CAP`].
    pub spans_dropped: u64,
}

impl WireTelemetry {
    /// Fold another node's telemetry in. `offset_ns` is that node's clock
    /// offset (its clock minus ours, from [`crate::ClockSync`]): its
    /// flush-span stamps are pulled onto our clock before appending, so
    /// the merged span log shares one timeline. Histograms merge
    /// losslessly; offsets do not apply to them (durations and depths are
    /// clock-free).
    pub fn merge(&mut self, other: &WireTelemetry, offset_ns: i64) {
        self.queue_depth.merge(&other.queue_depth);
        self.flush_frames.merge(&other.flush_frames);
        self.flush_latency_ns.merge(&other.flush_latency_ns);
        self.cork_scope_ns.merge(&other.cork_scope_ns);
        self.stall_ns.merge(&other.stall_ns);
        self.spans_dropped += other.spans_dropped;
        self.flush_spans.extend(other.flush_spans.iter().map(|f| {
            let mut f = *f;
            f.start_ns = crate::clock::correct_ns(f.start_ns, offset_ns);
            f
        }));
    }
}

/// One-shot completion flag a reader signals when its connection has
/// drained to EOF (or died) — the link in a per-node reader chain.
struct DoneEvent {
    done: StdMutex<bool>,
    cv: Condvar,
}

impl DoneEvent {
    fn new() -> Arc<Self> {
        Arc::new(Self {
            done: StdMutex::new(false),
            cv: Condvar::new(),
        })
    }
    fn signal(&self) {
        *plock(&self.done) = true;
        self.cv.notify_all();
    }
    fn wait(&self) {
        let mut g = plock(&self.done);
        while !*g {
            g = self.cv.wait(g).unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// Serializes the forward loops of successive connections from the same
/// peer: across a reconnect, the old connection's reader drains to EOF
/// before the new connection's reader may forward its first batch,
/// preserving per-peer FIFO into the inbound channel.
///
/// Registration happens in the **accept loop**, in accept order — which is
/// connection order, because a dialer closes generation *k* before dialing
/// generation *k+1*. A per-node mutex grabbed by the reader threads
/// themselves would not be enough: thread scheduling can run generation
/// *k+1*'s reader before generation *k*'s ever acquires the lock (readily
/// observable on one hardware thread once reconnects turn over faster than
/// thread spawn latency). The explicit done-event chain makes hand-off
/// order a property of the accept sequence, not the scheduler.
struct ReaderOrder {
    /// Per node: the done-event of the most recently registered reader.
    tails: Mutex<HashMap<NodeId, Arc<DoneEvent>>>,
}

impl Default for ReaderOrder {
    fn default() -> Self {
        Self {
            tails: Mutex::new(HashMap::new()),
        }
    }
}

impl ReaderOrder {
    /// Chain a new connection from `node` behind its predecessor. Returns
    /// the event to wait on before forwarding (if any) and the event this
    /// reader must signal when its connection drains.
    fn register(&self, node: NodeId) -> (Option<Arc<DoneEvent>>, Arc<DoneEvent>) {
        let mine = DoneEvent::new();
        let prev = self.tails.lock().insert(node, Arc::clone(&mine));
        (prev, mine)
    }
}

/// One node's view of the wire: a listener (reads) plus on-demand writer
/// threads (one per peer it has sent to).
pub struct ConnectionManager {
    me: NodeId,
    listen_addr: SocketAddr,
    book: Arc<AddrBook>,
    cfg: PlaneConfig,
    /// Kept so the merged inbound channel stays connected for the whole
    /// manager lifetime, even between reader generations.
    _inbound_tx: Sender<(NodeId, Vec<Frame>)>,
    peers: Mutex<HashMap<NodeId, Peer>>,
    shutdown: Arc<AtomicBool>,
    accept_handle: Mutex<Option<JoinHandle<()>>>,
    /// Read-side sockets, retained so shutdown can unblock their readers.
    reader_socks: Arc<Mutex<Vec<TcpStream>>>,
    reader_handles: Arc<Mutex<Vec<JoinHandle<()>>>>,
    reconnects: Arc<AtomicU64>,
    /// Freelist for inbound batch vectors: readers draw, consumers return
    /// via [`ConnectionManager::recycle_batch`].
    batch_pool: Arc<Mutex<VecPool<Frame>>>,
    /// Send-side totals across all peers, past and present.
    wire: Arc<WireCounters>,
    /// Live [`CorkGuard`] count: while non-zero, `send` only enqueues and
    /// the guard's drop flushes every dirty peer once.
    cork_depth: AtomicUsize,
    /// Wall-clock flush/queue/stall telemetry, shared with every peer.
    telem: Arc<TelemetryState>,
}

/// Scoped sender-side cork (see [`ConnectionManager::cork_scope`]).
/// Dropping the last live guard flushes every peer with queued frames.
pub struct CorkGuard<'a> {
    mgr: &'a ConnectionManager,
    start: Instant,
}

impl Drop for CorkGuard<'_> {
    fn drop(&mut self) {
        if self.mgr.cork_depth.fetch_sub(1, Ordering::SeqCst) == 1 {
            // Only the guard that actually pops the cork measures the
            // scope: nested guards are part of the same held window.
            self.mgr.telem.note_cork_scope(self.start.elapsed());
            self.mgr.flush_all();
        }
    }
}

/// The merged inbound stream a manager returns from [`ConnectionManager::start`]:
/// one `(sender, frames)` batch per reader `read`, in per-peer FIFO order.
pub type InboundBatches = Receiver<(NodeId, Vec<Frame>)>;

impl ConnectionManager {
    /// Bind a loopback listener and start accepting. Returns the manager
    /// and the merged inbound channel: `(peer, frames)` batches — every
    /// frame any peer sends us, in per-peer FIFO order, possibly many per
    /// delivery (the `Hello` handshake itself is consumed internally).
    pub fn start(
        me: NodeId,
        book: Arc<AddrBook>,
        cfg: PlaneConfig,
    ) -> io::Result<(Self, InboundBatches)> {
        Self::start_with_epoch(me, book, cfg, Instant::now())
    }

    /// [`Self::start`] with an explicit telemetry epoch: all wall-clock
    /// stamps (flush spans, probe timestamps via [`Self::now_ns`]) are
    /// nanoseconds since `epoch`. Loopback clusters pass one shared epoch
    /// so every node's stamps are directly comparable; separate processes
    /// pass their own start instant and reconcile via probe-estimated
    /// clock offsets.
    pub fn start_with_epoch(
        me: NodeId,
        book: Arc<AddrBook>,
        cfg: PlaneConfig,
        epoch: Instant,
    ) -> io::Result<(Self, InboundBatches)> {
        let listener = TcpListener::bind((Ipv4Addr::LOCALHOST, 0))?;
        let listen_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let (inbound_tx, inbound_rx) = unbounded();
        let shutdown = Arc::new(AtomicBool::new(false));
        let reader_socks: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));
        let reader_handles: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let batch_pool: Arc<Mutex<VecPool<Frame>>> = Arc::new(Mutex::new(VecPool::default()));
        let cfg_record_spans = cfg.record_flush_spans;

        let accept_handle = {
            let inbound_tx = inbound_tx.clone();
            let shutdown = Arc::clone(&shutdown);
            let book = Arc::clone(&book);
            let socks = Arc::clone(&reader_socks);
            let handles = Arc::clone(&reader_handles);
            let order = Arc::new(ReaderOrder::default());
            let pool = Arc::clone(&batch_pool);
            let read_buf = cfg.tuning.read_buf_bytes;
            thread::Builder::new()
                .name("cx-accept".into())
                .spawn(move || {
                    accept_loop(
                        listener, inbound_tx, shutdown, book, socks, handles, order, pool, read_buf,
                    );
                })
                .expect("spawn accept thread")
        };

        Ok((
            Self {
                me,
                listen_addr,
                book,
                cfg,
                _inbound_tx: inbound_tx,
                peers: Mutex::new(HashMap::new()),
                shutdown,
                accept_handle: Mutex::new(Some(accept_handle)),
                reader_socks,
                reader_handles,
                reconnects: Arc::new(AtomicU64::new(0)),
                batch_pool,
                wire: Arc::new(WireCounters::default()),
                cork_depth: AtomicUsize::new(0),
                telem: Arc::new(TelemetryState::new(epoch, cfg_record_spans)),
            },
            inbound_rx,
        ))
    }

    pub fn listen_addr(&self) -> SocketAddr {
        self.listen_addr
    }

    pub fn me(&self) -> NodeId {
        self.me
    }

    /// The shared address book this manager dials through (peer-map
    /// gossip writes learned addresses here).
    pub fn book(&self) -> &AddrBook {
        &self.book
    }

    /// Queue a frame for `to`. Blocks when the peer's outbound queue is
    /// full (backpressure). Errors only if the manager is shut down.
    ///
    /// The sender then opportunistically becomes the peer's flusher: if
    /// the flush lock is free it drains the queue and writes inline (no
    /// thread handoff); if another thread holds it, that holder is
    /// guaranteed to pick this frame up — the `try_lock` happens inside
    /// the queue critical section, and a holder only releases the lock
    /// after observing an empty queue *under that same lock*.
    pub fn send(&self, to: NodeId, frame: Frame) -> Result<(), &'static str> {
        if self.shutdown.load(Ordering::Relaxed) {
            return Err("connection manager is shut down");
        }
        let shared = {
            let mut peers = self.peers.lock();
            let peer = peers.entry(to).or_insert_with(|| self.spawn_writer(to));
            Arc::clone(&peer.shared)
        };
        let cap = self.cfg.tuning.queue_cap.max(1);
        let mut stalled: Option<Duration> = None;
        let flush = {
            let mut q = plock(&shared.queue);
            // Time only real backpressure stalls: the common uncontended
            // send never reads the clock.
            let mut waited: Option<Instant> = None;
            while q.q.len() >= cap && !q.shutdown {
                waited.get_or_insert_with(Instant::now);
                q = shared.room.wait(q).unwrap_or_else(PoisonError::into_inner);
            }
            if let Some(w) = waited {
                stalled = Some(w.elapsed());
            }
            if q.shutdown {
                return Err("connection manager is shut down");
            }
            q.q.push_back(frame);
            shared.health.note_queue_depth(q.q.len() as u64);
            // Under a scoped cork the frame just queues: the guard's drop
            // flushes every dirty peer once, coalescing the whole burst
            // into one write per peer. A queue at capacity overrides the
            // cork — someone must drain it or later senders block forever.
            if self.cork_depth.load(Ordering::SeqCst) > 0 && q.q.len() < cap {
                None
            } else {
                match shared.flush.try_lock() {
                    Ok(st) => Some(st),
                    Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
                    // The current holder will observe this frame (see above).
                    Err(TryLockError::WouldBlock) => None,
                }
            }
        };
        if let Some(d) = stalled {
            shared.telem.note_stall(d);
        }
        if let Some(st) = flush {
            // Inline sessions are round-capped so a protocol thread can't
            // be conscripted as the peer's writer forever under sustained
            // load; past the cap the daemon takes over.
            if flush_session(&shared, st, 64, true) == SessionEnd::Stalled {
                shared.daemon.notify_all();
            }
        }
        Ok(())
    }

    /// Eagerly establish the connection to `to` (spawn its writer, dial,
    /// send the `Hello`) without queueing a frame, so the first real send
    /// doesn't pay the connect + handshake on the critical path. A dial
    /// failure is not an error: the normal lazy dial-with-backoff path
    /// simply runs when the first frame goes out.
    pub fn prime(&self, to: NodeId) {
        if self.shutdown.load(Ordering::Relaxed) || to == self.me {
            return;
        }
        let shared = {
            let mut peers = self.peers.lock();
            let peer = peers.entry(to).or_insert_with(|| self.spawn_writer(to));
            Arc::clone(&peer.shared)
        };
        let mut st = plock(&shared.flush);
        if st.conn.is_none() && st.next_dial_at.is_none() {
            let _ = dial(&shared, &mut st);
        }
    }

    /// Scoped sender-side cork: while any guard from this call is alive,
    /// [`Self::send`] only enqueues — no inline flush, no daemon wake.
    /// When the last guard drops, every peer with queued frames is
    /// flushed once. For callers that already hold a batch of work (an
    /// engine loop draining one inbound wakeup, a client shepherd
    /// refilling its slots): all the frames that work provokes coalesce
    /// into one write per peer, with zero added latency — the cork lasts
    /// exactly as long as the processing it covers, never a timer.
    ///
    /// Guards may nest and overlap across threads (the flush happens when
    /// the count returns to zero). Losslessness is unaffected: a corked
    /// frame is in its peer queue, and the shutdown path and the writer
    /// daemon's periodic sweep flush queued frames regardless of corking.
    pub fn cork_scope(&self) -> CorkGuard<'_> {
        self.cork_depth.fetch_add(1, Ordering::SeqCst);
        CorkGuard {
            mgr: self,
            start: Instant::now(),
        }
    }

    /// Flush every peer with queued frames (the tail of a cork scope).
    fn flush_all(&self) {
        let shareds: Vec<Arc<PeerShared>> = {
            let peers = self.peers.lock();
            peers.values().map(|p| Arc::clone(&p.shared)).collect()
        };
        for shared in shareds {
            let flush = {
                let q = plock(&shared.queue);
                if q.q.is_empty() {
                    continue;
                }
                match shared.flush.try_lock() {
                    Ok(st) => Some(st),
                    Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
                    // The holder drains the queue before releasing.
                    Err(TryLockError::WouldBlock) => None,
                }
            };
            if let Some(st) = flush {
                if flush_session(&shared, st, 64, true) == SessionEnd::Stalled {
                    shared.daemon.notify_all();
                }
            }
        }
    }

    /// Hand a drained inbound batch back to the reader freelist, keeping
    /// its capacity. Optional — dropping the vector is merely an
    /// allocation, not an error.
    pub fn recycle_batch(&self, batch: Vec<Frame>) {
        self.batch_pool.lock().put(batch);
    }

    /// A handle to the same freelist for consumers that must not keep the
    /// manager itself alive (e.g. a pump thread whose exit condition is
    /// the manager being dropped).
    pub fn batch_pool_handle(&self) -> Arc<Mutex<VecPool<Frame>>> {
        Arc::clone(&self.batch_pool)
    }

    fn spawn_writer(&self, to: NodeId) -> Peer {
        let cork_bytes = self.cfg.tuning.cork_bytes.max(1);
        let shared = Arc::new(PeerShared {
            me: self.me,
            to,
            listen_port: self.listen_addr.port(),
            book: Arc::clone(&self.book),
            cfg: self.cfg.clone(),
            queue: StdMutex::new(PeerQueue {
                q: VecDeque::new(),
                shutdown: false,
                cork_until: None,
            }),
            room: Condvar::new(),
            daemon: Condvar::new(),
            flush: StdMutex::new(FlushState {
                conn: None,
                ever_connected: false,
                batch: VecDeque::new(),
                scratch: Vec::with_capacity(cork_bytes.clamp(256, 1 << 20)),
                hello_scratch: Vec::with_capacity(64),
                next_dial_at: None,
                last_flush_at: None,
            }),
            kill: AtomicBool::new(false),
            health: Arc::new(PeerHealth::new()),
            shutdown: Arc::clone(&self.shutdown),
            reconnects: Arc::clone(&self.reconnects),
            wire: Arc::clone(&self.wire),
            telem: Arc::clone(&self.telem),
        });
        let daemon_shared = Arc::clone(&shared);
        let handle = thread::Builder::new()
            .name("cx-wd".into())
            .spawn(move || writer_daemon(daemon_shared))
            .expect("spawn writer daemon");
        Peer {
            shared,
            handle: Some(handle),
        }
    }

    /// Close the live connection to `to` at the next flush boundary; the
    /// writer re-dials with backoff. No frames are lost: the close happens
    /// between flushes (a frame boundary), the peer reads to EOF, and any
    /// coalesced-but-unflushed batch is re-encoded onto the next
    /// connection generation.
    pub fn drop_connection(&self, to: NodeId) -> bool {
        let peers = self.peers.lock();
        match peers.get(&to) {
            Some(p) => {
                p.shared.kill.store(true, Ordering::Relaxed);
                true
            }
            None => false,
        }
    }

    pub fn health(&self, to: NodeId) -> Option<HealthSnapshot> {
        self.peers
            .lock()
            .get(&to)
            .map(|p| p.shared.health.snapshot())
    }

    /// Health of every peer this node has written to, in node order.
    pub fn health_all(&self) -> Vec<(NodeId, HealthSnapshot)> {
        let peers = self.peers.lock();
        let mut v: Vec<_> = peers
            .iter()
            .map(|(n, p)| (*n, p.shared.health.snapshot()))
            .collect();
        v.sort_by_key(|(n, _)| *n);
        v
    }

    /// Aggregate frames/bytes/flushes this node ever wrote, across every
    /// peer past and present — the numerators for the wire-throughput
    /// rates the metrics plane exposes. Unlike [`Self::health_all`], the
    /// totals survive `shutdown()` draining the peers map.
    pub fn wire_totals(&self) -> WireTotals {
        self.wire.totals()
    }

    /// Total successful re-dials across all peers (0 for a run where no
    /// connection was ever lost).
    pub fn reconnects_total(&self) -> u64 {
        self.reconnects.load(Ordering::Relaxed)
    }

    /// Nanoseconds since this manager's telemetry epoch — the wall clock
    /// every flush span and probe timestamp is stamped on.
    pub fn now_ns(&self) -> u64 {
        self.telem.epoch.elapsed().as_nanos() as u64
    }

    /// A point-in-time copy of the wall-clock wire telemetry: the
    /// flush/queue/stall histograms plus the flush-span log (when
    /// [`PlaneConfig::record_flush_spans`] is set). Spans accumulated so
    /// far are *cloned*, not drained — calling twice is idempotent.
    pub fn telemetry(&self) -> WireTelemetry {
        WireTelemetry {
            queue_depth: self.telem.queue_depth.lock().clone(),
            flush_frames: self.telem.flush_frames.lock().clone(),
            flush_latency_ns: self.telem.flush_latency_ns.lock().clone(),
            cork_scope_ns: self.telem.cork_scope_ns.lock().clone(),
            stall_ns: self.telem.stall_ns.lock().clone(),
            flush_spans: self.telem.spans.lock().clone(),
            spans_dropped: self.telem.spans_dropped.load(Ordering::Relaxed),
        }
    }

    /// Feed one probe RTT/offset sample into `to`'s health tracking (the
    /// quiesce loop samples these; the estimator itself lives with the
    /// caller as [`crate::ClockSync`]).
    pub fn note_rtt(&self, to: NodeId, rtt_ns: u64, offset_ns: i64) {
        if let Some(h) = self
            .peers
            .lock()
            .get(&to)
            .map(|p| Arc::clone(&p.shared.health))
        {
            h.note_rtt(rtt_ns, offset_ns);
        }
    }

    /// Stop accepting, flush and join every writer daemon, unblock every
    /// reader. Queued outbound frames are flushed before daemons exit
    /// (unless their peer is unreachable).
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::Relaxed);
        let peers: Vec<Peer> = {
            let mut map = self.peers.lock();
            let keys: Vec<NodeId> = map.keys().copied().collect();
            keys.into_iter().filter_map(|k| map.remove(&k)).collect()
        };
        for p in &peers {
            let mut q = plock(&p.shared.queue);
            q.shutdown = true;
            p.shared.room.notify_all();
            p.shared.daemon.notify_all();
        }
        for mut p in peers {
            if let Some(h) = p.handle.take() {
                let _ = h.join();
            }
        }
        // Unblock a handshake read on the accept thread before joining it,
        // then shut down again for connections accepted in between.
        for s in self.reader_socks.lock().drain(..) {
            let _ = s.shutdown(std::net::Shutdown::Both);
        }
        if let Some(h) = self.accept_handle.lock().take() {
            let _ = h.join();
        }
        for s in self.reader_socks.lock().drain(..) {
            let _ = s.shutdown(std::net::Shutdown::Both);
        }
        let handles: Vec<JoinHandle<()>> = self.reader_handles.lock().drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for ConnectionManager {
    /// A dropped manager must not leak its accept/reader/daemon threads —
    /// server runtimes drop managers when their node loop exits without
    /// always calling [`Self::shutdown`] explicitly. Idempotent.
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Drain-encode-write until the queue is empty or the connection stalls.
/// Called with the peer's flush lock held; consumes the guard and releases
/// it *inside* a queue critical section after observing the queue empty
/// (the handshake that makes `send`'s failed `try_lock` safe).
///
/// `max_rounds` bounds how long an inline caller can be conscripted as the
/// peer's writer; the daemon passes a large cap and backstops the rest.
/// `pace_dials` makes a session respect [`FlushState::next_dial_at`] — set
/// for inline senders so they never spin on a dead peer; the daemon
/// ignores it because its own exponential backoff is the pacer.
fn flush_session(
    shared: &PeerShared,
    mut st: MutexGuard<'_, FlushState>,
    max_rounds: u32,
    pace_dials: bool,
) -> SessionEnd {
    let cork_bytes = shared.cfg.tuning.cork_bytes.max(1);
    let cork_deadline = Duration::from_nanos(shared.cfg.tuning.cork_deadline_ns);
    let mut rounds = 0u32;
    loop {
        // Gather: move queued frames into the held batch, encoding each
        // into the scratch buffer back-to-back, up to the cork threshold.
        let shutting;
        let gathered_depth: u64;
        {
            let mut q = plock(&shared.queue);
            gathered_depth = q.q.len() as u64;
            let mut took = false;
            while st.scratch.len() < cork_bytes {
                let Some(f) = q.q.pop_front() else { break };
                encode_frame(&f, &mut st.scratch);
                st.batch.push_back(f);
                took = true;
            }
            if took {
                shared.room.notify_all();
            }
            if st.batch.is_empty() {
                // Nothing held and nothing queued: release the flush lock
                // while still holding the queue lock, so any sender whose
                // try_lock failed has either already enqueued (we'd see the
                // frame) or will acquire the flush lock itself.
                drop(st);
                return SessionEnd::Done;
            }
            shutting = q.shutdown;
        }
        // Sample the pre-gather backlog (outside the queue lock; zero
        // depths are the terminating empty checks, not signal).
        if gathered_depth > 0 {
            shared.telem.note_queue_depth(gathered_depth);
        }
        // Adaptive cork: inside a busy stream (last flush under the
        // deadline ago), a sub-threshold batch is held for company and the
        // daemon flushes it when the cork pops. A first frame after idle
        // — or a full batch, or any batch during shutdown — goes out now.
        if !cork_deadline.is_zero() && !shutting && !shared.shutdown.load(Ordering::Relaxed) {
            if let Some(last) = st.last_flush_at {
                let until = last + cork_deadline;
                if st.scratch.len() < cork_bytes && Instant::now() < until {
                    let mut q = plock(&shared.queue);
                    q.cork_until = Some(until);
                    shared.daemon.notify_all();
                    return SessionEnd::Corked;
                }
            }
        }
        rounds += 1;
        if rounds > max_rounds {
            return SessionEnd::Stalled;
        }
        // A kill (reconnect drill) closes the old connection at this flush
        // boundary; the held batch rides the next generation.
        if shared.kill.swap(false, Ordering::Relaxed) {
            st.conn = None;
        }
        if st.conn.is_none() {
            if pace_dials {
                if let Some(at) = st.next_dial_at {
                    if Instant::now() < at {
                        // Recently failed dial: leave redial pacing to the
                        // daemon instead of burning sender time.
                        return SessionEnd::Stalled;
                    }
                }
            }
            match dial(shared, &mut st) {
                Ok(()) => {}
                Err(_) => {
                    shared.health.note_failure();
                    st.next_dial_at = Some(Instant::now() + shared.cfg.backoff_base);
                    return SessionEnd::Stalled;
                }
            }
        }
        // Single write for the whole batch. Disjoint borrows: the stream
        // and the scratch buffer live in the same struct.
        let FlushState {
            conn,
            scratch,
            batch,
            last_flush_at,
            ..
        } = &mut *st;
        let stream = conn.as_mut().expect("connection established above");
        let t0 = Instant::now();
        match stream.write_all(scratch) {
            Ok(()) => {
                let dur = t0.elapsed();
                let (frames, bytes) = (batch.len() as u64, scratch.len() as u64);
                shared.health.note_flush(frames, bytes, dur);
                shared.wire.note_flush(frames, bytes);
                shared
                    .telem
                    .note_flush(shared.me, shared.to, t0, dur, frames, bytes);
                batch.clear();
                scratch.clear();
                *last_flush_at = Some(Instant::now());
            }
            Err(_) => {
                // Batch and scratch stay intact: the next generation
                // resends the identical bytes.
                shared.health.note_failure();
                *conn = None;
                st.next_dial_at = Some(Instant::now() + shared.cfg.backoff_base);
                return SessionEnd::Stalled;
            }
        }
    }
}

/// Connect to the peer and send the `Hello` handshake. On success the
/// stream is stored in `st.conn` and the dial throttle is cleared.
fn dial(shared: &PeerShared, st: &mut FlushState) -> io::Result<()> {
    let addr = shared
        .book
        .get(shared.to)
        .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "peer address unknown"))?;
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    write_frame(
        &mut stream,
        &Frame::Hello {
            node: shared.me,
            listen_port: shared.listen_port,
        },
        &mut st.hello_scratch,
    )?;
    if st.ever_connected {
        shared.health.note_reconnect();
        shared.reconnects.fetch_add(1, Ordering::Relaxed);
    }
    st.ever_connected = true;
    st.next_dial_at = None;
    st.conn = Some(stream);
    Ok(())
}

/// The per-peer backstop thread. Inline senders do the fast-path flushing;
/// the daemon handles everything that must not block a protocol thread:
/// exponential reconnect backoff, frames a stalled session left behind,
/// the timed flush of a corked batch, and the final drain at shutdown.
fn writer_daemon(shared: Arc<PeerShared>) {
    let mut backoff = shared.cfg.backoff_base;
    loop {
        let cork_at = {
            let mut q = plock(&shared.queue);
            while q.q.is_empty() && !q.shutdown && q.cork_until.is_none() {
                let (guard, timeout) = shared
                    .daemon
                    .wait_timeout(q, Duration::from_millis(20))
                    .unwrap_or_else(PoisonError::into_inner);
                q = guard;
                // The periodic poll backstops anything whose notification
                // raced the wait (a stalled inline session's leftovers).
                if timeout.timed_out() {
                    break;
                }
            }
            q.cork_until.take()
        };
        if let Some(at) = cork_at {
            // A corked batch is pending: wait out the deadline, then the
            // session below re-evaluates the (now expired) cork and
            // flushes. The flush lock is free while we sleep, so frames
            // keep accumulating into the batch — that is the point.
            let now = Instant::now();
            if at > now && !shared.shutdown.load(Ordering::Relaxed) {
                thread::sleep(at - now);
            }
        }
        let st = plock(&shared.flush);
        let end = flush_session(&shared, st, u32::MAX, false);
        let shut = shared.shutdown.load(Ordering::Relaxed);
        match end {
            SessionEnd::Done => {
                backoff = shared.cfg.backoff_base;
                if shut {
                    return;
                }
            }
            SessionEnd::Corked => {
                // Re-corked (a fresh flush happened between the cork and
                // our wake): loop around and honor the new deadline.
            }
            SessionEnd::Stalled => {
                if shut && shared.health.consecutive() > 0 {
                    // Peer unreachable during shutdown: drop the queue.
                    return;
                }
                thread::sleep(backoff);
                backoff = (backoff * 2).min(shared.cfg.backoff_max);
            }
        }
    }
}

impl PeerHealth {
    fn consecutive(&self) -> u64 {
        self.snapshot().consecutive_failures
    }
}

#[allow(clippy::too_many_arguments)]
fn accept_loop(
    listener: TcpListener,
    inbound_tx: Sender<(NodeId, Vec<Frame>)>,
    shutdown: Arc<AtomicBool>,
    book: Arc<AddrBook>,
    socks: Arc<Mutex<Vec<TcpStream>>>,
    handles: Arc<Mutex<Vec<JoinHandle<()>>>>,
    order: Arc<ReaderOrder>,
    pool: Arc<Mutex<VecPool<Frame>>>,
    read_buf_bytes: usize,
) {
    loop {
        match listener.accept() {
            Ok((mut stream, peer_addr)) => {
                let _ = stream.set_nodelay(true);
                // The listener is non-blocking; handshake reads must not be.
                let _ = stream.set_nonblocking(false);
                if let Ok(clone) = stream.try_clone() {
                    socks.lock().push(clone);
                }
                // The handshake runs *here*, in accept order, so readers
                // can be chained per node before any of them forwards —
                // see [`ReaderOrder`]. A dialer writes its `Hello` inside
                // `dial()`, so this read completes promptly.
                let mut fb = FrameBuffer::with_capacity(read_buf_bytes.max(4096));
                let Some(from) = read_hello(&mut stream, &mut fb, &book, peer_addr.ip(), &shutdown)
                else {
                    continue; // anonymous, garbage, or timed-out connection
                };
                let (prev, done) = order.register(from);
                let tx = inbound_tx.clone();
                let pool = Arc::clone(&pool);
                let h = thread::Builder::new()
                    .name("cx-read".into())
                    .spawn(move || reader_loop(stream, from, fb, prev, done, tx, pool))
                    .expect("spawn reader thread");
                handles.lock().push(h);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                if shutdown.load(Ordering::Relaxed) {
                    return;
                }
                thread::sleep(Duration::from_millis(2));
            }
            Err(_) => {
                if shutdown.load(Ordering::Relaxed) {
                    return;
                }
                thread::sleep(Duration::from_millis(2));
            }
        }
    }
}

/// Strict handshake: the first frame must identify the dialer. Runs on the
/// accept thread under a short read timeout so one silent connection
/// cannot stall accepts (or shutdown) indefinitely.
fn read_hello(
    stream: &mut TcpStream,
    fb: &mut FrameBuffer,
    book: &AddrBook,
    peer_ip: IpAddr,
    shutdown: &AtomicBool,
) -> Option<NodeId> {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let deadline = Instant::now() + Duration::from_secs(5);
    let node = loop {
        match fb.next_frame() {
            Ok(Some(Frame::Hello { node, listen_port })) => {
                if listen_port != 0 {
                    book.set(node, SocketAddr::new(peer_ip, listen_port));
                }
                break node;
            }
            Ok(Some(_)) | Err(_) => return None,
            Ok(None) => match fb.fill_from(stream, 4096) {
                Ok(0) => return None,
                Ok(_) => {}
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    if shutdown.load(Ordering::Relaxed) || Instant::now() >= deadline {
                        return None;
                    }
                }
                Err(_) => return None,
            },
        }
    };
    let _ = stream.set_read_timeout(None);
    Some(node)
}

/// The batching reader: one reusable [`FrameBuffer`], every complete frame
/// per `read` decoded and forwarded as a single batch. Frames that rode in
/// on the same `read` as the `Hello` are forwarded only after the previous
/// connection from this node has fully drained, so batching cannot reorder
/// across reconnects.
fn reader_loop(
    mut stream: TcpStream,
    from: NodeId,
    mut fb: FrameBuffer,
    prev: Option<Arc<DoneEvent>>,
    done: Arc<DoneEvent>,
    inbound: Sender<(NodeId, Vec<Frame>)>,
    pool: Arc<Mutex<VecPool<Frame>>>,
) {
    // Whatever path exits this reader, its successor must unblock —
    // including panics and the shutdown cascade (sockets are shut down
    // oldest-first, so chains drain head to tail).
    struct SignalOnDrop(Arc<DoneEvent>);
    impl Drop for SignalOnDrop {
        fn drop(&mut self) {
            self.0.signal();
        }
    }
    let _done = SignalOnDrop(done);
    if let Some(p) = prev {
        p.wait();
    }
    loop {
        let mut batch = pool.lock().get();
        // Everything already buffered (including frames coalesced behind
        // the Hello) decodes before the next read blocks.
        let clean = fb.drain_frames(&mut batch).is_ok();
        if batch.is_empty() {
            pool.lock().put(batch);
        } else if inbound.send((from, batch)).is_err() {
            return; // node is shutting down
        }
        if !clean {
            return; // malformed mid-stream; writer side re-dials
        }
        match fb.fill_from(&mut stream, 4096) {
            Ok(0) => return, // clean close at a frame boundary
            Ok(_) => {}
            Err(_) => return, // reset; writer side re-dials
        }
    }
}

/// Test shorthand: the payload of a frame is irrelevant to the transport
/// tests, so they all ship probes with a zero send timestamp.
#[cfg(test)]
fn probe(token: u64) -> Frame {
    Frame::Probe { token, t0_ns: 0 }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Collect the next `n` frames from a batched inbound channel,
    /// tagging each with its sender.
    fn recv_n(rx: &Receiver<(NodeId, Vec<Frame>)>, n: usize) -> Vec<(NodeId, Frame)> {
        let mut out = Vec::with_capacity(n);
        while out.len() < n {
            let (from, frames) = rx.recv_timeout(Duration::from_secs(5)).expect("inbound");
            assert!(!frames.is_empty(), "empty batches are never forwarded");
            out.extend(frames.into_iter().map(|f| (from, f)));
        }
        assert_eq!(out.len(), n, "over-delivery");
        out
    }

    #[test]
    fn two_nodes_exchange_frames_over_loopback() {
        let book = Arc::new(AddrBook::new());
        let (a, _rx_a) =
            ConnectionManager::start(NodeId::Server(0), Arc::clone(&book), PlaneConfig::default())
                .unwrap();
        let (b, rx_b) =
            ConnectionManager::start(NodeId::Server(1), Arc::clone(&book), PlaneConfig::default())
                .unwrap();
        book.set(NodeId::Server(0), a.listen_addr());
        book.set(NodeId::Server(1), b.listen_addr());

        for t in 0..100u64 {
            a.send(NodeId::Server(1), probe(t)).unwrap();
        }
        for (t, (from, f)) in recv_n(&rx_b, 100).into_iter().enumerate() {
            assert_eq!(from, NodeId::Server(0));
            assert_eq!(f, probe(t as u64), "in-order delivery");
        }
        let h = a.health(NodeId::Server(1)).unwrap();
        assert_eq!(h.sends, 100);
        assert!(
            h.flushes <= h.sends,
            "coalescing can only merge frames into fewer flushes"
        );
        assert!(h.bytes > 0);
        assert!(h.score > 0.5);
        assert_eq!(a.reconnects_total(), 0);
        let t = a.wire_totals();
        assert_eq!(t.frames, 100);
        assert_eq!(t.flushes, h.flushes);
        a.shutdown();
        b.shutdown();
    }

    #[test]
    fn telemetry_histograms_and_flush_spans_populate() {
        let book = Arc::new(AddrBook::new());
        let cfg = PlaneConfig {
            record_flush_spans: true,
            ..PlaneConfig::default()
        };
        let epoch = Instant::now();
        let (a, _rx_a) = ConnectionManager::start_with_epoch(
            NodeId::Server(0),
            Arc::clone(&book),
            cfg.clone(),
            epoch,
        )
        .unwrap();
        let (b, rx_b) = ConnectionManager::start_with_epoch(
            NodeId::ClientHost(1),
            Arc::clone(&book),
            cfg,
            epoch,
        )
        .unwrap();
        book.set(NodeId::Server(0), a.listen_addr());
        book.set(NodeId::ClientHost(1), b.listen_addr());

        {
            let _cork = a.cork_scope();
            for t in 0..50u64 {
                a.send(NodeId::ClientHost(1), probe(t)).unwrap();
            }
        }
        recv_n(&rx_b, 50);
        let telem = a.telemetry();
        let flushes = a.wire_totals().flushes;
        assert_eq!(telem.flush_frames.summary().count, flushes);
        assert_eq!(telem.flush_latency_ns.summary().count, flushes);
        assert_eq!(telem.flush_spans.len() as u64, flushes);
        assert_eq!(telem.spans_dropped, 0);
        // The corked burst gathered a visible backlog in one flush.
        assert!(telem.queue_depth.summary().max_ns >= 2);
        assert_eq!(telem.cork_scope_ns.summary().count, 1);
        let total_frames: u64 = telem.flush_spans.iter().map(|s| s.frames as u64).sum();
        assert_eq!(total_frames, 50);
        for s in &telem.flush_spans {
            assert_eq!(s.from, cx_obs::FlowNode::Server(0));
            assert_eq!(s.to, cx_obs::FlowNode::Client(1));
        }
        // telemetry() clones rather than drains.
        assert_eq!(a.telemetry().flush_spans.len() as u64, flushes);
        // b never sent: nothing recorded on its side.
        assert!(b.telemetry().flush_spans.is_empty());
        a.shutdown();
        b.shutdown();
    }

    #[test]
    fn prime_dials_eagerly_so_send_skips_the_connect() {
        let book = Arc::new(AddrBook::new());
        let (a, _rx_a) =
            ConnectionManager::start(NodeId::Server(0), Arc::clone(&book), PlaneConfig::default())
                .unwrap();
        let (b, rx_b) =
            ConnectionManager::start(NodeId::Server(1), Arc::clone(&book), PlaneConfig::default())
                .unwrap();
        book.set(NodeId::Server(0), a.listen_addr());
        book.set(NodeId::Server(1), b.listen_addr());

        // Priming an unknown peer is a harmless no-op on the dial path.
        a.prime(NodeId::Server(9));

        a.prime(NodeId::Server(1));
        // Poison the address book: `prime` dials synchronously, so the
        // send below rides the already-established session. Had prime
        // been lazy, the send would dial the dead address and stall.
        book.set(NodeId::Server(1), "127.0.0.1:1".parse().unwrap());
        a.send(NodeId::Server(1), probe(9)).unwrap();
        let (from, f) = recv_n(&rx_b, 1).pop().unwrap();
        assert_eq!(from, NodeId::Server(0));
        assert_eq!(f, probe(9));
        assert_eq!(a.reconnects_total(), 0);
        a.shutdown();
        b.shutdown();
    }

    #[test]
    fn dropped_connection_reconnects_without_frame_loss() {
        let book = Arc::new(AddrBook::new());
        let cfg = PlaneConfig {
            backoff_base: Duration::from_millis(1),
            ..PlaneConfig::default()
        };
        let (a, _rx_a) =
            ConnectionManager::start(NodeId::Server(0), Arc::clone(&book), cfg.clone()).unwrap();
        let (b, rx_b) =
            ConnectionManager::start(NodeId::Server(1), Arc::clone(&book), cfg).unwrap();
        book.set(NodeId::Server(1), b.listen_addr());

        // Phase 1: deliver a batch, and wait for it so the writer is
        // provably idle when the connection is dropped.
        for t in 0..200u64 {
            a.send(NodeId::Server(1), probe(t)).unwrap();
        }
        for (t, (_, f)) in recv_n(&rx_b, 200).into_iter().enumerate() {
            assert_eq!(f, probe(t as u64));
        }
        // Phase 2: drop the live socket, keep sending. The writer closes at
        // the next flush boundary and must re-dial to deliver the rest.
        assert!(a.drop_connection(NodeId::Server(1)));
        for t in 200..500u64 {
            a.send(NodeId::Server(1), probe(t)).unwrap();
        }
        for (i, (_, f)) in recv_n(&rx_b, 300).into_iter().enumerate() {
            let t = 200 + i as u64;
            assert_eq!(f, probe(t), "no loss across reconnect");
        }
        assert!(
            a.reconnects_total() >= 1,
            "the dropped connection must have been re-dialed"
        );
        assert!(a.health(NodeId::Server(1)).unwrap().reconnects >= 1);
        a.shutdown();
        b.shutdown();
    }

    #[test]
    fn kill_mid_corked_batch_stays_lossless_and_fifo() {
        // Aggressive corking (large threshold, long deadline) so frames
        // pile up coalesced-but-unflushed, with connection kills landing
        // mid-stream: every frame must still arrive exactly once, in
        // order, across generations.
        let book = Arc::new(AddrBook::new());
        let cfg = PlaneConfig {
            backoff_base: Duration::from_millis(1),
            tuning: NetTuning {
                cork_bytes: 1 << 20,
                cork_deadline_ns: 2_000_000, // 2 ms: kills land mid-cork
                ..NetTuning::default()
            },
            ..PlaneConfig::default()
        };
        let (a, _rx_a) =
            ConnectionManager::start(NodeId::Server(0), Arc::clone(&book), cfg.clone()).unwrap();
        let (b, rx_b) =
            ConnectionManager::start(NodeId::Server(1), Arc::clone(&book), cfg).unwrap();
        book.set(NodeId::Server(1), b.listen_addr());

        const N: u64 = 2_000;
        for t in 0..N {
            a.send(NodeId::Server(1), probe(t)).unwrap();
            if t % 256 == 128 {
                a.drop_connection(NodeId::Server(1));
            }
        }
        for (t, (_, f)) in recv_n(&rx_b, N as usize).into_iter().enumerate() {
            assert_eq!(
                f,
                probe(t as u64),
                "lossless FIFO across kills under corking"
            );
        }
        a.shutdown();
        b.shutdown();
    }

    #[test]
    fn dial_to_unknown_peer_backs_off_until_address_appears() {
        let book = Arc::new(AddrBook::new());
        let cfg = PlaneConfig {
            backoff_base: Duration::from_millis(1),
            ..PlaneConfig::default()
        };
        let (a, _rx_a) =
            ConnectionManager::start(NodeId::Server(0), Arc::clone(&book), cfg.clone()).unwrap();
        // Send before the peer address is known: the writer retries.
        a.send(NodeId::Server(1), probe(7)).unwrap();
        thread::sleep(Duration::from_millis(10));
        assert!(a.health(NodeId::Server(1)).unwrap().consecutive_failures > 0);

        let (b, rx_b) =
            ConnectionManager::start(NodeId::Server(1), Arc::clone(&book), cfg).unwrap();
        book.set(NodeId::Server(1), b.listen_addr());
        let (_, f) = recv_n(&rx_b, 1).pop().unwrap();
        assert_eq!(f, probe(7));
        a.shutdown();
        b.shutdown();
    }
}

#[cfg(test)]
mod perf_probe {
    use super::*;

    /// Not a correctness test: measures the manager-stack round trip
    /// (send -> reader thread -> inbound channel -> recv) for a lone
    /// frame. Run with --ignored --release to probe.
    #[test]
    #[ignore]
    fn ping_pong_round_trip() {
        let book = Arc::new(AddrBook::new());
        let (a, rx_a) =
            ConnectionManager::start(NodeId::Server(0), Arc::clone(&book), PlaneConfig::default())
                .unwrap();
        let (b, rx_b) =
            ConnectionManager::start(NodeId::Server(1), Arc::clone(&book), PlaneConfig::default())
                .unwrap();
        book.set(NodeId::Server(0), a.listen_addr());
        book.set(NodeId::Server(1), b.listen_addr());
        // Warm both directions.
        a.send(NodeId::Server(1), probe(0)).unwrap();
        rx_b.recv_timeout(Duration::from_secs(1)).unwrap();
        b.send(NodeId::Server(0), probe(0)).unwrap();
        rx_a.recv_timeout(Duration::from_secs(1)).unwrap();
        const N: u64 = 20_000;
        let t0 = Instant::now();
        for t in 1..=N {
            a.send(NodeId::Server(1), probe(t)).unwrap();
            let (_, fs) = rx_b.recv_timeout(Duration::from_secs(5)).unwrap();
            b.recycle_batch(fs);
            b.send(NodeId::Server(0), probe(t)).unwrap();
            let (_, fs) = rx_a.recv_timeout(Duration::from_secs(5)).unwrap();
            a.recycle_batch(fs);
        }
        let el = t0.elapsed();
        eprintln!(
            "manager RT: {:.1} us/round ({} rounds in {:?})",
            el.as_secs_f64() * 1e6 / N as f64,
            N,
            el
        );
        a.shutdown();
        b.shutdown();
    }

    /// Saturated one-way throughput: how cheap does the stack get when
    /// nothing parks? Run with --ignored --release to probe.
    #[test]
    #[ignore]
    fn firehose_one_way() {
        let book = Arc::new(AddrBook::new());
        let (a, _rx_a) =
            ConnectionManager::start(NodeId::Server(0), Arc::clone(&book), PlaneConfig::default())
                .unwrap();
        let (b, rx_b) =
            ConnectionManager::start(NodeId::Server(1), Arc::clone(&book), PlaneConfig::default())
                .unwrap();
        book.set(NodeId::Server(1), b.listen_addr());
        const N: u64 = 200_000;
        let t0 = Instant::now();
        let h = thread::spawn(move || {
            let mut got = 0u64;
            while got < N {
                let (_, fs) = rx_b.recv_timeout(Duration::from_secs(10)).unwrap();
                got += fs.len() as u64;
                b.recycle_batch(fs);
            }
            b
        });
        for t in 0..N {
            a.send(NodeId::Server(1), probe(t)).unwrap();
        }
        let b = h.join().unwrap();
        let el = t0.elapsed();
        let w = a.wire_totals();
        eprintln!(
            "firehose: {:.2} us/frame one-way ({} frames, {:.1} frames/flush, {:?})",
            el.as_secs_f64() * 1e6 / N as f64,
            N,
            w.frames as f64 / w.flushes.max(1) as f64,
            el
        );
        a.shutdown();
        b.shutdown();
    }
}
