//! `cx-net` — the TCP wire plane (ROADMAP item 2).
//!
//! Three layers, mirroring the classic wire/connection/peer-registry split:
//!
//! * [`wire`] — a length-prefixed binary codec for every protocol
//!   [`cx_types::Payload`] kind plus the runtime control frames
//!   (handshake, peer gossip, quiesce/probe/stop), and an incremental
//!   [`wire::FrameBuffer`] that decodes many coalesced frames per `read`.
//!   Totally defensive: arbitrary bytes decode to typed
//!   [`wire::WireError`]s, never panics.
//! * [`conn`] — a [`conn::ConnectionManager`] per node: one listener, one
//!   writer thread + bounded outbound queue per peer (backpressure by
//!   blocking the sender). Writers coalesce their whole queue into a
//!   single `write_all` per wakeup with adaptive corking
//!   ([`cx_types::NetTuning`]); readers forward `Vec<Frame>` batches drawn
//!   from a recycled pool. Reconnect with exponential backoff stays
//!   lossless and per-peer FIFO across connection generations.
//! * [`health`] — per-peer [`health::PeerHealth`] scoring: consecutive
//!   failures, reconnect counts, and a per-flush latency EWMA folded into
//!   a single score in `(0, 1]`, plus the frame/byte/flush counters behind
//!   the wire-throughput rates.
//!
//! The crate knows nothing about engines or clusters: `cx-cluster`'s
//! `TcpCluster` runtime composes these pieces into a runnable cluster
//! (in-process loopback or one OS process per server) and keeps the DES as
//! its oracle.

pub mod clock;
pub mod conn;
pub mod health;
pub mod wire;

pub use clock::{correct_ns, ClockSync, OffsetEstimate};
pub use conn::{AddrBook, ConnectionManager, CorkGuard, PlaneConfig, WireTelemetry, WireTotals};
pub use health::{HealthSnapshot, PeerHealth};
pub use wire::{
    decode_frame, encode_frame, encode_to_vec, read_frame, write_frame, Frame, FrameBuffer,
    WireError, MAX_FRAME_LEN, WIRE_VERSION,
};

/// A node on the wire: a metadata server or a client host (a process that
/// runs many client procs and speaks for all of them). Distinct from the
/// protocol-level [`cx_protocol::Endpoint`]: endpoints are routed *onto*
/// nodes (every `Endpoint::Proc` lives on a client host).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum NodeId {
    Server(u32),
    ClientHost(u32),
}

impl NodeId {
    /// The observability-plane mirror of this node — the track identity
    /// used by flow arcs and flush spans in the Perfetto trace.
    pub fn flow(self) -> cx_obs::FlowNode {
        match self {
            NodeId::Server(s) => cx_obs::FlowNode::Server(s),
            NodeId::ClientHost(c) => cx_obs::FlowNode::Client(c),
        }
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NodeId::Server(s) => write!(f, "srv{s}"),
            NodeId::ClientHost(c) => write!(f, "cli{c}"),
        }
    }
}
