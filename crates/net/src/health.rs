//! Per-peer health scoring and wire throughput counters.
//!
//! Every peer writer keeps a [`PeerHealth`] updated from the send path.
//! The unit of accounting is a **flush** — one `write_all` of a coalesced
//! batch — not a frame: successful flushes feed a latency EWMA and reset
//! the consecutive-failure streak, and carry the frame/byte counts of the
//! batch they wrote, so coalescing (many frames per syscall) neither
//! inflates the sample count nor skews the latency distribution the score
//! is built from. Failed dials/writes extend the streak. The combined
//! [`score`] folds both signals into `(0, 1]` — 1.0 is a healthy
//! low-latency peer, each consecutive failure halves the score, and
//! sustained flush latency above the 1 ms loopback target decays it
//! smoothly.
//!
//! The `frames` / `bytes` / `flushes` counters are also the raw material
//! for the wire-throughput rates (frames/s, bytes/s, flushes/s) surfaced
//! by the `--live` metrics plane and `cx-obs top`.
//!
//! [`score`]: PeerHealth::score

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::time::Duration;

/// Flush latency at which the latency factor reaches 0.5 (loopback
/// flushes are typically tens of microseconds, so a healthy peer stays
/// near 1.0).
const TARGET_LATENCY_NS: u64 = 1_000_000;

/// EWMA weight for new samples: `ewma += (sample - ewma) / 5` (α = 0.2).
const EWMA_DIV: u64 = 5;

/// RTT sample ring capacity: enough for every quiesce-round probe of a
/// long run while bounding the percentile sort at snapshot time.
const RTT_RING: usize = 512;

/// Shared, lock-free health record for one peer. Writers update it from the
/// send path; any thread may snapshot it. (The RTT ring is the one mutexed
/// field — it is written only by the probe path, a few samples per quiesce
/// round, never by the flush hot path.)
#[derive(Debug, Default)]
pub struct PeerHealth {
    frames: AtomicU64,
    bytes: AtomicU64,
    flushes: AtomicU64,
    failures: AtomicU64,
    consecutive_failures: AtomicU64,
    reconnects: AtomicU64,
    ewma_ns: AtomicU64,
    /// Probe round-trip samples (ns), ring-buffered for p50/p99.
    rtt: Mutex<Vec<u64>>,
    rtt_samples: AtomicU64,
    /// Smallest RTT observed (0 = no sample yet) — the sample whose offset
    /// estimate carries the tightest error bound (± rtt/2).
    rtt_min_ns: AtomicU64,
    /// Clock offset (peer minus us, ns) estimated at the min-RTT sample.
    clock_offset_ns: AtomicI64,
    /// Deepest outbound queue observed at a flush gather.
    queue_peak: AtomicU64,
}

/// Point-in-time copy of a peer's health counters. Serializable so child
/// server processes can ship their rows in `StopResp` for the
/// cluster-wide per-peer net table.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HealthSnapshot {
    /// Frames successfully written (every frame of every flushed batch).
    pub sends: u64,
    /// Encoded bytes successfully written.
    pub bytes: u64,
    /// `write_all` calls that succeeded (batches, not frames).
    pub flushes: u64,
    pub failures: u64,
    pub consecutive_failures: u64,
    pub reconnects: u64,
    /// Exponentially-weighted moving average of flush (write) latency.
    pub ewma_ns: u64,
    /// Combined health in `(0, 1]`; see module docs.
    pub score: f64,
    /// Probe RTT percentiles (0 until the first probe sample lands).
    pub rtt_p50_ns: u64,
    pub rtt_p99_ns: u64,
    /// Smallest probe RTT seen (0 = never probed).
    pub rtt_min_ns: u64,
    pub rtt_samples: u64,
    /// Estimated clock offset (peer clock minus ours, ns) at min RTT;
    /// error bound is ± `rtt_min_ns / 2`.
    pub clock_offset_ns: i64,
    /// Deepest outbound queue a flush ever gathered from.
    pub queue_peak: u64,
}

impl PeerHealth {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one successful flush: a single `write_all` that carried
    /// `frames` coalesced frames totalling `bytes` encoded bytes, taking
    /// `latency` of wall time. The EWMA samples per *flush*, so a
    /// 64-frame batch contributes one latency sample, not 64.
    pub fn note_flush(&self, frames: u64, bytes: u64, latency: Duration) {
        let sample = latency.as_nanos().min(u64::MAX as u128) as u64;
        // Single-writer EWMA: the peer's writer thread is the only caller,
        // so a read-modify-write without CAS is race-free.
        let old = self.ewma_ns.load(Ordering::Relaxed);
        let new = if old == 0 {
            sample
        } else if sample >= old {
            old + (sample - old) / EWMA_DIV
        } else {
            old - (old - sample) / EWMA_DIV
        };
        self.ewma_ns.store(new, Ordering::Relaxed);
        self.frames.fetch_add(frames, Ordering::Relaxed);
        self.bytes.fetch_add(bytes, Ordering::Relaxed);
        self.flushes.fetch_add(1, Ordering::Relaxed);
        self.consecutive_failures.store(0, Ordering::Relaxed);
    }

    /// Record a failed dial or write.
    pub fn note_failure(&self) {
        self.failures.fetch_add(1, Ordering::Relaxed);
        self.consecutive_failures.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a successful re-dial after the connection was lost or dropped.
    pub fn note_reconnect(&self) {
        self.reconnects.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one probe round trip and its offset estimate. The min-RTT
    /// sample wins the offset slot: the shorter the round trip, the
    /// tighter the `± rtt/2` bound on `offset = t1 - (t0 + t3)/2`.
    pub fn note_rtt(&self, rtt_ns: u64, offset_ns: i64) {
        let n = self.rtt_samples.fetch_add(1, Ordering::Relaxed) as usize;
        {
            let mut ring = self.rtt.lock();
            if ring.len() < RTT_RING {
                ring.push(rtt_ns);
            } else {
                ring[n % RTT_RING] = rtt_ns;
            }
        }
        let min = self.rtt_min_ns.load(Ordering::Relaxed);
        if min == 0 || rtt_ns < min {
            self.rtt_min_ns.store(rtt_ns, Ordering::Relaxed);
            self.clock_offset_ns.store(offset_ns, Ordering::Relaxed);
        }
    }

    /// Record the outbound queue depth a flush gathered from (peak wins).
    pub fn note_queue_depth(&self, depth: u64) {
        self.queue_peak.fetch_max(depth, Ordering::Relaxed);
    }

    /// The current min-RTT clock-offset estimate, if any probe landed:
    /// `(offset_ns, rtt_min_ns)`.
    pub fn clock_offset(&self) -> Option<(i64, u64)> {
        match self.rtt_min_ns.load(Ordering::Relaxed) {
            0 => None,
            rtt => Some((self.clock_offset_ns.load(Ordering::Relaxed), rtt)),
        }
    }

    pub fn reconnects(&self) -> u64 {
        self.reconnects.load(Ordering::Relaxed)
    }

    /// Combined health in `(0, 1]`: `2^-consecutive_failures` (saturating)
    /// times a latency factor `target / (target + ewma)`.
    pub fn score(&self) -> f64 {
        let streak = self.consecutive_failures.load(Ordering::Relaxed).min(32);
        let failure_factor = 0.5f64.powi(streak as i32);
        let ewma = self.ewma_ns.load(Ordering::Relaxed);
        let latency_factor = TARGET_LATENCY_NS as f64 / (TARGET_LATENCY_NS + ewma) as f64;
        failure_factor * latency_factor
    }

    pub fn snapshot(&self) -> HealthSnapshot {
        // Percentiles over the (unordered) ring; snapshotting is a cold
        // path, so the sort of ≤512 samples is fine.
        let (p50, p99) = {
            let ring = self.rtt.lock();
            if ring.is_empty() {
                (0, 0)
            } else {
                let mut sorted = ring.clone();
                sorted.sort_unstable();
                let at = |q: f64| sorted[((sorted.len() - 1) as f64 * q) as usize];
                (at(0.50), at(0.99))
            }
        };
        HealthSnapshot {
            sends: self.frames.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
            flushes: self.flushes.load(Ordering::Relaxed),
            failures: self.failures.load(Ordering::Relaxed),
            consecutive_failures: self.consecutive_failures.load(Ordering::Relaxed),
            reconnects: self.reconnects.load(Ordering::Relaxed),
            ewma_ns: self.ewma_ns.load(Ordering::Relaxed),
            score: self.score(),
            rtt_p50_ns: p50,
            rtt_p99_ns: p99,
            rtt_min_ns: self.rtt_min_ns.load(Ordering::Relaxed),
            rtt_samples: self.rtt_samples.load(Ordering::Relaxed),
            clock_offset_ns: self.clock_offset_ns.load(Ordering::Relaxed),
            queue_peak: self.queue_peak.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_peer_scores_one() {
        let h = PeerHealth::new();
        assert_eq!(h.score(), 1.0);
        let s = h.snapshot();
        assert_eq!(s.sends, 0);
        assert_eq!(s.flushes, 0);
        assert_eq!(s.bytes, 0);
        assert_eq!(s.reconnects, 0);
    }

    #[test]
    fn failures_halve_the_score_and_success_resets() {
        let h = PeerHealth::new();
        h.note_failure();
        assert!(h.score() <= 0.5);
        h.note_failure();
        assert!(h.score() <= 0.25);
        h.note_flush(1, 32, Duration::from_micros(10));
        assert!(h.score() > 0.9, "success resets the streak");
    }

    #[test]
    fn latency_ewma_converges_and_decays_score() {
        let h = PeerHealth::new();
        for _ in 0..64 {
            h.note_flush(1, 64, Duration::from_millis(10));
        }
        let s = h.snapshot();
        assert!(
            s.ewma_ns > 8_000_000,
            "ewma {} should approach 10ms",
            s.ewma_ns
        );
        assert!(s.score < 0.2, "10ms loopback latency is unhealthy");
        for _ in 0..256 {
            h.note_flush(1, 64, Duration::from_micros(20));
        }
        assert!(h.snapshot().score > 0.5, "ewma recovers after fast sends");
    }

    #[test]
    fn coalesced_flushes_count_frames_and_bytes_but_sample_once() {
        let h = PeerHealth::new();
        // One 64-frame batch: one flush, one EWMA sample, 64 frames.
        h.note_flush(64, 4096, Duration::from_micros(50));
        let s = h.snapshot();
        assert_eq!(s.sends, 64);
        assert_eq!(s.bytes, 4096);
        assert_eq!(s.flushes, 1);
        assert_eq!(s.ewma_ns, 50_000, "first sample seeds the ewma directly");
        // A second batch moves the EWMA by one α-step, not 64.
        h.note_flush(64, 4096, Duration::from_micros(100));
        assert_eq!(h.snapshot().flushes, 2);
        assert_eq!(h.snapshot().ewma_ns, 60_000, "one sample per flush");
    }

    #[test]
    fn rtt_ring_tracks_min_offset_and_percentiles() {
        let h = PeerHealth::new();
        assert_eq!(h.clock_offset(), None);
        // 100 slow samples with a noisy offset, one fast sample with the
        // true offset: min-RTT must pin the fast sample's estimate.
        for i in 0..100u64 {
            h.note_rtt(200_000 + i, 9_999);
        }
        h.note_rtt(50_000, -1_234);
        let s = h.snapshot();
        assert_eq!(s.rtt_min_ns, 50_000);
        assert_eq!(s.clock_offset_ns, -1_234);
        assert_eq!(s.rtt_samples, 101);
        assert!(s.rtt_p50_ns >= 50_000 && s.rtt_p50_ns <= 200_100);
        assert!(s.rtt_p99_ns >= s.rtt_p50_ns);
        assert_eq!(h.clock_offset(), Some((-1_234, 50_000)));
        // Queue-depth peak is monotone.
        h.note_queue_depth(3);
        h.note_queue_depth(17);
        h.note_queue_depth(5);
        assert_eq!(h.snapshot().queue_peak, 17);
    }

    #[test]
    fn score_saturates_instead_of_underflowing() {
        let h = PeerHealth::new();
        for _ in 0..100 {
            h.note_failure();
        }
        let s = h.score();
        assert!(s > 0.0 && s < 1e-9);
    }
}
