//! Per-peer health scoring.
//!
//! Every peer writer keeps a [`PeerHealth`] updated from the send path:
//! successful writes feed a latency EWMA and reset the consecutive-failure
//! streak; failed dials/writes extend it. The combined [`score`] folds both
//! signals into `(0, 1]` — 1.0 is a healthy low-latency peer, each
//! consecutive failure halves the score, and sustained latency above the
//! 1 ms loopback target decays it smoothly.
//!
//! [`score`]: PeerHealth::score

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Latency at which the latency factor reaches 0.5 (loopback sends are
/// typically tens of microseconds, so a healthy peer stays near 1.0).
const TARGET_LATENCY_NS: u64 = 1_000_000;

/// EWMA weight for new samples: `ewma += (sample - ewma) / 5` (α = 0.2).
const EWMA_DIV: u64 = 5;

/// Shared, lock-free health record for one peer. Writers update it from the
/// send path; any thread may snapshot it.
#[derive(Debug, Default)]
pub struct PeerHealth {
    sends: AtomicU64,
    failures: AtomicU64,
    consecutive_failures: AtomicU64,
    reconnects: AtomicU64,
    ewma_ns: AtomicU64,
}

/// Point-in-time copy of a peer's health counters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HealthSnapshot {
    pub sends: u64,
    pub failures: u64,
    pub consecutive_failures: u64,
    pub reconnects: u64,
    /// Exponentially-weighted moving average of send (write) latency.
    pub ewma_ns: u64,
    /// Combined health in `(0, 1]`; see module docs.
    pub score: f64,
}

impl PeerHealth {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a successful frame write and its wall latency.
    pub fn note_send(&self, latency: Duration) {
        let sample = latency.as_nanos().min(u64::MAX as u128) as u64;
        // Single-writer EWMA: the peer's writer thread is the only caller,
        // so a read-modify-write without CAS is race-free.
        let old = self.ewma_ns.load(Ordering::Relaxed);
        let new = if old == 0 {
            sample
        } else if sample >= old {
            old + (sample - old) / EWMA_DIV
        } else {
            old - (old - sample) / EWMA_DIV
        };
        self.ewma_ns.store(new, Ordering::Relaxed);
        self.sends.fetch_add(1, Ordering::Relaxed);
        self.consecutive_failures.store(0, Ordering::Relaxed);
    }

    /// Record a failed dial or write.
    pub fn note_failure(&self) {
        self.failures.fetch_add(1, Ordering::Relaxed);
        self.consecutive_failures.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a successful re-dial after the connection was lost or dropped.
    pub fn note_reconnect(&self) {
        self.reconnects.fetch_add(1, Ordering::Relaxed);
    }

    pub fn reconnects(&self) -> u64 {
        self.reconnects.load(Ordering::Relaxed)
    }

    /// Combined health in `(0, 1]`: `2^-consecutive_failures` (saturating)
    /// times a latency factor `target / (target + ewma)`.
    pub fn score(&self) -> f64 {
        let streak = self.consecutive_failures.load(Ordering::Relaxed).min(32);
        let failure_factor = 0.5f64.powi(streak as i32);
        let ewma = self.ewma_ns.load(Ordering::Relaxed);
        let latency_factor = TARGET_LATENCY_NS as f64 / (TARGET_LATENCY_NS + ewma) as f64;
        failure_factor * latency_factor
    }

    pub fn snapshot(&self) -> HealthSnapshot {
        HealthSnapshot {
            sends: self.sends.load(Ordering::Relaxed),
            failures: self.failures.load(Ordering::Relaxed),
            consecutive_failures: self.consecutive_failures.load(Ordering::Relaxed),
            reconnects: self.reconnects.load(Ordering::Relaxed),
            ewma_ns: self.ewma_ns.load(Ordering::Relaxed),
            score: self.score(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_peer_scores_one() {
        let h = PeerHealth::new();
        assert_eq!(h.score(), 1.0);
        let s = h.snapshot();
        assert_eq!(s.sends, 0);
        assert_eq!(s.reconnects, 0);
    }

    #[test]
    fn failures_halve_the_score_and_success_resets() {
        let h = PeerHealth::new();
        h.note_failure();
        assert!(h.score() <= 0.5);
        h.note_failure();
        assert!(h.score() <= 0.25);
        h.note_send(Duration::from_micros(10));
        assert!(h.score() > 0.9, "success resets the streak");
    }

    #[test]
    fn latency_ewma_converges_and_decays_score() {
        let h = PeerHealth::new();
        for _ in 0..64 {
            h.note_send(Duration::from_millis(10));
        }
        let s = h.snapshot();
        assert!(
            s.ewma_ns > 8_000_000,
            "ewma {} should approach 10ms",
            s.ewma_ns
        );
        assert!(s.score < 0.2, "10ms loopback latency is unhealthy");
        for _ in 0..256 {
            h.note_send(Duration::from_micros(20));
        }
        assert!(h.snapshot().score > 0.5, "ewma recovers after fast sends");
    }

    #[test]
    fn score_saturates_instead_of_underflowing() {
        let h = PeerHealth::new();
        for _ in 0..100 {
            h.note_failure();
        }
        let s = h.score();
        assert!(s > 0.0 && s < 1e-9);
    }
}
