//! NTP-style clock-offset estimation from probe round trips.
//!
//! Every `Probe`/`ProbeResp` exchange yields four timestamps: the prober's
//! clock at send (`t0`) and receive (`t3`), and the responder's clock when
//! it built the reply (`t1`, which also stands in for NTP's `t2` — the
//! responder turns the probe around in-process, so the server-side dwell
//! is part of the path asymmetry the error bound already covers). The
//! classic estimate is
//!
//! ```text
//! rtt    = t3 - t0
//! offset = t1 - (t0 + t3) / 2        (responder clock minus ours)
//! ```
//!
//! which is exact when the outbound and return paths take equal time, and
//! off by at most `± rtt / 2` under arbitrary asymmetry. [`ClockSync`]
//! therefore keeps the sample with the **smallest RTT**: it carries the
//! tightest bound, and queueing delay — the dominant noise source on a
//! loaded loopback — only ever inflates RTTs, never deflates them.
//!
//! Offsets here are *epoch* offsets: each process stamps nanoseconds since
//! its own start instant, so cross-process offsets are dominated by the
//! difference in process start times (milliseconds to seconds), not clock
//! drift. The same estimator corrects both.

/// The running best (min-RTT) offset estimate for one peer.
#[derive(Debug, Clone, Copy, Default)]
pub struct ClockSync {
    /// `(rtt_ns, offset_ns)` of the best sample so far.
    best: Option<(u64, i64)>,
    samples: u64,
}

/// A finished estimate: the peer's clock reads `offset_ns` ahead of ours
/// (negative = behind), known to within `± error_bound_ns`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OffsetEstimate {
    pub offset_ns: i64,
    /// RTT of the winning sample.
    pub rtt_ns: u64,
    /// Half the winning RTT — the asymmetry bound on `offset_ns`.
    pub error_bound_ns: u64,
    pub samples: u64,
}

impl ClockSync {
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold in one probe exchange. `t0_ns`/`t3_ns` are our clock at probe
    /// send and response receipt; `remote_ns` is the responder's clock
    /// from the reply. Returns the sample's `(rtt_ns, offset_ns)` so the
    /// caller can also feed per-peer RTT health tracking.
    pub fn sample(&mut self, t0_ns: u64, remote_ns: u64, t3_ns: u64) -> (u64, i64) {
        let rtt = t3_ns.saturating_sub(t0_ns);
        // i128 midpoint: u64 epochs near the end of a long run would
        // overflow an i64 sum.
        let midpoint = (t0_ns as i128 + t3_ns as i128) / 2;
        let offset =
            (remote_ns as i128 - midpoint).clamp(i64::MIN as i128, i64::MAX as i128) as i64;
        self.samples += 1;
        if self.best.is_none_or(|(best_rtt, _)| rtt < best_rtt) {
            self.best = Some((rtt, offset));
        }
        (rtt, offset)
    }

    /// The min-RTT estimate, if any sample landed.
    pub fn estimate(&self) -> Option<OffsetEstimate> {
        self.best.map(|(rtt_ns, offset_ns)| OffsetEstimate {
            offset_ns,
            rtt_ns,
            error_bound_ns: rtt_ns / 2,
            samples: self.samples,
        })
    }
}

/// Pull a wall-clock stamp from a remote process back onto our clock:
/// subtract the estimated offset, saturating at zero (a stamp from before
/// our epoch cannot be represented — clamping is what the span-merge
/// monotone pass expects).
pub fn correct_ns(remote_stamp_ns: u64, offset_ns: i64) -> u64 {
    (remote_stamp_ns as i128 - offset_ns as i128).clamp(0, u64::MAX as i128) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Simulate a probe exchange against a responder whose clock runs
    /// `skew` ns ahead of ours, with the given one-way delays. `t0` must
    /// be large enough that the responder's (skewed) clock stays
    /// non-negative — epoch stamps are unsigned.
    fn exchange(sync: &mut ClockSync, t0: u64, skew: i64, out_delay: u64, back_delay: u64) {
        let arrive_remote = t0 + out_delay; // in our clock
        let remote_ns = (arrive_remote as i64 + skew) as u64; // responder's clock
        assert!(
            arrive_remote as i64 + skew >= 0,
            "test setup: remote clock underflow"
        );
        let t3 = arrive_remote + back_delay;
        sync.sample(t0, remote_ns, t3);
    }

    /// A base far enough into both epochs for any skew in these tests.
    const T0: u64 = 10_000_000_000;

    #[test]
    fn symmetric_delay_recovers_the_offset_exactly() {
        for skew in [-5_000_000i64, 0, 12_345, 8_000_000_000] {
            let mut sync = ClockSync::new();
            exchange(&mut sync, T0, skew, 40_000, 40_000);
            let est = sync.estimate().unwrap();
            assert_eq!(est.offset_ns, skew, "symmetric paths are exact");
            assert_eq!(est.rtt_ns, 80_000);
            assert_eq!(est.error_bound_ns, 40_000);
        }
    }

    #[test]
    fn asymmetric_delay_stays_within_the_min_rtt_bound() {
        let skew = -3_000_000i64;
        // Wildly asymmetric paths: 5us out, 95us back, and vice versa.
        for (out, back) in [(5_000u64, 95_000u64), (95_000, 5_000), (1_000, 99_000)] {
            let mut sync = ClockSync::new();
            exchange(&mut sync, T0, skew, out, back);
            let est = sync.estimate().unwrap();
            let err = (est.offset_ns - skew).unsigned_abs();
            assert!(
                err <= est.error_bound_ns,
                "error {err} exceeds bound {} for delays ({out},{back})",
                est.error_bound_ns
            );
        }
    }

    #[test]
    fn min_rtt_sample_wins_over_noisy_queued_ones() {
        let skew = 2_000_000i64;
        let mut sync = ClockSync::new();
        // Queued probes: symmetric base delay plus a large asymmetric
        // queueing term that corrupts their individual estimates.
        for i in 0..50u64 {
            exchange(
                &mut sync,
                T0 + i * 1_000_000,
                skew,
                30_000,
                30_000 + i * 7_000,
            );
        }
        // One uncongested probe.
        exchange(&mut sync, T0 + 60_000_000, skew, 10_000, 10_000);
        let est = sync.estimate().unwrap();
        assert_eq!(est.rtt_ns, 20_000, "min-RTT sample selected");
        assert_eq!(est.offset_ns, skew, "and it is the exact one");
        assert_eq!(est.samples, 51);
    }

    #[test]
    fn correction_round_trips_and_saturates() {
        // A remote stamp taken `skew` ahead of us comes back to our clock.
        assert_eq!(correct_ns(5_000_000, 2_000_000), 3_000_000);
        assert_eq!(correct_ns(5_000_000, -2_000_000), 7_000_000);
        // Stamps from before our epoch clamp to zero instead of wrapping.
        assert_eq!(correct_ns(1_000, 5_000_000), 0);
    }
}
