//! Declarative fault plans.
//!
//! A [`FaultPlan`] is pure data: which messages to drop/delay/duplicate,
//! which timed partitions to impose, and which protocol events to crash a
//! server on. The plan is interpreted by [`crate::PlanInjector`] against
//! the two DES choke points; serialized (with the scenario and seed) it is
//! a complete, replayable repro of a failing schedule.

use cx_types::{MsgKind, ServerId};
use cx_wal::RecordFamily;
use serde::{Deserialize, Serialize};

/// What to do with the matched message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NetAction {
    /// Discard it.
    Drop,
    /// Deliver it `ns` later than the network model would.
    Delay { ns: u64 },
    /// Deliver it twice, the copy `ns` after the original.
    Duplicate { ns: u64 },
    /// Deliver it on time, but make the receiver sit on it for `ns`
    /// before handling — a slow participant rather than a slow link, so
    /// `cx-obs doctor` blames the receiver's execution segment, not the
    /// hop's wire transit.
    ExecDelay { ns: u64 },
}

/// One targeted network fault: acts on the `nth` message (1-based) of
/// `kind` matching the endpoint filters, then disarms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetFault {
    pub kind: MsgKind,
    /// Only messages sent by this server (`None` = any sender).
    pub from: Option<ServerId>,
    /// Only messages sent to this server (`None` = any receiver).
    pub to: Option<ServerId>,
    /// Which matching message to hit, 1-based.
    pub nth: u64,
    pub action: NetAction,
}

/// A symmetric server↔server partition: every message between `a` and `b`
/// in `[from_ns, until_ns)` is dropped, both directions. Client↔server
/// traffic is unaffected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Partition {
    pub a: ServerId,
    pub b: ServerId,
    pub from_ns: u64,
    pub until_ns: u64,
}

/// The protocol event a crash is keyed on. Counters are per fault and
/// 1-based, matching [`cx_cluster::FaultEvent`]'s cumulative counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CrashPoint {
    /// After the server's `nth` append of `family` (volatile — this is how
    /// "between VOTE and COMMIT-REQ" is expressed: the Commit record is
    /// appended at commitment launch).
    WalAppend { family: RecordFamily, nth: u64 },
    /// After the server's `nth` record of `family` became durable.
    WalDurable { family: RecordFamily, nth: u64 },
    /// When the server is about to handle its `nth` message of `kind`
    /// (the message perishes with the crash).
    Deliver { kind: MsgKind, nth: u64 },
    /// After the server's `nth` database write-back batch.
    Writeback { nth: u64 },
}

/// Crash `server` at `point`, with an optional torn log tail, and reboot
/// it after detection + restart delays.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrashFault {
    pub server: ServerId,
    pub point: CrashPoint,
    /// Bytes of whole in-flight records that survive past the durable
    /// prefix (see `Wal::crash_torn`); 0 = clean cut at the durable mark.
    pub torn_extra_bytes: u64,
    pub detection_ns: u64,
    pub reboot_ns: u64,
}

/// A complete fault schedule for one run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    pub net: Vec<NetFault>,
    pub partitions: Vec<Partition>,
    pub crashes: Vec<CrashFault>,
}

impl FaultPlan {
    /// Total number of faults, across all three kinds.
    pub fn len(&self) -> usize {
        self.net.len() + self.partitions.len() + self.crashes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Reject plans whose results would be order-dependent on the
    /// partitioned (`parts > 1`) simulator.
    ///
    /// A net fault with an unpinned sender (`from: None`) counts "the
    /// globally Nth matching message" — a counter fed by lock-interleaved
    /// send hooks from every partition thread, so which message it hits
    /// varies run to run. Rather than silently producing order-dependent
    /// results (the PR6 caveat), partitioned entry points refuse such
    /// plans up front with this error. Sender-pinned net faults count one
    /// server's deterministic send order; partitions are virtual-time
    /// windows; crash points arm on per-server counters — all fine.
    pub fn check_partitionable(&self, parts: u32) -> Result<(), String> {
        if parts <= 1 {
            return Ok(());
        }
        for (i, f) in self.net.iter().enumerate() {
            if f.from.is_none() {
                return Err(format!(
                    "net fault #{i} ({:?} nth={}) has an unpinned sender (from: None): \
                     its global-Nth counter is order-dependent across {parts} partitions. \
                     Pin `from` to a server, or run with --partitions 1.",
                    f.kind, f.nth
                ));
            }
        }
        Ok(())
    }

    /// The plan minus the fault at global index `i` (net faults first,
    /// then partitions, then crashes) — the shrinker's step.
    pub fn without(&self, i: usize) -> FaultPlan {
        let mut p = self.clone();
        if i < p.net.len() {
            p.net.remove(i);
            return p;
        }
        let i = i - p.net.len();
        if i < p.partitions.len() {
            p.partitions.remove(i);
            return p;
        }
        p.crashes.remove(i - p.partitions.len());
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FaultPlan {
        FaultPlan {
            net: vec![NetFault {
                kind: MsgKind::Vote,
                from: None,
                to: Some(ServerId(1)),
                nth: 3,
                action: NetAction::Drop,
            }],
            partitions: vec![Partition {
                a: ServerId(0),
                b: ServerId(1),
                from_ns: 10,
                until_ns: 20,
            }],
            crashes: vec![CrashFault {
                server: ServerId(2),
                point: CrashPoint::WalAppend {
                    family: RecordFamily::Result,
                    nth: 5,
                },
                torn_extra_bytes: 0,
                detection_ns: 1,
                reboot_ns: 1,
            }],
        }
    }

    #[test]
    fn without_walks_the_global_index() {
        let p = sample();
        assert_eq!(p.len(), 3);
        assert!(p.without(0).net.is_empty());
        assert!(p.without(1).partitions.is_empty());
        assert!(p.without(2).crashes.is_empty());
        assert_eq!(p.without(2).len(), 2);
    }

    #[test]
    fn plans_round_trip_through_json() {
        let p = sample();
        let json = serde_json::to_string_pretty(&p).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, p);
    }
}
