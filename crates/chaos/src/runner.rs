//! One fault-injected run: scenario × plan → outcome.

use crate::inject::PlanInjector;
use crate::plan::FaultPlan;
use cx_cluster::{ChaosOutcome, DesCluster, FlightRecorder, ObsSink};
use cx_types::{ClusterConfig, Protocol, DUR_MS};
use cx_workloads::{StreamTrace, Trace, TraceBuilder, TraceProfile};
use serde::{Deserialize, Serialize};

/// Everything that determines a chaos run besides the fault plan. The
/// whole struct serializes into repro files, so a failing schedule is
/// replayable from the JSON alone.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChaosScenario {
    pub protocol: Protocol,
    pub servers: u32,
    pub trace_scale: f64,
    pub workload_seed: u64,
    /// Commitment re-drive period; gives Cx liveness when a VOTE or its
    /// answer dies with a crashed participant.
    pub commit_retry_ms: u64,
    /// Run the deliberately broken recovery (skip §III-D resumption) so
    /// the oracle's teeth can be demonstrated. Never set outside tests.
    pub broken: bool,
}

impl ChaosScenario {
    pub fn new(protocol: Protocol) -> Self {
        Self {
            protocol,
            servers: 4,
            trace_scale: 0.002,
            workload_seed: 1,
            commit_retry_ms: 40,
            broken: false,
        }
    }

    /// The driving workload (CTH mix: mutation-heavy, lots of
    /// cross-server creates).
    pub fn trace(&self) -> Trace {
        self.stream().materialize()
    }

    /// The same workload as a lazy stream (ops generated as the replay
    /// pulls them).
    pub fn stream(&self) -> StreamTrace {
        TraceBuilder::new(TraceProfile::by_name("CTH").expect("profile exists"))
            .scale(self.trace_scale)
            .seed(self.workload_seed)
            .stream()
    }

    fn config(&self) -> ClusterConfig {
        let mut cfg = ClusterConfig::new(self.servers, self.protocol);
        cfg.seed = 42;
        cfg.cx.commit_retry_timeout_ns = Some(self.commit_retry_ms * DUR_MS);
        cfg.cx.unsafe_skip_recovery_resume = self.broken;
        cfg
    }
}

/// Result of one run, with the failure list the explorer/shrinker key on.
pub struct ChaosRun {
    /// The shared reproducibility fingerprint (`RunStats::digest`); equal
    /// digests mean the runs were observably identical.
    pub digest: u64,
    /// Namespace violations (prefixed `namespace:`) plus every oracle
    /// finding. Empty = the run passed.
    pub failures: Vec<String>,
    pub outcome: ChaosOutcome,
}

/// Execute `plan` under `scn` on the deterministic simulator, pulling
/// the workload through the streaming intake (the default path).
pub fn run_plan(scn: &ChaosScenario, plan: &FaultPlan) -> ChaosRun {
    run_plan_obs(scn, plan, ObsSink::Off)
}

/// [`run_plan`] with an observability sink attached, so a fault-injected
/// replay can dump the op lifecycles surrounding the injected fault as a
/// Perfetto trace (`cx-chaos --replay --obs-out`). Recording never
/// perturbs the schedule: the digest is identical to an `Off` run, which
/// is exactly what lets an instrumented replay still claim "reproduced".
pub fn run_plan_obs(scn: &ChaosScenario, plan: &FaultPlan, obs: ObsSink) -> ChaosRun {
    run_plan_flight(scn, plan, obs, None)
}

/// [`run_plan_obs`] with an always-on flight recorder fed by the run —
/// the caller keeps a clone of the ring and dumps the post-mortem when
/// the outcome warrants one (crash, stuck op, digest or oracle failure).
/// The recorder sits outside the simulation like the sink, so the digest
/// contract is the same: feeding it never changes the schedule.
pub fn run_plan_flight(
    scn: &ChaosScenario,
    plan: &FaultPlan,
    obs: ObsSink,
    flight: Option<FlightRecorder>,
) -> ChaosRun {
    let st = scn.stream();
    let injector = PlanInjector::with_seeds(plan.clone(), &st.seeds);
    let mut cluster = DesCluster::new_stream(scn.config(), st)
        .with_obs(obs)
        .with_injector(Box::new(injector));
    if let Some(fl) = flight {
        cluster = cluster.with_flight(fl);
    }
    finish(cluster.run_chaos())
}

/// [`run_plan_flight`] on the partitioned (parallel) simulator: the
/// cluster splits over `parts` worker threads, while the plan's injector
/// stays the single global fault authority behind one mutex
/// (`cx_cluster::par`). `parts <= 1` is exactly [`run_plan_flight`].
///
/// Errors (without running) if the plan contains a matcher whose result
/// would be order-dependent across partition threads — see
/// [`FaultPlan::check_partitionable`].
pub fn run_plan_partitioned(
    scn: &ChaosScenario,
    plan: &FaultPlan,
    parts: u32,
    obs: ObsSink,
    flight: Option<FlightRecorder>,
) -> Result<ChaosRun, String> {
    plan.check_partitionable(parts)?;
    let st = scn.stream();
    let injector = PlanInjector::with_seeds(plan.clone(), &st.seeds);
    Ok(finish(cx_cluster::run_chaos_partitioned(
        scn.config(),
        st,
        parts,
        Box::new(injector),
        obs,
        flight,
    )))
}

/// Same plan over the fully materialized workload — kept as the
/// regression twin proving streamed and materialized intakes replay
/// fault schedules to byte-identical digests.
pub fn run_plan_materialized(scn: &ChaosScenario, plan: &FaultPlan) -> ChaosRun {
    let trace = scn.trace();
    let injector = PlanInjector::new(plan.clone(), &trace);
    let outcome = DesCluster::new(scn.config(), &trace)
        .with_injector(Box::new(injector))
        .run_chaos();
    finish(outcome)
}

fn finish(outcome: ChaosOutcome) -> ChaosRun {
    let mut failures: Vec<String> = outcome
        .violations
        .iter()
        .map(|v| format!("namespace: {v}"))
        .collect();
    failures.extend(outcome.oracle_report.iter().cloned());
    ChaosRun {
        digest: outcome.stats.digest(),
        failures,
        outcome,
    }
}

/// A reproducible failing schedule: seed + scenario + (shrunken) plan,
/// plus what it produced when found.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Repro {
    /// The explorer seed that generated the original plan.
    pub seed: u64,
    pub scenario: ChaosScenario,
    pub plan: FaultPlan,
    pub failures: Vec<String>,
    /// Event digest of the failing run; replays must reproduce it.
    pub digest: u64,
}

impl Repro {
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("repro serializes")
    }

    pub fn from_json(s: &str) -> Result<Self, String> {
        serde_json::from_str(s).map_err(|e| format!("bad repro file: {e:?}"))
    }
}
