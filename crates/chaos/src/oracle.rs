//! The correctness oracle for fault-injected runs.
//!
//! Two client-visible guarantees are checked against a model filesystem
//! replayed from the ack stream:
//!
//! * **Durability** — every operation acked `Applied` survives any later
//!   crash + recovery: its entry/inode must exist in the merged view.
//! * **No partial state** — objects no acked-applied operation created
//!   must not exist (an aborted or never-acked operation left debris).
//!
//! Objects touched by in-flight (issued-but-unacked) operations are
//! *tainted* and exempt — the cluster may legitimately hold their state
//! half-built. Outside quiescence, acked-`Failed` operations taint too
//! (their abort may still be traveling). The whole-namespace atomicity
//! invariants (dangling entries, orphan inodes, nlink counts) are checked
//! separately by `GlobalView::check` once the run quiesces.

use cx_cluster::ClusterSnapshot;
use cx_mdstore::GlobalView;
use cx_types::{FileKind, FsOp, InodeNo, Name, OpId, OpOutcome};
use cx_workloads::{SeedEntry, Trace};
use std::collections::{BTreeMap, BTreeSet};

/// A sequential model of the namespace: what the cluster *should* hold
/// given the acked operations, replayed in ack order.
#[derive(Debug, Clone, Default)]
pub struct ModelFs {
    dentries: BTreeMap<(InodeNo, Name), InodeNo>,
    inodes: BTreeMap<InodeNo, (FileKind, u32)>,
}

impl ModelFs {
    /// The pre-run state: the workload's seed directories and files.
    pub fn from_seeds(trace: &Trace) -> Self {
        Self::from_seed_entries(&trace.seeds)
    }

    /// Same, from the bare seed list (all a streamed workload carries).
    pub fn from_seed_entries(seeds: &[SeedEntry]) -> Self {
        let mut m = ModelFs::default();
        for seed in seeds {
            match *seed {
                SeedEntry::Dir { ino } => {
                    m.inodes.insert(ino, (FileKind::Directory, 1));
                }
                SeedEntry::File { parent, name, ino } => {
                    m.dentries.insert((parent, name), ino);
                    m.inodes.insert(ino, (FileKind::Regular, 1));
                }
            }
        }
        m
    }

    pub fn dentry(&self, parent: InodeNo, name: Name) -> Option<InodeNo> {
        self.dentries.get(&(parent, name)).copied()
    }

    pub fn contains_inode(&self, ino: InodeNo) -> bool {
        self.inodes.contains_key(&ino)
    }

    /// Apply one mutation, mirroring the stores' semantics. An `Err` means
    /// the operation could not have applied cleanly on this model state —
    /// the caller taints its objects instead of judging them.
    pub fn apply(&mut self, op: &FsOp) -> Result<(), &'static str> {
        match *op {
            FsOp::Create { parent, name, ino } => self.insert(parent, name, ino, FileKind::Regular),
            FsOp::Mkdir { parent, name, ino } => {
                self.insert(parent, name, ino, FileKind::Directory)
            }
            FsOp::Remove { parent, name, ino } | FsOp::Rmdir { parent, name, ino } => {
                self.unlink(parent, name, ino)
            }
            FsOp::Link {
                parent,
                name,
                target,
            } => {
                if self.dentries.contains_key(&(parent, name)) {
                    return Err("link: entry exists");
                }
                let Some(inode) = self.inodes.get_mut(&target) else {
                    return Err("link: target missing");
                };
                inode.1 += 1;
                self.dentries.insert((parent, name), target);
                Ok(())
            }
            FsOp::Unlink {
                parent,
                name,
                target,
            } => self.unlink(parent, name, target),
            _ => Ok(()), // reads don't change the namespace
        }
    }

    fn insert(
        &mut self,
        parent: InodeNo,
        name: Name,
        ino: InodeNo,
        kind: FileKind,
    ) -> Result<(), &'static str> {
        if self.dentries.contains_key(&(parent, name)) {
            return Err("create: entry exists");
        }
        if self.inodes.contains_key(&ino) {
            return Err("create: inode exists");
        }
        self.dentries.insert((parent, name), ino);
        self.inodes.insert(ino, (kind, 1));
        Ok(())
    }

    fn unlink(&mut self, parent: InodeNo, name: Name, ino: InodeNo) -> Result<(), &'static str> {
        match self.dentries.get(&(parent, name)) {
            Some(&child) if child == ino => {}
            Some(_) => return Err("remove: entry points elsewhere"),
            None => return Err("remove: entry missing"),
        }
        self.dentries.remove(&(parent, name));
        let Some(inode) = self.inodes.get_mut(&ino) else {
            return Err("remove: inode missing");
        };
        inode.1 = inode.1.saturating_sub(1);
        if inode.1 == 0 {
            self.inodes.remove(&ino);
        }
        Ok(())
    }
}

/// The entry and inode a mutation touches (for tainting).
fn objects(op: &FsOp) -> (Option<(InodeNo, Name)>, Option<InodeNo>) {
    match *op {
        FsOp::Create { parent, name, ino }
        | FsOp::Mkdir { parent, name, ino }
        | FsOp::Remove { parent, name, ino }
        | FsOp::Rmdir { parent, name, ino } => (Some((parent, name)), Some(ino)),
        FsOp::Link {
            parent,
            name,
            target,
        }
        | FsOp::Unlink {
            parent,
            name,
            target,
        } => (Some((parent, name)), Some(target)),
        _ => (None, None),
    }
}

/// Run the durability + partial-state checks against a cluster snapshot.
/// `strict` says the cluster is quiesced, so even acked-`Failed`
/// operations must have left zero state behind.
pub fn check_snapshot(base: &ModelFs, snap: &ClusterSnapshot<'_>, strict: bool) -> Vec<String> {
    let mut model = base.clone();
    let mut tainted_dentries: BTreeSet<(InodeNo, Name)> = BTreeSet::new();
    let mut tainted_inodes: BTreeSet<InodeNo> = BTreeSet::new();
    let taint = |op: &FsOp, td: &mut BTreeSet<(InodeNo, Name)>, ti: &mut BTreeSet<InodeNo>| {
        let (dentry, ino) = objects(op);
        if let Some(d) = dentry {
            td.insert(d);
        }
        if let Some(i) = ino {
            ti.insert(i);
        }
    };

    let acked: BTreeSet<OpId> = snap.acks.iter().map(|a| a.op).collect();
    for (id, op) in snap.issued {
        if op.is_mutation() && !acked.contains(id) {
            taint(op, &mut tainted_dentries, &mut tainted_inodes);
        }
    }
    for ack in snap.acks {
        if !ack.fs_op.is_mutation() {
            continue;
        }
        match ack.outcome {
            OpOutcome::Applied => {
                if model.apply(&ack.fs_op).is_err() {
                    // The ack order disagrees with some serialization the
                    // cluster chose; don't judge these objects.
                    taint(&ack.fs_op, &mut tainted_dentries, &mut tainted_inodes);
                }
            }
            OpOutcome::Failed => {
                if !strict {
                    taint(&ack.fs_op, &mut tainted_dentries, &mut tainted_inodes);
                }
            }
        }
    }

    let view = GlobalView::merge(snap.stores.iter().copied());
    let mut out = Vec::new();

    for (&(parent, name), &child) in &model.dentries {
        if tainted_dentries.contains(&(parent, name)) {
            continue;
        }
        match view.dentry(parent, name) {
            None => out.push(format!(
                "durability: acked entry {}/{:x} -> {} lost",
                parent.0, name.0, child.0
            )),
            Some(got) if got != child && !tainted_inodes.contains(&child) => out.push(format!(
                "divergence: entry {}/{:x} -> {} but the acked history says {}",
                parent.0, name.0, got.0, child.0
            )),
            Some(_) => {}
        }
    }
    for (parent, name, child) in view.dentries() {
        if tainted_dentries.contains(&(parent, name)) {
            continue;
        }
        if model.dentry(parent, name).is_none() {
            out.push(format!(
                "partial-state: entry {}/{:x} -> {} exists but no acked op created it",
                parent.0, name.0, child.0
            ));
        }
    }
    for (&ino, &(kind, nlink)) in &model.inodes {
        if tainted_inodes.contains(&ino) {
            continue;
        }
        match view.inode(ino) {
            None => out.push(format!("durability: acked inode {} lost", ino.0)),
            Some((k, _)) if k != kind => out.push(format!(
                "divergence: inode {} is {:?}, acked history says {:?}",
                ino.0, k, kind
            )),
            Some((_, n)) if n != nlink => out.push(format!(
                "divergence: inode {} has nlink {}, acked history says {}",
                ino.0, n, nlink
            )),
            Some(_) => {}
        }
    }
    for (ino, _, _) in view.inodes() {
        if !tainted_inodes.contains(&ino) && !model.contains_inode(ino) {
            out.push(format!(
                "partial-state: inode {} exists but was never acked",
                ino.0
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_mirrors_store_semantics() {
        let mut m = ModelFs::default();
        let (root, f, name) = (InodeNo(1), InodeNo(10), Name(7));
        m.inodes.insert(root, (FileKind::Directory, 1));
        m.apply(&FsOp::Create {
            parent: root,
            name,
            ino: f,
        })
        .unwrap();
        assert_eq!(m.dentry(root, name), Some(f));
        assert!(m
            .apply(&FsOp::Create {
                parent: root,
                name,
                ino: InodeNo(11),
            })
            .is_err());
        m.apply(&FsOp::Link {
            parent: root,
            name: Name(8),
            target: f,
        })
        .unwrap();
        assert_eq!(m.inodes[&f].1, 2);
        m.apply(&FsOp::Unlink {
            parent: root,
            name: Name(8),
            target: f,
        })
        .unwrap();
        m.apply(&FsOp::Remove {
            parent: root,
            name,
            ino: f,
        })
        .unwrap();
        assert!(!m.contains_inode(f));
    }
}
