//! # cx-chaos — deterministic fault injection for the Cx reproduction
//!
//! A fault plane over the DES cluster, hung off exactly two choke points
//! (message delivery and the WAL append path — see `cx-cluster::fault`),
//! so the protocol engines carry zero fault code:
//!
//! * [`FaultPlan`] — declarative schedules: drop/duplicate/delay the Nth
//!   message of a kind between servers, timed partition windows, and
//!   multi-crash schedules keyed on protocol events (append/flush of a
//!   WAL record family, a message delivery, a write-back), optionally
//!   with torn log tails.
//! * [`PlanInjector`] — interprets a plan against the DES hooks and runs
//!   the [`oracle`] after every recovery: every acked operation survives
//!   crash + recovery, aborted operations leave no partial state, and the
//!   namespace is atomic once quiesced.
//! * [`explore`] — seeded random schedule search over a budget of seeds;
//!   failing schedules are greedily shrunk and emitted as replayable
//!   repro files (seed + scenario + plan as JSON).
//!
//! ```text
//! cargo run -p cx-chaos --release -- --seeds 200
//! cargo run -p cx-chaos --release -- --demo-broken   # oracle self-test
//! cargo run -p cx-chaos --release -- --replay chaos-repro-cx-17.json
//! ```

pub mod explore;
pub mod inject;
pub mod oracle;
pub mod plan;
pub mod runner;

pub use explore::{explore, generate_plan, shrink, ExploreOutcome};
pub use inject::PlanInjector;
pub use oracle::{check_snapshot, ModelFs};
pub use plan::{CrashFault, CrashPoint, FaultPlan, NetAction, NetFault, Partition};
pub use runner::{
    run_plan, run_plan_flight, run_plan_materialized, run_plan_obs, run_plan_partitioned, ChaosRun,
    ChaosScenario, Repro,
};
