//! The schedule explorer CLI.
//!
//! ```text
//! cx-chaos --seeds 200                  # explore Cx and 2PC envelopes
//! cx-chaos --seeds 100 --protocol cx    # one protocol only
//! cx-chaos --demo-broken                # prove the oracle catches bugs
//! cx-chaos --doctor-demo                # slow one participant 5 ms and
//!                                       # prove cx-obs doctor convicts it
//! cx-chaos --replay repro.json          # re-run a recorded schedule
//! cx-chaos --replay repro.json --obs-out trace.json
//!                                       # …and dump a Perfetto trace of
//!                                       # the run around the fault
//! cx-chaos --replay repro.json --flight-out pm
//!                                       # post-mortem prefix: pm.flight.jsonl
//!                                       # + pm.flight.trace.json
//! ```
//!
//! Every `--replay` also feeds a crash flight recorder (a fixed-size ring
//! of recent message edges and lifecycle events, on even without
//! `--obs-out`); when the run crashes, wedges, fails a check, or diverges
//! from the recording, the ring is dumped as a post-mortem artifact.
//!
//! Exit status: 0 = no violations (or, under `--demo-broken`, the broken
//! variant *was* caught; or a `--replay` reproduced); 1 otherwise.

use cx_chaos::{
    explore, run_plan, run_plan_flight, run_plan_obs, ChaosScenario, CrashFault, CrashPoint,
    FaultPlan, NetAction, NetFault, Repro,
};
use cx_cluster::{FlightRecorder, ObsSink};
use cx_obs::{blame_diff, Seg};
use cx_types::{MsgKind, Protocol, ServerId, DUR_MS};
use cx_wal::RecordFamily;
use std::process::ExitCode;

struct Args {
    seeds: u64,
    first_seed: u64,
    protocols: Vec<Protocol>,
    demo_broken: bool,
    /// `--doctor-demo`: run the same workload clean and with one slow
    /// participant (5 ms ExecDelay plan), write both obs reports to
    /// `--out-dir`, and assert the blame diff convicts the delayed
    /// server's execute segment.
    doctor_demo: bool,
    replay: Option<String>,
    out_dir: String,
    /// `--obs-out <path>`: with `--replay`, record op lifecycles and dump
    /// a Perfetto trace to `<path>` (report JSON beside it).
    obs_out: Option<String>,
    /// `--flight-out <prefix>`: with `--replay`, override where the crash
    /// flight recorder dumps its post-mortem (`<prefix>.flight.jsonl` +
    /// `<prefix>.flight.trace.json`). Defaults to `<repro>.postmortem`.
    flight_out: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        seeds: 50,
        first_seed: 0,
        protocols: vec![Protocol::Cx, Protocol::TwoPc],
        demo_broken: false,
        doctor_demo: false,
        replay: None,
        out_dir: ".".to_string(),
        obs_out: None,
        flight_out: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |i: &mut usize| -> Result<String, String> {
        *i += 1;
        argv.get(*i)
            .cloned()
            .ok_or_else(|| format!("{} needs a value", argv[*i - 1]))
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--seeds" => {
                args.seeds = value(&mut i)?
                    .parse()
                    .map_err(|e| format!("--seeds: {e}"))?
            }
            "--first-seed" => {
                args.first_seed = value(&mut i)?
                    .parse()
                    .map_err(|e| format!("--first-seed: {e}"))?
            }
            "--protocol" => {
                args.protocols = match value(&mut i)?.as_str() {
                    "cx" => vec![Protocol::Cx],
                    "2pc" | "twopc" => vec![Protocol::TwoPc],
                    "both" => vec![Protocol::Cx, Protocol::TwoPc],
                    other => return Err(format!("unknown protocol {other:?} (cx|2pc|both)")),
                }
            }
            "--demo-broken" => args.demo_broken = true,
            "--doctor-demo" => args.doctor_demo = true,
            "--replay" => args.replay = Some(value(&mut i)?),
            "--out-dir" => args.out_dir = value(&mut i)?,
            "--obs-out" => args.obs_out = Some(value(&mut i)?),
            "--flight-out" => args.flight_out = Some(value(&mut i)?),
            other => return Err(format!("unknown argument {other:?}")),
        }
        i += 1;
    }
    Ok(args)
}

fn proto_tag(p: Protocol) -> &'static str {
    match p {
        Protocol::Cx => "cx",
        Protocol::TwoPc => "2pc",
        _ => "other",
    }
}

fn write_repro(dir: &str, repro: &Repro) -> String {
    let path = format!(
        "{dir}/chaos-repro-{}-{}.json",
        proto_tag(repro.scenario.protocol),
        repro.seed
    );
    std::fs::write(&path, repro.to_json()).expect("write repro file");
    path
}

fn replay(path: &str, obs_out: Option<&str>, flight_out: Option<&str>) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let repro = match Repro::from_json(&text) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    // Recording doesn't perturb the schedule, so the instrumented replay
    // still has to reproduce the recorded digest below.
    let sink = match obs_out {
        Some(_) => ObsSink::recording(proto_tag(repro.scenario.protocol)),
        None => ObsSink::Off,
    };
    // The flight recorder is always on during a replay — it is the
    // post-mortem source when the run crashes, wedges, or diverges, and
    // feeding it (like the sink) never perturbs the schedule.
    let flight = FlightRecorder::default();
    let run = run_plan_flight(
        &repro.scenario,
        &repro.plan,
        sink.clone(),
        Some(flight.clone()),
    );
    if let Some(out) = obs_out {
        let report = sink.report().expect("recording sink yields a report");
        if let Err(e) = report.validate() {
            eprintln!("obs: phase accounting broken: {e}");
            return ExitCode::FAILURE;
        }
        std::fs::write(out, report.to_chrome_trace()).expect("write obs trace");
        let report_path = format!("{out}.report.json");
        std::fs::write(&report_path, report.to_json()).expect("write obs report");
        println!(
            "obs: {} spans -> {out} (load at ui.perfetto.dev), report -> {report_path}",
            report.spans.len()
        );
    }
    println!("replayed seed {} ({} faults)", repro.seed, repro.plan.len());
    for f in &run.failures {
        println!("  {f}");
    }
    let reproduced = run.digest == repro.digest && run.failures == repro.failures;

    // Post-mortem triggers: a crash happened, an op wedged, an oracle or
    // namespace check failed, or the replay diverged from the recording.
    let f = &run.outcome.stats.faults;
    let trigger = if f.crashes > 0 {
        Some("crash")
    } else if !run.outcome.stats.stuck_ops.is_empty() || run.outcome.stats.ops_stuck > 0 {
        Some("stuck op")
    } else if f.oracle_violations > 0 || !run.failures.is_empty() {
        Some("failed check")
    } else if !reproduced {
        Some("digest mismatch")
    } else {
        None
    };
    if let Some(why) = trigger {
        let default_prefix = format!("{path}.postmortem");
        let prefix = flight_out.unwrap_or(&default_prefix);
        match flight.dump_to(prefix) {
            Ok((jsonl, trace)) => println!(
                "flight recorder ({why}): {} events -> {trace} (load at ui.perfetto.dev), {jsonl}",
                flight.total()
            ),
            Err(e) => eprintln!("flight recorder: dump failed: {e}"),
        }
    }

    if reproduced {
        println!("reproduced: digest {} matches the recording", run.digest);
        ExitCode::SUCCESS
    } else {
        println!(
            "MISMATCH: digest {} vs recorded {} ({} vs {} failures)",
            run.digest,
            repro.digest,
            run.failures.len(),
            repro.failures.len()
        );
        ExitCode::FAILURE
    }
}

/// Prove the oracle has teeth: under `unsafe_skip_recovery_resume`, a
/// participant crash with commitments in flight must produce violations,
/// a shrunken repro, and a byte-identical replay.
fn demo_broken(args: &Args) -> ExitCode {
    let mut scn = ChaosScenario::new(Protocol::Cx);
    scn.broken = true;

    // Random exploration first — the generator's own envelope finds it.
    let out = explore(&scn, args.first_seed, args.seeds);
    let mut repros = out.repros;
    if !out.replay_mismatches.is_empty() {
        for m in &out.replay_mismatches {
            eprintln!("{m}");
        }
        return ExitCode::FAILURE;
    }
    if repros.is_empty() {
        // Fall back to a targeted sweep of participant crash points so the
        // demonstration stays robust at tiny seed budgets.
        'sweep: for server in 0..scn.servers {
            for nth in [3u64, 6, 10, 16, 24] {
                let plan = FaultPlan {
                    crashes: vec![CrashFault {
                        server: ServerId(server),
                        point: CrashPoint::WalAppend {
                            family: RecordFamily::Result,
                            nth,
                        },
                        torn_extra_bytes: 0,
                        detection_ns: 30 * DUR_MS,
                        reboot_ns: 15 * DUR_MS,
                    }],
                    ..FaultPlan::default()
                };
                let run = run_plan(&scn, &plan);
                if !run.failures.is_empty() {
                    let again = run_plan(&scn, &plan);
                    assert_eq!(run.digest, again.digest, "replay must be exact");
                    repros.push(Repro {
                        seed: args.first_seed,
                        scenario: scn,
                        plan,
                        failures: run.failures,
                        digest: run.digest,
                    });
                    break 'sweep;
                }
            }
        }
    }

    match repros.first() {
        Some(repro) => {
            let path = write_repro(&args.out_dir, repro);
            println!(
                "broken recovery caught: {} finding(s), {}-fault shrunken plan -> {path}",
                repro.failures.len(),
                repro.plan.len()
            );
            for f in repro.failures.iter().take(4) {
                println!("  {f}");
            }
            ExitCode::SUCCESS
        }
        None => {
            eprintln!(
                "oracle failed to catch the broken recovery in {} seeds + targeted sweep",
                args.seeds
            );
            ExitCode::FAILURE
        }
    }
}

/// Demonstrate the blame doctor end to end: the same workload runs twice,
/// once clean and once with server 2 sitting 5 ms on every sub-op it
/// receives (an `ExecDelay` plan — the wire stamps stay honest, only the
/// handling stalls). Both obs reports land in `--out-dir` so ci.sh can
/// point `cx-obs doctor --against` at them, and the in-binary diff must
/// already convict the delayed server's execute segment before the CLI
/// ever sees the files.
fn doctor_demo(out_dir: &str) -> ExitCode {
    const DELAY_NS: u64 = 5_000_000; // the injected 5 ms participant stall
    let slow = ServerId(2);
    let scn = ChaosScenario::new(Protocol::Cx);

    let clean_sink = ObsSink::recording("cx");
    let clean = run_plan_obs(&scn, &FaultPlan::default(), clean_sink.clone());

    // One single-shot fault per matching message: every fault counts the
    // same (SubOpReq → s2) stream, so nth = 1..=N stalls the first N
    // sub-ops the slow server receives; surplus faults never fire.
    let plan = FaultPlan {
        net: (1..=2_000)
            .map(|nth| NetFault {
                kind: MsgKind::SubOpReq,
                from: None,
                to: Some(slow),
                nth,
                action: NetAction::ExecDelay { ns: DELAY_NS },
            })
            .collect(),
        ..FaultPlan::default()
    };
    let slow_sink = ObsSink::recording("cx");
    let slowed = run_plan_obs(&scn, &plan, slow_sink.clone());

    for (run, label) in [(&clean, "clean"), (&slowed, "slowed")] {
        if !run.failures.is_empty() {
            eprintln!("doctor demo: {label} run failed checks: {:?}", run.failures);
            return ExitCode::FAILURE;
        }
    }
    let stalls = slowed.outcome.stats.faults.delays;
    if stalls == 0 {
        eprintln!("doctor demo: no sub-op ever reached server {}", slow.0);
        return ExitCode::FAILURE;
    }

    let mut paths = Vec::new();
    for (sink, name) in [(&clean_sink, "doctor_base"), (&slow_sink, "doctor_slow")] {
        let rep = sink.report().expect("recording sink yields a report");
        if let Err(e) = rep.validate() {
            eprintln!("doctor demo: {name} phase accounting broken: {e}");
            return ExitCode::FAILURE;
        }
        let path = format!("{out_dir}/{name}.report.json");
        std::fs::write(&path, rep.to_json()).expect("write obs report");
        paths.push(path);
    }

    // The conviction the acceptance criterion demands: the diff blames
    // the execute segment, and the largest hop shift names the server
    // that actually stalled.
    let base_rep = clean_sink.report().expect("report");
    let slow_rep = slow_sink.report().expect("report");
    let d = blame_diff(&base_rep.blame(), &slow_rep.blame());
    let Some(suspect) = d.prime_suspect() else {
        eprintln!("doctor demo: {stalls} injected stalls produced no significant segment");
        return ExitCode::FAILURE;
    };
    if suspect.seg != Seg::Execute {
        eprintln!(
            "doctor demo: prime suspect is {} (expected execute):\n{}",
            suspect.seg.name(),
            d.render()
        );
        return ExitCode::FAILURE;
    }
    let slow_key = format!("{} execute", cx_obs::FlowNode::Server(slow.0));
    if !d
        .hop_shifts
        .iter()
        .any(|(k, delta)| *k == slow_key && *delta > 0.0)
    {
        eprintln!(
            "doctor demo: no positive shift for {slow_key:?}:\n{}",
            d.render()
        );
        return ExitCode::FAILURE;
    }
    println!(
        "doctor demo: s{} stalled {stalls} sub-ops 5 ms each; blame diff convicts \
         execute (+{:.1} µs/op, band {:.1} µs), hop shift {slow_key}",
        slow.0,
        suspect.delta_ns / 1_000.0,
        suspect.band_ns / 1_000.0,
    );
    println!("reports -> {} / {}", paths[0], paths[1]);
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(path) = &args.replay {
        return replay(path, args.obs_out.as_deref(), args.flight_out.as_deref());
    }
    if args.demo_broken {
        return demo_broken(&args);
    }
    if args.doctor_demo {
        return doctor_demo(&args.out_dir);
    }

    let mut failed = false;
    for &protocol in &args.protocols {
        let scn = ChaosScenario::new(protocol);
        let out = explore(&scn, args.first_seed, args.seeds);
        let f = &out.faults;
        println!(
            "{}: {} seeds | drops {} delays {} dups {} dead {} | crashes {} (torn {}) recoveries {} | \
             oracle checks {} violations {} | wedged runs {}",
            proto_tag(protocol),
            out.seeds_run,
            f.drops,
            f.delays,
            f.dups,
            f.dead_drops,
            f.crashes,
            f.torn_crashes,
            f.recoveries,
            f.oracle_checks,
            f.oracle_violations,
            out.wedged,
        );
        for m in &out.replay_mismatches {
            eprintln!("  {m}");
            failed = true;
        }
        for repro in &out.repros {
            let path = write_repro(&args.out_dir, repro);
            eprintln!("  VIOLATION at seed {} -> {path}", repro.seed);
            for f in repro.failures.iter().take(4) {
                eprintln!("    {f}");
            }
            failed = true;
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
