//! Interpreting a [`FaultPlan`] against the DES hooks.

use crate::oracle::{check_snapshot, ModelFs};
use crate::plan::{CrashPoint, FaultPlan, NetAction};
use cx_cluster::{ClusterSnapshot, CrashCmd, FaultEvent, FaultInjector, MsgFate};
use cx_protocol::Endpoint;
use cx_types::{MsgKind, ServerId, SimTime};
use cx_workloads::Trace;
use std::collections::BTreeSet;

/// Stateful interpreter: each net fault counts its matching messages and
/// fires once; each crash fault arms once; the oracle runs after every
/// completed recovery and at the end of the run, deduplicating repeated
/// findings across passes.
pub struct PlanInjector {
    plan: FaultPlan,
    /// Matching-message count per net fault.
    net_seen: Vec<u64>,
    net_done: Vec<bool>,
    crash_done: Vec<bool>,
    /// Matching-delivery count per crash fault (for [`CrashPoint::Deliver`]).
    deliver_seen: Vec<u64>,
    base: ModelFs,
    report: Vec<String>,
    seen: BTreeSet<String>,
}

impl PlanInjector {
    pub fn new(plan: FaultPlan, trace: &Trace) -> Self {
        Self::with_seeds(plan, &trace.seeds)
    }

    /// Build from the bare seed list — the only part of the workload the
    /// injector's oracle needs, so streamed workloads plug in directly.
    pub fn with_seeds(plan: FaultPlan, seeds: &[cx_workloads::SeedEntry]) -> Self {
        Self {
            net_seen: vec![0; plan.net.len()],
            net_done: vec![false; plan.net.len()],
            crash_done: vec![false; plan.crashes.len()],
            deliver_seen: vec![0; plan.crashes.len()],
            base: ModelFs::from_seed_entries(seeds),
            report: Vec::new(),
            seen: BTreeSet::new(),
            plan,
        }
    }

    fn oracle(&mut self, snap: &ClusterSnapshot<'_>, strict: bool, ctx: &str) -> u64 {
        let mut fresh = 0;
        for finding in check_snapshot(&self.base, snap, strict) {
            let line = format!("{ctx}: {finding}");
            if self.seen.insert(line.clone()) {
                self.report.push(line);
                fresh += 1;
            }
        }
        fresh
    }
}

impl FaultInjector for PlanInjector {
    fn on_send(&mut self, now: SimTime, from: Endpoint, to: Endpoint, kind: MsgKind) -> MsgFate {
        if let (Endpoint::Server(a), Endpoint::Server(b)) = (from, to) {
            for p in &self.plan.partitions {
                let pair = (p.a == a && p.b == b) || (p.a == b && p.b == a);
                if pair && now.0 >= p.from_ns && now.0 < p.until_ns {
                    return MsgFate::Drop;
                }
            }
        }
        for i in 0..self.plan.net.len() {
            let f = self.plan.net[i];
            if self.net_done[i] || f.kind != kind {
                continue;
            }
            if f.from.is_some_and(|s| from != Endpoint::Server(s)) {
                continue;
            }
            if f.to.is_some_and(|s| to != Endpoint::Server(s)) {
                continue;
            }
            self.net_seen[i] += 1;
            if self.net_seen[i] == f.nth {
                self.net_done[i] = true;
                return match f.action {
                    NetAction::Drop => MsgFate::Drop,
                    NetAction::Delay { ns } => MsgFate::Delay(ns),
                    NetAction::Duplicate { ns } => MsgFate::Duplicate(ns),
                    NetAction::ExecDelay { ns } => MsgFate::ExecDelay(ns),
                };
            }
        }
        MsgFate::Deliver
    }

    fn on_event(&mut self, _now: SimTime, ev: &FaultEvent) -> Option<CrashCmd> {
        for i in 0..self.plan.crashes.len() {
            if self.crash_done[i] {
                continue;
            }
            let c = self.plan.crashes[i];
            let fired = match (c.point, *ev) {
                (
                    CrashPoint::WalAppend { family, nth },
                    FaultEvent::WalAppend {
                        server,
                        family: f,
                        nth: n,
                    },
                ) => server == c.server && f == family && n == nth,
                (
                    CrashPoint::WalDurable { family, nth },
                    FaultEvent::WalDurable {
                        server,
                        family: f,
                        nth: n,
                    },
                ) => server == c.server && f == family && n == nth,
                (CrashPoint::Writeback { nth }, FaultEvent::Writeback { server, nth: n }) => {
                    server == c.server && n == nth
                }
                (CrashPoint::Deliver { kind, nth }, FaultEvent::Deliver { server, kind: k })
                    if server == c.server && k == kind =>
                {
                    self.deliver_seen[i] += 1;
                    self.deliver_seen[i] == nth
                }
                _ => false,
            };
            if fired {
                self.crash_done[i] = true;
                return Some(CrashCmd {
                    server: c.server,
                    torn_extra_bytes: c.torn_extra_bytes,
                    detection_ns: c.detection_ns,
                    reboot_ns: c.reboot_ns,
                });
            }
        }
        None
    }

    fn on_recovery_complete(
        &mut self,
        _now: SimTime,
        server: ServerId,
        snap: ClusterSnapshot<'_>,
    ) -> u64 {
        // Mid-run: plenty of legitimately in-flight state, so no strict
        // pass — but everything acked must already be durable.
        self.oracle(
            &snap,
            false,
            &format!("after server {} recovered", server.0),
        )
    }

    fn on_run_end(&mut self, _now: SimTime, quiesced: bool, snap: ClusterSnapshot<'_>) -> u64 {
        self.oracle(&snap, quiesced, "at run end")
    }

    fn take_report(&mut self) -> Vec<String> {
        std::mem::take(&mut self.report)
    }
}
