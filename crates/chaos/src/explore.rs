//! Seeded random schedule exploration and greedy shrinking.
//!
//! Each seed deterministically generates one fault plan inside the
//! protocol's *sound envelope* — the set of faults the protocol claims to
//! tolerate, so any oracle finding is a real bug, not a harness artifact:
//!
//! * **Cx** supports crash/recovery (§III-D), retries VOTEs and
//!   commitments on a timer, and handles duplicate commitment traffic
//!   idempotently → full envelope: drops, delays, duplicates, timed
//!   partitions, and up to two crash faults (optionally with torn tails).
//! * **2PC** (the comparison baseline) has no retransmission and no
//!   recovery path. Dropping a decision it already acked on, or crashing
//!   a server, *would* lose acked state — by design of the baseline, not
//!   as a bug — so its envelope is network-only: delays and duplicates
//!   widely, drops only of messages whose loss merely wedges the client.

use crate::plan::{CrashFault, CrashPoint, FaultPlan, NetAction, NetFault, Partition};
use crate::runner::{run_plan, ChaosScenario, Repro};
use cx_cluster::FaultStats;
use cx_types::{MsgKind, Protocol, ServerId, DUR_MS};
use cx_wal::RecordFamily;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Kinds whose loss Cx heals (retry timers, recovery queries) or safely
/// wedges a single client op.
const CX_DROP: &[MsgKind] = &[
    MsgKind::SubOpReq,
    MsgKind::SubOpResp,
    MsgKind::Vote,
    MsgKind::VoteResult,
    MsgKind::CommitReq,
    MsgKind::AbortReq,
    MsgKind::Ack,
    MsgKind::LCom,
    MsgKind::QueryOutcome,
];
/// Kinds Cx handles idempotently when duplicated.
const CX_DUP: &[MsgKind] = &[
    MsgKind::Vote,
    MsgKind::VoteResult,
    MsgKind::CommitReq,
    MsgKind::AbortReq,
    MsgKind::Ack,
    MsgKind::LCom,
    MsgKind::QueryOutcome,
];
/// 2PC drops: losing any of these only stalls the client (no ack was or
/// will be given). CommitReq/AbortReq are excluded — 2PC acks on the
/// decision and never retransmits it.
const TWOPC_DROP: &[MsgKind] = &[
    MsgKind::OpReq,
    MsgKind::OpResp,
    MsgKind::Vote,
    MsgKind::VoteResult,
    MsgKind::Ack,
];
/// 2PC duplicates: decision and ack handlers discard repeats for
/// already-finished operations. Vote is excluded — it doubles as the
/// execute-request (VoteExec) and re-executing is not idempotent.
const TWOPC_DUP: &[MsgKind] = &[
    MsgKind::VoteResult,
    MsgKind::CommitReq,
    MsgKind::AbortReq,
    MsgKind::Ack,
];
/// Crash-triggering delivery kinds worth aiming at for Cx.
const CX_CRASH_DELIVER: &[MsgKind] = &[
    MsgKind::Vote,
    MsgKind::VoteResult,
    MsgKind::CommitReq,
    MsgKind::Ack,
    MsgKind::LCom,
];

/// Deterministically generate one plan inside `scn.protocol`'s envelope.
pub fn generate_plan(rng: &mut SmallRng, scn: &ChaosScenario) -> FaultPlan {
    let cx = scn.protocol == Protocol::Cx;
    let (drop_kinds, dup_kinds) = if cx {
        (CX_DROP, CX_DUP)
    } else {
        (TWOPC_DROP, TWOPC_DUP)
    };
    let server = |rng: &mut SmallRng| ServerId(rng.gen_range(0..scn.servers));
    let mut plan = FaultPlan::default();

    for _ in 0..rng.gen_range(1..5u32) {
        let (kind, action) = match rng.gen_range(0..3u32) {
            0 => (*drop_kinds.choose(rng).unwrap(), NetAction::Drop),
            1 => (
                *drop_kinds.choose(rng).unwrap(),
                NetAction::Delay {
                    ns: rng.gen_range(200_000..8_000_000),
                },
            ),
            _ => (
                *dup_kinds.choose(rng).unwrap(),
                NetAction::Duplicate {
                    ns: rng.gen_range(100_000..4_000_000),
                },
            ),
        };
        plan.net.push(NetFault {
            kind,
            from: if rng.gen_bool(0.4) {
                Some(server(rng))
            } else {
                None
            },
            to: if rng.gen_bool(0.4) {
                Some(server(rng))
            } else {
                None
            },
            nth: rng.gen_range(1..60),
            action,
        });
    }

    if cx {
        for _ in 0..rng.gen_range(0..3u32) {
            let family = if rng.gen_bool(0.6) {
                RecordFamily::Result
            } else {
                RecordFamily::Commit
            };
            let point = match rng.gen_range(0..4u32) {
                0 => CrashPoint::WalAppend {
                    family,
                    nth: rng.gen_range(1..25),
                },
                1 => CrashPoint::WalDurable {
                    family,
                    nth: rng.gen_range(1..25),
                },
                2 => CrashPoint::Deliver {
                    kind: *CX_CRASH_DELIVER.choose(rng).unwrap(),
                    nth: rng.gen_range(1..40),
                },
                _ => CrashPoint::Writeback {
                    nth: rng.gen_range(1..3),
                },
            };
            plan.crashes.push(CrashFault {
                server: server(rng),
                point,
                torn_extra_bytes: if rng.gen_bool(0.4) {
                    rng.gen_range(32..512)
                } else {
                    0
                },
                detection_ns: rng.gen_range(20u64..120) * DUR_MS,
                reboot_ns: rng.gen_range(10u64..60) * DUR_MS,
            });
        }
        if rng.gen_bool(0.25) && scn.servers >= 2 {
            let a = server(rng);
            let mut b = server(rng);
            while b == a {
                b = server(rng);
            }
            let from_ns = rng.gen_range(0u64..1_500) * DUR_MS;
            plan.partitions.push(Partition {
                a,
                b,
                from_ns,
                until_ns: from_ns + rng.gen_range(5u64..60) * DUR_MS,
            });
        }
    }
    plan
}

/// Greedily remove faults while the failure reproduces; the fixpoint is a
/// locally-minimal failing schedule.
pub fn shrink(scn: &ChaosScenario, plan: &FaultPlan) -> FaultPlan {
    let mut cur = plan.clone();
    let mut changed = true;
    while changed {
        changed = false;
        let mut i = 0;
        while i < cur.len() {
            let cand = cur.without(i);
            if !run_plan(scn, &cand).failures.is_empty() {
                cur = cand;
                changed = true;
            } else {
                i += 1;
            }
        }
    }
    cur
}

/// What a budgeted exploration saw.
#[derive(Debug, Default)]
pub struct ExploreOutcome {
    pub seeds_run: u64,
    /// Runs where faults wedged clients (expected under drops; not a bug).
    pub wedged: u64,
    /// Fault totals across all runs, for coverage reporting.
    pub faults: FaultStats,
    /// One shrunken, replay-verified repro per violating seed.
    pub repros: Vec<Repro>,
    /// Non-empty if a shrunken plan failed to replay byte-identically.
    pub replay_mismatches: Vec<String>,
}

fn add_faults(acc: &mut FaultStats, s: &FaultStats) {
    acc.drops += s.drops;
    acc.delays += s.delays;
    acc.dups += s.dups;
    acc.dead_drops += s.dead_drops;
    acc.crashes += s.crashes;
    acc.torn_crashes += s.torn_crashes;
    acc.recoveries += s.recoveries;
    acc.oracle_checks += s.oracle_checks;
    acc.oracle_violations += s.oracle_violations;
}

/// Run `seeds` schedules starting at `first_seed`. Every violating
/// schedule is shrunk, replayed twice (digests must agree — the repro is
/// deterministic), and recorded.
pub fn explore(base: &ChaosScenario, first_seed: u64, seeds: u64) -> ExploreOutcome {
    let mut out = ExploreOutcome::default();
    for seed in first_seed..first_seed + seeds {
        let mut scn = *base;
        scn.workload_seed = seed;
        let mut rng = SmallRng::seed_from_u64(seed);
        let plan = generate_plan(&mut rng, &scn);
        let run = run_plan(&scn, &plan);
        out.seeds_run += 1;
        if !run.outcome.quiesced {
            out.wedged += 1;
        }
        add_faults(&mut out.faults, &run.outcome.stats.faults);
        if run.failures.is_empty() {
            continue;
        }
        let shrunk = shrink(&scn, &plan);
        let a = run_plan(&scn, &shrunk);
        let b = run_plan(&scn, &shrunk);
        if a.digest != b.digest {
            out.replay_mismatches.push(format!(
                "seed {seed}: shrunk plan replayed to digest {} then {}",
                a.digest, b.digest
            ));
        }
        out.repros.push(Repro {
            seed,
            scenario: scn,
            plan: shrunk,
            failures: a.failures,
            digest: a.digest,
        });
    }
    out
}
