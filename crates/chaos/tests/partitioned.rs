//! Fault injection on the partitioned (parallel) simulator.
//!
//! Crash points key on *per-server* WAL-append counters, and a server's
//! event stream belongs to exactly one partition — so a crash plan must
//! fire at the same virtual time whether the cluster runs single-threaded
//! or split across partition workers. These tests replay the
//! participant- and coordinator-crash regression plans under
//! `--partitions 2` with the partial-state oracle and a flight recorder
//! attached and pin exactly that.
//!
//! (Net faults with an unpinned `from` count matches *globally*, which
//! would make their firing order interleaving-dependent across
//! partitions — `run_plan_partitioned` now refuses such plans with a
//! config error instead of running them; see DESIGN.md §8 and the
//! `global_nth_net_matchers_are_a_config_error` test below.)

use cx_chaos::{
    run_plan, run_plan_partitioned, ChaosScenario, CrashFault, CrashPoint, FaultPlan, NetAction,
    NetFault,
};
use cx_cluster::{FlightRecorder, ObsSink};
use cx_types::{MsgKind, Protocol, ServerId, DUR_MS};
use cx_wal::RecordFamily;

fn scenario() -> ChaosScenario {
    ChaosScenario::new(Protocol::Cx)
}

fn crash(server: u32, family: RecordFamily, nth: u64) -> FaultPlan {
    FaultPlan {
        crashes: vec![CrashFault {
            server: ServerId(server),
            point: CrashPoint::WalAppend { family, nth },
            torn_extra_bytes: 0,
            detection_ns: 30 * DUR_MS,
            reboot_ns: 15 * DUR_MS,
        }],
        ..FaultPlan::default()
    }
}

/// The participant-crash regression plan under `--partitions 2`: the
/// crash must fire on the same server at the same virtual time as the
/// single-threaded run, recovery must complete, the oracle must stay
/// silent, and the flight recorder must have seen traffic.
#[test]
fn participant_crash_fires_at_the_same_virtual_time_partitioned() {
    let scn = scenario();
    let plan = crash(2, RecordFamily::Result, 6);

    let single = run_plan(&scn, &plan);
    let flight = FlightRecorder::new(256);
    let part = run_plan_partitioned(&scn, &plan, 2, ObsSink::Off, Some(flight.clone()))
        .expect("crash-only plans partition deterministically");

    assert_eq!(part.failures, Vec::<String>::new());
    // A participant crash legitimately wedges the client ops whose
    // messages died with it (no client-layer retransmission) — but it
    // must wedge the *same* ops either way.
    assert_eq!(
        part.outcome.stats.ops_stuck, single.outcome.stats.ops_stuck,
        "partitioning must not change which ops wedge"
    );
    let f = &part.outcome.stats.faults;
    assert_eq!(f.crashes, 1, "the crash point must fire exactly once");
    assert_eq!(f.recoveries, 1);
    assert!(f.oracle_checks >= 1, "end-of-run oracle pass");

    // Virtual-time equivalence: the per-server WAL-append counter that
    // arms the crash is partition-local state, so the cycle must match
    // the single-threaded one exactly — same server, same crash instant.
    let (s, p) = (
        &single.outcome.stats.recovery_cycles,
        &part.outcome.stats.recovery_cycles,
    );
    assert_eq!(p.len(), 1);
    assert_eq!(p[0].server, ServerId(2));
    assert_eq!(
        (p[0].server, p[0].crashed_at),
        (s[0].server, s[0].crashed_at),
        "crash must land at the single-threaded virtual time"
    );

    // The flight recorder is shared across partitions; a crash run must
    // have fed it message edges and lifecycle events.
    assert!(
        !flight.events().is_empty(),
        "flight recorder must capture the partitioned run"
    );
}

/// Coordinator crash (Commit record #1) under `--partitions 2`, plus the
/// fixed-(seed, N) determinism contract for fault-injected runs.
#[test]
fn coordinator_crash_partitioned_is_deterministic() {
    let scn = scenario();
    let plan = crash(0, RecordFamily::Commit, 1);

    let a = run_plan_partitioned(&scn, &plan, 2, ObsSink::Off, None).expect("crash-only");
    let b = run_plan_partitioned(&scn, &plan, 2, ObsSink::Off, None).expect("crash-only");
    assert_eq!(
        a.digest, b.digest,
        "fixed-(seed, N) chaos replays must be bit-identical"
    );
    assert_eq!(a.failures, b.failures);
    assert_eq!(a.failures, Vec::<String>::new());
    assert_eq!(a.outcome.stats.faults.crashes, 1);
    assert_eq!(a.outcome.stats.faults.recoveries, 1);

    // `parts == 1` must be the plain single-threaded chaos path.
    let p1 = run_plan_partitioned(&scn, &plan, 1, ObsSink::Off, None).expect("p1 is unrestricted");
    let direct = run_plan(&scn, &plan);
    assert_eq!(p1.digest, direct.digest);
}

/// The PR6 caveat, fixed properly: a net fault with an unpinned sender
/// would count "the globally Nth match" across partition threads, so the
/// partitioned runner must refuse it up front with a clear config error —
/// never run it to order-dependent results. Pinning the sender (or
/// running single-threaded) makes the same plan acceptable.
#[test]
fn global_nth_net_matchers_are_a_config_error() {
    let scn = scenario();
    let mut plan = FaultPlan {
        net: vec![NetFault {
            kind: MsgKind::Vote,
            from: None,
            to: Some(ServerId(1)),
            nth: 3,
            action: NetAction::Drop,
        }],
        ..FaultPlan::default()
    };

    let err = match run_plan_partitioned(&scn, &plan, 2, ObsSink::Off, None) {
        Err(e) => e,
        Ok(_) => panic!("unpinned-sender net faults must be rejected for parts > 1"),
    };
    assert!(
        err.contains("from: None") && err.contains("order-dependent"),
        "the error must name the problem: {err}"
    );
    // No partial run happened: the check is up-front, so the same call at
    // parts == 1 executes normally...
    run_plan_partitioned(&scn, &plan, 1, ObsSink::Off, None)
        .expect("single-threaded runs are unrestricted");
    // ...and pinning the sender makes the plan deterministic again.
    plan.net[0].from = Some(ServerId(0));
    run_plan_partitioned(&scn, &plan, 2, ObsSink::Off, None)
        .expect("sender-pinned net faults count one partition's send order");
}
