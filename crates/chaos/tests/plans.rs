//! Hand-written regression fault plans.
//!
//! Each plan targets a specific path of the Cx protocol the paper argues
//! about: the disordered-conflict hint path (delays), crashing a
//! participant mid-execution, crashing a coordinator between VOTE and
//! COMMIT-REQ, a coordinator+participant double crash, and a torn log
//! tail. All must come out clean; the deliberately broken recovery must
//! not.

use cx_chaos::{
    run_plan, run_plan_materialized, shrink, ChaosScenario, CrashFault, CrashPoint, FaultPlan,
    NetAction, NetFault,
};
use cx_types::{MsgKind, Protocol, ServerId, DUR_MS};
use cx_wal::RecordFamily;

fn scenario() -> ChaosScenario {
    ChaosScenario::new(Protocol::Cx)
}

fn crash(server: u32, point: CrashPoint, torn: u64) -> CrashFault {
    CrashFault {
        server: ServerId(server),
        point,
        torn_extra_bytes: torn,
        detection_ns: 30 * DUR_MS,
        reboot_ns: 15 * DUR_MS,
    }
}

fn delayed_votes_plan() -> FaultPlan {
    FaultPlan {
        net: (1..=3)
            .flat_map(|n| {
                [
                    NetFault {
                        kind: MsgKind::Vote,
                        from: None,
                        to: None,
                        nth: n * 2,
                        action: NetAction::Delay { ns: 3_000_000 },
                    },
                    NetFault {
                        kind: MsgKind::SubOpResp,
                        from: None,
                        to: None,
                        nth: n * 5,
                        action: NetAction::Delay { ns: 2_000_000 },
                    },
                ]
            })
            .collect(),
        ..FaultPlan::default()
    }
}

fn participant_crash_plan() -> FaultPlan {
    FaultPlan {
        crashes: vec![crash(
            2,
            CrashPoint::WalAppend {
                family: RecordFamily::Result,
                nth: 6,
            },
            0,
        )],
        ..FaultPlan::default()
    }
}

fn coordinator_crash_plan() -> FaultPlan {
    FaultPlan {
        crashes: vec![crash(
            0,
            CrashPoint::WalAppend {
                family: RecordFamily::Commit,
                nth: 1,
            },
            0,
        )],
        ..FaultPlan::default()
    }
}

fn double_crash_plan() -> FaultPlan {
    FaultPlan {
        crashes: vec![
            crash(
                0,
                CrashPoint::WalAppend {
                    family: RecordFamily::Commit,
                    nth: 1,
                },
                0,
            ),
            crash(
                3,
                CrashPoint::WalAppend {
                    family: RecordFamily::Result,
                    nth: 12,
                },
                0,
            ),
        ],
        ..FaultPlan::default()
    }
}

fn torn_tail_plan() -> FaultPlan {
    FaultPlan {
        crashes: vec![crash(
            1,
            CrashPoint::WalAppend {
                family: RecordFamily::Result,
                nth: 8,
            },
            300,
        )],
        ..FaultPlan::default()
    }
}

fn mixed_faults_plan() -> FaultPlan {
    FaultPlan {
        net: vec![
            NetFault {
                kind: MsgKind::CommitReq,
                from: None,
                to: None,
                nth: 2,
                action: NetAction::Drop,
            },
            NetFault {
                kind: MsgKind::VoteResult,
                from: Some(ServerId(1)),
                to: None,
                nth: 4,
                action: NetAction::Duplicate { ns: 500_000 },
            },
        ],
        crashes: vec![crash(
            2,
            CrashPoint::WalAppend {
                family: RecordFamily::Result,
                nth: 6,
            },
            128,
        )],
        ..FaultPlan::default()
    }
}

fn duplicate_storm_plan() -> FaultPlan {
    FaultPlan {
        net: vec![
            NetFault {
                kind: MsgKind::Vote,
                from: None,
                to: None,
                nth: 1,
                action: NetAction::Duplicate { ns: 250_000 },
            },
            NetFault {
                kind: MsgKind::Ack,
                from: None,
                to: None,
                nth: 3,
                action: NetAction::Drop,
            },
            NetFault {
                kind: MsgKind::CommitReq,
                from: None,
                to: None,
                nth: 5,
                action: NetAction::Delay { ns: 4_000_000 },
            },
        ],
        ..FaultPlan::default()
    }
}

/// Delaying VOTEs and sub-op responses exercises the disordered-delivery
/// hint path (§III-B's conflict hints arrive out of order) without ever
/// losing a message; the run must stay fully clean and quiesce.
#[test]
fn delayed_votes_exercise_the_disorder_hint_path() {
    let run = run_plan(&scenario(), &delayed_votes_plan());
    assert_eq!(run.failures, Vec::<String>::new());
    assert!(run.outcome.quiesced, "delays alone must not wedge anything");
    assert!(run.outcome.stats.faults.delays >= 4);
}

/// Kill a participant right after it appended a Result record (acked work
/// in its log, commitment still pending). Recovery must resume the
/// half-completed commitments and the oracle must stay silent.
#[test]
fn participant_crash_mid_execution_recovers_cleanly() {
    let run = run_plan(&scenario(), &participant_crash_plan());
    assert_eq!(run.failures, Vec::<String>::new());
    let f = &run.outcome.stats.faults;
    assert_eq!(f.crashes, 1, "the crash point must fire");
    assert_eq!(f.recoveries, 1);
    assert!(f.oracle_checks >= 2, "post-recovery + end-of-run passes");
    assert_eq!(run.outcome.stats.recovery_cycles.len(), 1);
    assert_eq!(run.outcome.stats.recovery_cycles[0].server, ServerId(2));
}

/// Kill a coordinator right after it appended its first Commit record —
/// i.e. after the VOTE round decided but with COMMIT-REQs at most in
/// flight (§III-C's window). The decision is durable, so recovery must
/// finish the commitment on both sides.
#[test]
fn coordinator_crash_between_vote_and_commit_req() {
    let run = run_plan(&scenario(), &coordinator_crash_plan());
    assert_eq!(run.failures, Vec::<String>::new());
    assert_eq!(run.outcome.stats.faults.crashes, 1);
    assert_eq!(run.outcome.stats.faults.recoveries, 1);
}

/// Coordinator and participant die in the same run (different moments).
/// Both recover; the cross-server state they shared must reconcile.
#[test]
fn coordinator_and_participant_double_crash() {
    let run = run_plan(&scenario(), &double_crash_plan());
    assert_eq!(run.failures, Vec::<String>::new());
    let f = &run.outcome.stats.faults;
    assert_eq!(f.crashes, 2, "both crash points must fire");
    assert_eq!(f.recoveries, 2);
}

/// A torn log tail: whole in-flight records past the durable mark survive
/// the crash. The scan must treat them as valid (they were fully written)
/// and recovery must still reconcile.
#[test]
fn torn_tail_crash_is_survivable() {
    let run = run_plan(&scenario(), &torn_tail_plan());
    assert_eq!(run.failures, Vec::<String>::new());
    assert_eq!(run.outcome.stats.faults.torn_crashes, 1);
    assert_eq!(run.outcome.stats.faults.recoveries, 1);
}

/// The oracle's self-test: with `unsafe_skip_recovery_resume` the same
/// participant-crash schedule must produce durability/partial-state
/// findings, and the shrinker must reduce a padded plan back to the one
/// essential fault.
#[test]
fn broken_recovery_is_caught_and_shrinks_to_one_fault() {
    let mut scn = scenario();
    scn.broken = true;

    let mut caught = None;
    'search: for server in 0..scn.servers {
        for nth in [3u64, 6, 10, 16, 24] {
            let plan = FaultPlan {
                crashes: vec![crash(
                    server,
                    CrashPoint::WalAppend {
                        family: RecordFamily::Result,
                        nth,
                    },
                    0,
                )],
                ..FaultPlan::default()
            };
            if !run_plan(&scn, &plan).failures.is_empty() {
                caught = Some(plan);
                break 'search;
            }
        }
    }
    let essential = caught.expect("some participant crash must expose the broken recovery");

    // Pad with two irrelevant delays; the shrinker must strip them.
    let mut padded = essential.clone();
    padded.net.push(NetFault {
        kind: MsgKind::Vote,
        from: None,
        to: None,
        nth: 2,
        action: NetAction::Delay { ns: 1_000_000 },
    });
    padded.net.push(NetFault {
        kind: MsgKind::Ack,
        from: None,
        to: None,
        nth: 3,
        action: NetAction::Delay { ns: 1_000_000 },
    });
    let shrunk = shrink(&scn, &padded);
    assert_eq!(shrunk.len(), 1, "only the crash is essential: {shrunk:?}");
    assert_eq!(shrunk.crashes, essential.crashes);
    assert!(!run_plan(&scn, &shrunk).failures.is_empty());
}

/// Same seed + same plan ⇒ byte-identical event digest and identical
/// findings — the property that makes repro files trustworthy.
#[test]
fn same_plan_replays_to_identical_digest() {
    let plan = mixed_faults_plan();
    let scn = scenario();
    let a = run_plan(&scn, &plan);
    let b = run_plan(&scn, &plan);
    assert_eq!(a.digest, b.digest);
    assert_eq!(a.failures, b.failures);
    assert_eq!(
        a.outcome.stats.faults.crashes,
        b.outcome.stats.faults.crashes
    );
}

/// The streaming intake is the default chaos path; the materialized twin
/// must replay every regression plan to the same digest and the same
/// findings. This is the fault-injected version of the clean-run intake
/// parity pinned in `tests/determinism_and_recovery.rs` — faults key on
/// message and WAL-append counts, so any intake-order drift would show
/// up here first.
#[test]
fn every_regression_plan_replays_identically_on_both_intakes() {
    let plans: [(&str, FaultPlan); 7] = [
        ("delayed_votes", delayed_votes_plan()),
        ("participant_crash", participant_crash_plan()),
        ("coordinator_crash", coordinator_crash_plan()),
        ("double_crash", double_crash_plan()),
        ("torn_tail", torn_tail_plan()),
        ("mixed_faults", mixed_faults_plan()),
        ("duplicate_storm", duplicate_storm_plan()),
    ];
    let scn = scenario();
    for (name, plan) in &plans {
        let streamed = run_plan(&scn, plan);
        let materialized = run_plan_materialized(&scn, plan);
        assert_eq!(
            streamed.digest, materialized.digest,
            "{name}: intake digests diverged"
        );
        assert_eq!(
            streamed.failures, materialized.failures,
            "{name}: intake findings diverged"
        );
    }
}
