//! # cx-core — the public face of the Cx reproduction
//!
//! This crate reproduces *Cx: Concurrent Execution for the Cross-Server
//! Operations in a Distributed File System* (IEEE CLUSTER 2012): a
//! protocol that lets the two servers of a cross-server metadata operation
//! execute their halves **concurrently**, answers the client immediately,
//! and **delays and batches** the commitment — falling back to an
//! immediate commitment only on conflicts or disagreement.
//!
//! ## Quick start
//!
//! ```
//! use cx_core::{Experiment, Protocol, Workload};
//!
//! // Replay a small slice of the paper's CTH trace on 8 servers under Cx
//! // and under the OrangeFS baseline, and compare replay times.
//! let cx = Experiment::new(Workload::trace("CTH").scale(0.001))
//!     .servers(8)
//!     .protocol(Protocol::Cx)
//!     .run();
//! let ofs = Experiment::new(Workload::trace("CTH").scale(0.001))
//!     .servers(8)
//!     .protocol(Protocol::Se)
//!     .run();
//! assert!(cx.is_consistent());
//! assert!(cx.stats.replay < ofs.stats.replay, "Cx beats serial execution");
//! ```
//!
//! ## Layout
//!
//! | crate | contents |
//! |---|---|
//! | `cx-types` | ids, operations, Table I sub-op split, Table III messages |
//! | `cx-protocol` | the Cx engine + SE / SE-batched / 2PC / CE baselines |
//! | `cx-wal` | Result/Commit/Abort/Complete records, pruning, durability |
//! | `cx-mdstore` | per-server metadata rows + cross-server consistency checks |
//! | `cx-simio` | disk model: group commit, elevator merging |
//! | `cx-cluster` | deterministic simulation + threaded + TCP runtimes |
//! | `cx-workloads` | the six Table II trace profiles + Metarates |
//! | `cx-recovery` | the Table V crash/recovery experiment |

use serde::Serialize;

pub use cx_cluster::{
    des::run_trace, run_chaos_partitioned, run_stream_partitioned, run_stream_partitioned_obs,
    run_stream_trace, AckRecord, ChaosOutcome, ClusterSnapshot, CrashCmd, CrashPlan, DesCluster,
    FaultEvent, FaultInjector, FaultStats, LatencyStat, LiveMetrics, MsgFate, PartitionMap,
    RecoveryCycle, RecoveryReport, RunStats, TcpCluster, TcpOptions, TcpRunResult, ThreadedCluster,
    TimelineSample, WireTotals,
};
pub use cx_mdstore::Violation;
pub use cx_obs::{
    fmt_ns_f, FlightEvent, FlightRecorder, HistSummary, LogHistogram, MetricRegistry,
    MetricsSnapshot, ObsConfig, ObsReport, ObsSink, Phase, StuckOp,
};
pub use cx_protocol::{ClientOp, CxServer, ProtoMetrics, ServerEngine, ServerStats};
pub use cx_recovery::{table5_sweep, RecoveryExperiment, RecoveryRow};
pub use cx_types::{
    BatchTrigger, ClusterConfig, CxConfig, DiskConfig, FsOp, MsgKind, NetConfig, OpClass,
    OpOutcome, Placement, Protocol, SimTime, DUR_MS, DUR_SEC, DUR_US,
};
pub use cx_workloads::{
    ClassMix, Metarates, MetaratesMix, OpStream, StreamTrace, Trace, TraceBuilder, TraceProfile,
    PROFILES,
};

/// A workload specification for [`Experiment`].
#[derive(Debug, Clone)]
pub enum Workload {
    /// One of the six Table II trace profiles.
    TraceProfile {
        name: String,
        scale: f64,
        seed: u64,
        /// Extra conflicting lookups relative to trace size (Figure 8).
        inject_conflicts: f64,
    },
    /// The Metarates benchmark (§IV-B).
    Metarates {
        mix: MetaratesMix,
        ops_per_proc: u32,
        files_per_server: u32,
    },
    /// A pre-built trace.
    Custom(Trace),
}

impl Workload {
    /// Start from a named trace profile (CTH, s3d, alegra, home2,
    /// deasna2, lair62b).
    pub fn trace(name: &str) -> Self {
        assert!(
            TraceProfile::by_name(name).is_some(),
            "unknown trace profile {name:?}"
        );
        Workload::TraceProfile {
            name: name.to_string(),
            scale: 1.0,
            seed: 0x7ace,
            inject_conflicts: 0.0,
        }
    }

    pub fn metarates(mix: MetaratesMix) -> Self {
        Workload::Metarates {
            mix,
            ops_per_proc: 400,
            files_per_server: 4_000,
        }
    }

    /// Scale a trace profile's operation count.
    pub fn scale(mut self, s: f64) -> Self {
        if let Workload::TraceProfile { scale, .. } = &mut self {
            *scale = s;
        }
        self
    }

    /// Inject conflicting lookups (Figure 8's knob).
    pub fn inject_conflicts(mut self, ratio: f64) -> Self {
        if let Workload::TraceProfile {
            inject_conflicts, ..
        } = &mut self
        {
            *inject_conflicts = ratio;
        }
        self
    }

    pub fn seed(mut self, s: u64) -> Self {
        if let Workload::TraceProfile { seed, .. } = &mut self {
            *seed = s;
        }
        self
    }

    /// Materialize the trace for `cfg`.
    pub fn build(&self, cfg: &ClusterConfig) -> Trace {
        match self {
            Workload::TraceProfile {
                name,
                scale,
                seed,
                inject_conflicts,
            } => {
                let profile = TraceProfile::by_name(name).expect("validated in trace()");
                let mut t = TraceBuilder::new(profile).scale(*scale).seed(*seed).build();
                t.inject_conflicting_lookups(*inject_conflicts, *seed);
                t
            }
            Workload::Metarates {
                mix,
                ops_per_proc,
                files_per_server,
            } => Metarates::new(*mix, cfg.total_processes())
                .seed_files(files_per_server * cfg.servers)
                .ops_per_proc(*ops_per_proc)
                .build(),
            Workload::Custom(t) => t.clone(),
        }
    }

    /// Streaming form of [`Workload::build`]: trace-profile workloads
    /// are generated lazily (constant memory regardless of scale); the
    /// op sequence is identical to the materialized one. Conflict
    /// injection first runs a counting pass over a second generator
    /// stream to recover the normalization the materialized path
    /// computed from the full vector — CPU for memory.
    pub fn stream(&self, cfg: &ClusterConfig) -> StreamTrace {
        match self {
            Workload::TraceProfile {
                name,
                scale,
                seed,
                inject_conflicts,
            } => {
                let profile = TraceProfile::by_name(name).expect("validated in trace()");
                let builder = TraceBuilder::new(profile).scale(*scale).seed(*seed);
                if *inject_conflicts > 0.0 {
                    let (total, injectable) =
                        cx_workloads::injection_counts(builder.clone().stream());
                    builder.stream().inject_conflicting_lookups(
                        *inject_conflicts,
                        *seed,
                        total,
                        injectable,
                    )
                } else {
                    builder.stream()
                }
            }
            Workload::Metarates {
                mix,
                ops_per_proc,
                files_per_server,
            } => Metarates::new(*mix, cfg.total_processes())
                .seed_files(files_per_server * cfg.servers)
                .ops_per_proc(*ops_per_proc)
                .stream(),
            Workload::Custom(t) => t.to_stream(),
        }
    }
}

/// Builder for one simulated cluster run.
#[derive(Debug, Clone)]
pub struct Experiment {
    pub cfg: ClusterConfig,
    pub workload: Workload,
}

impl Experiment {
    pub fn new(workload: Workload) -> Self {
        Self {
            cfg: ClusterConfig::default(),
            workload,
        }
    }

    pub fn servers(mut self, n: u32) -> Self {
        let protocol = self.cfg.protocol;
        let seed = self.cfg.seed;
        let mut cfg = ClusterConfig::new(n, protocol);
        cfg.seed = seed;
        cfg.cx = self.cfg.cx;
        cfg.disk = self.cfg.disk;
        cfg.net = self.cfg.net;
        cfg.cpu = self.cfg.cpu;
        cfg.failure = self.cfg.failure;
        self.cfg = cfg;
        self
    }

    pub fn protocol(mut self, p: Protocol) -> Self {
        self.cfg.protocol = p;
        self
    }

    pub fn trigger(mut self, t: BatchTrigger) -> Self {
        self.cfg.cx.trigger = t;
        self
    }

    pub fn log_limit(mut self, limit: Option<u64>) -> Self {
        self.cfg.cx.log_limit_bytes = limit;
        self
    }

    pub fn seed(mut self, s: u64) -> Self {
        self.cfg.seed = s;
        self
    }

    pub fn configure(mut self, f: impl FnOnce(&mut ClusterConfig)) -> Self {
        f(&mut self.cfg);
        self
    }

    /// Run on the deterministic simulator. The workload streams into the
    /// replay (ops generated as clients issue them), which keeps peak
    /// memory flat even at `--full` scale; results are digest-identical
    /// to replaying the materialized trace.
    pub fn run(&self) -> ExperimentResult {
        let st = self.workload.stream(&self.cfg);
        let (stats, violations) = run_stream_trace(self.cfg.clone(), st);
        ExperimentResult { stats, violations }
    }

    /// Like [`Experiment::run`], with observability recording into `sink`.
    /// Recording never perturbs the simulation — the stats digest is
    /// identical to an uninstrumented run — so this is the `--obs` path of
    /// the experiment binaries. Read the trace/report off the sink after.
    pub fn run_obs(&self, sink: ObsSink) -> ExperimentResult {
        let st = self.workload.stream(&self.cfg);
        let cluster = DesCluster::new_stream(self.cfg.clone(), st).with_obs(sink);
        let (stats, violations) = cluster.run();
        ExperimentResult { stats, violations }
    }

    /// Run on the partitioned (parallel) simulator: the cluster is split
    /// across `parts` worker threads synchronized by conservative
    /// lookahead windows (see `cx_cluster::par`). `parts <= 1` is the
    /// plain single-threaded simulator, digest-identical to
    /// [`Experiment::run`]; `parts > 1` preserves all run totals and is
    /// deterministic for a fixed `(seed, parts)`.
    pub fn run_partitioned(&self, parts: u32) -> ExperimentResult {
        let st = self.workload.stream(&self.cfg);
        let (stats, violations) = run_stream_partitioned(self.cfg.clone(), st, parts);
        ExperimentResult { stats, violations }
    }

    /// Run on the multi-threaded runtime (correctness under real
    /// concurrency; no timing model).
    pub fn run_threaded(&self) -> ExperimentResult {
        let st = self.workload.stream(&self.cfg);
        let res = ThreadedCluster::run_stream(self.cfg.clone(), st);
        ExperimentResult {
            stats: res.stats,
            violations: res.violations,
        }
    }
}

/// Outcome of one experiment run.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    pub stats: RunStats,
    pub violations: Vec<Violation>,
}

impl ExperimentResult {
    /// The paper's correctness goal: no dangling entries, orphans, or
    /// nlink mismatches across servers after the run drained.
    pub fn is_consistent(&self) -> bool {
        self.violations.is_empty()
    }

    /// Serialize the stats for EXPERIMENTS.md / JSON artifacts.
    pub fn to_json(&self) -> String {
        #[derive(Serialize)]
        struct Out<'a> {
            stats: &'a RunStats,
            consistent: bool,
        }
        serde_json::to_string_pretty(&Out {
            stats: &self.stats,
            consistent: self.is_consistent(),
        })
        .expect("RunStats serializes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiment_builder_round_trip() {
        let e = Experiment::new(Workload::trace("CTH").scale(0.0005))
            .servers(4)
            .protocol(Protocol::Cx)
            .trigger(BatchTrigger::Threshold { pending_ops: 64 })
            .log_limit(None)
            .seed(7);
        assert_eq!(e.cfg.servers, 4);
        assert_eq!(e.cfg.clients, 16, "4 clients per server");
        assert_eq!(e.cfg.seed, 7);
        let r = e.run();
        assert!(r.is_consistent());
        assert!(r.stats.ops_total > 0);
        assert!(r.to_json().contains("\"consistent\": true"));
    }

    #[test]
    #[should_panic(expected = "unknown trace profile")]
    fn unknown_profile_panics_early() {
        let _ = Workload::trace("nope");
    }

    #[test]
    fn conflict_injection_increases_conflicts() {
        let base = Experiment::new(Workload::trace("home2").scale(0.002))
            .servers(4)
            .run();
        let injected =
            Experiment::new(Workload::trace("home2").scale(0.002).inject_conflicts(0.05))
                .servers(4)
                .run();
        assert!(injected.is_consistent());
        assert!(
            injected.stats.server_stats.conflicts > base.stats.server_stats.conflicts,
            "injected lookups must raise the conflict count: {} vs {}",
            injected.stats.server_stats.conflicts,
            base.stats.server_stats.conflicts
        );
    }

    #[test]
    fn metarates_workload_runs() {
        let r = Experiment::new(Workload::Metarates {
            mix: MetaratesMix::UpdateDominated,
            ops_per_proc: 20,
            files_per_server: 50,
        })
        .servers(2)
        .run();
        assert!(r.is_consistent());
        assert_eq!(r.stats.ops_total, (2 * 4 * 8 * 20) as u64);
    }
}
