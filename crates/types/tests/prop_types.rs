//! Property-based tests of the core vocabulary: placement, plans,
//! messages and configuration.

use cx_types::ids::ProcId;
use cx_types::{
    ClusterConfig, FsOp, InodeNo, Name, OpId, Payload, Placement, Protocol, SubOp, Verdict,
};
use proptest::prelude::*;

proptest! {
    /// Placement is deterministic and balanced within a loose bound for
    /// any cluster size.
    #[test]
    fn placement_balance(servers in 1u32..33, salt in any::<u64>()) {
        let p = Placement::new(servers);
        let mut counts = vec![0u32; servers as usize];
        let n = 4_000u64;
        for i in 0..n {
            let ino = InodeNo(i.wrapping_mul(0x9E37_79B9).wrapping_add(salt));
            counts[p.inode_server(ino).0 as usize] += 1;
        }
        let mean = n as f64 / servers as f64;
        for c in counts {
            prop_assert!(
                (c as f64) < mean * 1.6 + 24.0,
                "server holds {c} of {n} across {servers} servers"
            );
        }
    }

    /// Every plan's assignments execute each half exactly once, and the
    /// sub-ops' objects live on the servers they're assigned to.
    #[test]
    fn plan_assignments_are_complete(
        servers in 1u32..33,
        parent in 1u64..50,
        name in 1u64..10_000,
        ino in 100u64..10_000,
    ) {
        let p = Placement::new(servers);
        let ops = [
            FsOp::Create { parent: InodeNo(parent), name: Name(name), ino: InodeNo(ino) },
            FsOp::Mkdir { parent: InodeNo(parent), name: Name(name), ino: InodeNo(ino) },
            FsOp::Unlink { parent: InodeNo(parent), name: Name(name), target: InodeNo(ino) },
            FsOp::Rmdir { parent: InodeNo(parent), name: Name(name), ino: InodeNo(ino) },
        ];
        for op in ops {
            let plan = p.plan(op);
            let assignments = plan.assignments();
            let halves = 1 + (plan.participant.is_some() || plan.colocated.is_some()) as usize;
            prop_assert_eq!(assignments.len(), halves);
            // the coordinator half is always an entry operation
            let coord_is_entry_op = matches!(
                plan.coord_subop,
                SubOp::InsertEntry { .. } | SubOp::RemoveEntry { .. }
            );
            prop_assert!(coord_is_entry_op);
            for (server, subop, _) in assignments {
                // every object of the sub-op is owned by that server
                for obj in subop.objects().iter() {
                    let owner = match obj {
                        cx_types::ObjectId::Inode(i) => {
                            // the parent's partition row lives with the
                            // dentry; child inodes live at their home
                            if i == InodeNo(parent) && subop.is_write() {
                                server
                            } else {
                                p.inode_server(i)
                            }
                        }
                        cx_types::ObjectId::Dentry(d, n) => p.dentry_server(d, n),
                    };
                    prop_assert_eq!(owner, server, "{:?} of {:?}", obj, subop);
                }
            }
        }
    }

    /// Conflict objects are always a subset of the accessed objects.
    #[test]
    fn conflict_objects_subset(parent in 1u64..50, name in 1u64..1000, ino in 100u64..1000) {
        let subs = [
            SubOp::InsertEntry {
                parent: InodeNo(parent),
                name: Name(name),
                child: InodeNo(ino),
                kind: cx_types::FileKind::Regular,
            },
            SubOp::RemoveEntry {
                parent: InodeNo(parent),
                name: Name(name),
                child: InodeNo(ino),
            },
            SubOp::CreateInode { ino: InodeNo(ino), kind: cx_types::FileKind::Regular },
            SubOp::ReleaseInode { ino: InodeNo(ino) },
            SubOp::ReadEntry { parent: InodeNo(parent), name: Name(name) },
        ];
        for s in subs {
            for obj in s.conflict_objects().iter() {
                prop_assert!(s.objects().contains(&obj));
            }
        }
    }

    /// Message sizes grow monotonically with batch size and never
    /// undershoot the header.
    #[test]
    fn message_sizes_are_sane(n in 1usize..200) {
        let ops: Vec<OpId> = (0..n as u64)
            .map(|i| OpId::new(ProcId::new(0, 0), i))
            .collect();
        let msgs = [
            Payload::Vote { ops: ops.clone(), order_after: vec![] },
            Payload::VoteResult {
                results: ops.iter().map(|o| (*o, Verdict::Yes)).collect(),
            },
            Payload::CommitDecision { commits: ops.clone(), aborts: vec![] },
            Payload::Ack { ops: ops.clone() },
            Payload::QueryOutcome { ops },
        ];
        for m in msgs {
            let size = m.size_bytes();
            prop_assert!(size >= 64, "{:?} smaller than a header", m.kind());
            // batched messages beat n singletons by a wide margin
            prop_assert!(
                (size as usize) < 64 * n + 64 + 32 * n,
                "batching must be cheaper than per-op messages"
            );
        }
    }

    /// Configurations survive a JSON round trip for every protocol and
    /// cluster size.
    #[test]
    fn config_round_trips(servers in 1u32..64, seed in any::<u64>()) {
        for protocol in Protocol::ALL {
            let cfg = ClusterConfig::new(servers, protocol).with_seed(seed);
            let json = serde_json::to_string(&cfg).expect("serializes");
            let back: ClusterConfig = serde_json::from_str(&json).expect("deserializes");
            prop_assert_eq!(cfg, back);
        }
    }

    /// Operation ids order lexicographically by (client, process, seq) —
    /// the property the deterministic sweeps rely on.
    #[test]
    fn op_id_ordering(c1 in 0u32..8, p1 in 0u32..4, s1 in 0u64..100,
                      c2 in 0u32..8, p2 in 0u32..4, s2 in 0u64..100) {
        let a = OpId::new(ProcId::new(c1, p1), s1);
        let b = OpId::new(ProcId::new(c2, p2), s2);
        let expected = (c1, p1, s1).cmp(&(c2, p2, s2));
        prop_assert_eq!(a.cmp(&b), expected);
    }
}
