//! Identifiers for clients, processes, servers, operations and metadata
//! objects.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifies a client node in the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ClientId(pub u32);

/// Identifies a process within a client node (an MPI rank, in the paper's
/// checkpointing example).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ProcessId(pub u32);

/// Identifies a metadata server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ServerId(pub u32);

/// "The coalescence of a client ID and a process ID identifies a process in
/// the cluster" (§III-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ProcId {
    pub client: ClientId,
    pub process: ProcessId,
}

impl ProcId {
    pub const fn new(client: u32, process: u32) -> Self {
        Self {
            client: ClientId(client),
            process: ProcessId(process),
        }
    }
}

/// Unique operation identifier: client ID + process ID + per-client sequence
/// number (§III-A, "Notation").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct OpId {
    pub proc: ProcId,
    pub seq: u64,
}

impl OpId {
    pub const fn new(proc: ProcId, seq: u64) -> Self {
        Self { proc, seq }
    }
}

impl fmt::Display for OpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "op({}/{}#{})",
            self.proc.client.0, self.proc.process.0, self.seq
        )
    }
}

/// Inode number. Inode numbers are allocated by the workload generator so
/// traces are self-contained; the root directory is inode 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct InodeNo(pub u64);

pub const ROOT_INO: InodeNo = InodeNo(1);

/// A component name inside a directory, represented by a 64-bit hash.
/// Real path strings never matter for the protocol: placement, conflict
/// detection and storage all operate on the hash.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Name(pub u64);

/// A metadata object stored as a row in the per-server database.
///
/// A cross-server operation modifies up to three objects: the parent
/// directory's inode, the directory entry, and the child's inode. These are
/// the "active objects" of §III-B against which conflicts are detected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ObjectId {
    /// An inode row (file or directory attributes, nlink, flags).
    Inode(InodeNo),
    /// A directory-entry row, keyed by (directory inode, name hash).
    Dentry(InodeNo, Name),
}

impl ObjectId {
    /// The inode whose server owns this object. Dentries live with their
    /// parent directory's entry partition; see [`crate::Placement`].
    pub fn inode(&self) -> InodeNo {
        match self {
            ObjectId::Inode(ino) => *ino,
            ObjectId::Dentry(dir, _) => *dir,
        }
    }
}

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObjectId::Inode(i) => write!(f, "ino:{}", i.0),
            ObjectId::Dentry(d, n) => write!(f, "dent:{}/{:x}", d.0, n.0),
        }
    }
}

/// Stable 64-bit FNV-1a hash used for name hashing and placement. Defined
/// here so every crate derives identical placements.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Mixes two 64-bit values into one (used for (dir, name) hashing).
pub fn mix64(a: u64, b: u64) -> u64 {
    let mut x = a ^ b.rotate_left(31);
    x ^= x >> 33;
    x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
    x ^= x >> 33;
    x = x.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    x ^= x >> 33;
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_id_ordering_is_by_client_process_seq() {
        let a = OpId::new(ProcId::new(0, 0), 5);
        let b = OpId::new(ProcId::new(0, 1), 1);
        let c = OpId::new(ProcId::new(1, 0), 0);
        assert!(a < b && b < c);
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Reference values for the 64-bit FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn mix64_is_not_identity_and_spreads_bits() {
        let h1 = mix64(1, 2);
        let h2 = mix64(2, 1);
        assert_ne!(h1, h2, "mix must be order-sensitive");
        assert_ne!(h1, 1 ^ 2);
    }

    #[test]
    fn object_id_owner_inode() {
        assert_eq!(ObjectId::Inode(InodeNo(7)).inode(), InodeNo(7));
        assert_eq!(
            ObjectId::Dentry(InodeNo(3), Name(99)).inode(),
            InodeNo(3),
            "dentries are owned by their directory"
        );
    }

    #[test]
    fn display_formats() {
        let id = OpId::new(ProcId::new(2, 3), 44);
        assert_eq!(id.to_string(), "op(2/3#44)");
        assert_eq!(ObjectId::Inode(InodeNo(9)).to_string(), "ino:9");
    }
}
