//! A fast, deterministic hasher for the simulator's hot maps.
//!
//! `std`'s default SipHash is DoS-resistant but costs real time in the
//! event loop, and its per-process random seed makes map iteration order
//! vary across runs. The engines only key maps by small fixed-size ids
//! (`OpId`, `ObjectId`, token counters), so we use the Fx multiply-xor
//! hash (the compiler's own table hasher): a few cycles per key, and the
//! same seed every run. Nothing behavioral may depend on hash-map
//! iteration order regardless — the determinism suite replays a trace
//! under both queue backends and compares digests — but a fixed seed
//! keeps even diagnostics output stable.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// The rustc-hash multiplier (a prime close to the golden ratio in
/// fixed-point).
const K: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Fx hash state: rotate, xor, multiply per word.
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// Drop-in `HashMap` with the Fx hasher.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;
/// Drop-in `HashSet` with the Fx hasher.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_across_builders() {
        // No per-process seed: the same key always hashes the same.
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_ne!(hash_of(&42u64), hash_of(&43u64));
    }

    #[test]
    fn byte_slices_cover_partial_words() {
        for len in 0..20usize {
            let a: Vec<u8> = (0..len as u8).collect();
            let mut b = a.clone();
            assert_eq!(hash_of(&a), hash_of(&b));
            if len > 0 {
                b[len - 1] ^= 1;
                assert_ne!(hash_of(&a), hash_of(&b));
            }
        }
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut m: FxHashMap<u64, &str> = FxHashMap::default();
        m.insert(1, "one");
        assert_eq!(m.get(&1), Some(&"one"));
        let mut s: FxHashSet<u32> = FxHashSet::default();
        assert!(s.insert(7) && !s.insert(7));
    }
}
