//! Core vocabulary of the Cx reproduction.
//!
//! This crate defines the identifiers, file-system operations, sub-operation
//! split (Table I of the paper), protocol messages (Table III), and
//! configuration shared by every other crate in the workspace. It contains no
//! IO and no protocol logic; everything here is plain data.
//!
//! # Paper mapping
//!
//! * [`OpId`] — "each operation is uniquely identified by an operation ID,
//!   with three components: a client ID, a process ID, an operation sequence
//!   number" (§III-A).
//! * [`FsOp`] / [`SubOp`] — the cross-server operations of Table I and their
//!   coordinator/participant sub-operations.
//! * [`Payload`] — the message vocabulary of Table III plus the messages used
//!   by the baseline protocols (SE, 2PC, CE).
//! * [`Placement`] — OrangeFS-style namespace placement: a directory entry is
//!   assigned to a server by its name hash and a file's inode is placed
//!   (pseudo-randomly) on a server of the cluster (§IV-A).

pub mod config;
pub mod error;
pub mod fxhash;
pub mod ids;
pub mod msg;
pub mod op;
pub mod placement;
pub mod pool;
pub mod subop;
pub mod time;

pub use config::{
    BatchTrigger, ClusterConfig, CxConfig, DiskConfig, FailureInjection, NetConfig, NetTuning,
    Protocol, ServerCpuConfig,
};
pub use error::{CxError, CxResult};
pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet};
pub use ids::{ClientId, InodeNo, Name, ObjectId, OpId, ProcId, ProcessId, ServerId};
pub use msg::{Hint, MsgKind, Payload, Verdict};
pub use op::{FileKind, FsOp, OpClass, OpOutcome};
pub use placement::Placement;
pub use pool::VecPool;
pub use subop::{OpPlan, Role, SubOp};
pub use time::{SimTime, DUR_MS, DUR_SEC, DUR_US};
