//! Buffer recycling for the message plane's batched payloads.
//!
//! Lazy commitments batch operation ids into `Vec<OpId>`-carrying
//! messages (VOTE, COMMIT-REQ, ACK — see [`crate::msg::Payload`]), and
//! every batch round-trip used to allocate those vectors fresh and drop
//! them at the receiver. A [`VecPool`] keeps the emptied buffers on a
//! freelist instead: senders draw from their pool, receivers return the
//! drained vector to theirs, and since every server plays both roles the
//! pools balance out — the steady state allocates nothing.

/// A freelist of reusable `Vec<T>` buffers.
///
/// `get` hands out an empty vector (recycled capacity when available);
/// `put` clears a spent one and shelves it. The freelist is capped so a
/// burst of large batches cannot pin unbounded memory.
#[derive(Debug, Clone)]
pub struct VecPool<T> {
    free: Vec<Vec<T>>,
    max_held: usize,
}

impl<T> Default for VecPool<T> {
    fn default() -> Self {
        Self {
            free: Vec::new(),
            max_held: 64,
        }
    }
}

impl<T> VecPool<T> {
    /// An empty buffer, reusing recycled capacity when available.
    pub fn get(&mut self) -> Vec<T> {
        self.free.pop().unwrap_or_default()
    }

    /// Like [`VecPool::get`], pre-filled from a slice.
    pub fn get_copied(&mut self, src: &[T]) -> Vec<T>
    where
        T: Copy,
    {
        let mut v = self.get();
        v.extend_from_slice(src);
        v
    }

    /// Return a spent buffer to the freelist. The contents are dropped;
    /// the capacity is kept (up to the freelist cap).
    pub fn put(&mut self, mut v: Vec<T>) {
        if self.free.len() < self.max_held && v.capacity() > 0 {
            v.clear();
            self.free.push(v);
        }
    }

    /// Buffers currently shelved (for tests and diagnostics).
    pub fn held(&self) -> usize {
        self.free.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recycles_capacity() {
        let mut pool: VecPool<u64> = VecPool::default();
        let mut v = pool.get();
        v.extend([1, 2, 3]);
        let cap = v.capacity();
        pool.put(v);
        assert_eq!(pool.held(), 1);
        let v2 = pool.get();
        assert!(v2.is_empty());
        assert_eq!(v2.capacity(), cap);
        assert_eq!(pool.held(), 0);
    }

    #[test]
    fn zero_capacity_buffers_are_not_shelved() {
        let mut pool: VecPool<u64> = VecPool::default();
        pool.put(Vec::new());
        assert_eq!(pool.held(), 0);
    }

    #[test]
    fn freelist_is_capped() {
        let mut pool: VecPool<u64> = VecPool::default();
        for _ in 0..200 {
            pool.put(Vec::with_capacity(4));
        }
        assert!(pool.held() <= 64);
    }

    #[test]
    fn get_copied_clones_the_slice() {
        let mut pool: VecPool<u64> = VecPool::default();
        assert_eq!(pool.get_copied(&[7, 8]), vec![7, 8]);
    }
}
