//! Virtual time. The simulation clock counts nanoseconds from the start of a
//! run; a `u64` holds ~584 years, far beyond any experiment.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// One microsecond in simulation ticks.
pub const DUR_US: u64 = 1_000;
/// One millisecond in simulation ticks.
pub const DUR_MS: u64 = 1_000_000;
/// One second in simulation ticks.
pub const DUR_SEC: u64 = 1_000_000_000;

/// A point in virtual time (nanoseconds since the start of the run).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

impl SimTime {
    pub const ZERO: SimTime = SimTime(0);

    pub fn from_us(us: u64) -> Self {
        SimTime(us * DUR_US)
    }
    pub fn from_ms(ms: u64) -> Self {
        SimTime(ms * DUR_MS)
    }
    pub fn from_secs(s: u64) -> Self {
        SimTime(s * DUR_SEC)
    }

    pub fn as_us(&self) -> u64 {
        self.0 / DUR_US
    }
    pub fn as_ms(&self) -> u64 {
        self.0 / DUR_MS
    }
    pub fn as_secs_f64(&self) -> f64 {
        self.0 as f64 / DUR_SEC as f64
    }

    /// Saturating difference, useful for latency accounting.
    pub fn since(&self, earlier: SimTime) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl Add<u64> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: u64) -> SimTime {
        SimTime(self.0 + rhs)
    }
}

impl AddAssign<u64> for SimTime {
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = u64;
    fn sub(self, rhs: SimTime) -> u64 {
        self.0 - rhs.0
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_ms(3).as_us(), 3_000);
        assert_eq!(SimTime::from_secs(2).as_ms(), 2_000);
        assert!((SimTime::from_ms(1500).as_secs_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_us(10) + 5 * DUR_US;
        assert_eq!(t.as_us(), 15);
        assert_eq!(t - SimTime::from_us(5), 10 * DUR_US);
        assert_eq!(SimTime::from_us(3).since(SimTime::from_us(9)), 0);
    }

    #[test]
    fn display_is_seconds() {
        assert_eq!(SimTime::from_ms(250).to_string(), "0.250000s");
    }
}
