//! Error types shared across the workspace.

use crate::ids::{ObjectId, OpId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors surfaced by stores, logs and protocol engines.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum CxError {
    /// A directory entry with this name already exists.
    EntryExists(ObjectId),
    /// The referenced entry or inode does not exist.
    NotFound(ObjectId),
    /// rmdir on a non-empty directory.
    DirectoryNotEmpty(ObjectId),
    /// The inode exists but has the wrong kind for the operation.
    WrongKind(ObjectId),
    /// The log is full and the request must wait for pruning.
    LogFull { needed: u64, available: u64 },
    /// A record for this operation was not found in the log.
    NoSuchRecord(OpId),
    /// Injected failure (fault-injection hook).
    Injected,
    /// Protocol-level invariant violation; indicates a bug, surfaced so
    /// property tests can catch it instead of panicking mid-simulation.
    ProtocolViolation(String),
}

impl fmt::Display for CxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CxError::EntryExists(o) => write!(f, "entry exists: {o}"),
            CxError::NotFound(o) => write!(f, "not found: {o}"),
            CxError::DirectoryNotEmpty(o) => write!(f, "directory not empty: {o}"),
            CxError::WrongKind(o) => write!(f, "wrong inode kind: {o}"),
            CxError::LogFull { needed, available } => {
                write!(f, "log full: need {needed} B, {available} B free")
            }
            CxError::NoSuchRecord(op) => write!(f, "no log record for {op}"),
            CxError::Injected => write!(f, "injected failure"),
            CxError::ProtocolViolation(s) => write!(f, "protocol violation: {s}"),
        }
    }
}

impl std::error::Error for CxError {}

pub type CxResult<T> = Result<T, CxError>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::InodeNo;

    #[test]
    fn display_messages() {
        let e = CxError::LogFull {
            needed: 128,
            available: 64,
        };
        assert_eq!(e.to_string(), "log full: need 128 B, 64 B free");
        let e = CxError::NotFound(ObjectId::Inode(InodeNo(3)));
        assert!(e.to_string().contains("ino:3"));
    }

    #[test]
    fn errors_are_std_errors() {
        fn assert_err<E: std::error::Error>(_: E) {}
        assert_err(CxError::Injected);
    }
}
