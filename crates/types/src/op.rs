//! File-system metadata operations.
//!
//! The paper optimizes the cross-server operations of Table I (create,
//! remove, mkdir, rmdir, link, unlink) and leaves single-server operations
//! (stat, lookup, getattr, setattr, readdir, access) untouched; both kinds
//! appear in the trace mixes of Figure 4, so both are modelled.

use crate::ids::{InodeNo, Name};
use serde::{Deserialize, Serialize};

/// Whether an inode refers to a regular file or a directory ("set a flag to
/// indicate it is a regular file / a directory", Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FileKind {
    Regular,
    Directory,
}

/// A metadata operation as issued by an application process.
///
/// Operations are path-free: the workload generator resolves names up front
/// and references parent directories and target files by inode number, which
/// is how replayed traces drive the servers in the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FsOp {
    /// Create a regular file `name` in `parent`, allocating inode `ino`.
    Create {
        parent: InodeNo,
        name: Name,
        ino: InodeNo,
    },
    /// Remove the file `name` from `parent`; `ino` is the file's inode.
    Remove {
        parent: InodeNo,
        name: Name,
        ino: InodeNo,
    },
    /// Create directory `name` in `parent` with inode `ino`.
    Mkdir {
        parent: InodeNo,
        name: Name,
        ino: InodeNo,
    },
    /// Remove directory `name` from `parent`; `ino` is the dir's inode.
    Rmdir {
        parent: InodeNo,
        name: Name,
        ino: InodeNo,
    },
    /// Add a hard link `name` in `parent` to existing inode `target`.
    Link {
        parent: InodeNo,
        name: Name,
        target: InodeNo,
    },
    /// Remove link `name` from `parent`; decrements `target`'s nlink.
    Unlink {
        parent: InodeNo,
        name: Name,
        target: InodeNo,
    },
    /// Read the attributes of `ino`.
    Stat { ino: InodeNo },
    /// Resolve `name` within `parent` (touches the dentry).
    Lookup { parent: InodeNo, name: Name },
    /// Read inode attributes (alias class of stat kept separate so trace
    /// mixes can distinguish the two, as Figure 4 does).
    Getattr { ino: InodeNo },
    /// Update inode attributes in place (chmod/chown/utimes).
    Setattr { ino: InodeNo },
    /// Enumerate a directory (touches the directory inode).
    Readdir { dir: InodeNo },
    /// Permission check on `ino`.
    Access { ino: InodeNo },
}

/// Operation classes used for reporting the Figure 4 distribution and for
/// Metarates' update/stat accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum OpClass {
    Create,
    Remove,
    Mkdir,
    Rmdir,
    Link,
    Unlink,
    Stat,
    Lookup,
    Getattr,
    Setattr,
    Readdir,
    Access,
}

impl OpClass {
    pub const COUNT: usize = 12;

    pub const ALL: [OpClass; 12] = [
        OpClass::Create,
        OpClass::Remove,
        OpClass::Mkdir,
        OpClass::Rmdir,
        OpClass::Link,
        OpClass::Unlink,
        OpClass::Stat,
        OpClass::Lookup,
        OpClass::Getattr,
        OpClass::Setattr,
        OpClass::Readdir,
        OpClass::Access,
    ];

    /// Dense index into per-class tables (`0..COUNT`, the `ALL` order).
    pub fn index(self) -> usize {
        self as usize
    }

    pub fn name(&self) -> &'static str {
        match self {
            OpClass::Create => "create",
            OpClass::Remove => "remove",
            OpClass::Mkdir => "mkdir",
            OpClass::Rmdir => "rmdir",
            OpClass::Link => "link",
            OpClass::Unlink => "unlink",
            OpClass::Stat => "stat",
            OpClass::Lookup => "lookup",
            OpClass::Getattr => "getattr",
            OpClass::Setattr => "setattr",
            OpClass::Readdir => "readdir",
            OpClass::Access => "access",
        }
    }

    /// True for the namespace-mutating classes of Table I, the only ones
    /// that can become cross-server operations.
    pub fn is_mutation(&self) -> bool {
        matches!(
            self,
            OpClass::Create
                | OpClass::Remove
                | OpClass::Mkdir
                | OpClass::Rmdir
                | OpClass::Link
                | OpClass::Unlink
        )
    }
}

impl FsOp {
    pub fn class(&self) -> OpClass {
        match self {
            FsOp::Create { .. } => OpClass::Create,
            FsOp::Remove { .. } => OpClass::Remove,
            FsOp::Mkdir { .. } => OpClass::Mkdir,
            FsOp::Rmdir { .. } => OpClass::Rmdir,
            FsOp::Link { .. } => OpClass::Link,
            FsOp::Unlink { .. } => OpClass::Unlink,
            FsOp::Stat { .. } => OpClass::Stat,
            FsOp::Lookup { .. } => OpClass::Lookup,
            FsOp::Getattr { .. } => OpClass::Getattr,
            FsOp::Setattr { .. } => OpClass::Setattr,
            FsOp::Readdir { .. } => OpClass::Readdir,
            FsOp::Access { .. } => OpClass::Access,
        }
    }

    /// True for Table I operations (potentially cross-server).
    pub fn is_mutation(&self) -> bool {
        self.class().is_mutation()
    }

    /// True if the operation only reads metadata.
    pub fn is_read_only(&self) -> bool {
        matches!(
            self,
            FsOp::Stat { .. }
                | FsOp::Lookup { .. }
                | FsOp::Getattr { .. }
                | FsOp::Readdir { .. }
                | FsOp::Access { .. }
        )
    }
}

/// Final outcome of an operation as observed by the issuing process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpOutcome {
    /// All sub-operations succeeded; the operation took effect.
    Applied,
    /// All sub-operations failed, or the executions disagreed and the
    /// immediate commitment aborted every successful one ("ALL-NO").
    Failed,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{InodeNo, Name};

    fn sample_mutations() -> Vec<FsOp> {
        let (p, n, i) = (InodeNo(1), Name(42), InodeNo(2));
        vec![
            FsOp::Create {
                parent: p,
                name: n,
                ino: i,
            },
            FsOp::Remove {
                parent: p,
                name: n,
                ino: i,
            },
            FsOp::Mkdir {
                parent: p,
                name: n,
                ino: i,
            },
            FsOp::Rmdir {
                parent: p,
                name: n,
                ino: i,
            },
            FsOp::Link {
                parent: p,
                name: n,
                target: i,
            },
            FsOp::Unlink {
                parent: p,
                name: n,
                target: i,
            },
        ]
    }

    #[test]
    fn table1_ops_are_mutations() {
        for op in sample_mutations() {
            assert!(op.is_mutation(), "{op:?} must be a Table I mutation");
            assert!(!op.is_read_only());
        }
    }

    #[test]
    fn read_ops_are_read_only_and_not_mutations() {
        let reads = [
            FsOp::Stat { ino: InodeNo(2) },
            FsOp::Lookup {
                parent: InodeNo(1),
                name: Name(42),
            },
            FsOp::Getattr { ino: InodeNo(2) },
            FsOp::Readdir { dir: InodeNo(1) },
            FsOp::Access { ino: InodeNo(2) },
        ];
        for op in reads {
            assert!(op.is_read_only(), "{op:?}");
            assert!(!op.is_mutation(), "{op:?}");
        }
        // setattr mutates an inode in place but is single-server: not a
        // Table I mutation and not read-only.
        let sa = FsOp::Setattr { ino: InodeNo(2) };
        assert!(!sa.is_read_only() && !sa.is_mutation());
    }

    #[test]
    fn class_names_are_unique() {
        let mut names: Vec<_> = OpClass::ALL.iter().map(|c| c.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), OpClass::ALL.len());
    }

    #[test]
    fn class_round_trip() {
        for op in sample_mutations() {
            assert!(op.class().is_mutation());
        }
        assert_eq!(FsOp::Stat { ino: InodeNo(9) }.class(), OpClass::Stat);
    }
}
