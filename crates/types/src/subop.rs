//! Sub-operations: the per-server halves of a file operation (Table I).
//!
//! | Op     | Coordinator sub-op                          | Participant sub-op |
//! |--------|---------------------------------------------|--------------------|
//! | create | insert entry in parent dir, update parent   | add inode, flag regular |
//! | remove | remove entry from parent dir, update parent | free inode if nlink reaches 0 |
//! | mkdir  | insert entry in parent dir, update parent   | add inode, flag dir, allocate entry space |
//! | rmdir  | remove entry from parent dir, update parent | free inode if nlink reaches 0 |
//! | link   | insert entry in parent dir, update parent   | increase nlink |
//! | unlink | remove entry from dir, update parent        | decrease nlink |

use crate::ids::{InodeNo, Name, ObjectId, ServerId};
use crate::op::{FileKind, FsOp};
use serde::{Deserialize, Serialize};

/// The role a server plays for one cross-server operation (§II-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Role {
    /// Owns the parent-directory side (entry insert/remove).
    Coordinator,
    /// Owns the target inode side.
    Participant,
}

impl Role {
    pub fn peer(&self) -> Role {
        match self {
            Role::Coordinator => Role::Participant,
            Role::Participant => Role::Coordinator,
        }
    }
}

/// One server-local half of a file operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SubOp {
    /// Coordinator: insert a new entry in the parent dir and update the
    /// parent inode (create/mkdir/link).
    InsertEntry {
        parent: InodeNo,
        name: Name,
        child: InodeNo,
        kind: FileKind,
    },
    /// Coordinator: remove the entry from the parent dir and update the
    /// parent inode (remove/rmdir/unlink).
    RemoveEntry {
        parent: InodeNo,
        name: Name,
        child: InodeNo,
    },
    /// Participant: add an inode and set its kind flag; for directories
    /// this also allocates the entry space (mkdir row of Table I).
    CreateInode { ino: InodeNo, kind: FileKind },
    /// Participant: decrement nlink and free the inode if it reaches 0
    /// (remove/rmdir rows of Table I).
    ReleaseInode { ino: InodeNo },
    /// Participant: increase the nlink of the file inode (link).
    IncNlink { ino: InodeNo },
    /// Participant: decrease the nlink of the file inode (unlink).
    DecNlink { ino: InodeNo },
    /// Single-server read of inode attributes (stat/getattr/access).
    ReadInode { ino: InodeNo },
    /// Single-server read of a directory entry (lookup).
    ReadEntry { parent: InodeNo, name: Name },
    /// Single-server directory enumeration.
    ReadDir { dir: InodeNo },
    /// Single-server in-place attribute update (setattr).
    TouchInode { ino: InodeNo },
}

impl SubOp {
    /// The metadata objects this sub-op reads or writes on its server.
    /// These are the objects that become *active* between execution and
    /// commitment and against which conflicts are detected (§III-B/C).
    ///
    /// The "parent inode" object on the coordinator is the per-server
    /// partition of the directory (OrangeFS distributes a directory's
    /// entries over servers by name hash; each partition carries its own
    /// attribute row, which is what the coordinator sub-op updates).
    pub fn objects(&self) -> ObjSet {
        match *self {
            SubOp::InsertEntry { parent, name, .. } | SubOp::RemoveEntry { parent, name, .. } => {
                ObjSet::two(ObjectId::Inode(parent), ObjectId::Dentry(parent, name))
            }
            SubOp::CreateInode { ino, .. }
            | SubOp::ReleaseInode { ino }
            | SubOp::IncNlink { ino }
            | SubOp::DecNlink { ino }
            | SubOp::ReadInode { ino }
            | SubOp::TouchInode { ino } => ObjSet::one(ObjectId::Inode(ino)),
            SubOp::ReadEntry { parent, name } => ObjSet::one(ObjectId::Dentry(parent, name)),
            SubOp::ReadDir { dir } => ObjSet::one(ObjectId::Inode(dir)),
        }
    }

    /// The objects against which conflicts are detected — the objects
    /// whose *values* other operations observe. This excludes the parent
    /// directory's partition-attribute row: its updates (entry counts,
    /// timestamps) are commutative blind writes, so concurrent creates in
    /// one common directory do not conflict with each other — exactly why
    /// the checkpointing workloads of Table II show conflict ratios near
    /// 0.1% even though every process creates in the same directory.
    pub fn conflict_objects(&self) -> ObjSet {
        match *self {
            SubOp::InsertEntry { parent, name, .. } | SubOp::RemoveEntry { parent, name, .. } => {
                ObjSet::one(ObjectId::Dentry(parent, name))
            }
            _ => self.objects(),
        }
    }

    /// True if the sub-op modifies metadata (and therefore must be logged
    /// and eventually written back to the database).
    pub fn is_write(&self) -> bool {
        !matches!(
            self,
            SubOp::ReadInode { .. } | SubOp::ReadEntry { .. } | SubOp::ReadDir { .. }
        )
    }

    /// Approximate encoded size in bytes of the updated objects, used for
    /// log-record and message sizing.
    pub fn write_bytes(&self) -> u32 {
        match self {
            SubOp::InsertEntry { .. } => 176, // dentry row + parent attr update
            SubOp::RemoveEntry { .. } => 112,
            SubOp::CreateInode { kind, .. } => match kind {
                FileKind::Regular => 128,
                FileKind::Directory => 192, // + entry-space allocation
            },
            SubOp::ReleaseInode { .. } => 96,
            SubOp::IncNlink { .. } | SubOp::DecNlink { .. } => 64,
            SubOp::TouchInode { .. } => 96,
            _ => 0,
        }
    }
}

/// A tiny fixed-capacity set of object ids (a sub-op touches at most two).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ObjSet {
    objs: [Option<ObjectId>; 2],
}

impl ObjSet {
    pub fn one(a: ObjectId) -> Self {
        Self {
            objs: [Some(a), None],
        }
    }
    pub fn two(a: ObjectId, b: ObjectId) -> Self {
        Self {
            objs: [Some(a), Some(b)],
        }
    }
    pub fn iter(&self) -> impl Iterator<Item = ObjectId> + '_ {
        self.objs.iter().flatten().copied()
    }
    pub fn contains(&self, o: &ObjectId) -> bool {
        self.objs.iter().flatten().any(|x| x == o)
    }
}

/// How an [`FsOp`] maps onto servers after placement.
///
/// * Single-server reads and setattr: `participant == None`,
///   `colocated == None`.
/// * Cross-server mutation: `participant == Some(..)`.
/// * Mutation whose two halves happen to land on the same server
///   (probability 1/N under OrangeFS placement): `colocated == Some(..)` and
///   the coordinator executes both halves locally in one step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpPlan {
    pub op: FsOp,
    pub coordinator: ServerId,
    pub coord_subop: SubOp,
    /// Second half when it lives on a different server.
    pub participant: Option<(ServerId, SubOp)>,
    /// Second half when it happens to live on the coordinator.
    pub colocated: Option<SubOp>,
}

impl OpPlan {
    /// True if this plan spans two servers (the paper's cross-server case).
    pub fn is_cross_server(&self) -> bool {
        self.participant.is_some()
    }

    /// All (server, sub-op) pairs of the plan.
    pub fn assignments(&self) -> Vec<(ServerId, SubOp, Role)> {
        let mut v = Vec::with_capacity(2);
        v.push((self.coordinator, self.coord_subop, Role::Coordinator));
        if let Some(extra) = self.colocated {
            v.push((self.coordinator, extra, Role::Participant));
        }
        if let Some((s, sub)) = self.participant {
            v.push((s, sub, Role::Participant));
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_entry_touches_parent_inode_and_dentry() {
        let s = SubOp::InsertEntry {
            parent: InodeNo(1),
            name: Name(7),
            child: InodeNo(2),
            kind: FileKind::Regular,
        };
        let objs: Vec<_> = s.objects().iter().collect();
        assert_eq!(
            objs,
            vec![
                ObjectId::Inode(InodeNo(1)),
                ObjectId::Dentry(InodeNo(1), Name(7))
            ]
        );
        assert!(s.is_write());
        assert!(s.write_bytes() > 0);
    }

    #[test]
    fn reads_are_not_writes_and_have_zero_write_bytes() {
        for s in [
            SubOp::ReadInode { ino: InodeNo(2) },
            SubOp::ReadEntry {
                parent: InodeNo(1),
                name: Name(7),
            },
            SubOp::ReadDir { dir: InodeNo(1) },
        ] {
            assert!(!s.is_write(), "{s:?}");
            assert_eq!(s.write_bytes(), 0);
        }
    }

    #[test]
    fn objset_contains() {
        let set = ObjSet::two(ObjectId::Inode(InodeNo(1)), ObjectId::Inode(InodeNo(2)));
        assert!(set.contains(&ObjectId::Inode(InodeNo(1))));
        assert!(!set.contains(&ObjectId::Inode(InodeNo(3))));
        assert_eq!(set.iter().count(), 2);
    }

    #[test]
    fn role_peer_is_involutive() {
        assert_eq!(Role::Coordinator.peer(), Role::Participant);
        assert_eq!(Role::Participant.peer().peer(), Role::Participant);
    }

    #[test]
    fn mkdir_participant_allocates_entry_space() {
        let dir = SubOp::CreateInode {
            ino: InodeNo(5),
            kind: FileKind::Directory,
        };
        let file = SubOp::CreateInode {
            ino: InodeNo(5),
            kind: FileKind::Regular,
        };
        assert!(
            dir.write_bytes() > file.write_bytes(),
            "directory creation also allocates the entry space (Table I)"
        );
    }
}
