//! OrangeFS-style namespace placement.
//!
//! "In OFS, to create a new file, a directory entry is assigned to a server
//! based on its name hash value, and the file's metadata object (inode) is
//! randomly created on one server in the cluster" (§IV-A). We make the
//! "random" inode placement a deterministic hash of the inode number so that
//! every component of the system (clients, servers, generators) agrees on
//! placement without coordination.

use crate::ids::{mix64, InodeNo, Name, ServerId};
use crate::op::{FileKind, FsOp};
use crate::subop::{OpPlan, SubOp};
use serde::{Deserialize, Serialize};

/// Salt distinguishing the inode-placement hash from the dentry hash, so a
/// file's dentry and inode land on independent servers.
const INO_SALT: u64 = 0x9e37_79b9_7f4a_7c15;

#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Placement {
    /// Number of metadata servers in the cluster.
    pub servers: u32,
}

impl Placement {
    pub fn new(servers: u32) -> Self {
        assert!(servers > 0, "cluster needs at least one metadata server");
        Self { servers }
    }

    /// Server owning the directory-entry partition for (dir, name).
    pub fn dentry_server(&self, dir: InodeNo, name: Name) -> ServerId {
        ServerId((mix64(dir.0, name.0) % self.servers as u64) as u32)
    }

    /// Server owning an inode.
    pub fn inode_server(&self, ino: InodeNo) -> ServerId {
        ServerId((mix64(ino.0, INO_SALT) % self.servers as u64) as u32)
    }

    /// Split an operation into its per-server sub-operations (Table I) and
    /// decide coordinator/participant.
    pub fn plan(&self, op: FsOp) -> OpPlan {
        match op {
            FsOp::Create { parent, name, ino } => self.mutation(
                op,
                parent,
                name,
                SubOp::InsertEntry {
                    parent,
                    name,
                    child: ino,
                    kind: FileKind::Regular,
                },
                ino,
                SubOp::CreateInode {
                    ino,
                    kind: FileKind::Regular,
                },
            ),
            FsOp::Mkdir { parent, name, ino } => self.mutation(
                op,
                parent,
                name,
                SubOp::InsertEntry {
                    parent,
                    name,
                    child: ino,
                    kind: FileKind::Directory,
                },
                ino,
                SubOp::CreateInode {
                    ino,
                    kind: FileKind::Directory,
                },
            ),
            FsOp::Remove { parent, name, ino } | FsOp::Rmdir { parent, name, ino } => self
                .mutation(
                    op,
                    parent,
                    name,
                    SubOp::RemoveEntry {
                        parent,
                        name,
                        child: ino,
                    },
                    ino,
                    SubOp::ReleaseInode { ino },
                ),
            FsOp::Link {
                parent,
                name,
                target,
            } => self.mutation(
                op,
                parent,
                name,
                SubOp::InsertEntry {
                    parent,
                    name,
                    child: target,
                    kind: FileKind::Regular,
                },
                target,
                SubOp::IncNlink { ino: target },
            ),
            FsOp::Unlink {
                parent,
                name,
                target,
            } => self.mutation(
                op,
                parent,
                name,
                SubOp::RemoveEntry {
                    parent,
                    name,
                    child: target,
                },
                target,
                SubOp::DecNlink { ino: target },
            ),
            FsOp::Stat { ino } | FsOp::Getattr { ino } | FsOp::Access { ino } => {
                self.single(op, self.inode_server(ino), SubOp::ReadInode { ino })
            }
            FsOp::Setattr { ino } => {
                self.single(op, self.inode_server(ino), SubOp::TouchInode { ino })
            }
            FsOp::Lookup { parent, name } => self.single(
                op,
                self.dentry_server(parent, name),
                SubOp::ReadEntry { parent, name },
            ),
            FsOp::Readdir { dir } => {
                self.single(op, self.inode_server(dir), SubOp::ReadDir { dir })
            }
        }
    }

    fn mutation(
        &self,
        op: FsOp,
        parent: InodeNo,
        name: Name,
        coord_subop: SubOp,
        target: InodeNo,
        parti_subop: SubOp,
    ) -> OpPlan {
        let coordinator = self.dentry_server(parent, name);
        let parti_server = self.inode_server(target);
        if coordinator == parti_server {
            OpPlan {
                op,
                coordinator,
                coord_subop,
                participant: None,
                colocated: Some(parti_subop),
            }
        } else {
            OpPlan {
                op,
                coordinator,
                coord_subop,
                participant: Some((parti_server, parti_subop)),
                colocated: None,
            }
        }
    }

    fn single(&self, op: FsOp, server: ServerId, subop: SubOp) -> OpPlan {
        OpPlan {
            op,
            coordinator: server,
            coord_subop: subop,
            participant: None,
            colocated: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ROOT_INO;

    #[test]
    fn placement_is_deterministic_and_in_range() {
        let p = Placement::new(8);
        for i in 0..1000u64 {
            let s1 = p.inode_server(InodeNo(i));
            let s2 = p.inode_server(InodeNo(i));
            assert_eq!(s1, s2);
            assert!(s1.0 < 8);
            let d = p.dentry_server(ROOT_INO, Name(i));
            assert!(d.0 < 8);
        }
    }

    #[test]
    fn placement_is_roughly_balanced() {
        let p = Placement::new(8);
        let mut counts = [0u32; 8];
        for i in 0..80_000u64 {
            counts[p.inode_server(InodeNo(i)).0 as usize] += 1;
        }
        for c in counts {
            // within 10% of the mean of 10_000
            assert!((9_000..11_000).contains(&c), "imbalanced placement: {c}");
        }
    }

    #[test]
    fn cross_server_fraction_close_to_one_minus_one_over_n() {
        let p = Placement::new(8);
        let mut cross = 0;
        let total = 20_000;
        for i in 0..total {
            let plan = p.plan(FsOp::Create {
                parent: ROOT_INO,
                name: Name(i),
                ino: InodeNo(1000 + i),
            });
            if plan.is_cross_server() {
                cross += 1;
            }
        }
        let frac = cross as f64 / total as f64;
        assert!(
            (frac - 0.875).abs() < 0.02,
            "expected ~7/8 cross-server with 8 servers, got {frac}"
        );
    }

    #[test]
    fn create_plan_matches_table1() {
        let p = Placement::new(4);
        let plan = p.plan(FsOp::Create {
            parent: ROOT_INO,
            name: Name(3),
            ino: InodeNo(42),
        });
        assert!(matches!(plan.coord_subop, SubOp::InsertEntry { .. }));
        match (plan.participant, plan.colocated) {
            (Some((_, SubOp::CreateInode { .. })), None) => {}
            (None, Some(SubOp::CreateInode { .. })) => {}
            other => panic!("unexpected plan halves: {other:?}"),
        }
    }

    #[test]
    fn unlink_plan_decrements_nlink_on_participant_side() {
        let p = Placement::new(4);
        let plan = p.plan(FsOp::Unlink {
            parent: ROOT_INO,
            name: Name(3),
            target: InodeNo(42),
        });
        assert!(matches!(plan.coord_subop, SubOp::RemoveEntry { .. }));
        let second = plan.participant.map(|(_, s)| s).or(plan.colocated).unwrap();
        assert_eq!(second, SubOp::DecNlink { ino: InodeNo(42) });
    }

    #[test]
    fn reads_are_single_server() {
        let p = Placement::new(8);
        for op in [
            FsOp::Stat { ino: InodeNo(5) },
            FsOp::Lookup {
                parent: ROOT_INO,
                name: Name(1),
            },
            FsOp::Readdir { dir: ROOT_INO },
            FsOp::Setattr { ino: InodeNo(5) },
        ] {
            let plan = p.plan(op);
            assert!(!plan.is_cross_server());
            assert!(plan.colocated.is_none());
            assert_eq!(plan.assignments().len(), 1);
        }
    }

    #[test]
    fn single_server_cluster_never_cross_server() {
        let p = Placement::new(1);
        for i in 0..100 {
            let plan = p.plan(FsOp::Create {
                parent: ROOT_INO,
                name: Name(i),
                ino: InodeNo(100 + i),
            });
            assert!(!plan.is_cross_server());
            assert!(plan.colocated.is_some());
        }
    }

    #[test]
    fn assignments_cover_both_halves() {
        let p = Placement::new(16);
        let plan = p.plan(FsOp::Mkdir {
            parent: ROOT_INO,
            name: Name(77),
            ino: InodeNo(200),
        });
        let asg = plan.assignments();
        assert_eq!(asg.len(), 2);
        assert_eq!(asg[0].2, crate::subop::Role::Coordinator);
        assert_eq!(asg[1].2, crate::subop::Role::Participant);
    }
}
