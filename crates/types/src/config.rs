//! Configuration for clusters, devices and protocols.
//!
//! Defaults reflect the paper's testbed (§IV-B): dual quad-core 2.83 GHz
//! Xeons, 10 GigE through Catalyst-3750 switches, one 7200 rpm SATA disk per
//! metadata server with the database on ext3, a 1 MB log per server, and a
//! 10-second timeout trigger for lazy commitments.

use crate::time::{DUR_MS, DUR_SEC, DUR_US};
use serde::{Deserialize, Serialize};

/// Which cross-server protocol a cluster runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Protocol {
    /// The paper's contribution: concurrent execution, lazy batched
    /// commitment, conflict hints.
    Cx,
    /// OrangeFS/PVFS2 serial execution with synchronous database writes
    /// ("OFS" in the evaluation).
    Se,
    /// Serial execution with logged sub-ops and batched database
    /// write-back ("OFS-batched").
    SeBatched,
    /// Classic two-phase commit (Slice, IFS, Farsite, DCFS).
    TwoPc,
    /// Central execution by object migration (Ursa Minor).
    Ce,
}

impl Protocol {
    pub const ALL: [Protocol; 5] = [
        Protocol::Cx,
        Protocol::Se,
        Protocol::SeBatched,
        Protocol::TwoPc,
        Protocol::Ce,
    ];

    pub fn name(&self) -> &'static str {
        match self {
            Protocol::Cx => "OFS-Cx",
            Protocol::Se => "OFS",
            Protocol::SeBatched => "OFS-batched",
            Protocol::TwoPc => "2PC",
            Protocol::Ce => "CE",
        }
    }
}

/// Network model: per-message one-way latency plus size/bandwidth.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetConfig {
    /// Fixed one-way latency (switching + protocol stack), ns.
    pub one_way_ns: u64,
    /// Link bandwidth in bytes/second (10 GigE).
    pub bandwidth_bps: u64,
}

impl Default for NetConfig {
    fn default() -> Self {
        Self {
            one_way_ns: 60 * DUR_US,
            bandwidth_bps: 1_250_000_000,
        }
    }
}

/// Tuning knobs for the real-socket wire plane (`cx-net`): writer-side
/// frame coalescing and corking, queue depth, and the reader's decode
/// buffer. These shape *wall-clock* transport behavior only — the DES
/// models the network with [`NetConfig`] and never reads them.
///
/// The writer thread drains its whole outbound queue per wakeup and
/// encodes every pending frame back-to-back into one scratch buffer for
/// a single `write_all`. Corking is adaptive: a batch that started from
/// an empty queue (an idle peer, latency-sensitive) flushes as soon as
/// the queue is drained; a batch that started from a backlog (a busy
/// peer, throughput-sensitive) keeps the cork in for up to
/// `cork_deadline_ns` or until `cork_bytes` of encoded frames are
/// pending, whichever comes first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetTuning {
    /// Flush the coalesced scratch buffer once it holds this many encoded
    /// bytes, even mid-drain.
    pub cork_bytes: usize,
    /// How long a busy-peer batch may wait for more frames before the
    /// cork pops. `0` disables the *timer* cork: every drain flushes the
    /// moment the queue is empty. Scoped corking (a sender holding a
    /// `cork_scope` guard around a burst it already has in hand) is
    /// independent of this knob and is the default coalescing mechanism:
    /// it costs no latency and no writer-daemon wakeup, which measures
    /// faster than any timer setting on a box with few hardware threads
    /// (see EXPERIMENTS.md).
    pub cork_deadline_ns: u64,
    /// Outbound frames buffered per peer before `send` blocks (the
    /// backpressure bound).
    pub queue_cap: usize,
    /// Size of the reader's reusable receive buffer; each `read` may
    /// yield many frames, which are decoded in place and delivered as
    /// one batch.
    pub read_buf_bytes: usize,
}

impl Default for NetTuning {
    fn default() -> Self {
        Self {
            cork_bytes: 64 << 10,
            cork_deadline_ns: 0,
            queue_cap: 1024,
            read_buf_bytes: 256 << 10,
        }
    }
}

/// Disk model for one 7200 rpm SATA drive holding both the operation log
/// (a log-structured file, §IV-A) and the metadata database.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DiskConfig {
    /// Overhead of one synchronous log flush (group commit covers every
    /// append queued while the previous flush was in flight).
    pub log_flush_ns: u64,
    /// Sequential bandwidth, bytes/second.
    pub seq_bw_bps: u64,
    /// Per-flush overhead of a synchronous database commit (ext3 journal
    /// commit: rotational wait + journal descriptor blocks). Concurrent
    /// sync writes group-commit into one flush, as ext3 does.
    pub db_sync_write_ns: u64,
    /// Additional cost per sync write within a group commit: the in-place
    /// B-tree page write the database must force alongside the journal.
    pub db_sync_per_write_ns: u64,
    /// Seek from the log region into the database region, paid once per
    /// write-back batch.
    pub wb_batch_seek_ns: u64,
    /// Seek between non-adjacent key runs within a write-back batch.
    pub wb_run_seek_ns: u64,
    /// Keys within this distance merge into one run ("possibility of
    /// merging disk requests in kernel's IO scheduler", §IV-C1).
    pub merge_gap: u64,
    /// Per-object transfer cost within a merged run.
    pub wb_object_bytes: u64,
    /// Cold-cache read of one database row (recovery re-reads the rows of
    /// every half-completed operation: a dependent B-tree point lookup —
    /// seek + rotation + inner-node reads — that cannot be merged).
    pub cold_read_run_ns: u64,
    /// Group commit for log appends and sync writes (ablation knob:
    /// disabling it makes every append pay a full flush).
    pub group_commit: bool,
}

impl Default for DiskConfig {
    fn default() -> Self {
        Self {
            log_flush_ns: 1_400 * DUR_US,
            seq_bw_bps: 100_000_000,
            db_sync_write_ns: 1_600 * DUR_US,
            db_sync_per_write_ns: 260 * DUR_US,
            wb_batch_seek_ns: 1_200 * DUR_US,
            wb_run_seek_ns: 700 * DUR_US,
            merge_gap: 16,
            wb_object_bytes: 256,
            cold_read_run_ns: 1_300 * DUR_US,
            group_commit: true,
        }
    }
}

/// CPU costs of the metadata server's request path.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServerCpuConfig {
    /// Handling one incoming or outgoing message.
    pub per_msg_ns: u64,
    /// Executing one sub-operation against the in-memory store.
    pub per_subop_ns: u64,
    /// Serving one cached read (stat/lookup/readdir).
    pub per_read_ns: u64,
}

impl Default for ServerCpuConfig {
    fn default() -> Self {
        Self {
            per_msg_ns: 15 * DUR_US,
            per_subop_ns: 25 * DUR_US,
            per_read_ns: 20 * DUR_US,
        }
    }
}

/// When the permitted lazy commitments are batched and launched (§IV-A,
/// "Batched commitments").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum BatchTrigger {
    /// Fires when this much time has elapsed since the last commitment.
    Timeout { period_ns: u64 },
    /// Fires when this many operations are pending since the last
    /// commitment.
    Threshold { pending_ops: u64 },
    /// Extension (the paper's future work): fires when the server has been
    /// idle for `idle_ns`, with `fallback_ns` as a safety timeout.
    Idle { idle_ns: u64, fallback_ns: u64 },
    /// Never fires: commitments happen only on conflicts, log pressure or
    /// disagreement. Used to find the optimum in Figure 9(a).
    Never,
}

impl Default for BatchTrigger {
    fn default() -> Self {
        // "we ... employed the timeout trigger ... with a timeout value of
        // 10 seconds" (§IV-B)
        BatchTrigger::Timeout {
            period_ns: 10 * DUR_SEC,
        }
    }
}

/// Cx-specific knobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CxConfig {
    pub trigger: BatchTrigger,
    /// Upper limit of the log size per server; `None` = unlimited
    /// (sensitivity study, Figure 7). Default 1 MB (§IV-B).
    pub log_limit_bytes: Option<u64>,
    /// Largest number of operations in one batched commitment message.
    pub commit_batch_max: usize,
    /// How long a client waits on mismatched conflict hints before forcing
    /// an immediate commitment (DESIGN.md §5.8).
    pub hint_mismatch_timeout_ns: u64,
    /// Grace period before a coordinator presumes an operation it has no
    /// record of (but whose commitment a participant requested) was
    /// orphaned by a dead client and aborts it.
    pub presumed_abort_timeout_ns: u64,
    /// Store log records as rows in the database instead of the
    /// log-structured file — the alternative the paper considered and
    /// rejected ("Log records can be stored in the BDB or can be organized
    /// as a log-structured file. We choose the latter approach to exploit
    /// more disk bandwidth", §IV-A). Kept as an ablation knob.
    pub log_in_database: bool,
    /// Re-drive an unfinished commitment batch (re-send VOTE or
    /// COMMIT-REQ) after this long without progress. `None` — the paper's
    /// behavior — never retransmits: fine when servers don't fail, but a
    /// participant that crashed with the VOTE in flight would wedge the
    /// batch forever. The chaos harness turns this on.
    pub commit_retry_timeout_ns: Option<u64>,
    /// Deliberately broken recovery: skip resuming half-completed
    /// commitments after the log scan (the §III-D resumption step). Exists
    /// so the chaos oracle can prove it catches real atomicity and
    /// durability violations; never enable outside that self-test.
    pub unsafe_skip_recovery_resume: bool,
}

impl Default for CxConfig {
    fn default() -> Self {
        Self {
            trigger: BatchTrigger::default(),
            log_limit_bytes: Some(1 << 20),
            commit_batch_max: 4096,
            hint_mismatch_timeout_ns: 50 * DUR_MS,
            presumed_abort_timeout_ns: 200 * DUR_MS,
            log_in_database: false,
            commit_retry_timeout_ns: None,
            unsafe_skip_recovery_resume: false,
        }
    }
}

/// Fault injection for tests and the disagreement paths.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FailureInjection {
    /// Probability that a sub-op execution fails (votes "NO") even though
    /// it is semantically valid. Drives the disagreement path.
    pub subop_fail_prob: f64,
}

impl Default for FailureInjection {
    fn default() -> Self {
        Self {
            subop_fail_prob: 0.0,
        }
    }
}

/// Full cluster configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterConfig {
    pub servers: u32,
    /// "the number of load-generating clients is four times of that of
    /// servers" (§IV-B).
    pub clients: u32,
    /// "our configuration uses 8 processes per client" (§IV-C2).
    pub procs_per_client: u32,
    pub protocol: Protocol,
    pub net: NetConfig,
    pub disk: DiskConfig,
    pub cpu: ServerCpuConfig,
    pub cx: CxConfig,
    pub failure: FailureInjection,
    pub seed: u64,
}

impl ClusterConfig {
    pub fn new(servers: u32, protocol: Protocol) -> Self {
        Self {
            servers,
            clients: servers * 4,
            procs_per_client: 8,
            protocol,
            net: NetConfig::default(),
            disk: DiskConfig::default(),
            cpu: ServerCpuConfig::default(),
            cx: CxConfig::default(),
            failure: FailureInjection::default(),
            seed: 0xC0FFEE,
        }
    }

    pub fn total_processes(&self) -> u32 {
        self.clients * self.procs_per_client
    }

    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig::new(8, Protocol::Cx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let c = ClusterConfig::default();
        assert_eq!(c.servers, 8);
        assert_eq!(c.clients, 32, "4 clients per server");
        assert_eq!(c.procs_per_client, 8);
        assert_eq!(c.total_processes(), 256);
        assert_eq!(c.cx.log_limit_bytes, Some(1 << 20), "1 MB log");
        match c.cx.trigger {
            BatchTrigger::Timeout { period_ns } => assert_eq!(period_ns, 10 * DUR_SEC),
            other => panic!("default trigger must be 10 s timeout, got {other:?}"),
        }
    }

    #[test]
    fn protocol_names_match_the_paper() {
        assert_eq!(Protocol::Cx.name(), "OFS-Cx");
        assert_eq!(Protocol::Se.name(), "OFS");
        assert_eq!(Protocol::SeBatched.name(), "OFS-batched");
    }

    #[test]
    fn config_serializes() {
        let c = ClusterConfig::default();
        let json = serde_json::to_string(&c).unwrap();
        let back: ClusterConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }

    #[test]
    fn with_seed_changes_only_seed() {
        let base = ClusterConfig::default();
        let seeded = base.clone().with_seed(42);
        assert_eq!(seeded.seed, 42);
        assert_eq!(seeded.servers, base.servers);
    }
}
